/**
 * @file
 * Ablation study for the Section 7.2.1 use case: what does knowing the
 * on-die ECC function (via BEER) buy a rank-level ECC designer?
 *
 * Quantifies the Son et al. interference effect the paper cites: a
 * double raw error is always *detected* by rank-level SEC-DED when
 * there is no on-die ECC, but an on-die SEC decoder's miscorrections
 * can convert it into a 3-bit pattern that SEC-DED silently
 * mis-corrects. The table enumerates all double-bit raw error
 * patterns for:
 *
 *  1. rank-level SEC-DED alone (baseline: 100% detected);
 *  2. on-die SEC + an arbitrary (randomly chosen) SEC-DED;
 *  3. on-die SEC + a SEC-DED co-designed against the known inner
 *     function (BEER-enabled: pick the candidate with the fewest
 *     silent-corruption patterns).
 */

#include <cstdio>
#include <iostream>

#include "ecc/hamming.hh"
#include "ecc/secded.hh"
#include "ecc/two_level.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace beer;
using namespace beer::ecc;

int
main(int argc, char **argv)
{
    util::Cli cli("Two-level ECC interference and BEER-enabled "
                  "co-design (Section 7.2.1)");
    cli.addOption("inner-k", "22",
                  "on-die ECC dataword bits (= outer codeword bits)");
    cli.addOption("candidates", "32",
                  "outer-code candidates for co-design");
    cli.addOption("chips", "3", "inner functions to evaluate");
    cli.addOption("seed", "9", "RNG seed");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
    cli.parse(argc, argv);

    const auto inner_k = (std::size_t)cli.getInt("inner-k");
    const auto candidates = (std::size_t)cli.getInt("candidates");
    const auto chips = (std::size_t)cli.getInt("chips");
    util::Rng rng(cli.getInt("seed"));

    util::Table table(
        {"chip", "configuration", "double-error patterns", "detected",
         "silently corrupted", "silent rate"});

    for (std::size_t chip = 0; chip < chips; ++chip) {
        // The chip's secret on-die function (recoverable via BEER).
        const LinearCode inner = randomSecCode(inner_k, rng);

        // Baseline: outer SEC-DED alone (no on-die ECC).
        util::Rng outer_rng = rng.fork();
        HazardReport naive_report;
        const SecDedCode naive =
            coDesignOuterCode(inner, 1, outer_rng, &naive_report);
        const gf2::BitVec data(naive.k());

        const HazardReport alone =
            enumerateDoubleErrorOutcomesOuterOnly(naive, data);
        table.addRowOf(chip, "SEC-DED alone (no on-die ECC)",
                       alone.patterns, alone.detected,
                       alone.silentCorruption,
                       util::Table::fixed(
                           alone.silentCorruptionRate() * 100.0, 2) +
                           "%");

        // On-die SEC + arbitrary SEC-DED (designer ignorant of the
        // inner function).
        table.addRowOf(chip, "on-die SEC + arbitrary SEC-DED",
                       naive_report.patterns, naive_report.detected,
                       naive_report.silentCorruption,
                       util::Table::fixed(
                           naive_report.silentCorruptionRate() * 100.0,
                           2) +
                           "%");

        // On-die SEC + co-designed SEC-DED (inner function known via
        // BEER; pick the best of N candidates).
        HazardReport best_report;
        coDesignOuterCode(inner, candidates, outer_rng, &best_report);
        table.addRowOf(chip,
                       "on-die SEC + BEER-co-designed SEC-DED",
                       best_report.patterns, best_report.detected,
                       best_report.silentCorruption,
                       util::Table::fixed(
                           best_report.silentCorruptionRate() * 100.0,
                           2) +
                           "%");
    }

    std::printf("Two-level ECC double-error outcomes "
                "(inner k=%zu, %zu co-design candidates)\n",
                inner_k, candidates);
    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::printf("\nWithout on-die ECC every double error is detected; "
                "on-die miscorrections\nintroduce silent corruption, "
                "and knowing the inner function (BEER) lets the\n"
                "designer pick an outer code that minimizes it.\n");
    return 0;
}
