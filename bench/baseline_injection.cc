/**
 * @file
 * Compares the Section 4.1 baseline (direct error injection with
 * visible syndromes — applicable to rank-level ECC, Cojocar et al.)
 * against BEER (no metadata access — applicable to on-die ECC) on the
 * same codes: what each requires and what each costs.
 *
 * The baseline needs n oracle probes and direct access to parity bits
 * and syndromes; BEER needs neither, at the cost of a pattern sweep
 * and a SAT solve. Both must agree with the ground truth.
 */

#include <chrono>
#include <cstdio>
#include <iostream>

#include "beer/baseline.hh"
#include "beer/profile.hh"
#include "beer/solver.hh"
#include "ecc/code_equiv.hh"
#include "ecc/hamming.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace beer;
using ecc::LinearCode;

int
main(int argc, char **argv)
{
    util::Cli cli("Section 4.1 baseline (syndrome injection) vs BEER");
    cli.addOption("k-list", "8,16,32,64,128",
                  "dataword lengths (comma-separated)");
    cli.addOption("seed", "10", "RNG seed");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
    cli.parse(argc, argv);

    util::Rng rng(cli.getInt("seed"));

    std::vector<std::size_t> k_list;
    {
        const std::string text = cli.getString("k-list");
        std::size_t pos = 0;
        while (pos < text.size()) {
            std::size_t next = text.find(',', pos);
            if (next == std::string::npos)
                next = text.size();
            k_list.push_back((std::size_t)std::stoul(
                text.substr(pos, next - pos)));
            pos = next + 1;
        }
    }

    util::Table table({"k", "method", "requires", "probes/patterns",
                       "time (s)", "correct"});

    for (std::size_t k : k_list) {
        const LinearCode secret = ecc::randomSecCode(k, rng);

        // Baseline: 1-hot injection via a syndrome oracle.
        auto start = std::chrono::steady_clock::now();
        const auto injected = recoverBySyndromeInjection(
            secret.n(), secret.k(), makeOracle(secret));
        const double t_inject =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        table.addRowOf(k, "syndrome injection (4.1)",
                       "error injection + syndrome visibility",
                       injected.probes, util::Table::sci(t_inject),
                       injected.code == secret ? "yes" : "NO");

        // BEER: profile + SAT solve, data interface only. Start with
        // the 1-CHARGED patterns and escalate to {1,2}-CHARGED if the
        // shortened code is ambiguous (Section 4.2.4).
        start = std::chrono::steady_clock::now();
        auto patterns = chargedPatterns(k, 1);
        BeerSolverConfig config;
        auto solved = solveForEccFunction(
            exhaustiveProfile(secret, patterns),
            secret.numParityBits(), config);
        if (!solved.unique()) {
            patterns = chargedPatternUnion(k, {1, 2});
            solved = solveForEccFunction(
                exhaustiveProfile(secret, patterns),
                secret.numParityBits(), config);
        }
        const double t_beer =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        const bool ok = solved.unique() &&
                        ecc::equivalent(solved.solutions[0], secret);
        table.addRowOf(k, "BEER", "data interface only",
                       patterns.size(), util::Table::sci(t_beer),
                       ok ? "yes" : (solved.solutions.empty() ? "NO"
                                                              : "ambig"));
    }

    std::printf("Baseline comparison: direct injection vs BEER\n");
    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
