/**
 * @file
 * Chaos recovery bench: cost and fidelity of noise-hardened recovery.
 *
 * For each dataword length, recovers the same simulated chip's ECC
 * function twice — once clean, once behind a FaultInjectionProxy
 * configured with transient + burst read noise while the session runs
 * with quorum reads and UNSAT-core repair enabled — and reports what
 * the hardening cost (extra reads, repair rounds, wall clock) and
 * whether the recovered functions stayed equivalent. Any divergence
 * exits nonzero: this is the CI gate for the chaos differential.
 * --json emits the per-k results machine-readably for BENCH_*.json
 * tracking across PRs.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "beer/session.hh"
#include "dram/chip.hh"
#include "dram/fault_proxy.hh"
#include "ecc/code_equiv.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace beer;
using beer::dram::ChipConfig;
using beer::dram::FaultInjectionConfig;
using beer::dram::FaultInjectionProxy;
using beer::dram::SimulatedChip;

namespace
{

ChipConfig
benchChipConfig(std::size_t k, std::uint64_t seed)
{
    ChipConfig config = dram::makeVendorConfig('A', k, seed);
    config.map.rows = 64;
    config.iidErrors = true;
    return config;
}

MeasureConfig
benchMeasure(const SimulatedChip &chip)
{
    MeasureConfig measure;
    measure.pausesSeconds.clear();
    for (double ber : {0.05, 0.15, 0.3})
        measure.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    measure.repeatsPerPause = 25;
    measure.thresholdProbability = 1e-4;
    return measure;
}

double
seconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    util::Cli cli("Chaos differential: clean vs noise-hardened "
                  "recovery under injected read faults");
    cli.addOption("k-list", "8,16,32",
                  "dataword lengths (comma-separated)");
    cli.addOption("seed", "4242", "chip/noise RNG seed");
    cli.addOption("flip-rate", "1e-4",
                  "transient per-bit read flip probability");
    cli.addOption("burst-rate", "5e-4",
                  "burst flip probability (first 64 of every 2048 "
                  "reads)");
    cli.addOption("votes", "3", "base quorum votes per experiment");
    cli.addOption("escalated-votes", "7",
                  "votes after a quorum disagreement");
    cli.addOption("json", "", "write machine-readable results here");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
    cli.parse(argc, argv);

    std::vector<std::size_t> k_list;
    {
        const std::string text = cli.getString("k-list");
        std::size_t pos = 0;
        while (pos < text.size()) {
            std::size_t next = text.find(',', pos);
            if (next == std::string::npos)
                next = text.size();
            k_list.push_back((std::size_t)std::stoul(
                text.substr(pos, next - pos)));
            pos = next + 1;
        }
    }
    const std::uint64_t seed = (std::uint64_t)cli.getInt("seed");
    const double flip_rate = cli.getDouble("flip-rate");
    const double burst_rate = cli.getDouble("burst-rate");

    util::Table table({"k", "mode", "recovered", "equivalent",
                       "measurements", "disagreements", "repairs",
                       "retracted", "flips injected", "time (s)"});
    std::ostringstream json_rows;
    bool diverged = false;

    for (std::size_t i = 0; i < k_list.size(); ++i) {
        const std::size_t k = k_list[i];

        SimulatedChip clean_chip(benchChipConfig(k, seed + k));
        SessionConfig clean_config;
        clean_config.measure = benchMeasure(clean_chip);
        clean_config.wordsUnderTest = dram::trueCellWords(clean_chip);
        auto start = std::chrono::steady_clock::now();
        Session clean_session(clean_chip, clean_config);
        const RecoveryReport clean = clean_session.run();
        const double clean_seconds = seconds(start);

        SimulatedChip chip(benchChipConfig(k, seed + k));
        FaultInjectionConfig chaos;
        chaos.transientFlipRate = flip_rate;
        chaos.burst = {2048, 64, burst_rate};
        chaos.seed = seed ^ k;
        FaultInjectionProxy proxy(chip, chaos);

        SessionConfig config;
        config.measure = benchMeasure(chip);
        config.measure.quorum.votes =
            (std::size_t)cli.getInt("votes");
        config.measure.quorum.escalatedVotes =
            (std::size_t)cli.getInt("escalated-votes");
        config.repair.enabled = true;
        config.repair.maxAttempts = 4;
        config.repair.remeasureVotes =
            config.measure.quorum.escalatedVotes;
        config.wordsUnderTest = dram::trueCellWords(chip);
        start = std::chrono::steady_clock::now();
        Session session(proxy, config);
        const RecoveryReport noisy = session.run();
        const double noisy_seconds = seconds(start);

        const bool equivalent =
            clean.succeeded() && noisy.succeeded() &&
            ecc::equivalent(clean.recoveredCode(),
                            noisy.recoveredCode()) &&
            ecc::equivalent(noisy.recoveredCode(),
                            chip.groundTruthCode());
        if (!equivalent)
            diverged = true;

        table.addRowOf(k, "clean", clean.succeeded() ? "yes" : "NO",
                       "-", clean.stats.patternMeasurements, 0, 0, 0,
                       0, util::Table::sci(clean_seconds));
        table.addRowOf(k, "chaos", noisy.succeeded() ? "yes" : "NO",
                       equivalent ? "yes" : "NO",
                       noisy.stats.patternMeasurements,
                       noisy.stats.quorumDisagreements,
                       noisy.stats.repairAttempts,
                       noisy.stats.roundsRetracted,
                       proxy.injectedFlips(),
                       util::Table::sci(noisy_seconds));

        json_rows << (i ? "," : "") << "\n    {\"k\": " << k
                  << ", \"clean_recovered\": "
                  << (clean.succeeded() ? "true" : "false")
                  << ", \"chaos_recovered\": "
                  << (noisy.succeeded() ? "true" : "false")
                  << ", \"equivalent\": "
                  << (equivalent ? "true" : "false")
                  << ", \"clean_measurements\": "
                  << clean.stats.patternMeasurements
                  << ", \"chaos_measurements\": "
                  << noisy.stats.patternMeasurements
                  << ", \"quorum_disagreements\": "
                  << noisy.stats.quorumDisagreements
                  << ", \"repair_attempts\": "
                  << noisy.stats.repairAttempts
                  << ", \"rounds_retracted\": "
                  << noisy.stats.roundsRetracted
                  << ", \"patterns_remeasured\": "
                  << noisy.stats.patternsRemeasured
                  << ", \"injected_flips\": " << proxy.injectedFlips()
                  << ", \"clean_seconds\": " << clean_seconds
                  << ", \"chaos_seconds\": " << noisy_seconds << "}";
    }

    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    const std::string json_path = cli.getString("json");
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            util::fatal("cannot open JSON file '%s'",
                        json_path.c_str());
        out << "{\n  \"bench\": \"chaos_recovery\",\n  \"seed\": "
            << seed << ",\n  \"flip_rate\": " << flip_rate
            << ",\n  \"burst_rate\": " << burst_rate
            << ",\n  \"diverged\": " << (diverged ? "true" : "false")
            << ",\n  \"results\": [" << json_rows.str()
            << "\n  ]\n}\n";
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }

    if (diverged) {
        std::fprintf(stderr,
                     "FAIL: chaos recovery diverged from the clean "
                     "baseline\n");
        return 1;
    }
    return 0;
}
