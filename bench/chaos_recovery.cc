/**
 * @file
 * Chaos recovery bench: cost and fidelity of noise-hardened recovery.
 *
 * For each dataword length, recovers the same simulated chip's ECC
 * function twice — once clean, once behind a FaultInjectionProxy
 * configured with transient + burst read noise while the session runs
 * with quorum reads and UNSAT-core repair enabled — and reports what
 * the hardening cost (extra reads, repair rounds, wall clock) and
 * whether the recovered functions stayed equivalent. Any divergence
 * exits nonzero: this is the CI gate for the chaos differential.
 * --json emits the per-k results machine-readably for BENCH_*.json
 * tracking across PRs.
 *
 * --quorum-policy selects the vote policy for the chaos arm: `fixed`
 * (every experiment reads `votes` times), `adaptive` (the EWMA
 * disagreement estimator decides when to escalate), or `both` (the
 * default — each chip is recovered under BOTH policies against the
 * identical injected-fault schedule). With both arms, the bench also
 * gates vote spend: if the adaptive policy spends MORE quorum reads
 * than the fixed one while both recover the ground-truth function,
 * the exit code is nonzero — adaptivity must never cost accuracy OR
 * efficiency at these noise rates.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "beer/session.hh"
#include "dram/chip.hh"
#include "dram/fault_proxy.hh"
#include "ecc/code_equiv.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace beer;
using beer::dram::ChipConfig;
using beer::dram::FaultInjectionConfig;
using beer::dram::FaultInjectionProxy;
using beer::dram::SimulatedChip;

namespace
{

ChipConfig
benchChipConfig(std::size_t k, std::uint64_t seed)
{
    ChipConfig config = dram::makeVendorConfig('A', k, seed);
    config.map.rows = 64;
    config.iidErrors = true;
    return config;
}

MeasureConfig
benchMeasure(const SimulatedChip &chip)
{
    MeasureConfig measure;
    measure.pausesSeconds.clear();
    for (double ber : {0.05, 0.15, 0.3})
        measure.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    measure.repeatsPerPause = 25;
    measure.thresholdProbability = 1e-4;
    return measure;
}

double
seconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    util::Cli cli("Chaos differential: clean vs noise-hardened "
                  "recovery under injected read faults");
    cli.addOption("k-list", "8,16,32",
                  "dataword lengths (comma-separated)");
    cli.addOption("seed", "4242", "chip/noise RNG seed");
    cli.addOption("flip-rate", "1e-4",
                  "transient per-bit read flip probability");
    cli.addOption("burst-rate", "5e-4",
                  "burst flip probability (first 64 of every 2048 "
                  "reads)");
    cli.addOption("votes", "3", "base quorum votes per experiment");
    cli.addOption("escalated-votes", "7",
                  "votes after a quorum disagreement");
    cli.addOption("quorum-policy", "both",
                  "chaos-arm vote policy: fixed, adaptive, or both "
                  "(both also gates adaptive vote spend <= fixed)");
    cli.addOption("json", "", "write machine-readable results here");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
    cli.parse(argc, argv);

    std::vector<std::size_t> k_list;
    {
        const std::string text = cli.getString("k-list");
        std::size_t pos = 0;
        while (pos < text.size()) {
            std::size_t next = text.find(',', pos);
            if (next == std::string::npos)
                next = text.size();
            k_list.push_back((std::size_t)std::stoul(
                text.substr(pos, next - pos)));
            pos = next + 1;
        }
    }
    const std::uint64_t seed = (std::uint64_t)cli.getInt("seed");
    const double flip_rate = cli.getDouble("flip-rate");
    const double burst_rate = cli.getDouble("burst-rate");
    const std::string policy = cli.getString("quorum-policy");
    if (policy != "fixed" && policy != "adaptive" && policy != "both")
        util::fatal("--quorum-policy must be fixed, adaptive or both");
    const bool run_fixed = policy != "adaptive";
    const bool run_adaptive = policy != "fixed";

    util::Table table({"k", "mode", "recovered", "equivalent",
                       "measurements", "disagreements", "repairs",
                       "retracted", "votes spent", "flips injected",
                       "time (s)"});
    std::ostringstream json_rows;
    bool diverged = false;
    bool overspent = false;

    struct ChaosArm
    {
        RecoveryReport report;
        double seconds = 0.0;
        std::uint64_t flips = 0;
        bool equivalent = false;
    };

    for (std::size_t i = 0; i < k_list.size(); ++i) {
        const std::size_t k = k_list[i];

        SimulatedChip clean_chip(benchChipConfig(k, seed + k));
        SessionConfig clean_config;
        clean_config.measure = benchMeasure(clean_chip);
        clean_config.wordsUnderTest = dram::trueCellWords(clean_chip);
        auto start = std::chrono::steady_clock::now();
        Session clean_session(clean_chip, clean_config);
        const RecoveryReport clean = clean_session.run();
        const double clean_seconds = seconds(start);

        // Each arm gets a fresh chip + proxy with the SAME seeds, so
        // both policies fight the identical fault schedule: the vote
        // spend comparison is apples-to-apples.
        const auto run_chaos = [&](bool adaptive) {
            SimulatedChip chip(benchChipConfig(k, seed + k));
            FaultInjectionConfig chaos;
            chaos.transientFlipRate = flip_rate;
            chaos.burst = {2048, 64, burst_rate};
            chaos.seed = seed ^ k;
            FaultInjectionProxy proxy(chip, chaos);

            SessionConfig config;
            config.measure = benchMeasure(chip);
            config.measure.quorum.votes =
                (std::size_t)cli.getInt("votes");
            config.measure.quorum.escalatedVotes =
                (std::size_t)cli.getInt("escalated-votes");
            config.measure.quorum.adaptive = adaptive;
            config.repair.enabled = true;
            config.repair.maxAttempts = 4;
            config.repair.remeasureVotes =
                config.measure.quorum.escalatedVotes;
            config.wordsUnderTest = dram::trueCellWords(chip);
            const auto arm_start = std::chrono::steady_clock::now();
            Session session(proxy, config);
            ChaosArm arm;
            arm.report = session.run();
            arm.seconds = seconds(arm_start);
            arm.flips = proxy.injectedFlips();
            arm.equivalent =
                clean.succeeded() && arm.report.succeeded() &&
                ecc::equivalent(clean.recoveredCode(),
                                arm.report.recoveredCode()) &&
                ecc::equivalent(arm.report.recoveredCode(),
                                chip.groundTruthCode());
            if (!arm.equivalent)
                diverged = true;
            return arm;
        };

        table.addRowOf(k, "clean", clean.succeeded() ? "yes" : "NO",
                       "-", clean.stats.patternMeasurements, 0, 0, 0,
                       clean.stats.quorumVotesSpent, 0,
                       util::Table::sci(clean_seconds));

        ChaosArm fixed;
        ChaosArm adaptive;
        if (run_fixed) {
            fixed = run_chaos(/*adaptive=*/false);
            table.addRowOf(k, "chaos-fixed",
                           fixed.report.succeeded() ? "yes" : "NO",
                           fixed.equivalent ? "yes" : "NO",
                           fixed.report.stats.patternMeasurements,
                           fixed.report.stats.quorumDisagreements,
                           fixed.report.stats.repairAttempts,
                           fixed.report.stats.roundsRetracted,
                           fixed.report.stats.quorumVotesSpent,
                           fixed.flips,
                           util::Table::sci(fixed.seconds));
        }
        if (run_adaptive) {
            adaptive = run_chaos(/*adaptive=*/true);
            table.addRowOf(k, "chaos-adaptive",
                           adaptive.report.succeeded() ? "yes" : "NO",
                           adaptive.equivalent ? "yes" : "NO",
                           adaptive.report.stats.patternMeasurements,
                           adaptive.report.stats.quorumDisagreements,
                           adaptive.report.stats.repairAttempts,
                           adaptive.report.stats.roundsRetracted,
                           adaptive.report.stats.quorumVotesSpent,
                           adaptive.flips,
                           util::Table::sci(adaptive.seconds));
        }
        // The adaptive-quorum contract at these noise rates: equal
        // accuracy, never more reads. Only gate when both recovered
        // the truth — an inequivalent arm already failed harder.
        if (run_fixed && run_adaptive && fixed.equivalent &&
            adaptive.equivalent &&
            adaptive.report.stats.quorumVotesSpent >
                fixed.report.stats.quorumVotesSpent)
            overspent = true;

        // chaos_* keeps its historical meaning (the fixed-policy arm)
        // for BENCH continuity; adaptive_* fields sit alongside.
        const ChaosArm &primary = run_fixed ? fixed : adaptive;
        json_rows << (i ? "," : "") << "\n    {\"k\": " << k
                  << ", \"clean_recovered\": "
                  << (clean.succeeded() ? "true" : "false")
                  << ", \"chaos_recovered\": "
                  << (primary.report.succeeded() ? "true" : "false")
                  << ", \"equivalent\": "
                  << (primary.equivalent ? "true" : "false")
                  << ", \"clean_measurements\": "
                  << clean.stats.patternMeasurements
                  << ", \"chaos_measurements\": "
                  << primary.report.stats.patternMeasurements
                  << ", \"quorum_disagreements\": "
                  << primary.report.stats.quorumDisagreements
                  << ", \"repair_attempts\": "
                  << primary.report.stats.repairAttempts
                  << ", \"rounds_retracted\": "
                  << primary.report.stats.roundsRetracted
                  << ", \"patterns_remeasured\": "
                  << primary.report.stats.patternsRemeasured
                  << ", \"injected_flips\": " << primary.flips
                  << ", \"clean_seconds\": " << clean_seconds
                  << ", \"chaos_seconds\": " << primary.seconds;
        if (run_fixed)
            json_rows << ", \"fixed_votes_spent\": "
                      << fixed.report.stats.quorumVotesSpent
                      << ", \"fixed_equivalent\": "
                      << (fixed.equivalent ? "true" : "false");
        if (run_adaptive)
            json_rows << ", \"adaptive_votes_spent\": "
                      << adaptive.report.stats.quorumVotesSpent
                      << ", \"adaptive_equivalent\": "
                      << (adaptive.equivalent ? "true" : "false")
                      << ", \"adaptive_escalations\": "
                      << adaptive.report.stats.quorumEscalations;
        json_rows << "}";
    }

    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    const std::string json_path = cli.getString("json");
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            util::fatal("cannot open JSON file '%s'",
                        json_path.c_str());
        out << "{\n  \"bench\": \"chaos_recovery\",\n  \"seed\": "
            << seed << ",\n  \"flip_rate\": " << flip_rate
            << ",\n  \"burst_rate\": " << burst_rate
            << ",\n  \"quorum_policy\": \"" << policy << "\""
            << ",\n  \"diverged\": " << (diverged ? "true" : "false")
            << ",\n  \"adaptive_overspent\": "
            << (overspent ? "true" : "false")
            << ",\n  \"results\": [" << json_rows.str()
            << "\n  ]\n}\n";
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }

    if (diverged) {
        std::fprintf(stderr,
                     "FAIL: chaos recovery diverged from the clean "
                     "baseline\n");
        return 1;
    }
    if (overspent) {
        std::fprintf(stderr,
                     "FAIL: adaptive quorum spent more votes than the "
                     "fixed policy at equal accuracy\n");
        return 1;
    }
    return 0;
}
