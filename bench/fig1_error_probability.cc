/**
 * @file
 * Reproduces paper Figure 1: relative per-bit post-correction error
 * probability for three different ECC functions of the same type
 * (SEC Hamming, 32 data bits + 6 parity bits), with uniform-random
 * pre-correction errors at RBER 1e-4 and a 0xFF data pattern.
 *
 * The paper simulates 1e9 ECC words per function with EINSim and
 * reports medians with bootstrapped 95% confidence intervals; the
 * skip-sampling word simulator makes the same word count cheap here.
 * The shape to reproduce: the pre-correction distribution is flat,
 * while each ECC function concentrates post-correction errors in its
 * own function-specific bit positions.
 */

#include <cstdio>
#include <iostream>
#include <optional>
#include <vector>

#include "ecc/hamming.hh"
#include "sim/word_sim.hh"
#include "util/cli.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace beer;
using ecc::LinearCode;
using gf2::BitVec;

int
main(int argc, char **argv)
{
    util::Cli cli("Paper Figure 1: relative post-correction error "
                  "probability per data bit for 3 ECC functions");
    cli.addOption("k", "32", "dataword length in bits");
    cli.addOption("rber", "1e-4", "pre-correction raw bit error rate");
    cli.addOption("words", "1000000000",
                  "ECC words simulated per function");
    cli.addOption("chunks", "50",
                  "independent chunks for bootstrap CIs");
    cli.addOption("functions", "3", "number of ECC functions");
    cli.addOption("seed", "1", "RNG seed");
    cli.addOption("threads", "1",
                  "simulation threads (0 = all hardware threads); "
                  "results are identical for every value");
    cli.addFlag("scalar", "use the scalar reference engine");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
    cli.parse(argc, argv);

    const auto k = (std::size_t)cli.getInt("k");
    const double rber = cli.getDouble("rber");
    const auto words = (std::uint64_t)cli.getInt("words");
    const auto chunks = (std::size_t)cli.getInt("chunks");
    const auto functions = (std::size_t)cli.getInt("functions");
    util::Rng rng(cli.getInt("seed"));

    sim::SimConfig sim_config;
    sim_config.threads = (std::size_t)cli.getInt("threads");
    sim_config.bitsliced = !cli.getBool("scalar");
    std::optional<util::ThreadPool> pool;
    if (sim_config.threads != 1) {
        pool.emplace(sim_config.threads);
        sim_config.pool = &*pool;
    }

    // 0xFF data pattern.
    const BitVec dataword = BitVec::ones(k);

    std::vector<LinearCode> codes;
    for (std::size_t f = 0; f < functions; ++f)
        codes.push_back(ecc::randomSecCode(k, rng));

    std::printf("Figure 1: k=%zu, RBER=%g, %llu words/function, "
                "0xFF pattern\n",
                k, rber, (unsigned long long)words);

    // Pre-correction distribution (flat by construction): measured
    // from function 0's raw error counters.
    std::vector<std::vector<double>> post_rel(functions);
    std::vector<std::vector<double>> post_lo(functions);
    std::vector<std::vector<double>> post_hi(functions);
    std::vector<double> pre_rel;

    for (std::size_t f = 0; f < functions; ++f) {
        // Run in chunks so bootstrap CIs can be computed per bit.
        std::vector<std::vector<double>> chunk_rel(
            k, std::vector<double>());
        sim::WordSimStats total;
        for (std::size_t c = 0; c < chunks; ++c) {
            const auto stats = sim::simulateUniformErrors(
                codes[f], dataword, rber, words / chunks, rng,
                sim_config);
            std::uint64_t chunk_total = 0;
            for (std::size_t bit = 0; bit < k; ++bit)
                chunk_total += stats.postCorrectionErrors[bit];
            for (std::size_t bit = 0; bit < k; ++bit)
                chunk_rel[bit].push_back(
                    chunk_total
                        ? (double)stats.postCorrectionErrors[bit] /
                              (double)chunk_total
                        : 0.0);
            total.merge(stats);
        }

        post_rel[f].resize(k);
        post_lo[f].resize(k);
        post_hi[f].resize(k);
        for (std::size_t bit = 0; bit < k; ++bit) {
            const auto ci =
                util::bootstrapMedianCi(chunk_rel[bit], rng, 200);
            post_rel[f][bit] = ci.median;
            post_lo[f][bit] = ci.lo;
            post_hi[f][bit] = ci.hi;
        }

        if (f == 0) {
            std::uint64_t raw_total = 0;
            for (std::size_t bit = 0; bit < k; ++bit)
                raw_total += total.preCorrectionErrors[bit];
            pre_rel.resize(k);
            for (std::size_t bit = 0; bit < k; ++bit)
                pre_rel[bit] = raw_total
                                   ? (double)total.preCorrectionErrors
                                             [bit] /
                                         (double)raw_total
                                   : 0.0;
        }
    }

    std::vector<std::string> headers = {"bit", "pre-correction"};
    for (std::size_t f = 0; f < functions; ++f) {
        headers.push_back("post (ECC fn " + std::to_string(f) + ")");
        headers.push_back("fn " + std::to_string(f) + " 95% CI");
    }
    util::Table table(headers);
    for (std::size_t bit = 0; bit < k; ++bit) {
        std::vector<std::string> row;
        row.push_back(std::to_string(bit));
        row.push_back(util::Table::fixed(pre_rel[bit], 4));
        for (std::size_t f = 0; f < functions; ++f) {
            row.push_back(util::Table::fixed(post_rel[f][bit], 4));
            row.push_back("[" + util::Table::fixed(post_lo[f][bit], 4) +
                          ", " + util::Table::fixed(post_hi[f][bit], 4) +
                          "]");
        }
        table.addRow(row);
    }
    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    // Summary: the paper's claim is that post-correction distributions
    // are ECC-function-specific while pre-correction is flat.
    for (std::size_t f = 0; f < functions; ++f) {
        double max_rel = 0.0;
        double nonzero = 0;
        for (std::size_t bit = 0; bit < k; ++bit) {
            max_rel = std::max(max_rel, post_rel[f][bit]);
            nonzero += post_rel[f][bit] > 0.0;
        }
        std::printf("ECC fn %zu: peak relative probability %.4f "
                    "(flat would be %.4f), %g/%zu bits nonzero\n",
                    f, max_rel, 1.0 / (double)k, nonzero, k);
    }
    return 0;
}
