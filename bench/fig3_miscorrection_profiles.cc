/**
 * @file
 * Reproduces paper Figure 3: per-(pattern, bit) error maps measured
 * with the 1-CHARGED test patterns on one simulated chip from each of
 * the three anonymized manufacturers. The claims to reproduce:
 *
 *  - different manufacturers use different ECC functions, so their
 *    miscorrection maps differ;
 *  - manufacturer B (structured/canonical parity-check matrix) shows
 *    repeating patterns, while A (random matrix) looks unstructured;
 *  - chips of the same model yield identical maps.
 *
 * Output: one ASCII map per vendor (rows = 1-CHARGED pattern ID,
 * columns = data-bit index; '#' = frequently-observed error, '?' =
 * the charged bit itself, '.' = no errors observed).
 */

#include <cstdio>
#include <iostream>

#include "beer/measure.hh"
#include "dram/chip.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace beer;
using dram::Chip;
using dram::ChipConfig;

namespace
{

void
printMap(const ProfileCounts &counts, double threshold_probability)
{
    const std::size_t k = counts.k;
    std::printf("    ");
    for (std::size_t bit = 0; bit < k; ++bit)
        std::printf("%c", bit % 8 == 0 ? '|' : ' ');
    std::printf("\n");
    for (std::size_t p = 0; p < counts.patterns.size(); ++p) {
        std::printf("%3zu ", p);
        for (std::size_t bit = 0; bit < k; ++bit) {
            char c = '.';
            if (patternContains(counts.patterns[p], bit))
                c = '?';
            else if (counts.probability(p, bit) > threshold_probability)
                c = '#';
            std::printf("%c", c);
        }
        std::printf("\n");
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    util::Cli cli("Paper Figure 3: 1-CHARGED miscorrection maps for "
                  "one simulated chip per manufacturer");
    cli.addOption("k", "32", "dataword length in bits");
    cli.addOption("rows", "64", "chip rows");
    cli.addOption("repeats", "15", "measurement repeats per pause");
    cli.addOption("seed", "1", "RNG seed");
    cli.addOption("threshold", "1e-4", "display threshold probability");
    cli.addOption("threads", "1",
                  "chip retention-injection threads (0 = all hardware "
                  "threads); error patterns are identical for every "
                  "value");
    cli.addFlag("csv", "emit raw counts as CSV");
    cli.parse(argc, argv);

    const auto k = (std::size_t)cli.getInt("k");
    const double threshold = cli.getDouble("threshold");

    for (char vendor : {'A', 'B', 'C'}) {
        ChipConfig config = dram::makeVendorConfig(
            vendor, k, (std::uint64_t)cli.getInt("seed"));
        config.map.rows = (std::size_t)cli.getInt("rows");
        config.iidErrors = true;
        config.threads = (std::size_t)cli.getInt("threads");
        Chip chip(config);

        MeasureConfig mc;
        for (double ber : {0.05, 0.1, 0.2, 0.3})
            mc.pausesSeconds.push_back(
                chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
        mc.repeatsPerPause = (std::size_t)cli.getInt("repeats");

        const auto patterns = chargedPatterns(k, 1);
        const auto counts = measureProfileOnChip(chip, patterns, mc);

        std::printf("\n=== Manufacturer %c (true-cell regions, "
                    "1-CHARGED patterns x data-bit index) ===\n",
                    vendor);
        if (cli.getBool("csv")) {
            util::Table table({"pattern", "bit", "errors", "words"});
            for (std::size_t p = 0; p < patterns.size(); ++p)
                for (std::size_t bit = 0; bit < k; ++bit)
                    table.addRowOf(p, bit, counts.errorCounts[p][bit],
                                   counts.wordsTested[p]);
            table.printCsv(std::cout);
        } else {
            printMap(counts, threshold);
        }

        // Summary statistics per vendor.
        std::size_t miscorrectable_bits = 0;
        for (std::size_t p = 0; p < patterns.size(); ++p)
            for (std::size_t bit = 0; bit < k; ++bit)
                if (!patternContains(patterns[p], bit) &&
                    counts.probability(p, bit) > threshold)
                    ++miscorrectable_bits;
        std::printf("miscorrection-susceptible (pattern, bit) pairs: "
                    "%zu of %zu\n",
                    miscorrectable_bits, patterns.size() * (k - 1));
    }
    return 0;
}
