/**
 * @file
 * Reproduces paper Figure 4: the per-bit distribution of observed
 * miscorrection probability, aggregated across all 1-CHARGED patterns
 * and a refresh-window sweep, for a representative manufacturer-B
 * chip — including transient-noise pollution. The claim: zero and
 * nonzero probabilities separate cleanly, so a simple threshold filter
 * robustly identifies true miscorrections (Section 5.2).
 */

#include <cstdio>
#include <iostream>
#include <algorithm>
#include <vector>

#include "beer/measure.hh"
#include "beer/profile.hh"
#include "dram/chip.hh"
#include "util/cli.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace beer;
using dram::Chip;
using dram::ChipConfig;

int
main(int argc, char **argv)
{
    util::Cli cli("Paper Figure 4: per-bit miscorrection probability "
                  "distributions and the threshold filter");
    cli.addOption("k", "32", "dataword length in bits");
    cli.addOption("rows", "64", "chip rows");
    cli.addOption("repeats", "10", "measurement repeats per pause");
    cli.addOption("noise", "1e-4",
                  "transient per-cell per-read flip probability");
    cli.addOption("threshold", "1e-3", "filter threshold");
    cli.addOption("seed", "2", "RNG seed");
    cli.addOption("threads", "1",
                  "chip retention-injection threads (0 = all hardware "
                  "threads); error patterns are identical for every "
                  "value");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
    cli.parse(argc, argv);

    const auto k = (std::size_t)cli.getInt("k");
    const double threshold = cli.getDouble("threshold");

    ChipConfig config =
        dram::makeVendorConfig('B', k, (std::uint64_t)cli.getInt("seed"));
    config.map.rows = (std::size_t)cli.getInt("rows");
    config.iidErrors = true;
    config.transientErrorRate = cli.getDouble("noise");
    config.threads = (std::size_t)cli.getInt("threads");
    Chip chip(config);

    const auto patterns = chargedPatterns(k, 1);

    // Sweep the refresh window as in the paper (BER from ~rare to
    // ~every word uncorrectable) and collect one probability sample
    // per (pause, bit), aggregated over patterns.
    std::vector<double> bers = {0.02, 0.05, 0.1, 0.15, 0.2, 0.3};
    std::vector<std::vector<double>> samples(k);

    for (double ber : bers) {
        MeasureConfig mc;
        mc.pausesSeconds = {
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0)};
        mc.repeatsPerPause = (std::size_t)cli.getInt("repeats");
        const auto counts = measureProfileOnChip(chip, patterns, mc);

        for (std::size_t bit = 0; bit < k; ++bit) {
            // Aggregate across patterns: the peak observed probability
            // over patterns where this bit was DISCHARGED. (A bit that
            // is miscorrectable under only a few patterns would be
            // diluted by averaging; the threshold filter operates on
            // per-pattern probabilities, so the peak is the operative
            // signal.)
            double peak = 0.0;
            for (std::size_t p = 0; p < patterns.size(); ++p) {
                if (patternContains(patterns[p], bit))
                    continue;
                peak = std::max(peak, counts.probability(p, bit));
            }
            samples[bit].push_back(peak);
        }
    }

    // Ground truth for classification quality.
    const auto truth =
        exhaustiveProfile(chip.groundTruthCode(), patterns);
    std::vector<bool> truly_miscorrectable(k, false);
    for (const auto &entry : truth.patterns)
        for (std::size_t bit = 0; bit < k; ++bit)
            if (entry.miscorrectable.get(bit))
                truly_miscorrectable[bit] = true;

    util::Table table({"bit", "min", "q1", "median", "q3", "max",
                       "above-threshold", "ground-truth"});
    std::size_t correct = 0;
    for (std::size_t bit = 0; bit < k; ++bit) {
        const auto box = util::boxStats(samples[bit]);
        const bool above = box.median > threshold;
        correct += above == truly_miscorrectable[bit];
        table.addRowOf(bit, util::Table::sci(box.min),
                       util::Table::sci(box.q1),
                       util::Table::sci(box.median),
                       util::Table::sci(box.q3),
                       util::Table::sci(box.max),
                       above ? "yes" : "no",
                       truly_miscorrectable[bit] ? "miscorrectable"
                                                 : "never");
    }

    std::printf("Figure 4: manufacturer B, k=%zu, transient noise %g, "
                "threshold %g\n",
                k, cli.getDouble("noise"), threshold);
    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::printf("\nthreshold classification: %zu/%zu bits match the "
                "ground truth\n",
                correct, k);
    return 0;
}
