/**
 * @file
 * Reproduces paper Figure 5: the number of candidate ECC functions
 * that match miscorrection profiles generated with different test
 * pattern classes (1-, 2-, 3-, and {1,2}-CHARGED), swept over the
 * dataword length.
 *
 * Shape to reproduce (Section 6.1):
 *  - {1,2}-CHARGED always identifies a unique function;
 *  - 1-CHARGED alone is unique for full-length codes
 *    (k = 4, 11, 26, 57, 120, ...) and for most, but not all,
 *    shortened codes;
 *  - individual 2-/3-CHARGED classes can also be ambiguous.
 *
 * Profiles are exhaustive (infinite-sample), matching what the paper's
 * Monte-Carlo profiles converge to; tests/test_measure.cc verifies the
 * convergence.
 */

#include <cstdio>
#include <iostream>
#include <sstream>
#include <vector>

#include "beer/profile.hh"
#include "beer/solver.hh"
#include "ecc/code_equiv.hh"
#include "ecc/hamming.hh"
#include "util/cli.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace beer;
using ecc::LinearCode;

namespace
{

struct ConfigSpec
{
    std::string name;
    std::vector<std::size_t> chargedCounts;
    std::size_t maxK; // constraint sets grow fast; cap per class
};

std::vector<std::size_t>
parseList(const std::string &text)
{
    std::vector<std::size_t> out;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back((std::size_t)std::stoul(item));
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    util::Cli cli("Paper Figure 5: number of ECC functions matching "
                  "profiles from different test-pattern classes");
    cli.addOption("k-list", "4,5,6,7,8,10,11,12,14,16,20,26",
                  "dataword lengths to sweep (comma-separated)");
    cli.addOption("codes-per-k", "5", "random ECC functions per length");
    cli.addOption("max-k-2charged", "26",
                  "largest k for 2-CHARGED-based configs");
    cli.addOption("max-k-3charged", "12",
                  "largest k for the 3-CHARGED config");
    cli.addOption("seed", "3", "RNG seed");
    cli.addFlag("no-symmetry-breaking",
                "ablation: disable row-order symmetry breaking");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
    cli.parse(argc, argv);

    const auto k_list = parseList(cli.getString("k-list"));
    const auto codes_per_k = (std::size_t)cli.getInt("codes-per-k");
    const auto max_k2 = (std::size_t)cli.getInt("max-k-2charged");
    const auto max_k3 = (std::size_t)cli.getInt("max-k-3charged");
    util::Rng rng(cli.getInt("seed"));

    BeerSolverConfig solver_config;
    solver_config.symmetryBreaking =
        !cli.getBool("no-symmetry-breaking");

    const std::vector<ConfigSpec> specs = {
        {"1-CHARGED", {1}, SIZE_MAX},
        {"2-CHARGED", {2}, max_k2},
        {"3-CHARGED", {3}, max_k3},
        {"{1,2}-CHARGED", {1, 2}, max_k2},
    };

    util::Table table({"k", "full-length?", "pattern set", "min", "median",
                       "max", "always-contains-truth"});

    for (std::size_t k : k_list) {
        std::vector<LinearCode> codes;
        for (std::size_t i = 0; i < codes_per_k; ++i)
            codes.push_back(ecc::randomSecCode(k, rng));

        for (const auto &spec : specs) {
            if (k > spec.maxK)
                continue;
            std::vector<double> counts;
            bool truth_always_found = true;
            for (const auto &code : codes) {
                const auto patterns =
                    chargedPatternUnion(k, spec.chargedCounts);
                const auto profile = exhaustiveProfile(code, patterns);
                const auto result = solveForEccFunction(
                    profile, code.numParityBits(), solver_config);
                counts.push_back((double)result.solutions.size());
                bool found = false;
                for (const auto &solution : result.solutions)
                    if (ecc::equivalent(solution, code))
                        found = true;
                truth_always_found &= found;
            }
            table.addRowOf(
                k, ecc::isFullLengthDatawordLength(k) ? "yes" : "no",
                spec.name, util::quantile(counts, 0.0),
                util::median(counts), util::quantile(counts, 1.0),
                truth_always_found ? "yes" : "NO");
        }
    }

    std::printf("Figure 5: candidate ECC function counts "
                "(%zu random codes per k%s)\n",
                codes_per_k,
                solver_config.symmetryBreaking
                    ? ""
                    : ", symmetry breaking DISABLED");
    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
