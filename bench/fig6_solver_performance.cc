/**
 * @file
 * Reproduces paper Figure 6: BEER solver runtime and memory versus
 * dataword length, split into "determine function(s)" (time to the
 * first solution) and "check uniqueness" (time to exhaust the search
 * space).
 *
 * Absolute numbers are not comparable to the paper's (different
 * solver, encoding, and host; our structured support-inclusion CNF is
 * far smaller than the paper's generic Z3 formulation). The shape to
 * reproduce: cost grows with k and jumps whenever k crosses a
 * parity-bit boundary, and uniqueness checking dominates total time.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "beer/profile.hh"
#include "beer/solver.hh"
#include "ecc/hamming.hh"
#include "util/cli.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace beer;
using ecc::LinearCode;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::vector<std::size_t>
parseList(const std::string &text)
{
    std::vector<std::size_t> out;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t next = text.find(',', pos);
        if (next == std::string::npos)
            next = text.size();
        out.push_back((std::size_t)std::stoul(
            text.substr(pos, next - pos)));
        pos = next + 1;
    }
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    util::Cli cli("Paper Figure 6: BEER solve runtime and memory vs "
                  "dataword length");
    cli.addOption("k-list", "4,8,11,16,22,26,32,40,48,57,64,96,120,128,247",
                  "dataword lengths (comma-separated)");
    cli.addOption("codes-per-k", "3", "random ECC functions per length");
    cli.addOption("seed", "4", "RNG seed");
    cli.addOption("json", "",
                  "emit machine-readable results to this path");
    cli.addFlag("no-symmetry-breaking",
                "ablation: disable row-order symmetry breaking");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
    cli.parse(argc, argv);

    const auto k_list = parseList(cli.getString("k-list"));
    const auto codes_per_k = (std::size_t)cli.getInt("codes-per-k");
    util::Rng rng(cli.getInt("seed"));

    BeerSolverConfig first_only;
    first_only.maxSolutions = 1;
    first_only.symmetryBreaking = !cli.getBool("no-symmetry-breaking");
    BeerSolverConfig full;
    full.symmetryBreaking = first_only.symmetryBreaking;

    util::Table table({"k", "parity bits", "determine fn (s, median)",
                       "check unique (s, median)", "total (s, median)",
                       "total (s, max)", "memory (MiB, median)",
                       "conflicts (median)"});

    std::ostringstream json_rows;
    bool first_row = true;

    for (std::size_t k : k_list) {
        std::vector<double> determine_s;
        std::vector<double> unique_s;
        std::vector<double> total_s;
        std::vector<double> memory_mib;
        std::vector<double> conflicts;

        for (std::size_t i = 0; i < codes_per_k; ++i) {
            const LinearCode code = ecc::randomSecCode(k, rng);
            const auto patterns = chargedPatterns(k, 1);
            const auto profile = exhaustiveProfile(code, patterns);

            // Determine-function phase: first solution only.
            auto start = std::chrono::steady_clock::now();
            const auto first = solveForEccFunction(
                profile, code.numParityBits(), first_only);
            const double t_first = secondsSince(start);

            // Uniqueness check: exhaust the space.
            start = std::chrono::steady_clock::now();
            const auto all = solveForEccFunction(
                profile, code.numParityBits(), full);
            const double t_all = secondsSince(start);

            determine_s.push_back(t_first);
            // The paper reports "check uniqueness" as the exhaustive
            // phase that follows finding the function.
            unique_s.push_back(t_all > t_first ? t_all - t_first : 0.0);
            total_s.push_back(t_first + (t_all > t_first
                                             ? t_all - t_first
                                             : 0.0));
            memory_mib.push_back((double)all.memoryBytes /
                                 (1024.0 * 1024.0));
            conflicts.push_back((double)all.stats.conflicts);
            (void)first;
        }

        table.addRowOf(k, ecc::parityBitsForDataBits(k),
                       util::Table::sci(util::median(determine_s)),
                       util::Table::sci(util::median(unique_s)),
                       util::Table::sci(util::median(total_s)),
                       util::Table::sci(util::quantile(total_s, 1.0)),
                       util::Table::fixed(util::median(memory_mib), 2),
                       util::Table::fixed(util::median(conflicts), 0));

        json_rows << (first_row ? "" : ",") << "\n    {\"k\": " << k
                  << ", \"parity_bits\": "
                  << ecc::parityBitsForDataBits(k)
                  << ", \"determine_s_median\": "
                  << util::median(determine_s)
                  << ", \"unique_s_median\": " << util::median(unique_s)
                  << ", \"total_s_median\": " << util::median(total_s)
                  << ", \"total_s_max\": "
                  << util::quantile(total_s, 1.0)
                  << ", \"memory_mib_median\": "
                  << util::median(memory_mib)
                  << ", \"conflicts_median\": "
                  << util::median(conflicts) << "}";
        first_row = false;
    }

    std::printf("Figure 6: BEER solver performance "
                "(1-CHARGED profiles, %zu codes per k)\n",
                codes_per_k);
    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    const std::string json_path = cli.getString("json");
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (out) {
            out << "{\n  \"bench\": \"fig6_solver_performance\",\n"
                << "  \"codes_per_k\": " << codes_per_k << ",\n"
                << "  \"symmetry_breaking\": "
                << (first_only.symmetryBreaking ? "true" : "false")
                << ",\n  \"rows\": [" << json_rows.str()
                << "\n  ]\n}\n";
            std::fprintf(stderr, "wrote %s\n", json_path.c_str());
        } else {
            std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        }
    }
    return 0;
}
