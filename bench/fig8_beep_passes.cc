/**
 * @file
 * Reproduces paper Figure 8: BEEP success rate for 1 vs 2 passes over
 * the codeword, across codeword lengths and injected error counts
 * (per-bit failure probability 1.0).
 *
 * Shape to reproduce (Section 7.1.4): success is high everywhere,
 * improves with a second pass, and longer codewords succeed more
 * often than shorter ones at equal error counts.
 */

#include <cstdio>
#include <iostream>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "beep/eval.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace beer;
using namespace beer::beep;

namespace
{

std::vector<std::size_t>
parseList(const std::string &text)
{
    std::vector<std::size_t> out;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back((std::size_t)std::stoul(item));
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    util::Cli cli("Paper Figure 8: BEEP success rate, 1 vs 2 passes");
    cli.addOption("lengths", "31,63,127",
                  "codeword lengths (2^p - 1, comma-separated)");
    cli.addOption("errors", "2,3,4,5,10,15",
                  "errors injected per codeword (comma-separated)");
    cli.addOption("words", "10",
                  "words evaluated per configuration (paper: 100)");
    cli.addOption("reads", "4", "test cycles per crafted pattern");
    cli.addOption("seed", "5", "RNG seed");
    cli.addOption("threads", "1",
                  "evaluation threads (0 = all hardware threads); "
                  "success rates are identical for every value");
    cli.addFlag("random-patterns",
                "ablation: random instead of SAT-crafted patterns");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
    cli.parse(argc, argv);

    const auto lengths = parseList(cli.getString("lengths"));
    const auto errors = parseList(cli.getString("errors"));
    const auto words = (std::size_t)cli.getInt("words");
    util::Rng rng(cli.getInt("seed"));

    std::size_t threads = (std::size_t)cli.getInt("threads");
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    // One pool for the whole sweep rather than one per point.
    std::optional<util::ThreadPool> pool;
    EvalConfig eval;
    if (threads != 1) {
        pool.emplace(threads);
        eval.pool = &*pool;
    }

    BeepConfig base;
    base.readsPerPattern = (std::size_t)cli.getInt("reads");
    base.satCrafting = !cli.getBool("random-patterns");

    util::Table table({"codeword length", "errors injected",
                       "success rate (1 pass)", "success rate (2 passes)",
                       "identified/planted (2 passes)"});

    for (std::size_t n : lengths) {
        for (std::size_t num_errors : errors) {
            if (num_errors > n)
                continue;
            EvalPoint point;
            point.codewordLength = n;
            point.numErrors = num_errors;
            point.failProb = 1.0;

            point.passes = 1;
            const EvalResult one =
                evaluateBeep(point, words, base, rng, eval);
            point.passes = 2;
            const EvalResult two =
                evaluateBeep(point, words, base, rng, eval);

            table.addRowOf(
                n, num_errors,
                util::Table::fixed(one.successRate() * 100.0, 1) + "%",
                util::Table::fixed(two.successRate() * 100.0, 1) + "%",
                std::to_string(two.totalIdentified) + "/" +
                    std::to_string(two.totalPlanted));
        }
    }

    std::printf("Figure 8: BEEP success rate (P[error]=1.0, %zu words "
                "per point%s)\n",
                words,
                base.satCrafting ? ""
                                 : ", RANDOM patterns (ablation)");
    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
