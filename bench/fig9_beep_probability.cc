/**
 * @file
 * Reproduces paper Figure 9: BEEP single-pass success rate when the
 * injected error-prone cells fail probabilistically (per-bit error
 * probability 0.25 .. 1.0), across codeword lengths and error counts.
 *
 * Shape to reproduce: success stays near-100% for longer codewords
 * and higher probabilities; short codewords at low P[error] need more
 * test patterns (i.e., additional passes) to catch every weak cell.
 */

#include <cstdio>
#include <iostream>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "beep/eval.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace beer;
using namespace beer::beep;

namespace
{

std::vector<std::size_t>
parseSizeList(const std::string &text)
{
    std::vector<std::size_t> out;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back((std::size_t)std::stoul(item));
    return out;
}

std::vector<double>
parseDoubleList(const std::string &text)
{
    std::vector<double> out;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(std::stod(item));
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    util::Cli cli("Paper Figure 9: BEEP success rate vs per-bit error "
                  "probability (single pass)");
    cli.addOption("lengths", "31,63,127",
                  "codeword lengths (2^p - 1, comma-separated)");
    cli.addOption("errors", "2,3,5,10",
                  "errors injected per codeword (comma-separated)");
    cli.addOption("probs", "0.25,0.5,0.75,1.0",
                  "per-bit error probabilities (comma-separated)");
    cli.addOption("words", "10",
                  "words evaluated per configuration (paper: 100)");
    cli.addOption("reads", "8", "test cycles per crafted pattern");
    cli.addOption("seed", "6", "RNG seed");
    cli.addOption("threads", "1",
                  "evaluation threads (0 = all hardware threads); "
                  "success rates are identical for every value");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
    cli.parse(argc, argv);

    const auto lengths = parseSizeList(cli.getString("lengths"));
    const auto errors = parseSizeList(cli.getString("errors"));
    const auto probs = parseDoubleList(cli.getString("probs"));
    const auto words = (std::size_t)cli.getInt("words");
    util::Rng rng(cli.getInt("seed"));

    std::size_t threads = (std::size_t)cli.getInt("threads");
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    // One pool for the whole sweep rather than one per point.
    std::optional<util::ThreadPool> pool;
    EvalConfig eval;
    if (threads != 1) {
        pool.emplace(threads);
        eval.pool = &*pool;
    }

    BeepConfig base;
    base.readsPerPattern = (std::size_t)cli.getInt("reads");

    std::vector<std::string> headers = {"codeword length",
                                        "errors injected"};
    for (double p : probs)
        headers.push_back("P[error]=" + util::Table::fixed(p, 2));
    util::Table table(headers);

    for (std::size_t n : lengths) {
        for (std::size_t num_errors : errors) {
            if (num_errors > n)
                continue;
            std::vector<std::string> row = {std::to_string(n),
                                            std::to_string(num_errors)};
            for (double p : probs) {
                EvalPoint point;
                point.codewordLength = n;
                point.numErrors = num_errors;
                point.failProb = p;
                point.passes = 1;
                const EvalResult result =
                    evaluateBeep(point, words, base, rng, eval);
                row.push_back(
                    util::Table::fixed(result.successRate() * 100.0, 1) +
                    "%");
            }
            table.addRow(row);
        }
    }

    std::printf("Figure 9: BEEP single-pass success rate (%zu words "
                "per point)\n",
                words);
    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
