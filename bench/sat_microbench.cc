/**
 * @file
 * google-benchmark microbenchmarks for the SAT substrate and the BEER
 * encoding, including the DESIGN.md ablation comparing the structured
 * support-inclusion predicate against brute-force error enumeration.
 */

#include <benchmark/benchmark.h>

#include "beer/profile.hh"
#include "beer/solver.hh"
#include "ecc/hamming.hh"
#include "sat/encoder.hh"
#include "sat/solver.hh"
#include "util/rng.hh"

using namespace beer;
using beer::sat::Lit;
using beer::sat::Solver;
using beer::sat::mkLit;

namespace
{

/** Random 3-SAT below the phase transition (satisfiable regime). */
void
BM_SatRandom3Sat(benchmark::State &state)
{
    const auto num_vars = (std::size_t)state.range(0);
    const auto num_clauses = (std::size_t)(num_vars * 3.5);
    util::Rng rng(42);

    for (auto _ : state) {
        Solver solver;
        for (std::size_t v = 0; v < num_vars; ++v)
            solver.newVar();
        for (std::size_t c = 0; c < num_clauses; ++c) {
            std::vector<Lit> clause;
            for (int j = 0; j < 3; ++j)
                clause.push_back(mkLit(
                    (sat::Var)rng.below(num_vars), rng.bernoulli(0.5)));
            solver.addClause(clause);
        }
        benchmark::DoNotOptimize(solver.solve());
    }
}
BENCHMARK(BM_SatRandom3Sat)->Arg(50)->Arg(100)->Arg(200);

/** Unit propagation throughput on an implication chain. */
void
BM_SatPropagationChain(benchmark::State &state)
{
    const auto length = (std::size_t)state.range(0);
    for (auto _ : state) {
        Solver solver;
        std::vector<sat::Var> vars;
        for (std::size_t i = 0; i < length; ++i)
            vars.push_back(solver.newVar());
        for (std::size_t i = 0; i + 1 < length; ++i)
            solver.addClause(mkLit(vars[i], true), mkLit(vars[i + 1]));
        solver.addClause(mkLit(vars[0]));
        benchmark::DoNotOptimize(solver.solve());
    }
}
BENCHMARK(BM_SatPropagationChain)->Arg(1000)->Arg(10000);

/** Full BEER solve (enumeration to UNSAT) for one random code. */
void
BM_BeerSolve(benchmark::State &state)
{
    const auto k = (std::size_t)state.range(0);
    util::Rng rng(7);
    const ecc::LinearCode code = ecc::randomSecCode(k, rng);
    const auto patterns = chargedPatterns(k, 1);
    const auto profile = exhaustiveProfile(code, patterns);

    for (auto _ : state) {
        benchmark::DoNotOptimize(
            solveForEccFunction(profile, code.numParityBits()));
    }
}
BENCHMARK(BM_BeerSolve)->Arg(8)->Arg(16)->Arg(26);

/** Ablation: structured predicate vs brute-force enumeration. */
void
BM_ProfilePredicateStructured(benchmark::State &state)
{
    const auto k = (std::size_t)state.range(0);
    util::Rng rng(11);
    const ecc::LinearCode code = ecc::randomSecCode(k, rng);
    const auto patterns = chargedPatterns(k, 1);

    for (auto _ : state) {
        std::size_t possible = 0;
        for (const auto &pattern : patterns)
            for (std::size_t bit = 0; bit < k; ++bit)
                if (!patternContains(pattern, bit))
                    possible += miscorrectionPossible(code, pattern, bit);
        benchmark::DoNotOptimize(possible);
    }
}
BENCHMARK(BM_ProfilePredicateStructured)->Arg(8)->Arg(16);

void
BM_ProfilePredicateBruteForce(benchmark::State &state)
{
    const auto k = (std::size_t)state.range(0);
    util::Rng rng(11);
    const ecc::LinearCode code = ecc::randomSecCode(k, rng);
    const auto patterns = chargedPatterns(k, 1);

    for (auto _ : state) {
        std::size_t possible = 0;
        for (const auto &pattern : patterns)
            for (std::size_t bit = 0; bit < k; ++bit)
                if (!patternContains(pattern, bit))
                    possible += miscorrectionPossibleBruteForce(
                        code, pattern, bit);
        benchmark::DoNotOptimize(possible);
    }
}
BENCHMARK(BM_ProfilePredicateBruteForce)->Arg(8)->Arg(16);

/** Symmetry-breaking ablation at the whole-solve level. */
void
BM_BeerSolveNoSymmetryBreaking(benchmark::State &state)
{
    const auto k = (std::size_t)state.range(0);
    util::Rng rng(7);
    const ecc::LinearCode code = ecc::randomSecCode(k, rng);
    const auto profile =
        exhaustiveProfile(code, chargedPatterns(k, 1));
    BeerSolverConfig config;
    config.symmetryBreaking = false;

    for (auto _ : state) {
        benchmark::DoNotOptimize(solveForEccFunction(
            profile, code.numParityBits(), config));
    }
}
BENCHMARK(BM_BeerSolveNoSymmetryBreaking)->Arg(8)->Arg(16);

} // anonymous namespace

BENCHMARK_MAIN();
