/**
 * @file
 * Recovery-service throughput bench: quantifies what the fingerprint
 * cache buys a fleet that keeps re-testing chips with the same on-die
 * ECC function.
 *
 * Three rounds against one in-process svc::RecoveryService:
 *
 *  1. cold   — every profile is new: full SAT solve per job;
 *  2. exact  — the same profiles again: cache hits, zero SAT solves;
 *  3. near   — each profile minus its last two patterns (a sibling
 *              chip with less measurement coverage): warm-started
 *              solves.
 *
 * Emits an aligned table, or JSON with --json for the README numbers
 * and CI trend tracking.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "beer/patterns.hh"
#include "beer/profile.hh"
#include "ecc/hamming.hh"
#include "svc/service.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/rng.hh"

using namespace beer;

namespace
{

double
submitAll(svc::RecoveryService &service,
          const std::vector<MiscorrectionProfile> &profiles,
          const svc::SubmitOptions &options = {})
{
    const auto start = std::chrono::steady_clock::now();
    for (const MiscorrectionProfile &profile : profiles) {
        const svc::SubmitOutcome outcome =
            service.submitProfile(profile, options);
        if (!outcome.accepted)
            util::fatal("bench submission rejected: %s",
                        outcome.error.c_str());
    }
    service.drain();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    util::Cli cli("Recovery-service throughput: SAT solve vs "
                  "fingerprint-cache hit latency");
    cli.addOption("k", "16", "dataword length in bits");
    cli.addOption("chips", "8", "distinct ECC functions to recover");
    cli.addOption("threads", "0",
                  "service worker threads (0 = hardware concurrency)");
    cli.addOption("seed", "1", "RNG seed");
    cli.addFlag("json", "emit JSON instead of a table");
    cli.parse(argc, argv);

    const auto k = (std::size_t)cli.getInt("k");
    const auto chips = (std::size_t)cli.getInt("chips");
    util::Rng rng((std::uint64_t)cli.getInt("seed"));

    const auto patterns = chargedPatternUnion(k, {1, 2});
    std::vector<MiscorrectionProfile> profiles;
    std::vector<MiscorrectionProfile> truncated;
    for (std::size_t i = 0; i < chips; ++i) {
        const ecc::LinearCode code = ecc::randomSecCode(k, rng);
        profiles.push_back(exhaustiveProfile(code, patterns));
        MiscorrectionProfile partial = profiles.back();
        partial.patterns.resize(partial.patterns.size() - 2);
        truncated.push_back(std::move(partial));
    }

    svc::ServiceConfig config;
    config.threads = (std::size_t)cli.getInt("threads");
    svc::RecoveryService service(config);

    const double cold_s = submitAll(service, profiles);
    const std::uint64_t cold_solves = service.health().satSolves;

    const double exact_s = submitAll(service, profiles);
    const std::uint64_t exact_solves =
        service.health().satSolves - cold_solves;

    const double near_s = submitAll(service, truncated);
    const svc::HealthReport health = service.health();

    const double cold_ms = 1e3 * cold_s / (double)chips;
    const double exact_ms = 1e3 * exact_s / (double)chips;
    const double near_ms = 1e3 * near_s / (double)chips;

    if (cli.getBool("json")) {
        std::printf(
            "{\n"
            "  \"k\": %zu,\n"
            "  \"chips\": %zu,\n"
            "  \"patterns\": %zu,\n"
            "  \"cold_ms_per_job\": %.3f,\n"
            "  \"exact_hit_ms_per_job\": %.3f,\n"
            "  \"near_hit_ms_per_job\": %.3f,\n"
            "  \"exact_speedup\": %.1f,\n"
            "  \"cold_sat_solves\": %llu,\n"
            "  \"exact_sat_solves\": %llu,\n"
            "  \"exact_hits\": %llu,\n"
            "  \"near_hits\": %llu\n"
            "}\n",
            k, chips, patterns.size(), cold_ms, exact_ms, near_ms,
            exact_ms > 0.0 ? cold_ms / exact_ms : 0.0,
            (unsigned long long)cold_solves,
            (unsigned long long)exact_solves,
            (unsigned long long)health.cache.exactHits,
            (unsigned long long)health.cache.nearHits);
        return 0;
    }

    std::printf("recovery-service throughput: k=%zu, %zu chips, %zu "
                "patterns/profile\n",
                k, chips, patterns.size());
    std::printf("  %-22s %10.3f ms/job  (%llu SAT solves)\n",
                "cold solve", cold_ms,
                (unsigned long long)cold_solves);
    std::printf("  %-22s %10.3f ms/job  (%llu SAT solves, %llu "
                "exact hits)\n",
                "exact cache hit", exact_ms,
                (unsigned long long)exact_solves,
                (unsigned long long)health.cache.exactHits);
    std::printf("  %-22s %10.3f ms/job  (%llu near hits)\n",
                "near-match warm start", near_ms,
                (unsigned long long)health.cache.nearHits);
    if (exact_ms > 0.0)
        std::printf("  exact-hit speedup: %.1fx\n",
                    cold_ms / exact_ms);
    return 0;
}
