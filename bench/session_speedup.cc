/**
 * @file
 * Measurement-effort reduction from beer::Session's adaptive early
 * exit versus the legacy full-sweep pipeline.
 *
 * For each vendor configuration, runs both schedules against
 * identically manufactured simulated chips and reports patterns
 * measured, (pattern, pause, repeat) experiments issued, word
 * read-backs, and wall-clock per stage. On real hardware every
 * experiment costs a multi-minute refresh pause, so the experiment
 * count is the figure of merit: the adaptive schedule stops as soon as
 * the accumulated profile provably identifies a unique function, and
 * picks candidate-distinguishing patterns first once the solver has
 * narrowed the field to two.
 */

#include <cstdio>
#include <iostream>

#include "beer/beer.hh"
#include "dram/chip.hh"
#include "ecc/code_equiv.hh"
#include "util/cli.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace beer;
using dram::SimulatedChip;

namespace
{

MeasureConfig
benchMeasure(const SimulatedChip &chip, std::size_t repeats)
{
    MeasureConfig measure;
    for (double ber : {0.05, 0.15, 0.3})
        measure.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    measure.repeatsPerPause = repeats;
    measure.thresholdProbability = 1e-4;
    return measure;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    util::Cli cli("beer::Session adaptive early exit vs legacy full "
                  "sweep: measurement effort per vendor config");
    cli.addOption("k", "16", "dataword length in bits");
    cli.addOption("seeds-per-vendor", "5",
                  "chips (secret functions) per vendor");
    cli.addOption("repeats", "25", "repeats per refresh pause");
    cli.addOption("seed", "1", "base RNG seed");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
    cli.parse(argc, argv);

    const auto k = (std::size_t)cli.getInt("k");
    const auto chips = (std::size_t)cli.getInt("seeds-per-vendor");
    const auto repeats = (std::size_t)cli.getInt("repeats");
    const auto base_seed = (std::uint64_t)cli.getInt("seed");

    util::Table table({"vendor", "experiments (full)",
                       "experiments (adaptive, median)",
                       "reduction (median)", "patterns (median)",
                       "measure s (median)", "solve s (median)",
                       "all identical"});

    for (char vendor : {'A', 'B', 'C'}) {
        std::vector<double> experiments;
        std::vector<double> patterns;
        std::vector<double> measure_s;
        std::vector<double> solve_s;
        std::vector<double> reduction;
        double full_experiments = 0.0;
        bool all_identical = true;

        for (std::size_t i = 0; i < chips; ++i) {
            const std::uint64_t seed = base_seed + 1000 * (i + 1);
            dram::ChipConfig config =
                dram::makeVendorConfig(vendor, k, seed);
            config.map.rows = 64;
            config.iidErrors = true;

            SimulatedChip full_chip(config);
            RecoveryOptions options;
            options.measure = benchMeasure(full_chip, repeats);
            const RecoveryReport full =
                recoverEccFunction(full_chip, options);

            SimulatedChip chip(config);
            SessionConfig session_config;
            session_config.measure = options.measure;
            session_config.wordsUnderTest = dram::trueCellWords(chip);
            Session session(chip, session_config);
            const RecoveryReport adaptive = session.run();

            if (!full.succeeded() || !adaptive.succeeded() ||
                !ecc::equivalent(full.recoveredCode(),
                                 adaptive.recoveredCode()))
                all_identical = false;

            full_experiments =
                (double)full.stats.patternMeasurements;
            experiments.push_back(
                (double)adaptive.stats.patternMeasurements);
            patterns.push_back(
                (double)adaptive.counts.patterns.size());
            measure_s.push_back(adaptive.stats.measureSeconds);
            solve_s.push_back(adaptive.stats.solveSeconds);
            reduction.push_back(
                full.stats.patternMeasurements == 0
                    ? 0.0
                    : 1.0 - (double)adaptive.stats.patternMeasurements /
                                (double)full.stats.patternMeasurements);
        }

        char vendor_name[2] = {vendor, '\0'};
        char reduction_text[32];
        std::snprintf(reduction_text, sizeof reduction_text, "%.0f%%",
                      100.0 * util::median(reduction));
        table.addRowOf(vendor_name, full_experiments,
                       util::median(experiments), reduction_text,
                       util::median(patterns),
                       util::Table::fixed(util::median(measure_s), 3),
                       util::Table::fixed(util::median(solve_s), 3),
                       all_identical ? "yes" : "NO");
    }

    std::printf("Session adaptive early exit vs full sweep "
                "(k=%zu, %zu chips per vendor)\n",
                k, chips);
    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
