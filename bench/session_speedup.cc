/**
 * @file
 * Measurement-effort reduction from beer::Session's adaptive early
 * exit versus the legacy full-sweep pipeline, and solver-side win from
 * the persistent incremental solve context versus re-encoding from
 * scratch every round.
 *
 * For each vendor configuration, runs three schedules against
 * identically manufactured simulated chips:
 *
 *   - full:        legacy full sweep (baseline experiment count);
 *   - incremental: adaptive session with the persistent
 *                  IncrementalSolver (the default);
 *   - scratch:     adaptive session with incrementalSolve=false, so
 *                  every round rebuilds and re-searches the whole CNF.
 *
 * On real hardware every experiment costs a multi-minute refresh
 * pause, so the experiment count is the figure of merit for the
 * adaptive schedule; the cumulative solver wall time (encode + search,
 * reported per round) is the figure of merit for the incremental
 * context. With --json the full per-round trajectories are emitted
 * machine-readably so BENCH_*.json files can be tracked across PRs.
 *
 * --pipeline switches to the third experiment: end-to-end win from
 * SessionConfig::pipelined (solving overlapped with speculative
 * measurement). The simulator measures in microseconds where real
 * chips take minutes per refresh pause, so a forwarding backend
 * injects a wall-clock penalty per pauseRefresh(), calibrated from a
 * plain serial run so total injected latency is
 * --measure-latency-factor times the *hideable* solve time — every
 * solve round except the last, because the final solve is the
 * uniqueness proof that ends the session and no schedule can overlap
 * measurement with it. That is the measurement-dominated regime the
 * pipeline targets: refresh pauses dominate the wall clock, and the
 * solver work that CAN be hidden costs about as much as the pauses
 * it hides behind. Sessions run one pattern per round
 * (patternsPerRound=1, the paper's pattern-at-a-time BEEP schedule),
 * which keeps each solve window matched to the next pattern's pause
 * time. Serial and pipelined sessions then run against identical
 * chips behind the same penalty; the bench verifies the recovered
 * ECC functions are equivalent (nonzero exit otherwise, the CI
 * divergence gate) and reports the speedup, the overlapped solver
 * seconds, and the fraction of solve time hidden.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "beer/beer.hh"
#include "dram/chip.hh"
#include "ecc/code_equiv.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace beer;
using dram::SimulatedChip;

namespace
{

MeasureConfig
benchMeasure(const SimulatedChip &chip, std::size_t repeats)
{
    MeasureConfig measure;
    for (double ber : {0.05, 0.15, 0.3})
        measure.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    measure.repeatsPerPause = repeats;
    measure.thresholdProbability = 1e-4;
    return measure;
}

/** One adaptive run's solver-side trajectory. */
struct SolverTrajectory
{
    double encodeSeconds = 0.0;
    double searchSeconds = 0.0;
    std::uint64_t clausesAdded = 0;
    std::vector<SolveRoundStats> rounds;

    double total() const { return encodeSeconds + searchSeconds; }
};

SolverTrajectory
trajectoryOf(const RecoveryReport &report)
{
    SolverTrajectory out;
    out.encodeSeconds = report.stats.solveEncodeSeconds;
    out.searchSeconds = report.stats.solveSearchSeconds;
    out.rounds = report.stats.solveRounds;
    for (const SolveRoundStats &round : out.rounds)
        out.clausesAdded += round.clausesAdded;
    return out;
}

void
printRoundsJson(std::ostream &out, const std::vector<SolveRoundStats> &rounds,
                const char *indent)
{
    out << "[";
    for (std::size_t i = 0; i < rounds.size(); ++i) {
        const SolveRoundStats &r = rounds[i];
        out << (i ? "," : "") << "\n"
            << indent << "  {\"encode_s\": " << r.encodeSeconds
            << ", \"search_s\": " << r.searchSeconds
            << ", \"clauses_added\": " << r.clausesAdded
            << ", \"patterns_encoded\": " << r.patternsEncoded
            << ", \"solutions\": " << r.solutions << "}";
    }
    if (!rounds.empty())
        out << "\n" << indent;
    out << "]";
}

/**
 * Forwarding backend charging a fixed wall-clock penalty per refresh
 * pause. The simulated chip resolves a pause in microseconds; real
 * chips take the paper's multi-minute retention waits, which is the
 * latency the session pipeline hides solver time behind. Everything
 * else forwards untouched (including the batch seams, so the proxy
 * is observably identical to the wrapped chip modulo wall-clock).
 */
class LatencyProxy final : public dram::MemoryInterface
{
  public:
    LatencyProxy(dram::MemoryInterface &inner, double pause_penalty_s)
        : inner_(inner), penalty_(pause_penalty_s)
    {
    }

    const dram::AddressMap &addressMap() const override
    {
        return inner_.addressMap();
    }
    std::size_t datawordBits() const override
    {
        return inner_.datawordBits();
    }
    void writeDataword(std::size_t word_index,
                       const gf2::BitVec &data) override
    {
        inner_.writeDataword(word_index, data);
    }
    gf2::BitVec readDataword(std::size_t word_index) override
    {
        return inner_.readDataword(word_index);
    }
    void writeDatawordsBroadcast(const std::size_t *words,
                                 std::size_t count,
                                 const gf2::BitVec &data) override
    {
        inner_.writeDatawordsBroadcast(words, count, data);
    }
    void readDatawords(const std::size_t *words, std::size_t count,
                       std::vector<gf2::BitVec> &out) override
    {
        inner_.readDatawords(words, count, out);
    }
    void writeByte(std::size_t byte_addr, std::uint8_t value) override
    {
        inner_.writeByte(byte_addr, value);
    }
    std::uint8_t readByte(std::size_t byte_addr) override
    {
        return inner_.readByte(byte_addr);
    }
    void fill(std::uint8_t value) override { inner_.fill(value); }
    void pauseRefresh(double seconds, double temp_c) override
    {
        inner_.pauseRefresh(seconds, temp_c);
        if (penalty_ <= 0.0)
            return;
        // Pay the penalty as an actual sleep — on a loaded or
        // single-CPU host that is what lets the concurrent solver run
        // during the pause, exactly like a real tester blocking on a
        // refresh window. Individual sleep_for calls overshoot
        // tens-of-microsecond requests by their own magnitude, so
        // accumulate a debt and sleep it off in bigger chunks.
        // Overshoot beyond the debt is NOT banked as credit: carrying
        // it forward produces occasional sleepless stretches of
        // experiments during which a pause-latency-bound tester would
        // in reality still be blocking — and during which an
        // idle-priority solver thread would starve. Every pause keeps
        // paying latency, as on real hardware; both session arms see
        // the identical policy.
        debt_ += penalty_;
        if (debt_ < 200e-6)
            return;
        const auto start = std::chrono::steady_clock::now();
        std::this_thread::sleep_for(
            std::chrono::duration<double>(debt_));
        debt_ -= std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
        if (debt_ < 0.0)
            debt_ = 0.0;
    }

  private:
    dram::MemoryInterface &inner_;
    double penalty_;
    double debt_ = 0.0;
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** The --pipeline experiment; see the file comment. */
int
runPipelineBench(const util::Cli &cli)
{
    const auto k = (std::size_t)cli.getInt("k");
    const auto chips = (std::size_t)cli.getInt("seeds-per-vendor");
    const auto repeats = (std::size_t)cli.getInt("repeats");
    const auto base_seed = (std::uint64_t)cli.getInt("seed");
    const double factor = cli.getDouble("measure-latency-factor");
    const double min_speedup = cli.getDouble("min-pipeline-speedup");

    // Shared by every pipelined session (one solve task in flight per
    // session, sessions run one at a time). Must outlive the sessions.
    // Background priority so the solve consumes only the measurement
    // loop's idle time — the regime a real tester host is in.
    util::ThreadPool pool(2, /*background=*/true);

    util::Table table({"vendor", "pause penalty ms",
                       "serial s (median)", "pipelined s (median)",
                       "speedup (median)", "overlap s (median)",
                       "solve hidden (median)", "spec rounds",
                       "discarded", "all identical"});

    std::ostringstream json_vendors;
    bool first_vendor = true;
    bool diverged = false;
    std::vector<double> all_speedups;

    for (char vendor : {'A', 'B', 'C'}) {
        std::vector<double> penalty_ms;
        std::vector<double> serial_walls;
        std::vector<double> pipe_walls;
        std::vector<double> speedups;
        std::vector<double> overlaps;
        std::vector<double> hidden;
        std::uint64_t speculated = 0;
        std::uint64_t discarded = 0;
        bool all_identical = true;
        std::ostringstream json_chips;

        for (std::size_t i = 0; i < chips; ++i) {
            const std::uint64_t seed = base_seed + 1000 * (i + 1);
            dram::ChipConfig config =
                dram::makeVendorConfig(vendor, k, seed);
            // A small chip: the experiment is about latency hiding,
            // so the simulator's intrinsic per-word compute should be
            // negligible next to the injected refresh-pause latency
            // (on real chips it is — pauses run minutes while the
            // tester's bookkeeping is microseconds).
            config.map.rows = 4;
            config.iidErrors = true;

            // Calibration: a plain serial run tells us how much
            // hideable solver time this chip costs and over how many
            // experiments, so the injected per-pause penalty totals
            // `factor` times it. Hideable = every round but the last:
            // the final solve is the uniqueness proof that terminates
            // the session, so no measurement exists to overlap it and
            // it inflates both schedules equally. One pattern per
            // round keeps each solve window sized to one pattern's
            // worth of pauses.
            SimulatedChip cal_chip(config);
            SessionConfig sc;
            sc.measure = benchMeasure(cal_chip, repeats);
            sc.wordsUnderTest = dram::trueCellWords(cal_chip);
            sc.patternsPerRound = 1;
            Session calibration(cal_chip, sc);
            const RecoveryReport cal = calibration.run();
            double hideable_solve = 0.0;
            for (std::size_t r = 0;
                 r + 1 < cal.stats.solveRounds.size(); ++r)
                hideable_solve +=
                    cal.stats.solveRounds[r].encodeSeconds +
                    cal.stats.solveRounds[r].searchSeconds;
            const double penalty =
                cal.stats.patternMeasurements
                    ? factor * hideable_solve /
                          (double)cal.stats.patternMeasurements
                    : 0.0;

            // Both schedules are deterministic per seed, so wall
            // clock is the only thing that varies between trials;
            // alternate serial/pipelined runs and keep the fastest of
            // each, the standard microbenchmark defense against OS
            // scheduling noise (the sessions run tens of
            // milliseconds, the same scale as a scheduler
            // preemption).
            constexpr int kTrials = 5;
            double serial_wall = 0.0;
            double pipe_wall = 0.0;
            bool identical = true;
            RecoveryReport serial;
            RecoveryReport pipe;
            for (int trial = 0; trial < kTrials; ++trial) {
                SimulatedChip serial_chip(config);
                LatencyProxy serial_mem(serial_chip, penalty);
                sc.wordsUnderTest = dram::trueCellWords(serial_chip);
                sc.pipelined = false;
                sc.solverPool = nullptr;
                Session serial_session(serial_mem, sc);
                const auto serial_start =
                    std::chrono::steady_clock::now();
                serial = serial_session.run();
                const double serial_trial =
                    secondsSince(serial_start);
                if (!trial || serial_trial < serial_wall)
                    serial_wall = serial_trial;

                SimulatedChip pipe_chip(config);
                LatencyProxy pipe_mem(pipe_chip, penalty);
                sc.wordsUnderTest = dram::trueCellWords(pipe_chip);
                sc.pipelined = true;
                sc.solverPool = &pool;
                Session pipe_session(pipe_mem, sc);
                const auto pipe_start =
                    std::chrono::steady_clock::now();
                pipe = pipe_session.run();
                const double pipe_trial = secondsSince(pipe_start);
                if (!trial || pipe_trial < pipe_wall)
                    pipe_wall = pipe_trial;

                // The baseline is the DEFAULT serial schedule, whose
                // partition runs one solve fresher than the pipelined
                // (deferred-partition) schedule — so the measurement
                // counts may differ by a round or two while the
                // recovered function, pinned by the uniqueness proof,
                // must be equivalent. Bit-exact count/profile equality
                // against the deferredPartition serial twin is the
                // differential test suite's job.
                identical =
                    identical && serial.succeeded() &&
                    pipe.succeeded() &&
                    ecc::equivalent(serial.recoveredCode(),
                                    pipe.recoveredCode());
            }
            if (!identical) {
                all_identical = false;
                diverged = true;
            }

            const double speedup =
                pipe_wall > 0.0 ? serial_wall / pipe_wall : 1.0;
            penalty_ms.push_back(1e3 * penalty);
            serial_walls.push_back(serial_wall);
            pipe_walls.push_back(pipe_wall);
            speedups.push_back(speedup);
            all_speedups.push_back(speedup);
            overlaps.push_back(pipe.stats.overlapSeconds);
            hidden.push_back(pipe.stats.solveSeconds > 0.0
                                 ? pipe.stats.overlapSeconds /
                                       pipe.stats.solveSeconds
                                 : 0.0);
            speculated += pipe.stats.speculatedRounds;
            discarded += pipe.stats.discardedRounds;

            json_chips << (i ? "," : "") << "\n        {\"seed\": "
                       << seed << ", \"pause_penalty_s\": " << penalty
                       << ",\n         \"serial_wall_s\": "
                       << serial_wall
                       << ", \"pipelined_wall_s\": " << pipe_wall
                       << ", \"speedup\": " << speedup
                       << ",\n         \"overlap_s\": "
                       << pipe.stats.overlapSeconds
                       << ", \"solve_s\": " << pipe.stats.solveSeconds
                       << ",\n         \"speculated_rounds\": "
                       << pipe.stats.speculatedRounds
                       << ", \"discarded_rounds\": "
                       << pipe.stats.discardedRounds
                       << ", \"discarded_measurements\": "
                       << pipe.stats.discardedMeasurements
                       << ", \"identical\": "
                       << (identical ? "true" : "false") << "}";
        }

        char vendor_name[2] = {vendor, '\0'};
        char speedup_text[32];
        std::snprintf(speedup_text, sizeof speedup_text, "%.2fx",
                      util::median(speedups));
        char hidden_text[32];
        std::snprintf(hidden_text, sizeof hidden_text, "%.0f%%",
                      100.0 * util::median(hidden));
        table.addRowOf(vendor_name,
                       util::Table::fixed(util::median(penalty_ms), 2),
                       util::Table::fixed(util::median(serial_walls), 3),
                       util::Table::fixed(util::median(pipe_walls), 3),
                       speedup_text,
                       util::Table::fixed(util::median(overlaps), 3),
                       hidden_text, (double)speculated,
                       (double)discarded,
                       all_identical ? "yes" : "NO");

        json_vendors << (first_vendor ? "" : ",") << "\n"
                     << "    {\"vendor\": \"" << vendor << "\",\n"
                     << "     \"serial_wall_s_median\": "
                     << util::median(serial_walls) << ",\n"
                     << "     \"pipelined_wall_s_median\": "
                     << util::median(pipe_walls) << ",\n"
                     << "     \"speedup_median\": "
                     << util::median(speedups) << ",\n"
                     << "     \"overlap_s_median\": "
                     << util::median(overlaps) << ",\n"
                     << "     \"solve_hidden_median\": "
                     << util::median(hidden) << ",\n"
                     << "     \"speculated_rounds\": " << speculated
                     << ",\n"
                     << "     \"discarded_rounds\": " << discarded
                     << ",\n"
                     << "     \"all_identical\": "
                     << (all_identical ? "true" : "false") << ",\n"
                     << "     \"chips\": [" << json_chips.str()
                     << "\n     ]}";
        first_vendor = false;
    }

    std::printf("Pipelined vs serial session under injected "
                "measurement latency (k=%zu, %zu chips per vendor, "
                "latency factor %.2f)\n",
                k, chips, factor);
    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    const double median_speedup = util::median(all_speedups);
    std::printf("overall median speedup: %.2fx\n", median_speedup);

    const std::string json_path = cli.getString("json");
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            util::fatal("cannot open JSON file '%s'",
                        json_path.c_str());
        out << "{\n  \"bench\": \"session_pipeline\",\n  \"k\": " << k
            << ",\n  \"chips_per_vendor\": " << chips
            << ",\n  \"repeats\": " << repeats
            << ",\n  \"measure_latency_factor\": " << factor
            << ",\n  \"median_speedup\": " << median_speedup
            << ",\n  \"diverged\": " << (diverged ? "true" : "false")
            << ",\n  \"vendors\": [" << json_vendors.str()
            << "\n  ]\n}\n";
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }

    if (diverged) {
        std::fprintf(stderr,
                     "FAIL: pipelined session diverged from the "
                     "serial baseline (function or measurement "
                     "count)\n");
        return 1;
    }
    if (min_speedup > 0.0 && median_speedup < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: median pipeline speedup %.2fx below the "
                     "--min-pipeline-speedup gate %.2fx\n",
                     median_speedup, min_speedup);
        return 1;
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    util::Cli cli("beer::Session adaptive early exit vs legacy full "
                  "sweep, and incremental vs from-scratch solver cost");
    cli.addOption("k", "16", "dataword length in bits");
    cli.addOption("seeds-per-vendor", "5",
                  "chips (secret functions) per vendor");
    cli.addOption("repeats", "25", "repeats per refresh pause");
    cli.addOption("seed", "1", "base RNG seed");
    cli.addOption("json", "",
                  "emit machine-readable results (including per-round "
                  "solver trajectories) to this path");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
    cli.addFlag("pipeline",
                "measure the pipelined (overlap solving with "
                "measurement) session against the serial baseline "
                "under injected refresh-pause latency");
    cli.addOption("measure-latency-factor", "1.2",
                  "--pipeline: injected measurement latency as a "
                  "multiple of the calibrated serial solve time");
    cli.addOption("min-pipeline-speedup", "0",
                  "--pipeline: exit nonzero if the overall median "
                  "speedup falls below this (0 = no gate)");
    cli.parse(argc, argv);

    if (cli.getBool("pipeline"))
        return runPipelineBench(cli);

    const auto k = (std::size_t)cli.getInt("k");
    const auto chips = (std::size_t)cli.getInt("seeds-per-vendor");
    const auto repeats = (std::size_t)cli.getInt("repeats");
    const auto base_seed = (std::uint64_t)cli.getInt("seed");

    util::Table table({"vendor", "experiments (full)",
                       "experiments (adaptive, median)",
                       "reduction (median)", "patterns (median)",
                       "measure s (median)", "solve s inc (median)",
                       "solve s scratch (median)", "solver speedup",
                       "all identical"});

    std::ostringstream json_vendors;
    bool first_vendor = true;

    for (char vendor : {'A', 'B', 'C'}) {
        std::vector<double> experiments;
        std::vector<double> patterns;
        std::vector<double> measure_s;
        std::vector<double> solve_inc_s;
        std::vector<double> solve_scratch_s;
        std::vector<double> speedup;
        std::vector<double> reduction;
        double full_experiments = 0.0;
        bool all_identical = true;
        std::ostringstream json_chips;

        for (std::size_t i = 0; i < chips; ++i) {
            const std::uint64_t seed = base_seed + 1000 * (i + 1);
            dram::ChipConfig config =
                dram::makeVendorConfig(vendor, k, seed);
            config.map.rows = 64;
            config.iidErrors = true;

            SimulatedChip full_chip(config);
            RecoveryOptions options;
            options.measure = benchMeasure(full_chip, repeats);
            const RecoveryReport full =
                recoverEccFunction(full_chip, options);

            SessionConfig session_config;
            session_config.measure = options.measure;

            // Adaptive, persistent incremental solve context.
            SimulatedChip chip(config);
            session_config.wordsUnderTest = dram::trueCellWords(chip);
            session_config.incrementalSolve = true;
            Session session(chip, session_config);
            const RecoveryReport adaptive = session.run();

            // Adaptive, from-scratch re-encode + re-search per round.
            SimulatedChip scratch_chip(config);
            session_config.wordsUnderTest =
                dram::trueCellWords(scratch_chip);
            session_config.incrementalSolve = false;
            Session scratch_session(scratch_chip, session_config);
            const RecoveryReport scratch = scratch_session.run();

            if (!full.succeeded() || !adaptive.succeeded() ||
                !scratch.succeeded() ||
                !ecc::equivalent(full.recoveredCode(),
                                 adaptive.recoveredCode()) ||
                !ecc::equivalent(full.recoveredCode(),
                                 scratch.recoveredCode()))
                all_identical = false;

            const SolverTrajectory inc = trajectoryOf(adaptive);
            const SolverTrajectory scr = trajectoryOf(scratch);

            full_experiments =
                (double)full.stats.patternMeasurements;
            experiments.push_back(
                (double)adaptive.stats.patternMeasurements);
            patterns.push_back(
                (double)adaptive.counts.patterns.size());
            measure_s.push_back(adaptive.stats.measureSeconds);
            solve_inc_s.push_back(inc.total());
            solve_scratch_s.push_back(scr.total());
            speedup.push_back(inc.total() > 0.0
                                  ? scr.total() / inc.total()
                                  : 1.0);
            reduction.push_back(
                full.stats.patternMeasurements == 0
                    ? 0.0
                    : 1.0 - (double)adaptive.stats.patternMeasurements /
                                (double)full.stats.patternMeasurements);

            json_chips << (i ? "," : "") << "\n        {\"seed\": "
                       << seed << ",\n         \"rounds_incremental\": ";
            printRoundsJson(json_chips, inc.rounds, "         ");
            json_chips << ",\n         \"rounds_scratch\": ";
            printRoundsJson(json_chips, scr.rounds, "         ");
            json_chips << ",\n         \"solve_s_incremental\": "
                       << inc.total()
                       << ", \"solve_s_scratch\": " << scr.total()
                       << ", \"clauses_incremental\": "
                       << inc.clausesAdded
                       << ", \"clauses_scratch\": " << scr.clausesAdded
                       << "}";
        }

        char vendor_name[2] = {vendor, '\0'};
        char reduction_text[32];
        std::snprintf(reduction_text, sizeof reduction_text, "%.0f%%",
                      100.0 * util::median(reduction));
        char speedup_text[32];
        std::snprintf(speedup_text, sizeof speedup_text, "%.1fx",
                      util::median(speedup));
        table.addRowOf(vendor_name, full_experiments,
                       util::median(experiments), reduction_text,
                       util::median(patterns),
                       util::Table::fixed(util::median(measure_s), 3),
                       util::Table::sci(util::median(solve_inc_s)),
                       util::Table::sci(util::median(solve_scratch_s)),
                       speedup_text, all_identical ? "yes" : "NO");

        json_vendors << (first_vendor ? "" : ",") << "\n"
                     << "    {\"vendor\": \"" << vendor << "\",\n"
                     << "     \"full_experiments\": " << full_experiments
                     << ",\n"
                     << "     \"adaptive_experiments_median\": "
                     << util::median(experiments) << ",\n"
                     << "     \"reduction_median\": "
                     << util::median(reduction) << ",\n"
                     << "     \"solve_s_incremental_median\": "
                     << util::median(solve_inc_s) << ",\n"
                     << "     \"solve_s_scratch_median\": "
                     << util::median(solve_scratch_s) << ",\n"
                     << "     \"solver_speedup_median\": "
                     << util::median(speedup) << ",\n"
                     << "     \"all_identical\": "
                     << (all_identical ? "true" : "false") << ",\n"
                     << "     \"chips\": [" << json_chips.str()
                     << "\n     ]}";
        first_vendor = false;
    }

    std::printf("Session adaptive early exit vs full sweep "
                "(k=%zu, %zu chips per vendor)\n",
                k, chips);
    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    const std::string json_path = cli.getString("json");
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            util::fatal("cannot open JSON file '%s'", json_path.c_str());
        out << "{\n  \"bench\": \"session_speedup\",\n  \"k\": " << k
            << ",\n  \"chips_per_vendor\": " << chips
            << ",\n  \"repeats\": " << repeats
            << ",\n  \"vendors\": [" << json_vendors.str()
            << "\n  ]\n}\n";
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    return 0;
}
