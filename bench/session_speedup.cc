/**
 * @file
 * Measurement-effort reduction from beer::Session's adaptive early
 * exit versus the legacy full-sweep pipeline, and solver-side win from
 * the persistent incremental solve context versus re-encoding from
 * scratch every round.
 *
 * For each vendor configuration, runs three schedules against
 * identically manufactured simulated chips:
 *
 *   - full:        legacy full sweep (baseline experiment count);
 *   - incremental: adaptive session with the persistent
 *                  IncrementalSolver (the default);
 *   - scratch:     adaptive session with incrementalSolve=false, so
 *                  every round rebuilds and re-searches the whole CNF.
 *
 * On real hardware every experiment costs a multi-minute refresh
 * pause, so the experiment count is the figure of merit for the
 * adaptive schedule; the cumulative solver wall time (encode + search,
 * reported per round) is the figure of merit for the incremental
 * context. With --json the full per-round trajectories are emitted
 * machine-readably so BENCH_*.json files can be tracked across PRs.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "beer/beer.hh"
#include "dram/chip.hh"
#include "ecc/code_equiv.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace beer;
using dram::SimulatedChip;

namespace
{

MeasureConfig
benchMeasure(const SimulatedChip &chip, std::size_t repeats)
{
    MeasureConfig measure;
    for (double ber : {0.05, 0.15, 0.3})
        measure.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    measure.repeatsPerPause = repeats;
    measure.thresholdProbability = 1e-4;
    return measure;
}

/** One adaptive run's solver-side trajectory. */
struct SolverTrajectory
{
    double encodeSeconds = 0.0;
    double searchSeconds = 0.0;
    std::uint64_t clausesAdded = 0;
    std::vector<SolveRoundStats> rounds;

    double total() const { return encodeSeconds + searchSeconds; }
};

SolverTrajectory
trajectoryOf(const RecoveryReport &report)
{
    SolverTrajectory out;
    out.encodeSeconds = report.stats.solveEncodeSeconds;
    out.searchSeconds = report.stats.solveSearchSeconds;
    out.rounds = report.stats.solveRounds;
    for (const SolveRoundStats &round : out.rounds)
        out.clausesAdded += round.clausesAdded;
    return out;
}

void
printRoundsJson(std::ostream &out, const std::vector<SolveRoundStats> &rounds,
                const char *indent)
{
    out << "[";
    for (std::size_t i = 0; i < rounds.size(); ++i) {
        const SolveRoundStats &r = rounds[i];
        out << (i ? "," : "") << "\n"
            << indent << "  {\"encode_s\": " << r.encodeSeconds
            << ", \"search_s\": " << r.searchSeconds
            << ", \"clauses_added\": " << r.clausesAdded
            << ", \"patterns_encoded\": " << r.patternsEncoded
            << ", \"solutions\": " << r.solutions << "}";
    }
    if (!rounds.empty())
        out << "\n" << indent;
    out << "]";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    util::Cli cli("beer::Session adaptive early exit vs legacy full "
                  "sweep, and incremental vs from-scratch solver cost");
    cli.addOption("k", "16", "dataword length in bits");
    cli.addOption("seeds-per-vendor", "5",
                  "chips (secret functions) per vendor");
    cli.addOption("repeats", "25", "repeats per refresh pause");
    cli.addOption("seed", "1", "base RNG seed");
    cli.addOption("json", "",
                  "emit machine-readable results (including per-round "
                  "solver trajectories) to this path");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
    cli.parse(argc, argv);

    const auto k = (std::size_t)cli.getInt("k");
    const auto chips = (std::size_t)cli.getInt("seeds-per-vendor");
    const auto repeats = (std::size_t)cli.getInt("repeats");
    const auto base_seed = (std::uint64_t)cli.getInt("seed");

    util::Table table({"vendor", "experiments (full)",
                       "experiments (adaptive, median)",
                       "reduction (median)", "patterns (median)",
                       "measure s (median)", "solve s inc (median)",
                       "solve s scratch (median)", "solver speedup",
                       "all identical"});

    std::ostringstream json_vendors;
    bool first_vendor = true;

    for (char vendor : {'A', 'B', 'C'}) {
        std::vector<double> experiments;
        std::vector<double> patterns;
        std::vector<double> measure_s;
        std::vector<double> solve_inc_s;
        std::vector<double> solve_scratch_s;
        std::vector<double> speedup;
        std::vector<double> reduction;
        double full_experiments = 0.0;
        bool all_identical = true;
        std::ostringstream json_chips;

        for (std::size_t i = 0; i < chips; ++i) {
            const std::uint64_t seed = base_seed + 1000 * (i + 1);
            dram::ChipConfig config =
                dram::makeVendorConfig(vendor, k, seed);
            config.map.rows = 64;
            config.iidErrors = true;

            SimulatedChip full_chip(config);
            RecoveryOptions options;
            options.measure = benchMeasure(full_chip, repeats);
            const RecoveryReport full =
                recoverEccFunction(full_chip, options);

            SessionConfig session_config;
            session_config.measure = options.measure;

            // Adaptive, persistent incremental solve context.
            SimulatedChip chip(config);
            session_config.wordsUnderTest = dram::trueCellWords(chip);
            session_config.incrementalSolve = true;
            Session session(chip, session_config);
            const RecoveryReport adaptive = session.run();

            // Adaptive, from-scratch re-encode + re-search per round.
            SimulatedChip scratch_chip(config);
            session_config.wordsUnderTest =
                dram::trueCellWords(scratch_chip);
            session_config.incrementalSolve = false;
            Session scratch_session(scratch_chip, session_config);
            const RecoveryReport scratch = scratch_session.run();

            if (!full.succeeded() || !adaptive.succeeded() ||
                !scratch.succeeded() ||
                !ecc::equivalent(full.recoveredCode(),
                                 adaptive.recoveredCode()) ||
                !ecc::equivalent(full.recoveredCode(),
                                 scratch.recoveredCode()))
                all_identical = false;

            const SolverTrajectory inc = trajectoryOf(adaptive);
            const SolverTrajectory scr = trajectoryOf(scratch);

            full_experiments =
                (double)full.stats.patternMeasurements;
            experiments.push_back(
                (double)adaptive.stats.patternMeasurements);
            patterns.push_back(
                (double)adaptive.counts.patterns.size());
            measure_s.push_back(adaptive.stats.measureSeconds);
            solve_inc_s.push_back(inc.total());
            solve_scratch_s.push_back(scr.total());
            speedup.push_back(inc.total() > 0.0
                                  ? scr.total() / inc.total()
                                  : 1.0);
            reduction.push_back(
                full.stats.patternMeasurements == 0
                    ? 0.0
                    : 1.0 - (double)adaptive.stats.patternMeasurements /
                                (double)full.stats.patternMeasurements);

            json_chips << (i ? "," : "") << "\n        {\"seed\": "
                       << seed << ",\n         \"rounds_incremental\": ";
            printRoundsJson(json_chips, inc.rounds, "         ");
            json_chips << ",\n         \"rounds_scratch\": ";
            printRoundsJson(json_chips, scr.rounds, "         ");
            json_chips << ",\n         \"solve_s_incremental\": "
                       << inc.total()
                       << ", \"solve_s_scratch\": " << scr.total()
                       << ", \"clauses_incremental\": "
                       << inc.clausesAdded
                       << ", \"clauses_scratch\": " << scr.clausesAdded
                       << "}";
        }

        char vendor_name[2] = {vendor, '\0'};
        char reduction_text[32];
        std::snprintf(reduction_text, sizeof reduction_text, "%.0f%%",
                      100.0 * util::median(reduction));
        char speedup_text[32];
        std::snprintf(speedup_text, sizeof speedup_text, "%.1fx",
                      util::median(speedup));
        table.addRowOf(vendor_name, full_experiments,
                       util::median(experiments), reduction_text,
                       util::median(patterns),
                       util::Table::fixed(util::median(measure_s), 3),
                       util::Table::sci(util::median(solve_inc_s)),
                       util::Table::sci(util::median(solve_scratch_s)),
                       speedup_text, all_identical ? "yes" : "NO");

        json_vendors << (first_vendor ? "" : ",") << "\n"
                     << "    {\"vendor\": \"" << vendor << "\",\n"
                     << "     \"full_experiments\": " << full_experiments
                     << ",\n"
                     << "     \"adaptive_experiments_median\": "
                     << util::median(experiments) << ",\n"
                     << "     \"reduction_median\": "
                     << util::median(reduction) << ",\n"
                     << "     \"solve_s_incremental_median\": "
                     << util::median(solve_inc_s) << ",\n"
                     << "     \"solve_s_scratch_median\": "
                     << util::median(solve_scratch_s) << ",\n"
                     << "     \"solver_speedup_median\": "
                     << util::median(speedup) << ",\n"
                     << "     \"all_identical\": "
                     << (all_identical ? "true" : "false") << ",\n"
                     << "     \"chips\": [" << json_chips.str()
                     << "\n     ]}";
        first_vendor = false;
    }

    std::printf("Session adaptive early exit vs full sweep "
                "(k=%zu, %zu chips per vendor)\n",
                k, chips);
    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    const std::string json_path = cli.getString("json");
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            util::fatal("cannot open JSON file '%s'", json_path.c_str());
        out << "{\n  \"bench\": \"session_speedup\",\n  \"k\": " << k
            << ",\n  \"chips_per_vendor\": " << chips
            << ",\n  \"repeats\": " << repeats
            << ",\n  \"vendors\": [" << json_vendors.str()
            << "\n  ]\n}\n";
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }
    return 0;
}
