/**
 * @file
 * Monte-Carlo simulation engine throughput: scalar vs bitsliced vs
 * bitsliced + threads, on the Figure 3 retention-profile workload
 * (1-CHARGED patterns of a random SEC code, charged-cell BER in the
 * paper's measured range).
 *
 * The paper simulates on the order of 1e9 ECC words per data point
 * (Sections 5.1.3 and 6); this bench tracks how fast the engine chews
 * through that workload and guards the two contracts the engine
 * makes:
 *
 *  - bitslicing alone must deliver a >= 10x single-thread speedup
 *    over the scalar reference path (enforced with a nonzero exit
 *    when --min-speedup is set; CI passes a conservative floor);
 *  - results must be bit-identical for every thread count (always
 *    enforced, verified for 1 vs 8 threads with a fixed seed).
 *
 * With --json the measurements are emitted machine-readably so
 * BENCH_sim_throughput.json can be tracked across PRs.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "beer/measure.hh"
#include "beer/patterns.hh"
#include "ecc/hamming.hh"
#include "sim/word_sim.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/rng.hh"

using namespace beer;
using ecc::LinearCode;
using gf2::BitVec;
using sim::SimConfig;
using sim::WordSimStats;
using util::Rng;

namespace
{

/** Wall seconds for one full pattern sweep under @p config. */
double
sweepSeconds(const LinearCode &code,
             const std::vector<TestPattern> &patterns, double ber,
             std::uint64_t words_per_pattern, std::uint64_t seed,
             const SimConfig &config)
{
    Rng rng(seed);
    const auto start = std::chrono::steady_clock::now();
    const ProfileCounts counts = measureProfileSim(
        code, patterns, ber, words_per_pattern, rng, config);
    const auto stop = std::chrono::steady_clock::now();
    // Keep the result alive so the work cannot be optimized away.
    if (counts.totalObservations() !=
        words_per_pattern * patterns.size())
        util::fatal("sim_throughput: word count mismatch");
    return std::chrono::duration<double>(stop - start).count();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    util::Cli cli("Simulation engine throughput on the Figure 3 "
                  "retention-profile workload: scalar vs bitsliced vs "
                  "bitsliced + threads");
    cli.addOption("k", "32", "dataword length in bits");
    cli.addOption("ber", "0.1", "charged-cell raw bit error rate");
    cli.addOption("words", "100000", "simulated words per pattern");
    cli.addOption("threads", "0",
                  "threads for the threaded run (0 = all hardware "
                  "threads)");
    cli.addOption("seed", "1", "RNG seed");
    cli.addOption("min-speedup", "0",
                  "fail (exit 1) if the single-thread bitsliced "
                  "speedup falls below this factor (0 = report only)");
    cli.addOption("json", "",
                  "emit machine-readable results to this path");
    cli.parse(argc, argv);

    const auto k = (std::size_t)cli.getInt("k");
    const double ber = cli.getDouble("ber");
    const auto words = (std::uint64_t)cli.getInt("words");
    const auto seed = (std::uint64_t)cli.getInt("seed");
    std::size_t threads = (std::size_t)cli.getInt("threads");
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());

    Rng code_rng(seed);
    const LinearCode code = ecc::randomSecCode(k, code_rng);
    const auto patterns = chargedPatterns(k, 1);
    const std::uint64_t total_words = words * patterns.size();

    SimConfig scalar_config;
    scalar_config.bitsliced = false;

    SimConfig bitsliced_config;

    SimConfig threaded_config;
    threaded_config.threads = threads;

    std::printf("sim_throughput: k=%zu, BER=%g, %zu patterns x %llu "
                "words (fig-3 retention workload)\n",
                k, ber, patterns.size(), (unsigned long long)words);

    const double scalar_s = sweepSeconds(code, patterns, ber, words,
                                         seed, scalar_config);
    const double bitsliced_s = sweepSeconds(code, patterns, ber, words,
                                            seed, bitsliced_config);
    const double threaded_s = sweepSeconds(code, patterns, ber, words,
                                           seed, threaded_config);

    const double scalar_wps = (double)total_words / scalar_s;
    const double bitsliced_wps = (double)total_words / bitsliced_s;
    const double threaded_wps = (double)total_words / threaded_s;
    const double bitsliced_speedup = bitsliced_wps / scalar_wps;
    const double thread_speedup = threaded_wps / bitsliced_wps;

    // Determinism contract: identical stats for a fixed seed at 1 vs
    // 8 threads (exercises multi-shard merging even on small runs).
    bool deterministic = true;
    {
        const BitVec data =
            datawordForPattern(patterns[0], k, dram::CellType::True);
        const BitVec codeword = code.encode(data);
        const BitVec mask =
            sim::chargedMask(codeword, dram::CellType::True);
        auto run = [&](std::size_t run_threads) {
            SimConfig config;
            config.threads = run_threads;
            config.wordsPerShard = 1 << 12;
            Rng rng(seed ^ 0xd373);
            return sim::simulateRetentionErrors(
                code, codeword, mask, ber, 100000, rng, config);
        };
        deterministic = run(1) == run(8);
    }

    const double min_speedup = cli.getDouble("min-speedup");
    const bool fast_enough =
        min_speedup <= 0.0 || bitsliced_speedup >= min_speedup;

    std::printf("  scalar (1 thread):      %12.0f words/sec\n",
                scalar_wps);
    std::printf("  bitsliced (1 thread):   %12.0f words/sec  "
                "(%.1fx vs scalar)\n",
                bitsliced_wps, bitsliced_speedup);
    std::printf("  bitsliced (%2zu threads): %12.0f words/sec  "
                "(%.2fx vs 1 thread)\n",
                threads, threaded_wps, thread_speedup);
    std::printf("  deterministic across thread counts: %s\n",
                deterministic ? "yes" : "NO (BUG)");
    if (!fast_enough)
        std::printf("  REGRESSION: bitsliced speedup %.1fx is below "
                    "the required %.1fx\n",
                    bitsliced_speedup, min_speedup);

    const std::string json_path = cli.getString("json");
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            util::fatal("cannot open '%s' for writing",
                        json_path.c_str());
        out << "{\n"
            << "  \"workload\": {\"k\": " << k << ", \"ber\": " << ber
            << ", \"patterns\": " << patterns.size()
            << ", \"words_per_pattern\": " << words
            << ", \"total_words\": " << total_words << "},\n"
            << "  \"threads\": " << threads << ",\n"
            << "  \"scalar_words_per_sec\": " << scalar_wps << ",\n"
            << "  \"bitsliced_words_per_sec\": " << bitsliced_wps
            << ",\n"
            << "  \"threaded_words_per_sec\": " << threaded_wps
            << ",\n"
            << "  \"bitsliced_speedup\": " << bitsliced_speedup
            << ",\n"
            << "  \"thread_speedup\": " << thread_speedup << ",\n"
            << "  \"deterministic_across_threads\": "
            << (deterministic ? "true" : "false") << "\n"
            << "}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }

    return deterministic && fast_enough ? 0 : 1;
}
