/**
 * @file
 * Monte-Carlo simulation engine throughput: scalar vs bitsliced (per
 * SIMD backend) vs bitsliced + threads, on the Figure 3
 * retention-profile workload (1-CHARGED patterns of a random SEC
 * code, charged-cell BER in the paper's measured range) — plus the
 * end-to-end chip workload (fill + refresh-pause injection + profile
 * read) that exercises the transposed cell store.
 *
 * The paper simulates on the order of 1e9 ECC words per data point
 * (Sections 5.1.3 and 6); this bench tracks how fast the engine chews
 * through that workload and guards the engine's contracts:
 *
 *  - bitslicing must deliver a large single-thread speedup over the
 *    scalar reference path (enforced with a nonzero exit when
 *    --min-speedup is set; CI passes a conservative floor);
 *  - on hosts with native wide kernels, the SIMD backends must beat
 *    the 64-lane u64x1 engine (--min-simd-speedup, applied only when
 *    the selected backend runs natively — the portable fallbacks
 *    promise correctness, not speed);
 *  - the end-to-end chip workload (injection + decode, not
 *    decode-only) on the transposed store must beat the legacy
 *    scalar-BitVec chip by --min-e2e-speedup;
 *  - results must be bit-identical for every thread count AND every
 *    SIMD backend, for the word simulator and for the chip (always
 *    enforced with a fixed seed; nonzero exit on mismatch).
 *
 * The bench also measures the iid-injection crossover: the BER above
 * which whole Bernoulli lane masks (InjectionMode::BernoulliMask)
 * beat geometric skip-sampling, reported as injection_crossover_ber
 * in the JSON (the source for dram::kInjectionCrossoverBer).
 *
 * The measured backend follows --backend, then BEER_SIMD, then CPUID,
 * so CI can sweep all widths by re-running one binary. With --json
 * the measurements (including backend name and lane count) are
 * emitted machine-readably, one BENCH_sim_throughput.<backend>.json
 * per forced backend.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "beer/measure.hh"
#include "beer/patterns.hh"
#include "dram/chip.hh"
#include "ecc/hamming.hh"
#include "sim/engine.hh"
#include "sim/stats_reduce.hh"
#include "sim/word_sim.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/simd.hh"

using namespace beer;
using dram::ChipConfig;
using dram::ChipStorage;
using dram::InjectionMode;
using dram::SimulatedChip;
using ecc::LinearCode;
using gf2::BitVec;
using sim::SimConfig;
using sim::WordSimStats;
using util::Rng;
using util::simd::Backend;

namespace
{

/** Wall seconds for one full pattern sweep under @p config. */
double
sweepSeconds(const LinearCode &code,
             const std::vector<TestPattern> &patterns, double ber,
             std::uint64_t words_per_pattern, std::uint64_t seed,
             const SimConfig &config)
{
    Rng rng(seed);
    const auto start = std::chrono::steady_clock::now();
    const ProfileCounts counts = measureProfileSim(
        code, patterns, ber, words_per_pattern, rng, config);
    const auto stop = std::chrono::steady_clock::now();
    // Keep the result alive so the work cannot be optimized away.
    if (counts.totalObservations() !=
        words_per_pattern * patterns.size())
        util::fatal("sim_throughput: word count mismatch");
    return std::chrono::duration<double>(stop - start).count();
}

/** Vendor-A-style chip sized to @p chip_words for the e2e workload. */
ChipConfig
e2eChipConfig(std::size_t k, std::size_t chip_words,
              std::uint64_t seed)
{
    ChipConfig config = dram::makeVendorConfig('A', k, seed);
    // Two words per row in the vendor geometry.
    config.map.rows = std::max<std::size_t>(1, chip_words / 2);
    config.iidErrors = true;
    return config;
}

/**
 * One end-to-end measurement: program every word with the 1-CHARGED
 * patterns, pause refresh at the requested BER's window, read every
 * word back through the on-die decoder, and count per-bit errors —
 * measureProfile on a real chip, the workload PR 3/4 never touched.
 * Returns the counts (for identity checks) and the wall seconds.
 */
ProfileCounts
chipSweep(const ChipConfig &chip_config,
          const std::vector<TestPattern> &patterns, double ber,
          std::size_t passes, double *seconds_out)
{
    SimulatedChip chip(chip_config);
    const double pause =
        chip.retentionModel().pauseForBitErrorRate(ber, 80.0);
    MeasureConfig measure;
    measure.pausesSeconds.assign(1, pause);
    measure.repeatsPerPause = passes;
    const auto start = std::chrono::steady_clock::now();
    ProfileCounts counts = measureProfile(chip, patterns, measure);
    const auto stop = std::chrono::steady_clock::now();
    if (seconds_out)
        *seconds_out =
            std::chrono::duration<double>(stop - start).count();
    if (counts.totalObservations() !=
        (std::uint64_t)chip.numWords() * patterns.size() * passes)
        util::fatal("sim_throughput: chip word count mismatch");
    return counts;
}

bool
countsEqual(const ProfileCounts &a, const ProfileCounts &b)
{
    return a.k == b.k && a.patterns == b.patterns &&
           a.errorCounts == b.errorCounts &&
           a.wordsTested == b.wordsTested;
}

/**
 * Seconds for @p reps fill+pause cycles at @p ber under @p mode; the
 * fill restores the CHARGED population so every pause injects at the
 * same rate.
 */
double
injectionSeconds(const ChipConfig &base, InjectionMode mode,
                 double ber, std::size_t reps, const BitVec &data)
{
    ChipConfig config = base;
    config.injection = mode;
    SimulatedChip chip(config);
    const double pause =
        chip.retentionModel().pauseForBitErrorRate(ber, 80.0);
    std::vector<std::size_t> words(chip.numWords());
    for (std::size_t w = 0; w < words.size(); ++w)
        words[w] = w;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
        chip.writeDatawordsBroadcast(words.data(), words.size(), data);
        chip.pauseRefresh(pause, 80.0);
    }
    const auto stop = std::chrono::steady_clock::now();
    if (chip.rawErrorCount() == 0 && ber > 1e-4)
        util::warn("injection sweep at ber=%g injected nothing", ber);
    return std::chrono::duration<double>(stop - start).count();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    util::Cli cli("Simulation engine throughput on the Figure 3 "
                  "retention-profile workload: scalar vs bitsliced "
                  "(per SIMD backend) vs bitsliced + threads");
    cli.addOption("k", "32", "dataword length in bits");
    cli.addOption("ber", "0.1", "charged-cell raw bit error rate");
    cli.addOption("words", "100000", "simulated words per pattern");
    cli.addOption("threads", "0",
                  "threads for the threaded run (0 = all hardware "
                  "threads)");
    cli.addOption("backend", "auto",
                  "SIMD backend to measure (auto | u64x1 | u64x4 | "
                  "u64x8); auto honors BEER_SIMD, then CPUID");
    cli.addOption("seed", "1", "RNG seed");
    cli.addOption("min-speedup", "0",
                  "fail (exit 1) if the single-thread bitsliced "
                  "speedup over scalar falls below this factor "
                  "(0 = report only)");
    cli.addOption("min-simd-speedup", "0",
                  "fail (exit 1) if a natively-run wide backend "
                  "beats the u64x1 engine by less than this factor "
                  "(0 = report only; never applied to portable "
                  "fallbacks)");
    cli.addOption("chip-words", "16384",
                  "ECC words in the end-to-end chip workload");
    cli.addOption("e2e-passes", "1",
                  "read passes per pattern in the chip workload");
    cli.addOption("min-e2e-speedup", "0",
                  "fail (exit 1) if the transposed chip beats the "
                  "legacy scalar-storage chip on the end-to-end "
                  "fill+inject+read workload by less than this "
                  "factor (0 = report only)");
    cli.addOption("json", "",
                  "emit machine-readable results to this path");
    cli.parse(argc, argv);

    const auto k = (std::size_t)cli.getInt("k");
    const double ber = cli.getDouble("ber");
    const auto words = (std::uint64_t)cli.getInt("words");
    const auto seed = (std::uint64_t)cli.getInt("seed");
    std::size_t threads = (std::size_t)cli.getInt("threads");
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());

    const auto backend_opt =
        util::simd::parseBackend(cli.getString("backend"));
    if (!backend_opt)
        util::fatal("unknown --backend '%s'",
                    cli.getString("backend").c_str());
    // Resolve what we actually measure (flag, then BEER_SIMD, then
    // CPUID) so the report names the kernel, not the request.
    const sim::EngineKernel &kernel = sim::engineKernel(*backend_opt);

    Rng code_rng(seed);
    const LinearCode code = ecc::randomSecCode(k, code_rng);
    const auto patterns = chargedPatterns(k, 1);
    const std::uint64_t total_words = words * patterns.size();

    SimConfig scalar_config;
    scalar_config.bitsliced = false;

    SimConfig u64x1_config;
    u64x1_config.simdBackend = Backend::U64x1;

    SimConfig simd_config;
    simd_config.simdBackend = kernel.backend;

    SimConfig threaded_config;
    threaded_config.simdBackend = kernel.backend;
    threaded_config.threads = threads;

    std::printf("sim_throughput: k=%zu, BER=%g, %zu patterns x %llu "
                "words (fig-3 retention workload), backend %s\n",
                k, ber, patterns.size(), (unsigned long long)words,
                kernel.name);

    const double scalar_s = sweepSeconds(code, patterns, ber, words,
                                         seed, scalar_config);
    const double u64x1_s = sweepSeconds(code, patterns, ber, words,
                                        seed, u64x1_config);
    const double simd_s =
        kernel.words == 1
            ? u64x1_s
            : sweepSeconds(code, patterns, ber, words, seed,
                           simd_config);
    const double threaded_s = sweepSeconds(code, patterns, ber, words,
                                           seed, threaded_config);

    const double scalar_wps = (double)total_words / scalar_s;
    const double u64x1_wps = (double)total_words / u64x1_s;
    const double simd_wps = (double)total_words / simd_s;
    const double threaded_wps = (double)total_words / threaded_s;
    const double bitsliced_speedup = simd_wps / scalar_wps;
    const double simd_speedup = simd_wps / u64x1_wps;
    const double thread_speedup = threaded_wps / simd_wps;

    // Identity contracts: fixed-seed stats must be identical at 1 vs
    // 8 threads (exercises multi-shard merging) and across every
    // SIMD backend (u64x1 vs u64x4 vs u64x8, native or portable).
    bool deterministic = true;
    bool backend_identical = true;
    {
        const BitVec data =
            datawordForPattern(patterns[0], k, dram::CellType::True);
        const BitVec codeword = code.encode(data);
        const BitVec mask =
            sim::chargedMask(codeword, dram::CellType::True);
        auto run = [&](std::size_t run_threads, Backend run_backend) {
            SimConfig config;
            config.threads = run_threads;
            config.simdBackend = run_backend;
            config.wordsPerShard = 1 << 12;
            Rng rng(seed ^ 0xd373);
            return sim::simulateRetentionErrors(
                code, codeword, mask, ber, 100000, rng, config);
        };
        const WordSimStats reference = run(1, Backend::U64x1);
        deterministic = reference == run(8, Backend::U64x1);
        for (Backend b :
             {Backend::U64x2, Backend::U64x4, Backend::U64x8})
            backend_identical =
                backend_identical && reference == run(1, b);
    }

    // ---- end-to-end chip workload (fill + injection + decode) ------
    // The PR 4 baseline is the legacy scalar-BitVec chip; the
    // transposed chip runs the same externally visible experiment on
    // the wide kernels (and, at this BER, Bernoulli-mask injection).
    const auto chip_words = (std::size_t)cli.getInt("chip-words");
    const auto e2e_passes = (std::size_t)cli.getInt("e2e-passes");
    const ChipConfig e2e_base = e2eChipConfig(k, chip_words, seed);
    const std::uint64_t e2e_total =
        (std::uint64_t)chip_words * patterns.size() * e2e_passes;

    ChipConfig e2e_scalar = e2e_base;
    e2e_scalar.storage = ChipStorage::Scalar;
    ChipConfig e2e_transposed = e2e_base;
    e2e_transposed.simdBackend = kernel.backend;

    double scalar_chip_s = 0.0;
    chipSweep(e2e_scalar, patterns, ber, e2e_passes, &scalar_chip_s);
    double transposed_chip_s = 0.0;
    chipSweep(e2e_transposed, patterns, ber, e2e_passes,
              &transposed_chip_s);
    const double e2e_scalar_wps = (double)e2e_total / scalar_chip_s;
    const double e2e_transposed_wps =
        (double)e2e_total / transposed_chip_s;
    const double e2e_speedup = e2e_transposed_wps / e2e_scalar_wps;

    // Chip identity contracts: with skip-sampled injection pinned the
    // transposed chip must reproduce the scalar chip bit for bit, and
    // the transposed chip must be invariant across SIMD backends and
    // thread counts under both injection modes.
    bool chip_identical = true;
    {
        ChipConfig small = e2eChipConfig(k, 2048, seed ^ 0xe2e);
        const auto check_patterns = chargedPatterns(k, 1);
        auto run = [&](ChipStorage storage, InjectionMode injection,
                       Backend chip_backend, std::size_t chip_threads) {
            ChipConfig config = small;
            config.storage = storage;
            config.injection = injection;
            config.simdBackend = chip_backend;
            config.threads = chip_threads;
            return chipSweep(config, check_patterns, ber, 1, nullptr);
        };
        const ProfileCounts skip_ref = run(
            ChipStorage::Scalar, InjectionMode::SkipSample,
            Backend::U64x1, 1);
        const ProfileCounts bern_ref = run(
            ChipStorage::Transposed, InjectionMode::BernoulliMask,
            Backend::U64x1, 1);
        for (Backend b :
             {Backend::U64x1, Backend::U64x2, Backend::U64x4,
              Backend::U64x8}) {
            for (std::size_t t : {1u, 8u}) {
                chip_identical =
                    chip_identical &&
                    countsEqual(skip_ref,
                                run(ChipStorage::Transposed,
                                    InjectionMode::SkipSample, b, t)) &&
                    countsEqual(bern_ref,
                                run(ChipStorage::Transposed,
                                    InjectionMode::BernoulliMask, b,
                                    t));
            }
        }
    }

    // ---- injection crossover (skip-sampling vs Bernoulli masks) ----
    double crossover_ber = -1.0;
    std::vector<std::pair<double, double>> injection_grid;
    {
        const ChipConfig inject_base = e2eChipConfig(k, 4096, seed);
        // Every data bit CHARGED so each cell is a decay candidate.
        TestPattern all_bits(k);
        for (std::size_t i = 0; i < k; ++i)
            all_bits[i] = i;
        const BitVec all_charged = datawordForPattern(
            all_bits, k, dram::CellType::True);
        for (const double grid_ber :
             {1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3}) {
            const std::size_t reps = 4;
            const double skip_s =
                injectionSeconds(inject_base, InjectionMode::SkipSample,
                                 grid_ber, reps, all_charged);
            const double bern_s = injectionSeconds(
                inject_base, InjectionMode::BernoulliMask, grid_ber,
                reps, all_charged);
            injection_grid.emplace_back(grid_ber, skip_s / bern_s);
            if (crossover_ber < 0.0 && bern_s < skip_s)
                crossover_ber = grid_ber;
        }
    }

    const double min_speedup = cli.getDouble("min-speedup");
    const bool fast_enough =
        min_speedup <= 0.0 || bitsliced_speedup >= min_speedup;
    const double min_e2e = cli.getDouble("min-e2e-speedup");
    const bool e2e_fast_enough =
        min_e2e <= 0.0 || e2e_speedup >= min_e2e;
    const double min_simd = cli.getDouble("min-simd-speedup");
    // Portable fallbacks promise identical stats, not speed: gate the
    // SIMD ratio only when the measured kernel is a native wide one.
    const bool simd_fast_enough =
        min_simd <= 0.0 || kernel.words == 1 || !kernel.native ||
        simd_speedup >= min_simd;

    std::printf("  scalar (1 thread):          %12.0f words/sec\n",
                scalar_wps);
    std::printf("  u64x1 (1 thread):           %12.0f words/sec  "
                "(%.1fx vs scalar)\n",
                u64x1_wps, u64x1_wps / scalar_wps);
    std::printf("  %-14s (1 thread):  %12.0f words/sec  "
                "(%.1fx vs scalar, %.2fx vs u64x1)\n",
                kernel.name, simd_wps, bitsliced_speedup, simd_speedup);
    std::printf("  %-14s (%2zu threads): %11.0f words/sec  "
                "(%.2fx vs 1 thread)\n",
                kernel.name, threads, threaded_wps, thread_speedup);
    std::printf("  deterministic across thread counts: %s\n",
                deterministic ? "yes" : "NO (BUG)");
    std::printf("  stats identical across SIMD backends: %s\n",
                backend_identical ? "yes" : "NO (BUG)");
    std::printf("end-to-end chip workload (%zu words, fill + inject + "
                "read):\n",
                chip_words);
    std::printf("  scalar-BitVec chip:         %12.0f words/sec\n",
                e2e_scalar_wps);
    std::printf("  transposed chip (%s): %12.0f words/sec  "
                "(%.1fx)\n",
                kernel.name, e2e_transposed_wps, e2e_speedup);
    std::printf("  chip stats identical (storage x backend x "
                "threads x injection): %s\n",
                chip_identical ? "yes" : "NO (BUG)");
    std::printf("  injection crossover (Bernoulli masks beat "
                "skip-sampling): %s\n",
                crossover_ber >= 0.0
                    ? ("ber >= " + std::to_string(crossover_ber))
                          .c_str()
                    : "not reached");
    if (!fast_enough)
        std::printf("  REGRESSION: bitsliced speedup %.1fx is below "
                    "the required %.1fx\n",
                    bitsliced_speedup, min_speedup);
    if (!simd_fast_enough)
        std::printf("  REGRESSION: SIMD speedup %.2fx (%s) is below "
                    "the required %.2fx\n",
                    simd_speedup, kernel.name, min_simd);
    if (!e2e_fast_enough)
        std::printf("  REGRESSION: end-to-end chip speedup %.1fx is "
                    "below the required %.1fx\n",
                    e2e_speedup, min_e2e);

    const std::string json_path = cli.getString("json");
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            util::fatal("cannot open '%s' for writing",
                        json_path.c_str());
        out << "{\n"
            << "  \"workload\": {\"k\": " << k << ", \"ber\": " << ber
            << ", \"patterns\": " << patterns.size()
            << ", \"words_per_pattern\": " << words
            << ", \"total_words\": " << total_words << "},\n"
            << "  \"backend\": \"" << kernel.name << "\",\n"
            << "  \"lanes\": " << kernel.lanes << ",\n"
            << "  \"native\": " << (kernel.native ? "true" : "false")
            << ",\n"
            << "  \"threads\": " << threads << ",\n"
            << "  \"scalar_words_per_sec\": " << scalar_wps << ",\n"
            << "  \"u64x1_words_per_sec\": " << u64x1_wps << ",\n"
            << "  \"bitsliced_words_per_sec\": " << simd_wps << ",\n"
            << "  \"threaded_words_per_sec\": " << threaded_wps
            << ",\n"
            << "  \"bitsliced_speedup\": " << bitsliced_speedup
            << ",\n"
            << "  \"simd_speedup\": " << simd_speedup << ",\n"
            << "  \"thread_speedup\": " << thread_speedup << ",\n"
            << "  \"deterministic_across_threads\": "
            << (deterministic ? "true" : "false") << ",\n"
            << "  \"identical_across_backends\": "
            << (backend_identical ? "true" : "false") << ",\n"
            << "  \"e2e\": {\"chip_words\": " << chip_words
            << ", \"passes\": " << e2e_passes
            << ", \"scalar_words_per_sec\": " << e2e_scalar_wps
            << ", \"transposed_words_per_sec\": " << e2e_transposed_wps
            << ", \"speedup\": " << e2e_speedup
            << ", \"chip_stats_identical\": "
            << (chip_identical ? "true" : "false") << "},\n"
            << "  \"injection_crossover_ber\": " << crossover_ber
            << ",\n"
            << "  \"injection_grid\": [";
        for (std::size_t i = 0; i < injection_grid.size(); ++i) {
            if (i)
                out << ", ";
            out << "{\"ber\": " << injection_grid[i].first
                << ", \"skip_over_bernoulli\": "
                << injection_grid[i].second << "}";
        }
        out << "]\n"
            << "}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }

    return deterministic && backend_identical && chip_identical &&
                   fast_enough && simd_fast_enough && e2e_fast_enough
               ? 0
               : 1;
}
