/**
 * @file
 * Monte-Carlo simulation engine throughput: scalar vs bitsliced (per
 * SIMD backend) vs bitsliced + threads, on the Figure 3
 * retention-profile workload (1-CHARGED patterns of a random SEC
 * code, charged-cell BER in the paper's measured range).
 *
 * The paper simulates on the order of 1e9 ECC words per data point
 * (Sections 5.1.3 and 6); this bench tracks how fast the engine chews
 * through that workload and guards the engine's contracts:
 *
 *  - bitslicing must deliver a large single-thread speedup over the
 *    scalar reference path (enforced with a nonzero exit when
 *    --min-speedup is set; CI passes a conservative floor);
 *  - on hosts with native wide kernels, the SIMD backends must beat
 *    the 64-lane u64x1 engine (--min-simd-speedup, applied only when
 *    the selected backend runs natively — the portable fallbacks
 *    promise correctness, not speed);
 *  - results must be bit-identical for every thread count AND every
 *    SIMD backend (always enforced with a fixed seed: 1 vs 8 threads,
 *    and u64x1 vs u64x4 vs u64x8).
 *
 * The measured backend follows --backend, then BEER_SIMD, then CPUID,
 * so CI can sweep all widths by re-running one binary. With --json
 * the measurements (including backend name and lane count) are
 * emitted machine-readably, one BENCH_sim_throughput.<backend>.json
 * per forced backend.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "beer/measure.hh"
#include "beer/patterns.hh"
#include "ecc/hamming.hh"
#include "sim/engine.hh"
#include "sim/word_sim.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/simd.hh"

using namespace beer;
using ecc::LinearCode;
using gf2::BitVec;
using sim::SimConfig;
using sim::WordSimStats;
using util::Rng;
using util::simd::Backend;

namespace
{

/** Wall seconds for one full pattern sweep under @p config. */
double
sweepSeconds(const LinearCode &code,
             const std::vector<TestPattern> &patterns, double ber,
             std::uint64_t words_per_pattern, std::uint64_t seed,
             const SimConfig &config)
{
    Rng rng(seed);
    const auto start = std::chrono::steady_clock::now();
    const ProfileCounts counts = measureProfileSim(
        code, patterns, ber, words_per_pattern, rng, config);
    const auto stop = std::chrono::steady_clock::now();
    // Keep the result alive so the work cannot be optimized away.
    if (counts.totalObservations() !=
        words_per_pattern * patterns.size())
        util::fatal("sim_throughput: word count mismatch");
    return std::chrono::duration<double>(stop - start).count();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    util::Cli cli("Simulation engine throughput on the Figure 3 "
                  "retention-profile workload: scalar vs bitsliced "
                  "(per SIMD backend) vs bitsliced + threads");
    cli.addOption("k", "32", "dataword length in bits");
    cli.addOption("ber", "0.1", "charged-cell raw bit error rate");
    cli.addOption("words", "100000", "simulated words per pattern");
    cli.addOption("threads", "0",
                  "threads for the threaded run (0 = all hardware "
                  "threads)");
    cli.addOption("backend", "auto",
                  "SIMD backend to measure (auto | u64x1 | u64x4 | "
                  "u64x8); auto honors BEER_SIMD, then CPUID");
    cli.addOption("seed", "1", "RNG seed");
    cli.addOption("min-speedup", "0",
                  "fail (exit 1) if the single-thread bitsliced "
                  "speedup over scalar falls below this factor "
                  "(0 = report only)");
    cli.addOption("min-simd-speedup", "0",
                  "fail (exit 1) if a natively-run wide backend "
                  "beats the u64x1 engine by less than this factor "
                  "(0 = report only; never applied to portable "
                  "fallbacks)");
    cli.addOption("json", "",
                  "emit machine-readable results to this path");
    cli.parse(argc, argv);

    const auto k = (std::size_t)cli.getInt("k");
    const double ber = cli.getDouble("ber");
    const auto words = (std::uint64_t)cli.getInt("words");
    const auto seed = (std::uint64_t)cli.getInt("seed");
    std::size_t threads = (std::size_t)cli.getInt("threads");
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());

    const auto backend_opt =
        util::simd::parseBackend(cli.getString("backend"));
    if (!backend_opt)
        util::fatal("unknown --backend '%s'",
                    cli.getString("backend").c_str());
    // Resolve what we actually measure (flag, then BEER_SIMD, then
    // CPUID) so the report names the kernel, not the request.
    const sim::EngineKernel &kernel = sim::engineKernel(*backend_opt);

    Rng code_rng(seed);
    const LinearCode code = ecc::randomSecCode(k, code_rng);
    const auto patterns = chargedPatterns(k, 1);
    const std::uint64_t total_words = words * patterns.size();

    SimConfig scalar_config;
    scalar_config.bitsliced = false;

    SimConfig u64x1_config;
    u64x1_config.simdBackend = Backend::U64x1;

    SimConfig simd_config;
    simd_config.simdBackend = kernel.backend;

    SimConfig threaded_config;
    threaded_config.simdBackend = kernel.backend;
    threaded_config.threads = threads;

    std::printf("sim_throughput: k=%zu, BER=%g, %zu patterns x %llu "
                "words (fig-3 retention workload), backend %s\n",
                k, ber, patterns.size(), (unsigned long long)words,
                kernel.name);

    const double scalar_s = sweepSeconds(code, patterns, ber, words,
                                         seed, scalar_config);
    const double u64x1_s = sweepSeconds(code, patterns, ber, words,
                                        seed, u64x1_config);
    const double simd_s =
        kernel.words == 1
            ? u64x1_s
            : sweepSeconds(code, patterns, ber, words, seed,
                           simd_config);
    const double threaded_s = sweepSeconds(code, patterns, ber, words,
                                           seed, threaded_config);

    const double scalar_wps = (double)total_words / scalar_s;
    const double u64x1_wps = (double)total_words / u64x1_s;
    const double simd_wps = (double)total_words / simd_s;
    const double threaded_wps = (double)total_words / threaded_s;
    const double bitsliced_speedup = simd_wps / scalar_wps;
    const double simd_speedup = simd_wps / u64x1_wps;
    const double thread_speedup = threaded_wps / simd_wps;

    // Identity contracts: fixed-seed stats must be identical at 1 vs
    // 8 threads (exercises multi-shard merging) and across every
    // SIMD backend (u64x1 vs u64x4 vs u64x8, native or portable).
    bool deterministic = true;
    bool backend_identical = true;
    {
        const BitVec data =
            datawordForPattern(patterns[0], k, dram::CellType::True);
        const BitVec codeword = code.encode(data);
        const BitVec mask =
            sim::chargedMask(codeword, dram::CellType::True);
        auto run = [&](std::size_t run_threads, Backend run_backend) {
            SimConfig config;
            config.threads = run_threads;
            config.simdBackend = run_backend;
            config.wordsPerShard = 1 << 12;
            Rng rng(seed ^ 0xd373);
            return sim::simulateRetentionErrors(
                code, codeword, mask, ber, 100000, rng, config);
        };
        const WordSimStats reference = run(1, Backend::U64x1);
        deterministic = reference == run(8, Backend::U64x1);
        for (Backend b : {Backend::U64x4, Backend::U64x8})
            backend_identical =
                backend_identical && reference == run(1, b);
    }

    const double min_speedup = cli.getDouble("min-speedup");
    const bool fast_enough =
        min_speedup <= 0.0 || bitsliced_speedup >= min_speedup;
    const double min_simd = cli.getDouble("min-simd-speedup");
    // Portable fallbacks promise identical stats, not speed: gate the
    // SIMD ratio only when the measured kernel is a native wide one.
    const bool simd_fast_enough =
        min_simd <= 0.0 || kernel.words == 1 || !kernel.native ||
        simd_speedup >= min_simd;

    std::printf("  scalar (1 thread):          %12.0f words/sec\n",
                scalar_wps);
    std::printf("  u64x1 (1 thread):           %12.0f words/sec  "
                "(%.1fx vs scalar)\n",
                u64x1_wps, u64x1_wps / scalar_wps);
    std::printf("  %-14s (1 thread):  %12.0f words/sec  "
                "(%.1fx vs scalar, %.2fx vs u64x1)\n",
                kernel.name, simd_wps, bitsliced_speedup, simd_speedup);
    std::printf("  %-14s (%2zu threads): %11.0f words/sec  "
                "(%.2fx vs 1 thread)\n",
                kernel.name, threads, threaded_wps, thread_speedup);
    std::printf("  deterministic across thread counts: %s\n",
                deterministic ? "yes" : "NO (BUG)");
    std::printf("  stats identical across SIMD backends: %s\n",
                backend_identical ? "yes" : "NO (BUG)");
    if (!fast_enough)
        std::printf("  REGRESSION: bitsliced speedup %.1fx is below "
                    "the required %.1fx\n",
                    bitsliced_speedup, min_speedup);
    if (!simd_fast_enough)
        std::printf("  REGRESSION: SIMD speedup %.2fx (%s) is below "
                    "the required %.2fx\n",
                    simd_speedup, kernel.name, min_simd);

    const std::string json_path = cli.getString("json");
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            util::fatal("cannot open '%s' for writing",
                        json_path.c_str());
        out << "{\n"
            << "  \"workload\": {\"k\": " << k << ", \"ber\": " << ber
            << ", \"patterns\": " << patterns.size()
            << ", \"words_per_pattern\": " << words
            << ", \"total_words\": " << total_words << "},\n"
            << "  \"backend\": \"" << kernel.name << "\",\n"
            << "  \"lanes\": " << kernel.lanes << ",\n"
            << "  \"native\": " << (kernel.native ? "true" : "false")
            << ",\n"
            << "  \"threads\": " << threads << ",\n"
            << "  \"scalar_words_per_sec\": " << scalar_wps << ",\n"
            << "  \"u64x1_words_per_sec\": " << u64x1_wps << ",\n"
            << "  \"bitsliced_words_per_sec\": " << simd_wps << ",\n"
            << "  \"threaded_words_per_sec\": " << threaded_wps
            << ",\n"
            << "  \"bitsliced_speedup\": " << bitsliced_speedup
            << ",\n"
            << "  \"simd_speedup\": " << simd_speedup << ",\n"
            << "  \"thread_speedup\": " << thread_speedup << ",\n"
            << "  \"deterministic_across_threads\": "
            << (deterministic ? "true" : "false") << ",\n"
            << "  \"identical_across_backends\": "
            << (backend_identical ? "true" : "false") << "\n"
            << "}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }

    return deterministic && backend_identical && fast_enough &&
                   simd_fast_enough
               ? 0
               : 1;
}
