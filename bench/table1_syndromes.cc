/**
 * @file
 * Reproduces paper Table 1: all possible data-retention error
 * patterns, their error syndromes, and decode outcomes for the example
 * codeword of Equation 3 (charge states [D D C D | D C C]) under the
 * (7,4,3) Hamming code of Equation 1.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "ecc/decoder.hh"
#include "ecc/linear_code.hh"
#include "gf2/bitvec.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace beer;
using ecc::LinearCode;
using gf2::BitVec;

namespace
{

std::string
bitsWithBar(const BitVec &bits, std::size_t k)
{
    std::string out = "[";
    for (std::size_t i = 0; i < bits.size(); ++i) {
        out += bits.get(i) ? '1' : '0';
        if (i + 1 == k)
            out += '|';
    }
    out += ']';
    return out;
}

/** Render a syndrome as the H-column combination that produced it. */
std::string
syndromeName(const BitVec &error, std::size_t k)
{
    std::string out;
    for (std::size_t i : error.support()) {
        if (!out.empty())
            out += " + ";
        out += "H*," + std::to_string(i);
    }
    (void)k;
    return out.empty() ? "0" : out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    util::Cli cli("Paper Table 1: error patterns, syndromes, and "
                  "outcomes for the Equation-3 codeword");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
    cli.parse(argc, argv);

    const LinearCode code = ecc::paperExampleCode();

    // Equation 3's charge states: [D D C D | D C C]. Only CHARGED
    // cells can experience data-retention errors.
    const std::vector<std::size_t> charged = {2, 5, 6};

    std::printf("Codeword charge states (Equation 3): "
                "[D D C D | D C C]\n");
    std::printf("CHARGED cells: positions 2 (data), 5, 6 (parity)\n\n");

    util::Table table({"Pre-Correction Error Pattern", "Error Syndrome",
                       "Syndrome Bits", "Post-Correction Outcome"});

    for (std::size_t subset = 0; subset < (1u << charged.size());
         ++subset) {
        BitVec error(code.n());
        for (std::size_t i = 0; i < charged.size(); ++i)
            if ((subset >> i) & 1)
                error.set(charged[i], true);

        const BitVec syndrome = code.syndrome(error);

        std::string outcome;
        if (error.isZero()) {
            outcome = "No error";
        } else if (error.popcount() == 1) {
            outcome = "Correctable";
        } else {
            outcome = "Uncorrectable";
            const std::size_t pos = code.findColumn(syndrome);
            if (pos < code.k())
                outcome += " (miscorrects data bit " +
                           std::to_string(pos) + ")";
            else if (pos < code.n())
                outcome += " (flips parity bit " +
                           std::to_string(pos - code.k()) + ")";
        }

        table.addRowOf(bitsWithBar(error, code.k()),
                       syndromeName(error, code.k()),
                       syndrome.toString(), outcome);
    }

    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
