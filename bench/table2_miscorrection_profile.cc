/**
 * @file
 * Reproduces paper Table 2: the miscorrection profile of the (7,4,3)
 * Hamming code of Equation 1 under the 1-CHARGED test patterns.
 */

#include <cstdio>
#include <iostream>

#include "beer/profile.hh"
#include "ecc/linear_code.hh"
#include "util/cli.hh"
#include "util/table.hh"

using namespace beer;

int
main(int argc, char **argv)
{
    util::Cli cli("Paper Table 2: miscorrection profile of the "
                  "Equation-1 (7,4,3) Hamming code");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
    cli.parse(argc, argv);

    const ecc::LinearCode code = ecc::paperExampleCode();
    const auto patterns = chargedPatterns(code.k(), 1);
    const auto profile = exhaustiveProfile(code, patterns);

    util::Table table({"1-CHARGED Pattern ID", "1-CHARGED Pattern",
                       "Possible Miscorrections"});

    // The paper lists patterns top-down from ID 3 to 0.
    for (std::size_t idx = profile.patterns.size(); idx-- > 0;) {
        const auto &entry = profile.patterns[idx];
        std::string pattern(code.k(), 'D');
        std::string miscorrections;
        pattern[entry.pattern[0]] = 'C';

        std::string cells = "[";
        for (std::size_t bit = 0; bit < code.k(); ++bit) {
            if (bit == entry.pattern[0])
                cells += '?';
            else
                cells += entry.miscorrectable.get(bit) ? '1' : '-';
            if (bit + 1 < code.k())
                cells += ' ';
        }
        cells += ']';

        std::string pat = "[";
        for (std::size_t bit = 0; bit < code.k(); ++bit) {
            pat += pattern[bit];
            if (bit + 1 < code.k())
                pat += ' ';
        }
        pat += ']';

        table.addRowOf(idx, pat, cells);
    }

    std::printf("ECC function: Equation 1, H =\n%s\n",
                code.toString().c_str());
    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
