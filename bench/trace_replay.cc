/**
 * @file
 * Trace replay bench: size and speed of the v2 columnar trace format.
 *
 * For each dataword length, records the same simulated measurement in
 * both trace formats (v1 text via lossless conversion from the v2
 * recording, so both files hold the identical operation stream), then
 * replays each through the measurement loop and compares against the
 * live run:
 *
 *   - bytes per recorded operation, v1 vs v2, and the size reduction;
 *   - replay throughput (operations per second), v1 vs v2 vs the live
 *     simulated measurement;
 *   - profile-count identity across live / v1 replay / v2 replay — any
 *     divergence exits nonzero.
 *
 * This is the CI gate for the v2 format: --min-size-reduction and
 * --min-replay-speedup set floors on the v2/v1 size ratio and the v2
 * replay speedup over v1, and --json emits the per-k results
 * machine-readably for BENCH_*.json tracking across PRs.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <vector>

#include "beer/measure.hh"
#include "dram/chip.hh"
#include "dram/trace.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace beer;
using beer::dram::ChipConfig;
using beer::dram::SimulatedChip;

namespace
{

ChipConfig
benchChipConfig(std::size_t k, std::uint64_t seed)
{
    ChipConfig config = dram::makeVendorConfig('A', k, seed);
    config.map.rows = 64;
    config.iidErrors = true;
    return config;
}

MeasureConfig
benchMeasure(const SimulatedChip &chip, std::size_t repeats)
{
    MeasureConfig measure;
    measure.pausesSeconds.clear();
    for (double ber : {0.05, 0.15, 0.3})
        measure.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    measure.repeatsPerPause = repeats;
    measure.thresholdProbability = 1e-4;
    return measure;
}

double
seconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Exact comparison of two replayed profile-count sets. */
bool
sameCounts(const ProfileCounts &a, const ProfileCounts &b)
{
    return a.k == b.k && a.patterns == b.patterns &&
           a.errorCounts == b.errorCounts &&
           a.wordsTested == b.wordsTested &&
           a.disagreements == b.disagreements &&
           a.votesSpent == b.votesSpent;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    util::Cli cli("Trace format bench: v1 vs v2 size and replay "
                  "throughput, with profile-count identity gates");
    cli.addOption("k-list", "8,16,32",
                  "dataword lengths (comma-separated)");
    cli.addOption("seed", "4242", "chip RNG seed");
    cli.addOption("repeats", "25", "repeats per refresh pause");
    cli.addOption("threads", "0",
                  "worker threads for v2 planar replay counting "
                  "(0 = all hardware threads, 1 = serial); counts are "
                  "identical for every value");
    cli.addOption("min-size-reduction", "10",
                  "fail unless v1_bytes/v2_bytes >= this for every k");
    cli.addOption("min-replay-speedup", "2",
                  "fail unless v2 replay is this many times faster "
                  "than v1 replay for every k");
    cli.addOption("json", "", "write machine-readable results here");
    cli.addFlag("keep-traces", "leave the trace files on disk");
    cli.addFlag("csv", "emit CSV instead of an aligned table");
    cli.parse(argc, argv);

    std::vector<std::size_t> k_list;
    {
        const std::string text = cli.getString("k-list");
        std::size_t pos = 0;
        while (pos < text.size()) {
            std::size_t next = text.find(',', pos);
            if (next == std::string::npos)
                next = text.size();
            k_list.push_back((std::size_t)std::stoul(
                text.substr(pos, next - pos)));
            pos = next + 1;
        }
    }
    const std::uint64_t seed = (std::uint64_t)cli.getInt("seed");
    const auto repeats = (std::size_t)cli.getInt("repeats");
    const auto threads = (std::size_t)cli.getInt("threads");
    const double min_size_reduction =
        cli.getDouble("min-size-reduction");
    const double min_replay_speedup =
        cli.getDouble("min-replay-speedup");

    std::optional<util::ThreadPool> pool;
    if (threads != 1)
        pool.emplace(threads);

    util::Table table({"k", "ops", "v1 bytes", "v2 bytes", "B/op v1",
                       "B/op v2", "size x", "live (s)", "v1 replay (s)",
                       "v2 replay (s)", "replay x", "identical"});
    std::ostringstream json_rows;
    bool diverged = false;
    bool too_large = false;
    bool too_slow = false;

    for (std::size_t i = 0; i < k_list.size(); ++i) {
        const std::size_t k = k_list[i];

        const auto tmp = std::filesystem::temp_directory_path();
        const std::string v2_path =
            (tmp / ("beer_bench_k" + std::to_string(k) + ".trace2"))
                .string();
        const std::string v1_path =
            (tmp / ("beer_bench_k" + std::to_string(k) + ".trace"))
                .string();

        // Live arm: the plain simulated measurement, no recording.
        // A fresh chip with the same config is deterministic, so the
        // recorded arm below observes the identical error schedule.
        SimulatedChip live_chip(benchChipConfig(k, seed + k));
        const auto patterns = chargedPatterns(k, 1);
        const MeasureConfig measure = benchMeasure(live_chip, repeats);
        const auto words = dram::trueCellWords(live_chip);
        auto start = std::chrono::steady_clock::now();
        const ProfileCounts live =
            measureProfile(live_chip, patterns, measure, words);
        const double live_seconds = seconds(start);

        // Record once in v2, then convert losslessly to v1 so both
        // files carry the identical operation stream.
        SimulatedChip chip(benchChipConfig(k, seed + k));
        {
            std::ofstream out(v2_path,
                              std::ios::binary | std::ios::trunc);
            if (!out)
                util::fatal("cannot open '%s'", v2_path.c_str());
            recordProfileTrace(chip, patterns, measure, words, out,
                               {dram::TraceFormat::V2, true});
        }
        dram::convertTraceFile(v2_path, v1_path,
                               {dram::TraceFormat::V1, true});
        const auto v1_bytes = std::filesystem::file_size(v1_path);
        const auto v2_bytes = std::filesystem::file_size(v2_path);

        // Replay arms. v1 replays element-by-element through the
        // scalar seams; v2 mmaps and serves whole bit-plane frames to
        // the planar counting kernel, sharded over the pool.
        start = std::chrono::steady_clock::now();
        dram::TraceReplayBackend v1_trace(v1_path);
        const ProfileCounts from_v1 = replayProfileTrace(v1_trace);
        const double v1_seconds = seconds(start);

        start = std::chrono::steady_clock::now();
        dram::TraceReplayBackend v2_trace(v2_path);
        const ProfileCounts from_v2 =
            replayProfileTrace(v2_trace, pool ? &*pool : nullptr);
        const double v2_seconds = seconds(start);

        const std::size_t ops = v2_trace.totalOps();
        const bool identical =
            sameCounts(live, from_v1) && sameCounts(from_v1, from_v2);
        if (!identical)
            diverged = true;

        const double size_reduction =
            v2_bytes ? (double)v1_bytes / (double)v2_bytes : 0.0;
        const double replay_speedup =
            v2_seconds > 0.0 ? v1_seconds / v2_seconds : 0.0;
        if (size_reduction < min_size_reduction)
            too_large = true;
        if (replay_speedup < min_replay_speedup)
            too_slow = true;

        table.addRowOf(k, ops, v1_bytes, v2_bytes,
                       util::Table::sci((double)v1_bytes / (double)ops),
                       util::Table::sci((double)v2_bytes / (double)ops),
                       util::Table::sci(size_reduction),
                       util::Table::sci(live_seconds),
                       util::Table::sci(v1_seconds),
                       util::Table::sci(v2_seconds),
                       util::Table::sci(replay_speedup),
                       identical ? "yes" : "NO");

        json_rows << (i ? "," : "") << "\n    {\"k\": " << k
                  << ", \"ops\": " << ops
                  << ", \"v1_bytes\": " << v1_bytes
                  << ", \"v2_bytes\": " << v2_bytes
                  << ", \"size_reduction\": " << size_reduction
                  << ", \"live_seconds\": " << live_seconds
                  << ", \"v1_replay_seconds\": " << v1_seconds
                  << ", \"v2_replay_seconds\": " << v2_seconds
                  << ", \"replay_speedup\": " << replay_speedup
                  << ", \"v1_ops_per_second\": "
                  << (v1_seconds > 0.0 ? (double)ops / v1_seconds : 0.0)
                  << ", \"v2_ops_per_second\": "
                  << (v2_seconds > 0.0 ? (double)ops / v2_seconds : 0.0)
                  << ", \"live_ops_per_second\": "
                  << (live_seconds > 0.0 ? (double)ops / live_seconds
                                         : 0.0)
                  << ", \"identical\": "
                  << (identical ? "true" : "false") << "}";

        if (!cli.getBool("keep-traces")) {
            std::remove(v1_path.c_str());
            std::remove(v2_path.c_str());
        }
    }

    if (cli.getBool("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    const std::string json_path = cli.getString("json");
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            util::fatal("cannot open JSON file '%s'",
                        json_path.c_str());
        out << "{\n  \"bench\": \"trace_replay\",\n  \"seed\": " << seed
            << ",\n  \"threads\": " << threads
            << ",\n  \"min_size_reduction\": " << min_size_reduction
            << ",\n  \"min_replay_speedup\": " << min_replay_speedup
            << ",\n  \"diverged\": " << (diverged ? "true" : "false")
            << ",\n  \"size_gate_failed\": "
            << (too_large ? "true" : "false")
            << ",\n  \"speed_gate_failed\": "
            << (too_slow ? "true" : "false")
            << ",\n  \"results\": [" << json_rows.str()
            << "\n  ]\n}\n";
        std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    }

    if (diverged) {
        std::fprintf(stderr,
                     "FAIL: replayed profile counts diverged from the "
                     "live measurement\n");
        return 1;
    }
    if (too_large) {
        std::fprintf(stderr,
                     "FAIL: v2 size reduction below %.1fx\n",
                     min_size_reduction);
        return 1;
    }
    if (too_slow) {
        std::fprintf(stderr,
                     "FAIL: v2 replay speedup over v1 below %.1fx\n",
                     min_replay_speedup);
        return 1;
    }
    return 0;
}
