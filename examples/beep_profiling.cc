/**
 * @file
 * BEEP (Section 7.1): locate raw error-prone cells — including cells
 * in the inaccessible parity bits — using the ECC function recovered
 * by BEER.
 *
 * A simulated ECC word is given a handful of weak cells that fail
 * probabilistically whenever charged. BEEP crafts SAT-guided test
 * patterns so that each suspected failure produces an observable
 * miscorrection, then inverts the parity-check matrix (paper
 * Equation 4) to pinpoint the raw error locations.
 */

#include <cstdio>

#include "beep/beep.hh"
#include "ecc/hamming.hh"
#include "util/rng.hh"

int
main()
{
    using namespace beer;
    using namespace beer::beep;

    util::Rng rng(7);

    // The (63,57) SEC Hamming code "recovered by BEER" earlier.
    const ecc::LinearCode code = ecc::randomSecCode(57, rng);
    std::printf("Known ECC function (via BEER): (%zu,%zu) SEC "
                "Hamming code\n",
                code.n(), code.k());

    // A word with five weak cells; two of them sit in the parity
    // region that no external interface can read.
    const std::vector<std::size_t> weak = {5, 33, 51, 58, 61};
    std::printf("Planted weak cells (ground truth): ");
    for (std::size_t cell : weak)
        std::printf("%zu%s ", cell,
                    cell >= code.k() ? " (parity!)" : "");
    std::printf("\n  per-trial failure probability: 0.75\n\n");

    SimulatedWord word(code, weak, /*fail_prob=*/0.75, /*seed=*/99);

    BeepConfig config;
    config.passes = 2;
    config.readsPerPattern = 8;
    config.seed = 1234;
    Profiler profiler(code, config);

    const BeepResult result = profiler.profile(word);

    std::printf("BEEP tested %zu patterns (%zu reads, %zu "
                "informative)\n",
                result.patternsTested, result.reads,
                result.informativeReads);
    std::printf("Identified error-prone cells: ");
    for (std::size_t cell : result.errorCells)
        std::printf("%zu%s ", cell,
                    cell >= code.k() ? " (parity!)" : "");
    std::printf("\n");

    const bool exact = result.errorCells ==
                       std::vector<std::size_t>(weak.begin(), weak.end());
    std::printf("Bit-exact recovery: %s\n", exact ? "YES" : "partial");
    return exact ? 0 : 1;
}
