/**
 * @file
 * Use case of Section 7.2.1: co-designing a secondary error-mitigation
 * mechanism (e.g. rank-level ECC) with a known on-die ECC function.
 *
 * Once BEER reveals the on-die ECC function, a system architect can
 * compute the post-correction error distribution the memory controller
 * will actually see, instead of assuming uniform errors. This example
 * compares two chips with different (but same-type) on-die ECC
 * functions, computes each one's post-correction per-bit error
 * probabilities under uniform raw errors, and shows which data bits a
 * rank-level ECC should protect asymmetrically.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "ecc/hamming.hh"
#include "sim/word_sim.hh"
#include "util/rng.hh"

int
main()
{
    using namespace beer;

    util::Rng rng(31);
    const std::size_t k = 32;
    const double rber = 1e-4;
    const std::uint64_t words = 200000000;

    std::printf("Two chips, same code type ((%zu,%zu) SEC Hamming), "
                "different secret functions.\n",
                k + ecc::parityBitsForDataBits(k), k);
    std::printf("Uniform raw errors at RBER %g; %llu words each.\n\n",
                rber, (unsigned long long)words);

    for (int chip_id = 0; chip_id < 2; ++chip_id) {
        // The function a third party would obtain by running BEER on
        // the chip.
        const ecc::LinearCode code = ecc::randomSecCode(k, rng);

        const auto stats = sim::simulateUniformErrors(
            code, gf2::BitVec::ones(k), rber, words, rng);

        // Rank the data bits by post-correction error count.
        std::vector<std::pair<std::uint64_t, std::size_t>> ranked;
        std::uint64_t total = 0;
        for (std::size_t bit = 0; bit < k; ++bit) {
            ranked.push_back({stats.postCorrectionErrors[bit], bit});
            total += stats.postCorrectionErrors[bit];
        }
        std::sort(ranked.rbegin(), ranked.rend());

        std::printf("Chip %d (function recovered via BEER):\n",
                    chip_id);
        std::printf("  post-correction errors observed: %llu\n",
                    (unsigned long long)total);
        std::printf("  most error-prone data bits (for asymmetric "
                    "rank-level protection):\n");
        for (int i = 0; i < 5; ++i) {
            std::printf("    bit %2zu: %5.2f%% of post-correction "
                        "errors (flat would be %.2f%%)\n",
                        ranked[(std::size_t)i].second,
                        total ? 100.0 * (double)ranked[(std::size_t)i]
                                            .first /
                                    (double)total
                              : 0.0,
                        100.0 / (double)k);
        }
        std::printf("\n");
    }

    std::printf("The two rankings differ because the functions differ "
                "— exactly why a\nsecondary ECC designed for one chip "
                "can be mis-tuned for another, and why\nknowing the "
                "function (via BEER) matters (paper Section 7.2.1).\n");
    return 0;
}
