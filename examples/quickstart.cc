/**
 * @file
 * Quickstart: recover an unknown on-die ECC function with BEER.
 *
 * A chip with a secret SEC Hamming code is simulated behind the
 * abstract dram::MemoryInterface; a staged beer::Session measures its
 * miscorrection profile adaptively — stopping as soon as the SAT solve
 * proves the function unique — and reports what it found. Run time: a
 * few seconds.
 */

#include <cstdio>

#include "beer/session.hh"
#include "dram/chip.hh"
#include "ecc/code_equiv.hh"

int
main()
{
    using namespace beer;

    // --- The secret: a simulated chip from "manufacturer A". ---------
    // Its (22,16) SEC code is a construction-time secret; in a real
    // experiment it lives inside the DRAM die. We keep the ground
    // truth around only to check the answer at the end.
    dram::ChipConfig config = dram::makeVendorConfig('A', 16, 2026);
    config.map.rows = 64;
    config.iidErrors = true;
    dram::SimulatedChip chip(config);
    std::printf("A chip with a secret (%zu,%zu) on-die ECC function "
                "has been manufactured.\n\n",
                chip.groundTruthCode().n(), chip.groundTruthCode().k());

    // --- Steps 1-3: one adaptive recovery session. -------------------
    // The session plans the 1-CHARGED patterns, measures them in
    // rounds, solves after every round, and stops measuring the moment
    // the solution is provably unique (escalating to 2-CHARGED
    // patterns only if needed). Any dram::MemoryInterface backend
    // works here: a trace replay or fault-injection proxy plugs in the
    // same way.
    SessionConfig session_config;
    session_config.measure.pausesSeconds.clear();
    for (double ber : {0.05, 0.15, 0.3})
        session_config.measure.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    session_config.measure.repeatsPerPause = 25;
    session_config.measure.thresholdProbability = 1e-4;
    session_config.wordsUnderTest = dram::trueCellWords(chip);
    session_config.onProgress = [](const SessionProgress &progress) {
        if (progress.stage == SessionStage::Solve)
            std::printf("  measured %zu patterns -> %zu candidate "
                        "function(s)%s\n",
                        progress.patternsMeasured,
                        progress.solutionsFound,
                        progress.solveComplete ? "" : "+");
    };

    Session session(chip, session_config);
    const RecoveryReport report = session.run();
    if (!report.succeeded()) {
        std::printf("BEER found %zu candidate functions "
                    "(complete=%d)\n",
                    report.solve.solutions.size(),
                    (int)report.solve.complete);
        return 1;
    }

    std::printf("\nBEER identified a unique ECC function after %zu of "
                "%zu patterns (%llu experiments, %.3fs measuring, "
                "%.3fs solving).\n"
                "Parity-check matrix H = [P | I]:\n%s\n",
                report.counts.patterns.size(),
                chargedPatterns(chip.datawordBits(), 1).size(),
                (unsigned long long)report.stats.patternMeasurements,
                report.stats.measureSeconds, report.stats.solveSeconds,
                report.recoveredCode().toString().c_str());

    // --- Validate against the ground truth (simulation only). --------
    if (ecc::equivalent(report.recoveredCode(),
                        chip.groundTruthCode())) {
        std::printf("Recovered function matches the secret function "
                    "(up to parity-bit relabeling).\n");
        return 0;
    }
    std::printf("MISMATCH: recovered function differs from secret!\n");
    return 1;
}
