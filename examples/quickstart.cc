/**
 * @file
 * Quickstart: recover an unknown on-die ECC function with BEER.
 *
 * A "chip" with a secret SEC Hamming code is simulated; BEER measures
 * its miscorrection profile with the 1- and 2-CHARGED test patterns
 * and solves for the parity-check matrix. Run time: a few seconds.
 */

#include <cstdio>

#include "beer/measure.hh"
#include "beer/profile.hh"
#include "beer/solver.hh"
#include "ecc/code_equiv.hh"
#include "ecc/hamming.hh"
#include "util/rng.hh"

int
main()
{
    using namespace beer;

    // --- The secret: a random (22,16) SEC Hamming code. -------------
    // In a real experiment this lives inside the DRAM chip; here we
    // construct it so the result can be checked at the end.
    util::Rng rng(2026);
    const ecc::LinearCode secret = ecc::randomSecCode(16, rng);
    std::printf("A chip with a secret (%zu,%zu) on-die ECC function "
                "has been manufactured.\n\n",
                secret.n(), secret.k());

    // --- Step 1+2: measure the miscorrection profile. ----------------
    // Program each {1,2}-CHARGED test pattern, let retention errors
    // accumulate at a raw bit error rate, and record where
    // miscorrections appear. measureProfileSim is the fast
    // EINSim-style path; see reverse_engineer_chip.cc for the full
    // chip-interface flow.
    const auto patterns = chargedPatternUnion(secret.k(), {1, 2});
    const auto counts =
        measureProfileSim(secret, patterns, /*ber=*/0.25,
                          /*words_per_pattern=*/20000, rng);
    const MiscorrectionProfile profile = counts.threshold(1e-4);
    std::printf("Measured miscorrection profile over %zu test "
                "patterns.\n\n",
                patterns.size());

    // --- Step 3: solve for the ECC function. -------------------------
    const BeerSolveResult result = solveForEccFunction(profile);
    if (!result.unique()) {
        std::printf("BEER found %zu candidate functions (complete=%d)\n",
                    result.solutions.size(), (int)result.complete);
        return 1;
    }

    const ecc::LinearCode &recovered = result.solutions.front();
    std::printf("BEER identified a unique ECC function. "
                "Parity-check matrix H = [P | I]:\n%s\n",
                recovered.toString().c_str());

    // --- Validate against the ground truth (simulation only). --------
    if (ecc::equivalent(recovered, secret)) {
        std::printf("Recovered function matches the secret function "
                    "(up to parity-bit relabeling).\n");
        return 0;
    }
    std::printf("MISMATCH: recovered function differs from secret!\n");
    return 1;
}
