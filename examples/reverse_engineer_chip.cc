/**
 * @file
 * The full Section-5 methodology against an unknown simulated chip,
 * using only the external chip interface:
 *
 *  1. survey true-/anti-cell rows (Section 5.1.1);
 *  2. discover the ECC dataword layout (Section 5.1.2);
 *  3. measure the miscorrection profile with 1-CHARGED patterns and
 *     escalate to {1,2}-CHARGED if needed (Section 5.1.3);
 *  4. solve for the parity-check matrix (Section 5.3);
 *  5. validate against the simulator's ground truth — the step the
 *     paper could not perform on real chips;
 *  6. archive the raw measurement as a v2 binary trace and replay it,
 *     proving the recording reproduces the live counts bit for bit.
 */

#include <cstdio>
#include <sstream>

#include "beer/beer.hh"
#include "dram/chip.hh"
#include "dram/trace.hh"
#include "ecc/code_equiv.hh"

int
main()
{
    using namespace beer;
    using dram::CellType;
    using dram::ChipConfig;
    using dram::SimulatedChip;

    // An anonymous chip from "manufacturer C": mixed true-/anti-cell
    // rows, secret random (22,16) ECC function. Everything below works
    // through the abstract dram::MemoryInterface — swap in a
    // TraceReplayBackend to run the same flow on recorded data.
    ChipConfig config = dram::makeVendorConfig('C', 16, 0xC0FFEE);
    config.map.rows = 64;
    config.iidErrors = true;
    SimulatedChip chip(config);
    dram::MemoryInterface &mem = chip;
    std::printf("Chip under test: %zu rows x %zu bytes/row, "
                "%zu-bit datawords, unknown on-die ECC\n\n",
                config.map.rows, config.map.bytesPerRow,
                chip.datawordBits());

    // ---- Step 1: true-/anti-cell survey. ----------------------------
    const double survey_pause =
        chip.retentionModel().pauseForBitErrorRate(0.2, 80.0);
    const CellTypeSurvey types =
        discoverCellTypes(mem, survey_pause, 80.0);
    std::size_t true_rows = types.trueRows().size();
    std::printf("Step 1: cell-type survey: %zu true-cell rows, %zu "
                "anti-cell rows\n",
                true_rows, types.rowTypes.size() - true_rows);
    std::printf("        row map: ");
    for (std::size_t row = 0; row < types.rowTypes.size(); ++row)
        std::printf("%c", types.rowTypes[row] == CellType::True ? 'T'
                                                                : 'A');
    std::printf("\n\n");

    // ---- Step 2: dataword layout discovery. -------------------------
    const WordLayoutSurvey layout =
        discoverWordLayout(mem, types, survey_pause, 80.0, 6);
    std::printf("Step 2: dataword layout: %zu ECC words per row\n",
                layout.wordGroups.size());
    for (std::size_t g = 0; g < layout.wordGroups.size(); ++g) {
        std::printf("        word %zu <- row-byte offsets:", g);
        for (std::size_t b : layout.wordGroups[g])
            std::printf(" %zu", b);
        std::printf("\n");
    }
    std::printf("        (byte-granularity interleaving, as the paper "
                "found on all manufacturers)\n\n");

    // ---- Steps 3-4: BEER, as an adaptive session. --------------------
    // The word subset comes from the Step-1 survey — derived purely
    // through the external interface, like the paper does on real
    // chips — and the session stops measuring as soon as the solve is
    // provably unique.
    SessionConfig session_config;
    session_config.measure.pausesSeconds.clear();
    for (double ber : {0.05, 0.15, 0.3})
        session_config.measure.pausesSeconds.push_back(
            chip.retentionModel().pauseForBitErrorRate(ber, 80.0));
    session_config.measure.repeatsPerPause = 25;
    session_config.measure.thresholdProbability = 1e-4;
    session_config.wordsUnderTest =
        types.trueCellWords(mem.addressMap());

    Session session(mem, session_config);
    const RecoveryReport report = session.run();
    std::printf("Step 3: measured %zu patterns in %zu rounds "
                "(%llu experiments)%s\n",
                report.counts.patterns.size(),
                report.stats.measureRounds,
                (unsigned long long)report.stats.patternMeasurements,
                report.usedTwoCharged
                    ? " (escalated to {1,2}-CHARGED)"
                    : " (a 1-CHARGED subset sufficed)");
    if (!report.succeeded()) {
        std::printf("BEER did not converge to a unique function "
                    "(%zu candidates)\n",
                    report.solve.solutions.size());
        return 1;
    }
    std::printf("Step 4: unique ECC function found. H = [P | I]:\n%s\n",
                report.recoveredCode().toString().c_str());

    // ---- Step 5: validation (simulation-only privilege). -------------
    if (!ecc::equivalent(report.recoveredCode(),
                         chip.groundTruthCode())) {
        std::printf("Step 5: MISMATCH against ground truth!\n");
        return 1;
    }
    std::printf("Step 5: recovered function matches the chip's "
                "secret function. BEER succeeded.\n\n");

    // ---- Step 6: archive + replay as a v2 binary trace. --------------
    // Record a fresh (shorter) measurement through a TraceRecorder in
    // the v2 columnar format, then replay it. The replayed profile
    // counts must match the live ones exactly — this is the property
    // that lets real-chip recordings be archived and re-analysed
    // offline without the chip.
    MeasureConfig archive = session_config.measure;
    archive.repeatsPerPause = 5;
    std::ostringstream trace_stream;
    const ProfileCounts live = recordProfileTrace(
        chip, chargedPatterns(chip.datawordBits(), 1), archive,
        session_config.wordsUnderTest, trace_stream,
        dram::TraceWriteOptions{dram::TraceFormat::V2, true});
    std::istringstream trace_bytes(trace_stream.str());
    dram::TraceReplayBackend trace(trace_bytes);
    const ProfileCounts replayed = replayProfileTrace(trace);
    const bool identical = live.errorCounts == replayed.errorCounts &&
                           live.wordsTested == replayed.wordsTested;
    std::printf("Step 6: archived the measurement as a %zu-byte v2 "
                "trace (%zu ops); replayed counts are %s\n",
                trace_stream.str().size(), trace.totalOps(),
                identical ? "bit-identical" : "DIFFERENT!");
    return identical ? 0 : 1;
}
