#include "beep/beep.hh"

#include <algorithm>
#include <deque>
#include <memory>
#include <utility>

#include "ecc/decoder.hh"
#include "sat/encoder.hh"
#include "util/logging.hh"

namespace beer::beep
{

using ecc::LinearCode;
using gf2::BitVec;
using sat::Encoder;
using sat::Lit;
using sat::Solver;

Profiler::Profiler(const LinearCode &code, const BeepConfig &config)
    : code_(code), config_(config), rng_(config.seed)
{
}

std::optional<BitVec>
Profiler::craftPattern(std::size_t target_bit,
                       const std::set<std::size_t> &known_errors,
                       bool require_neighbor_constraint) const
{
    const std::size_t k = code_.k();
    const std::size_t n = code_.n();
    const std::size_t p = code_.numParityBits();
    BEER_ASSERT(target_bit < n);

    Solver solver;
    Encoder enc(solver);

    // Dataword variables.
    std::vector<Lit> d(k);
    for (std::size_t i = 0; i < k; ++i)
        d[i] = enc.fresh();

    // Charge state of each codeword cell (true-cells: charge == value).
    // Parity cells are XORs of data bits through the known P matrix.
    std::vector<Lit> charge(n);
    for (std::size_t i = 0; i < k; ++i)
        charge[i] = d[i];
    for (std::size_t r = 0; r < p; ++r) {
        std::vector<Lit> terms;
        for (std::size_t j = 0; j < k; ++j)
            if (code_.pMatrix().get(r, j))
                terms.push_back(d[j]);
        charge[k + r] = enc.mkXor(terms);
    }

    // Constraint 1: target CHARGED, physical neighbors DISCHARGED.
    enc.require(charge[target_bit]);
    if (require_neighbor_constraint) {
        if (target_bit > 0)
            enc.require(~charge[target_bit - 1]);
        if (target_bit + 1 < n)
            enc.require(~charge[target_bit + 1]);
    }

    // Constraint 2: a miscorrection is observable if the target fails
    // together with some subset of the known error cells.
    // Selector s_e: cell e participates in the hypothetical raw-error
    // pattern. Selected cells must be CHARGED (only CHARGED cells can
    // decay).
    std::vector<std::size_t> candidates(known_errors.begin(),
                                        known_errors.end());
    if (!known_errors.count(target_bit))
        candidates.push_back(target_bit);

    std::vector<Lit> selectors(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        selectors[i] = enc.fresh();
        enc.requireImplies(selectors[i], charge[candidates[i]]);
        if (candidates[i] == target_bit)
            enc.require(selectors[i]);
    }

    // Syndrome of the hypothetical error pattern: XOR of the selected
    // cells' (constant, known) H columns.
    std::vector<Lit> syndrome(p);
    for (std::size_t r = 0; r < p; ++r) {
        std::vector<Lit> terms;
        for (std::size_t i = 0; i < candidates.size(); ++i)
            if (code_.hColumn(candidates[i]).get(r))
                terms.push_back(selectors[i]);
        syndrome[r] = enc.mkXor(terms);
    }

    // The syndrome must match the column of some DISCHARGED,
    // unselected data bit m: that is where the observable
    // miscorrection lands.
    std::vector<Lit> matches;
    for (std::size_t m = 0; m < k; ++m) {
        if (m == target_bit)
            continue;
        const BitVec col = code_.hColumn(m);
        std::vector<Lit> bits;
        bits.reserve(p + 1);
        for (std::size_t r = 0; r < p; ++r)
            bits.push_back(col.get(r) ? syndrome[r] : ~syndrome[r]);
        bits.push_back(~charge[m]); // m DISCHARGED (hence unselected)
        matches.push_back(enc.mkAnd(bits));
    }
    enc.require(matches);

    if (solver.solve() != sat::SolveResult::Sat)
        return std::nullopt;

    BitVec data(k);
    for (std::size_t i = 0; i < k; ++i)
        data.set(i, solver.modelValue(d[i].var()));
    return data;
}

std::optional<BitVec>
Profiler::craftAny(std::size_t target_bit,
                   const std::set<std::size_t> &known_errors) const
{
    std::optional<BitVec> pattern;
    if (config_.neighborConstraint)
        pattern = craftPattern(target_bit, known_errors, true);
    if (!pattern)
        pattern = craftPattern(target_bit, known_errors, false);
    return pattern;
}

std::optional<std::vector<std::size_t>>
Profiler::inferRawErrors(const BitVec &dataword, const BitVec &read) const
{
    const std::size_t k = code_.k();

    const BitVec diff = dataword ^ read;
    if (diff.isZero())
        return std::nullopt;

    const BitVec parity = code_.parityBits(dataword);

    // True-cells: a cell can only have decayed if its stored bit is 1.
    auto data_subset_charged = [&](const BitVec &e_d) {
        return e_d.isSubsetOf(dataword);
    };

    std::vector<std::vector<std::size_t>> interpretations;

    // Hypothesis family (a): the decoder miscorrected data bit m.
    for (std::size_t m : diff.support()) {
        BitVec e_d = diff;
        e_d.flip(m); // decoder flip removed: raw data errors
        if (!data_subset_charged(e_d))
            continue;
        // Equation 4: H*e = col_m and H = [P | I] give the unique
        // parity error component e_p = col_m xor P*e_d.
        BitVec e_p = code_.hColumn(m) ^ code_.pMatrix().mulVec(e_d);
        if (!e_p.isSubsetOf(parity))
            continue; // parity errors must be in CHARGED parity cells
        std::vector<std::size_t> cells = e_d.support();
        for (std::size_t r : e_p.support())
            cells.push_back(k + r);
        if (cells.empty())
            continue; // no raw error cannot trigger a correction
        interpretations.push_back(std::move(cells));
    }

    // Hypothesis family (b): the decoder did not flip any data bit
    // (it flipped a parity bit, detected-uncorrectable, or the errors
    // slipped through silently). Then the raw data errors are exactly
    // the observed diff; the parity component is unconstrained, so
    // this interpretation yields only the data-error positions. It is
    // viable only if all diff bits were CHARGED and some CHARGED
    // parity-error subset produces a syndrome that does not point at a
    // data bit.
    if (data_subset_charged(diff)) {
        const std::size_t charged_parity = parity.popcount();
        bool viable = false;
        if (charged_parity > 16) {
            viable = true; // too many subsets to refute; be conservative
        } else {
            const auto parity_support = parity.support();
            const BitVec base = code_.pMatrix().mulVec(diff);
            for (std::size_t sub = 0;
                 sub < ((std::size_t)1 << parity_support.size());
                 ++sub) {
                BitVec syndrome = base;
                for (std::size_t i = 0; i < parity_support.size(); ++i)
                    if ((sub >> i) & 1)
                        syndrome.flip(parity_support[i]);
                const std::size_t pos = code_.findColumn(syndrome);
                if (pos >= k) { // zero, parity hit, or no match
                    viable = true;
                    break;
                }
            }
        }
        if (viable)
            interpretations.push_back(diff.support());
    }

    if (interpretations.size() != 1)
        return std::nullopt; // ambiguous or impossible observation
    auto cells = interpretations.front();
    std::sort(cells.begin(), cells.end());
    return cells;
}

namespace
{

/** Fallback pattern: target CHARGED, neighbors DISCHARGED, rest random. */
BitVec
randomPattern(const LinearCode &code, std::size_t target,
              util::Rng &rng)
{
    const std::size_t k = code.k();
    BitVec data(k);
    for (std::size_t i = 0; i < k; ++i)
        data.set(i, rng.bernoulli(0.5));

    if (target < k) {
        data.set(target, true);
        if (target > 0)
            data.set(target - 1, false);
        if (target + 1 < k)
            data.set(target + 1, false);
    } else {
        // Parity target: make sure the parity cell ends up CHARGED by
        // flipping a data bit in its row if necessary.
        const std::size_t r = target - k;
        if (!code.parityBits(data).get(r)) {
            for (std::size_t j = 0; j < k; ++j) {
                if (code.pMatrix().get(r, j)) {
                    data.flip(j);
                    break;
                }
            }
        }
    }
    return data;
}

} // anonymous namespace

namespace
{

/** One in-flight concurrent craft. The task owns its inputs (a known-
 * set snapshot) and writes through a shared result slot, so dropping
 * the queue entry never invalidates anything the task touches. */
struct Prefetch
{
    /** Linear position pass * n + target this craft is meant for. */
    std::size_t pos = 0;
    /** known-set change count at launch; stale when it moved on. */
    std::uint64_t version = 0;
    std::shared_ptr<std::optional<BitVec>> out;
    util::ClaimableTask task;
};

} // anonymous namespace

BeepResult
Profiler::profile(WordUnderTest &word)
{
    const std::size_t n = code_.n();
    BeepResult result;
    std::set<std::size_t> known;

    // Per-target scratch, allocated once per profile() call and
    // reused across all passes * n targets.
    std::vector<BitVec> patterns;
    patterns.reserve(config_.readsPerPattern);
    std::vector<BitVec> reads;

    // Concurrent pattern crafting: while the current target's read
    // batch is on the DRAM, pool tasks craft patterns for the next
    // targets against a snapshot of `known`. A prefetch is only
    // honored when `known` has not changed since (crafting is a pure
    // function of the known set), so the pattern stream is identical
    // to serial crafting; mispredictions just fall back inline.
    const bool prefetching = config_.craftPool != nullptr &&
                             config_.satCrafting &&
                             config_.craftAhead > 0;
    std::deque<Prefetch> prefetches;
    std::uint64_t version = 0;
    const std::size_t total_positions = config_.passes * n;
    std::size_t cursor = 0; // next linear position to consider

    const auto top_up = [&](std::size_t current_pos) {
        if (!prefetching || known.empty())
            return;
        if (cursor <= current_pos)
            cursor = current_pos + 1;
        while (prefetches.size() < config_.craftAhead &&
               cursor < total_positions) {
            const std::size_t target = cursor % n;
            const std::size_t pos = cursor++;
            if (known.count(target))
                continue;
            Prefetch pf;
            pf.pos = pos;
            pf.version = version;
            pf.out = std::make_shared<std::optional<BitVec>>();
            pf.task = util::ClaimableTask(
                *config_.craftPool,
                [this, target, snapshot = known, out = pf.out] {
                    *out = craftAny(target, snapshot);
                });
            prefetches.push_back(std::move(pf));
        }
    };

    bool stopped = false;
    for (std::size_t pass = 0; pass < config_.passes && !stopped;
         ++pass) {
        for (std::size_t target = 0; target < n; ++target) {
            const std::size_t pos = pass * n + target;
            if (known.count(target)) {
                // Skipped turn: any prefetch aimed here is now moot.
                while (!prefetches.empty() &&
                       prefetches.front().pos <= pos) {
                    prefetches.front().task.cancel();
                    prefetches.pop_front();
                    ++result.prefetchDiscards;
                }
                continue; // already identified as error-prone
            }

            std::optional<BitVec> pattern;
            if (config_.satCrafting && !known.empty()) {
                bool served = false;
                while (!prefetches.empty() &&
                       prefetches.front().pos < pos) {
                    prefetches.front().task.cancel();
                    prefetches.pop_front();
                    ++result.prefetchDiscards;
                }
                if (!prefetches.empty() &&
                    prefetches.front().pos == pos) {
                    Prefetch pf = std::move(prefetches.front());
                    prefetches.pop_front();
                    if (pf.version == version) {
                        pf.task.join();
                        pattern = *pf.out;
                        served = true;
                        ++result.prefetchedPatterns;
                    } else {
                        pf.task.cancel();
                        ++result.prefetchDiscards;
                    }
                }
                if (!served)
                    pattern = craftAny(target, known);
            }
            const bool crafted = pattern.has_value();
            if (!crafted) {
                ++result.skippedTargets; // SAT found no pattern
                pattern = randomPattern(code_, target, rng_);
            }
            ++result.patternsTested;

            // All of this pattern's test cycles run as one batch on
            // the word's bitsliced engine (one lane-parallel decode
            // instead of readsPerPattern scalar ones). Crafted
            // patterns repeat; fallback patterns carry no crafted
            // structure, so redraw them per read — with deterministic
            // failures (P[error] = 1) repeated reads of one pattern
            // are identical and add no information. The Rng draw
            // order matches the former read-at-a-time loop: the
            // profiler's pattern stream and the word's decay stream
            // are separate Rngs, so hoisting the draws is invisible.
            patterns.clear();
            for (std::size_t rep = 0; rep < config_.readsPerPattern;
                 ++rep)
                patterns.push_back(rep == 0 || crafted
                                       ? *pattern
                                       : randomPattern(code_, target,
                                                       rng_));
            // Queue upcoming targets' crafts now so they run on the
            // pool while the read batch below occupies the DRAM.
            top_up(pos);
            word.testMany(patterns.data(), patterns.size(), reads);

            const std::size_t usable =
                std::min(patterns.size(), reads.size());
            for (std::size_t rep = 0; rep < usable; ++rep) {
                ++result.reads;
                const auto inferred =
                    inferRawErrors(patterns[rep], reads[rep]);
                if (!inferred)
                    continue;
                ++result.informativeReads;
                for (std::size_t cell : *inferred)
                    if (known.insert(cell).second)
                        ++version; // invalidates in-flight prefetches
            }
            if (reads.size() < patterns.size()) {
                stopped = true; // backend quit early (shutdown request)
                break;
            }
        }
    }

    for (Prefetch &pf : prefetches)
        pf.task.cancel();

    result.errorCells.assign(known.begin(), known.end());
    return result;
}

} // namespace beer::beep
