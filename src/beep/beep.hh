/**
 * @file
 * BEEP: Bit-Exact Error Profiling (paper Section 7.1).
 *
 * Given the ECC function recovered by BEER, BEEP determines the number
 * and bit-exact locations of pre-correction error-prone cells in an
 * ECC word — including cells in the inaccessible parity bits — purely
 * from post-correction observations. It iterates over every codeword
 * bit, crafting a test pattern per bit with a SAT solver such that:
 *
 *  1. the target cell is CHARGED and its neighbors DISCHARGED
 *     (worst-case coupling conditions), and
 *  2. if the target fails together with some combination of the
 *     already-identified error cells, an observable miscorrection
 *     results in a DISCHARGED data bit.
 *
 * Observed miscorrections are inverted through the parity-check matrix
 * (paper Equation 4): a miscorrection at data bit m implies the raw
 * error pattern e satisfies H*e = H_col(m), whose parity component has
 * exactly one solution because H has full rank.
 */

#ifndef BEER_BEEP_BEEP_HH
#define BEER_BEEP_BEEP_HH

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "beep/word_under_test.hh"
#include "ecc/linear_code.hh"
#include "gf2/bitvec.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace beer::beep
{

/** Profiling knobs. */
struct BeepConfig
{
    /** Passes over the codeword (Figure 8 evaluates 1 vs 2). */
    std::size_t passes = 2;
    /** Test cycles per crafted pattern (catches P[error] < 1 cells). */
    std::size_t readsPerPattern = 8;
    /**
     * Craft patterns with the SAT solver (paper behaviour). When
     * false, random codeword-consistent patterns are used instead —
     * the ablation mode of the Figure 8 bench.
     */
    bool satCrafting = true;
    /** Enforce the worst-case-coupling neighbor constraint. */
    bool neighborConstraint = true;
    std::uint64_t seed = 1;
    /**
     * Craft upcoming targets' SAT patterns on pool tasks while the
     * current target's read batch runs on the DRAM (nullptr = serial
     * crafting between measurements). Results are bit-identical to
     * serial: per-target crafting depends only on the known error set,
     * so a prefetched pattern is used only when that set is unchanged
     * since the prefetch launched; stale prefetches are discarded and
     * the pattern re-crafted inline. Must outlive the profile() call.
     */
    util::ThreadPool *craftPool = nullptr;
    /** Targets crafted ahead of the measurement cursor (craftPool). */
    std::size_t craftAhead = 2;
};

/** Profiling output. */
struct BeepResult
{
    /** Identified error-prone codeword positions, sorted. */
    std::vector<std::size_t> errorCells;
    /** Patterns actually tested. */
    std::size_t patternsTested = 0;
    /** Total test cycles. */
    std::size_t reads = 0;
    /** Reads that yielded an unambiguous miscorrection inference. */
    std::size_t informativeReads = 0;
    /** Target bits skipped because no suitable pattern existed. */
    std::size_t skippedTargets = 0;
    /** Patterns served by a concurrent prefetch (craftPool mode). */
    std::size_t prefetchedPatterns = 0;
    /** Prefetches dropped (known set changed, or target identified
     * as error-prone before its turn). */
    std::size_t prefetchDiscards = 0;
};

/** BEEP profiler bound to a known (BEER-recovered) ECC function. */
class Profiler
{
  public:
    Profiler(const ecc::LinearCode &code, const BeepConfig &config = {});

    /** Profile one word for error-prone cells. */
    BeepResult profile(WordUnderTest &word);

    /**
     * Craft a dataword targeting @p target_bit given the currently
     * known error cells (exposed for tests and the pattern-crafting
     * use case of paper Section 7.2.2).
     *
     * @return std::nullopt if no pattern satisfies the constraints
     */
    std::optional<gf2::BitVec>
    craftPattern(std::size_t target_bit,
                 const std::set<std::size_t> &known_errors,
                 bool require_neighbor_constraint) const;

    /**
     * craftPattern() with the profiling loop's fallback chain: honor
     * the neighbor constraint when configured, relax it when no
     * pattern satisfies it. Pure function of (target, known_errors):
     * no Rng draws, no mutable Profiler state — safe to call from
     * several threads at once (the prefetch path does).
     */
    std::optional<gf2::BitVec>
    craftAny(std::size_t target_bit,
             const std::set<std::size_t> &known_errors) const;

    /**
     * Interpret one observation: given the written dataword and the
     * post-correction read, infer raw error positions (Equation 4).
     * Returns inferred codeword error positions, or std::nullopt when
     * the observation is ambiguous (multiple interpretations) or
     * uninformative (no difference).
     */
    std::optional<std::vector<std::size_t>>
    inferRawErrors(const gf2::BitVec &dataword,
                   const gf2::BitVec &read) const;

  private:
    const ecc::LinearCode &code_;
    BeepConfig config_;
    mutable util::Rng rng_;
};

} // namespace beer::beep

#endif // BEER_BEEP_BEEP_HH
