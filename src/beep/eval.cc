#include "beep/eval.hh"

#include <algorithm>
#include <vector>

#include "ecc/hamming.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace beer::beep
{

namespace
{

/** Evaluate one random code/word and accumulate into @p result. */
void
evaluateOneWord(const EvalPoint &point, std::size_t n, std::size_t k,
                const BeepConfig &base_config, util::Rng &rng,
                EvalResult &result)
{
    const ecc::LinearCode code = ecc::randomSecCode(k, rng);

    // Plant numErrors distinct cells uniformly over the codeword.
    std::vector<std::size_t> cells(n);
    for (std::size_t i = 0; i < n; ++i)
        cells[i] = i;
    for (std::size_t i = 0; i < point.numErrors; ++i) {
        const std::size_t j =
            i + (std::size_t)rng.below(cells.size() - i);
        std::swap(cells[i], cells[j]);
    }
    cells.resize(point.numErrors);
    std::sort(cells.begin(), cells.end());

    SimulatedWord word(code, cells, point.failProb, rng.next());

    BeepConfig config = base_config;
    config.passes = point.passes;
    config.seed = rng.next();
    Profiler profiler(code, config);
    const BeepResult beep = profiler.profile(word);

    result.words += 1;
    result.totalPlanted += cells.size();
    result.totalIdentified += beep.errorCells.size();
    if (beep.errorCells == cells)
        result.successes += 1;
}

} // anonymous namespace

EvalResult
evaluateBeep(const EvalPoint &point, std::size_t num_words,
             const BeepConfig &base_config, util::Rng &rng,
             const EvalConfig &eval)
{
    // Full-length codeword: n = 2^p - 1, k = n - p.
    const std::size_t n = point.codewordLength;
    std::size_t p = 0;
    while (((std::size_t)1 << (p + 1)) - 1 <= n)
        ++p;
    BEER_ASSERT(((std::size_t)1 << p) - 1 == n);
    const std::size_t k = n - p;
    BEER_ASSERT(point.numErrors <= n);

    if (num_words == 0)
        return {};

    // Deterministic sharding, same discipline as the simulation
    // engine: fork one stream per shard in shard order, run shards on
    // any thread, merge in shard order.
    const std::size_t shard_words =
        std::max<std::size_t>(1, eval.wordsPerShard);
    const std::size_t num_shards =
        (num_words + shard_words - 1) / shard_words;

    std::vector<util::Rng> shard_rngs;
    shard_rngs.reserve(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s)
        shard_rngs.push_back(rng.fork());

    std::vector<EvalResult> shard_results(num_shards);
    auto run_shard = [&](std::size_t s) {
        const std::size_t begin = s * shard_words;
        const std::size_t count =
            std::min(shard_words, num_words - begin);
        EvalResult local;
        for (std::size_t w = 0; w < count; ++w)
            evaluateOneWord(point, n, k, base_config, shard_rngs[s],
                            local);
        shard_results[s] = local;
    };

    if (eval.pool && num_shards > 1) {
        eval.pool->parallelFor(num_shards, run_shard);
    } else if (eval.threads == 1 || num_shards == 1) {
        for (std::size_t s = 0; s < num_shards; ++s)
            run_shard(s);
    } else {
        util::ThreadPool pool(eval.threads);
        pool.parallelFor(num_shards, run_shard);
    }

    EvalResult total;
    for (const EvalResult &shard : shard_results) {
        total.words += shard.words;
        total.successes += shard.successes;
        total.totalIdentified += shard.totalIdentified;
        total.totalPlanted += shard.totalPlanted;
    }
    return total;
}

} // namespace beer::beep
