#include "beep/eval.hh"

#include <algorithm>
#include <vector>

#include "ecc/hamming.hh"
#include "util/logging.hh"

namespace beer::beep
{

EvalResult
evaluateBeep(const EvalPoint &point, std::size_t num_words,
             const BeepConfig &base_config, util::Rng &rng)
{
    // Full-length codeword: n = 2^p - 1, k = n - p.
    const std::size_t n = point.codewordLength;
    std::size_t p = 0;
    while (((std::size_t)1 << (p + 1)) - 1 <= n)
        ++p;
    BEER_ASSERT(((std::size_t)1 << p) - 1 == n);
    const std::size_t k = n - p;
    BEER_ASSERT(point.numErrors <= n);

    EvalResult result;
    for (std::size_t w = 0; w < num_words; ++w) {
        const ecc::LinearCode code = ecc::randomSecCode(k, rng);

        // Plant numErrors distinct cells uniformly over the codeword.
        std::vector<std::size_t> cells(n);
        for (std::size_t i = 0; i < n; ++i)
            cells[i] = i;
        for (std::size_t i = 0; i < point.numErrors; ++i) {
            const std::size_t j =
                i + (std::size_t)rng.below(cells.size() - i);
            std::swap(cells[i], cells[j]);
        }
        cells.resize(point.numErrors);
        std::sort(cells.begin(), cells.end());

        SimulatedWord word(code, cells, point.failProb, rng.next());

        BeepConfig config = base_config;
        config.passes = point.passes;
        config.seed = rng.next();
        Profiler profiler(code, config);
        const BeepResult beep = profiler.profile(word);

        result.words += 1;
        result.totalPlanted += cells.size();
        result.totalIdentified += beep.errorCells.size();
        if (beep.errorCells == cells)
            result.successes += 1;
    }
    return result;
}

} // namespace beer::beep
