/**
 * @file
 * BEEP success-rate evaluation harness (paper Figures 8 and 9).
 *
 * Monte-Carlo evaluation matching Section 7.1.4: for each
 * configuration, simulate words with N planted error-prone cells
 * (per-bit failure probability P[error]) and measure how often BEEP
 * identifies the full set of planted cells.
 */

#ifndef BEER_BEEP_EVAL_HH
#define BEER_BEEP_EVAL_HH

#include <cstddef>
#include <cstdint>

#include "beep/beep.hh"
#include "util/rng.hh"

namespace beer::beep
{

/** One evaluation configuration (one bar of Figure 8/9). */
struct EvalPoint
{
    /** Codeword length n; must be of full-length form 2^p - 1. */
    std::size_t codewordLength = 63;
    /** Errors injected per codeword. */
    std::size_t numErrors = 3;
    /** Per-trial failure probability of each injected cell. */
    double failProb = 1.0;
    /** BEEP passes. */
    std::size_t passes = 1;
};

/** Aggregate outcome over the evaluated words. */
struct EvalResult
{
    std::size_t words = 0;
    std::size_t successes = 0;
    /** Identified-cell count summed over words (diagnostics). */
    std::size_t totalIdentified = 0;
    /** Planted-cell count summed over words. */
    std::size_t totalPlanted = 0;

    double successRate() const
    {
        return words ? (double)successes / (double)words : 0.0;
    }
};

/**
 * Evaluate BEEP on @p num_words random codes/words at @p point.
 * Success for a word means the identified set equals the planted set
 * exactly (bit-exact recovery, including parity positions).
 */
EvalResult evaluateBeep(const EvalPoint &point, std::size_t num_words,
                        const BeepConfig &base_config, util::Rng &rng);

} // namespace beer::beep

#endif // BEER_BEEP_EVAL_HH
