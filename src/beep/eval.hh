/**
 * @file
 * BEEP success-rate evaluation harness (paper Figures 8 and 9).
 *
 * Monte-Carlo evaluation matching Section 7.1.4: for each
 * configuration, simulate words with N planted error-prone cells
 * (per-bit failure probability P[error]) and measure how often BEEP
 * identifies the full set of planted cells.
 *
 * Words are independent, so the driver shards them exactly like the
 * simulation engine shards Monte-Carlo words: fixed-size shards, one
 * Rng::fork()ed stream per shard keyed by shard index, results
 * merged in shard order — totals are bit-identical for every thread
 * count. Each word's test cycles run batched on the bitsliced engine
 * (see WordUnderTest::testMany).
 */

#ifndef BEER_BEEP_EVAL_HH
#define BEER_BEEP_EVAL_HH

#include <cstddef>
#include <cstdint>

#include "beep/beep.hh"
#include "util/rng.hh"

namespace beer::util
{
class ThreadPool;
} // namespace beer::util

namespace beer::beep
{

/** One evaluation configuration (one bar of Figure 8/9). */
struct EvalPoint
{
    /** Codeword length n; must be of full-length form 2^p - 1. */
    std::size_t codewordLength = 63;
    /** Errors injected per codeword. */
    std::size_t numErrors = 3;
    /** Per-trial failure probability of each injected cell. */
    double failProb = 1.0;
    /** BEEP passes. */
    std::size_t passes = 1;
};

/** Aggregate outcome over the evaluated words. */
struct EvalResult
{
    std::size_t words = 0;
    std::size_t successes = 0;
    /** Identified-cell count summed over words (diagnostics). */
    std::size_t totalIdentified = 0;
    /** Planted-cell count summed over words. */
    std::size_t totalPlanted = 0;

    double successRate() const
    {
        return words ? (double)successes / (double)words : 0.0;
    }
};

/** Scheduling knobs for the sharded evaluation driver. */
struct EvalConfig
{
    /**
     * Worker threads (including the caller); 0 means all hardware
     * threads. Results are bit-identical for every value. Ignored
     * when @ref pool is set.
     */
    std::size_t threads = 1;
    /**
     * Optional non-owning pool, so sweeps evaluating many points
     * (fig8/fig9) reuse one set of workers across calls.
     */
    util::ThreadPool *pool = nullptr;
    /**
     * Words per deterministic shard. One word per shard maximizes
     * parallelism; a word's SAT-crafted profiling dwarfs the
     * per-shard Rng fork, so there is no reason to batch more.
     */
    std::size_t wordsPerShard = 1;
};

/**
 * Evaluate BEEP on @p num_words random codes/words at @p point.
 * Success for a word means the identified set equals the planted set
 * exactly (bit-exact recovery, including parity positions).
 */
EvalResult evaluateBeep(const EvalPoint &point, std::size_t num_words,
                        const BeepConfig &base_config, util::Rng &rng,
                        const EvalConfig &eval = {});

} // namespace beer::beep

#endif // BEER_BEEP_EVAL_HH
