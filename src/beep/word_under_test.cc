#include "beep/word_under_test.hh"

#include <algorithm>

#include "ecc/decoder.hh"
#include "sim/engine.hh"
#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/signal.hh"

namespace beer::beep
{

using gf2::BitVec;

void
WordUnderTest::testMany(const BitVec *datawords, std::size_t count,
                        std::vector<BitVec> &out)
{
    out.clear();
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(test(datawords[i]));
}

SimulatedWord::SimulatedWord(const ecc::LinearCode &code,
                             std::vector<std::size_t> error_cells,
                             double fail_prob, std::uint64_t seed,
                             FaultModel fault)
    : code_(code),
      errorCells_(std::move(error_cells)),
      failProb_(fail_prob),
      rng_(seed),
      fault_(fault)
{
    std::sort(errorCells_.begin(), errorCells_.end());
    for (std::size_t cell : errorCells_)
        BEER_ASSERT(cell < code_.n());
}

BitVec
SimulatedWord::test(const BitVec &dataword)
{
    BitVec codeword = code_.encode(dataword);
    // All true-cells: a stored '1' is CHARGED and may decay to '0';
    // a stuck-at-DISCHARGED cell reads '0' unconditionally.
    for (std::size_t cell : errorCells_) {
        if (!codeword.get(cell))
            continue;
        const bool fails = fault_ == FaultModel::StuckAtDischarged
                               ? true
                               : rng_.bernoulli(failProb_);
        if (fails)
            codeword.set(cell, false);
    }
    return ecc::decode(code_, codeword).dataword;
}

void
SimulatedWord::testMany(const BitVec *datawords, std::size_t count,
                        std::vector<BitVec> &out)
{
    out.clear();
    if (count == 0)
        return;
    const std::size_t n = code_.n();
    const std::size_t k = code_.k();
    if (!decoder_) {
        decoder_ = std::make_unique<ecc::BitslicedDecoder>(code_);
        // Resolve once per word (BEEP has no per-call width knob; the
        // BEER_SIMD override steers it like everything else). The
        // concrete backend makes later dispatches env-scan-free.
        capBackend_ = sim::engineKernel(util::simd::Backend::Auto)
                          .backend;
    }

    out.reserve(count);
    std::size_t done = 0;
    while (done < count) {
        // Narrowest kernel covering the remaining trials, capped at
        // the resolved backend: batches are readsPerPattern-sized
        // (typically 8), and eight trials should not pay for 512
        // lanes of kernel work.
        const sim::EngineKernel &kernel =
            sim::engineKernelForLanes(capBackend_, count - done);
        const std::size_t W = kernel.words;
        const std::size_t chunk =
            std::min(count - done, kernel.lanes);

        // Only planted-cell rows are ever set; clear just those when
        // the buffers already have the right shape (no reallocation
        // in the steady state).
        if (errorLanes_.size() != n * W) {
            errorLanes_.assign(n * W, 0);
        } else {
            for (const std::size_t cell : errorCells_)
                std::fill_n(&errorLanes_[cell * W], W, 0);
        }
        decodeLanes_.prepare(n, W);

        // Inject decays trial-major so the Rng stream is exactly the
        // one `count` sequential test() calls would consume.
        for (std::size_t t = 0; t < chunk; ++t) {
            const BitVec &data = datawords[done + t];
            if (t == 0 || !(data == datawords[done + t - 1]))
                codewordScratch_ = code_.encode(data);
            for (const std::size_t cell : errorCells_) {
                if (!codewordScratch_.get(cell))
                    continue;
                const bool fails =
                    fault_ == FaultModel::StuckAtDischarged
                        ? true
                        : rng_.bernoulli(failProb_);
                if (fails)
                    errorLanes_[cell * W + t / 64] |=
                        (std::uint64_t)1 << (t & 63);
            }
        }

        kernel.decodeBatch(*decoder_, errorLanes_.data(), decodeLanes_);

        // read = dataword ^ (error ^ correction) over data bits: the
        // code is systematic, so the post-correction dataword differs
        // from the written one exactly where raw error and decoder
        // flip disagree in the first k positions.
        for (std::size_t t = 0; t < chunk; ++t)
            out.push_back(datawords[done + t]);
        for (std::size_t bit = 0; bit < k; ++bit) {
            const std::uint64_t *err = &errorLanes_[bit * W];
            const std::uint64_t *corr = &decodeLanes_.correction[bit * W];
            for (std::size_t j = 0; j < W; ++j) {
                std::uint64_t m = err[j] ^ corr[j];
                while (m) {
                    const std::size_t lane =
                        j * 64 + (std::size_t)util::ctz64(m);
                    m &= m - 1;
                    out[done + lane].flip(bit);
                }
            }
        }
        done += chunk;
    }
}

MemoryWordUnderTest::MemoryWordUnderTest(dram::MemoryInterface &mem,
                                         std::size_t word_index,
                                         double pause_seconds,
                                         double temp_c)
    : mem_(mem),
      wordIndex_(word_index),
      pauseSeconds_(pause_seconds),
      tempC_(temp_c)
{
    BEER_ASSERT(word_index < mem.numWords());
}

BitVec
MemoryWordUnderTest::test(const BitVec &dataword)
{
    mem_.writeDataword(wordIndex_, dataword);
    mem_.pauseRefresh(pauseSeconds_, tempC_);
    return mem_.readDataword(wordIndex_);
}

void
MemoryWordUnderTest::testMany(const BitVec *datawords,
                              std::size_t count,
                              std::vector<BitVec> &out)
{
    out.clear();
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        if (util::shutdownRequested())
            return; // partial batch; callers see out.size() < count
        out.push_back(test(datawords[i]));
    }
}

} // namespace beer::beep
