#include "beep/word_under_test.hh"

#include <algorithm>

#include "ecc/decoder.hh"
#include "util/logging.hh"

namespace beer::beep
{

using gf2::BitVec;

SimulatedWord::SimulatedWord(const ecc::LinearCode &code,
                             std::vector<std::size_t> error_cells,
                             double fail_prob, std::uint64_t seed,
                             FaultModel fault)
    : code_(code),
      errorCells_(std::move(error_cells)),
      failProb_(fail_prob),
      rng_(seed),
      fault_(fault)
{
    std::sort(errorCells_.begin(), errorCells_.end());
    for (std::size_t cell : errorCells_)
        BEER_ASSERT(cell < code_.n());
}

BitVec
SimulatedWord::test(const BitVec &dataword)
{
    BitVec codeword = code_.encode(dataword);
    // All true-cells: a stored '1' is CHARGED and may decay to '0';
    // a stuck-at-DISCHARGED cell reads '0' unconditionally.
    for (std::size_t cell : errorCells_) {
        if (!codeword.get(cell))
            continue;
        const bool fails = fault_ == FaultModel::StuckAtDischarged
                               ? true
                               : rng_.bernoulli(failProb_);
        if (fails)
            codeword.set(cell, false);
    }
    return ecc::decode(code_, codeword).dataword;
}

MemoryWordUnderTest::MemoryWordUnderTest(dram::MemoryInterface &mem,
                                         std::size_t word_index,
                                         double pause_seconds,
                                         double temp_c)
    : mem_(mem),
      wordIndex_(word_index),
      pauseSeconds_(pause_seconds),
      tempC_(temp_c)
{
    BEER_ASSERT(word_index < mem.numWords());
}

BitVec
MemoryWordUnderTest::test(const BitVec &dataword)
{
    mem_.writeDataword(wordIndex_, dataword);
    mem_.pauseRefresh(pauseSeconds_, tempC_);
    return mem_.readDataword(wordIndex_);
}

} // namespace beer::beep
