/**
 * @file
 * The single-ECC-word test interface BEEP drives, plus the simulated
 * implementation used for evaluation.
 *
 * BEEP's unit of work is one ECC word: program a dataword, pause
 * refresh, read the post-correction dataword back. SimulatedWord is
 * the stand-in for a real word with unknown error-prone cells: a set
 * of planted cells each fails (CHARGED -> DISCHARGED) independently
 * with a configurable probability on every trial, matching the paper's
 * Figures 8-9 methodology (N injected errors per codeword with per-bit
 * error probability P[error]).
 */

#ifndef BEER_BEEP_WORD_UNDER_TEST_HH
#define BEER_BEEP_WORD_UNDER_TEST_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "dram/memory_interface.hh"
#include "ecc/bitsliced.hh"
#include "ecc/bitsliced_kernel.hh"
#include "ecc/linear_code.hh"
#include "gf2/bitvec.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace beer::beep
{

/** One ECC word reachable only through write/pause/read cycles. */
class WordUnderTest
{
  public:
    virtual ~WordUnderTest() = default;

    /**
     * Run one full test cycle: program @p dataword, pause refresh long
     * enough for error-prone cells to fail, and read back through the
     * on-die ECC decoder.
     *
     * @return the post-correction dataword
     */
    virtual gf2::BitVec test(const gf2::BitVec &dataword) = 0;

    /**
     * Run @p count test cycles, one per entry of @p datawords, and
     * fill @p out with the post-correction reads in order. Must be
     * observably identical to count sequential test() calls —
     * including Rng stream consumption — so batching is purely a
     * throughput knob; the default implementation is that loop.
     * Simulated backends override it to decode all cycles in one pass
     * of the bitsliced engine (BEEP's readsPerPattern cycles share
     * one decode call instead of paying the scalar decoder each).
     */
    virtual void testMany(const gf2::BitVec *datawords,
                          std::size_t count,
                          std::vector<gf2::BitVec> &out);
};

/**
 * Fault behaviour of a planted weak cell (paper Section 7.1.5
 * discusses extending BEEP beyond retention errors).
 */
enum class FaultModel
{
    /** CHARGED cell decays with the configured probability. */
    Retention,
    /**
     * Cell always reads back the DISCHARGED value. Externally this is
     * indistinguishable from a Retention cell with failure
     * probability 1.0 — the ambiguity the paper calls out ("data-
     * retention errors and stuck-at-DISCHARGED errors" are "nearly
     * indistinguishable"); tests/test_beep.cc asserts it.
     */
    StuckAtDischarged,
};

/** Simulated word with planted error-prone cells (all true-cells). */
class SimulatedWord : public WordUnderTest
{
  public:
    /**
     * @param code          ground-truth ECC function (used to encode/
     *                      decode inside the simulated chip)
     * @param error_cells   codeword positions of error-prone cells
     * @param fail_prob     per-trial failure probability of a CHARGED
     *                      error-prone cell (Retention model)
     * @param seed          RNG seed
     * @param fault         fault behaviour of the planted cells
     */
    SimulatedWord(const ecc::LinearCode &code,
                  std::vector<std::size_t> error_cells, double fail_prob,
                  std::uint64_t seed,
                  FaultModel fault = FaultModel::Retention);

    gf2::BitVec test(const gf2::BitVec &dataword) override;

    /**
     * Batched cycles on the bitsliced engine: inject decays
     * trial-major (the exact Rng order of sequential test() calls),
     * decode every trial in one lane-parallel kernel call, and
     * reconstruct each read as dataword ^ (raw error ^ correction)
     * restricted to data bits. Lane-for-lane kernel equivalence makes
     * this bit-identical to the scalar loop.
     */
    void testMany(const gf2::BitVec *datawords, std::size_t count,
                  std::vector<gf2::BitVec> &out) override;

    const std::vector<std::size_t> &errorCells() const
    {
        return errorCells_;
    }

  private:
    const ecc::LinearCode &code_;
    std::vector<std::size_t> errorCells_;
    double failProb_;
    util::Rng rng_;
    FaultModel fault_;
    /** Lazily built engine state, reused across testMany batches. */
    std::unique_ptr<ecc::BitslicedDecoder> decoder_;
    /**
     * Widest backend this word may use, resolved (BEER_SIMD, CPUID)
     * once alongside decoder_ — resolution scans the environment, and
     * testMany sits on BEEP's hottest loop.
     */
    util::simd::Backend capBackend_ = util::simd::Backend::Auto;
    std::vector<std::uint64_t> errorLanes_;
    ecc::WideDecodeLanes decodeLanes_;
    gf2::BitVec codewordScratch_;
};

/**
 * Adapter that drives one ECC word of any dram::MemoryInterface
 * backend, so BEEP can profile a word of a simulated chip, a replayed
 * trace, or a fault-injection proxy through the same WordUnderTest
 * seam it uses for SimulatedWord.
 */
class MemoryWordUnderTest : public WordUnderTest
{
  public:
    /**
     * @param mem            backend holding the word
     * @param word_index     word to exercise
     * @param pause_seconds  refresh-pause length per test cycle
     * @param temp_c         test temperature
     */
    MemoryWordUnderTest(dram::MemoryInterface &mem,
                        std::size_t word_index, double pause_seconds,
                        double temp_c);

    gf2::BitVec test(const gf2::BitVec &dataword) override;

    /**
     * Sequential cycles (a refresh pause cannot be batched on real
     * hardware), but responsive to util::requestShutdown() between
     * cycles: a batch against a slow chip stops at the next cycle
     * boundary and returns the reads finished so far (out.size() <
     * count), matching measureProfile()'s pattern-boundary behavior.
     */
    void testMany(const gf2::BitVec *datawords, std::size_t count,
                  std::vector<gf2::BitVec> &out) override;

  private:
    dram::MemoryInterface &mem_;
    std::size_t wordIndex_;
    double pauseSeconds_;
    double tempC_;
};

} // namespace beer::beep

#endif // BEER_BEEP_WORD_UNDER_TEST_HH
