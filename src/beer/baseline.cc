#include "beer/baseline.hh"

#include "gf2/matrix.hh"
#include "util/logging.hh"

namespace beer
{

using gf2::BitVec;
using gf2::Matrix;

InjectionRecovery
recoverBySyndromeInjection(std::size_t n, std::size_t k,
                           const SyndromeOracle &oracle)
{
    BEER_ASSERT(n > k && k >= 1);
    const std::size_t p = n - k;

    // Each 1-hot injection reveals one column of H (Equation 2).
    Matrix h(p, n);
    std::size_t probes = 0;
    for (std::size_t i = 0; i < n; ++i) {
        BitVec error(n);
        error.set(i, true);
        const BitVec syndrome = oracle(error);
        ++probes;
        BEER_ASSERT(syndrome.size() == p);
        h.setCol(i, syndrome);
    }

    // Normalize to standard form [P | I]: the parity columns of a
    // systematic code are unit vectors, but the syndrome register's
    // bit order may differ from the parity-bit order; permute rows so
    // that probing parity bit c yields unit vector e_c.
    const Matrix parity_part = h.colRange(k, p);
    Matrix p_matrix(p, k);
    std::vector<bool> used(p, false);
    for (std::size_t c = 0; c < p; ++c) {
        const BitVec col = parity_part.col(c);
        if (col.popcount() != 1)
            util::fatal("recoverBySyndromeInjection: oracle is not a "
                        "systematic standard-form code");
        const std::size_t old_row = col.firstSet();
        if (used[old_row])
            util::fatal("recoverBySyndromeInjection: duplicate parity "
                        "column");
        used[old_row] = true;
        for (std::size_t j = 0; j < k; ++j)
            p_matrix.set(c, j, h.get(old_row, j));
    }

    InjectionRecovery out{ecc::LinearCode(std::move(p_matrix)), probes};
    return out;
}

SyndromeOracle
makeOracle(const ecc::LinearCode &code)
{
    return [&code](const BitVec &error_pattern) {
        return code.syndrome(error_pattern);
    };
}

} // namespace beer
