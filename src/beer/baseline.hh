/**
 * @file
 * Baseline ECC-function recovery by direct error injection (paper
 * Section 4.1, the approach of Cojocar et al. for rank-level ECC).
 *
 * When the tester can (a) inject errors into arbitrary codeword bits
 * (e.g. on the DDR bus) and (b) observe the resulting error syndrome,
 * the parity-check matrix falls out column by column: injecting e_i
 * into any codeword yields syndrome H*_i (paper Equation 2).
 *
 * On-die ECC permits neither capability — parity bits are not
 * addressable and syndromes are invisible — which is exactly the gap
 * BEER closes. This module implements the baseline so the bench can
 * compare the two regimes' requirements and probe counts.
 */

#ifndef BEER_BEER_BASELINE_HH
#define BEER_BEER_BASELINE_HH

#include <cstddef>
#include <functional>

#include "ecc/linear_code.hh"
#include "gf2/bitvec.hh"

namespace beer
{

/**
 * Oracle abstraction for the §4.1 testing setup: inject an error
 * pattern into a stored codeword and obtain the decoder's syndrome.
 * For rank-level ECC this is realized on real systems via the memory
 * controller's error reporting (machine-check registers).
 */
using SyndromeOracle =
    std::function<gf2::BitVec(const gf2::BitVec &error_pattern)>;

/** Result of a baseline recovery run. */
struct InjectionRecovery
{
    ecc::LinearCode code;
    /** Oracle probes used (== n for the direct method). */
    std::size_t probes = 0;
};

/**
 * Recover the full (n, k) parity-check matrix by probing all n 1-hot
 * error patterns. Requires only that the oracle implements a linear
 * code's syndrome function.
 */
InjectionRecovery recoverBySyndromeInjection(std::size_t n,
                                             std::size_t k,
                                             const SyndromeOracle &oracle);

/** Build a syndrome oracle from a known code (for tests/benches). */
SyndromeOracle makeOracle(const ecc::LinearCode &code);

} // namespace beer

#endif // BEER_BEER_BASELINE_HH
