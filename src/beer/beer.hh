/**
 * @file
 * Umbrella header and end-to-end BEER pipeline.
 *
 * recoverEccFunction() performs the full methodology of the paper
 * against a (simulated) DRAM chip: measure the miscorrection profile
 * with the 1-CHARGED patterns, solve, and — if the code is shortened
 * and the solution is not yet unique — extend the measurement with the
 * 2-CHARGED patterns and re-solve (Section 4.2.4). It is a thin
 * wrapper over beer::Session (session.hh), which exposes the same
 * methodology as explicit measure/solve/escalate stages over any
 * dram::MemoryInterface backend, with adaptive early exit.
 */

#ifndef BEER_BEER_BEER_HH
#define BEER_BEER_BEER_HH

#include <cstdint>
#include <vector>

#include "beer/discovery.hh"
#include "beer/measure.hh"
#include "beer/patterns.hh"
#include "beer/profile.hh"
#include "beer/session.hh"
#include "beer/solver.hh"
#include "dram/chip.hh"

namespace beer
{

/** Options for the end-to-end recovery pipeline. */
struct RecoveryOptions
{
    MeasureConfig measure = MeasureConfig::paperDefault();
    BeerSolverConfig solver;
    /**
     * Add 2-CHARGED patterns when the 1-CHARGED profile does not
     * identify a unique function (needed for shortened codes).
     */
    bool escalateToTwoCharged = true;
};

/**
 * Run BEER end-to-end against @p chip through its external interface,
 * with the legacy full-sweep schedule (no adaptive early exit) and the
 * chip's ground-truth true-cell rows as the word subset.
 */
RecoveryReport recoverEccFunction(dram::Chip &chip,
                                  const RecoveryOptions &options = {});

} // namespace beer

#endif // BEER_BEER_BEER_HH
