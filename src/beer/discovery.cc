#include "beer/discovery.hh"

#include <numeric>

#include "util/logging.hh"

namespace beer
{

using dram::CellType;
using dram::MemoryInterface;

std::vector<std::size_t>
CellTypeSurvey::trueRows() const
{
    std::vector<std::size_t> out;
    for (std::size_t r = 0; r < rowTypes.size(); ++r)
        if (rowTypes[r] == CellType::True)
            out.push_back(r);
    return out;
}

std::vector<std::size_t>
CellTypeSurvey::trueCellWords(const dram::AddressMap &map) const
{
    BEER_ASSERT(rowTypes.size() == map.rows);
    std::vector<std::size_t> out;
    for (std::size_t w = 0; w < map.numWords(); ++w)
        if (rowTypes[map.rowOfWord(w)] == CellType::True)
            out.push_back(w);
    return out;
}

namespace
{

/** Count post-correction bit errors per row under @p fill,
 * accumulated over @p repeats fill/pause/read rounds. */
std::vector<std::uint64_t>
errorsPerRow(MemoryInterface &chip, std::uint8_t fill, double pause,
             double temp_c, std::size_t repeats)
{
    const auto &map = chip.addressMap();
    std::vector<std::uint64_t> errors(map.rows, 0);

    for (std::size_t rep = 0; rep < repeats; ++rep) {
        chip.fill(fill);
        chip.pauseRefresh(pause, temp_c);
        for (std::size_t addr = 0; addr < chip.numBytes(); ++addr) {
            const std::uint8_t got = chip.readByte(addr);
            if (got == fill)
                continue;
            const std::size_t row = addr / map.bytesPerRow;
            errors[row] += (std::uint64_t)__builtin_popcount(
                (unsigned)(got ^ fill));
        }
    }
    return errors;
}

} // anonymous namespace

CellTypeSurvey
discoverCellTypes(MemoryInterface &chip, double pause, double temp_c,
                  std::size_t repeats)
{
    CellTypeSurvey survey;
    // All-ones data charges true-cells only; all-zeros charges
    // anti-cells only. Whichever fill decays identifies the encoding.
    survey.onesErrors = errorsPerRow(chip, 0xFF, pause, temp_c, repeats);
    survey.zerosErrors =
        errorsPerRow(chip, 0x00, pause, temp_c, repeats);

    const std::size_t rows = survey.onesErrors.size();
    survey.rowTypes.resize(rows, CellType::True);
    for (std::size_t r = 0; r < rows; ++r) {
        // Ties (no errors either way) default to true-cell; callers
        // should use a pause long enough that every row shows errors
        // under exactly one fill.
        survey.rowTypes[r] = survey.zerosErrors[r] > survey.onesErrors[r]
                                 ? CellType::Anti
                                 : CellType::True;
    }
    return survey;
}

WordLayoutSurvey
discoverWordLayout(MemoryInterface &chip, const CellTypeSurvey &types, double pause,
                   double temp_c, std::size_t repeats)
{
    const auto &map = chip.addressMap();
    const std::size_t row_bytes = map.bytesPerRow;

    WordLayoutSurvey survey;
    survey.coOccurrence.assign(row_bytes,
                               std::vector<std::uint64_t>(row_bytes, 0));

    // Only true-cell rows can be programmed fully DISCHARGED: writing
    // 0x00 zeroes the data *and* the parity (P*0 = 0). Anti-cell rows
    // always leave some parity cells CHARGED (parity is not directly
    // controllable), which would create background miscorrections
    // unrelated to the probe. The paper likewise performs its layout
    // analyses on true-cell regions; the word layout is uniform across
    // the chip.
    const std::vector<std::size_t> rows = types.trueRows();
    if (rows.empty())
        util::fatal("discoverWordLayout: no true-cell rows available");

    for (std::size_t probe = 0; probe < row_bytes; ++probe) {
        for (std::size_t rep = 0; rep < repeats; ++rep) {
            // Program: probe byte CHARGED, everything else DISCHARGED.
            for (std::size_t row : rows) {
                for (std::size_t b = 0; b < row_bytes; ++b) {
                    const std::size_t addr = row * row_bytes + b;
                    chip.writeByte(addr, b == probe ? 0xFF : 0x00);
                }
            }
            chip.pauseRefresh(pause, temp_c);

            // Any error at a byte offset other than the probe is a
            // miscorrection, which can only land inside the probe's
            // own ECC word.
            for (std::size_t row : rows) {
                for (std::size_t b = 0; b < row_bytes; ++b) {
                    const std::size_t addr = row * row_bytes + b;
                    const std::uint8_t expected =
                        b == probe ? 0xFF : 0x00;
                    if (chip.readByte(addr) != expected && b != probe)
                        ++survey.coOccurrence[probe][b];
                }
            }
        }
    }

    // Cluster byte offsets: union-find over observed co-occurrences.
    std::vector<std::size_t> parent(row_bytes);
    std::iota(parent.begin(), parent.end(), 0);
    auto find = [&](std::size_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    for (std::size_t a = 0; a < row_bytes; ++a)
        for (std::size_t b = 0; b < row_bytes; ++b)
            if (survey.coOccurrence[a][b] > 0)
                parent[find(a)] = find(b);

    survey.laneOfByteOffset.assign(row_bytes, SIZE_MAX);
    for (std::size_t b = 0; b < row_bytes; ++b) {
        const std::size_t root = find(b);
        if (survey.laneOfByteOffset[root] == SIZE_MAX) {
            survey.laneOfByteOffset[root] = survey.wordGroups.size();
            survey.wordGroups.emplace_back();
        }
        survey.laneOfByteOffset[b] = survey.laneOfByteOffset[root];
        survey.wordGroups[survey.laneOfByteOffset[b]].push_back(b);
    }
    return survey;
}

} // namespace beer
