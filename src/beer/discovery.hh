/**
 * @file
 * Pre-BEER reverse-engineering steps (paper Sections 5.1.1-5.1.2).
 *
 * Before measuring miscorrection profiles, BEER must determine, through
 * the chip's external interface alone:
 *
 *  1. the CHARGED/DISCHARGED encoding of each cell (true- vs anti-cell
 *     rows), by writing all-0s / all-1s and observing which rows decay
 *     under a long refresh pause;
 *  2. the layout of ECC datawords in the address space, by charging one
 *     byte at a time and observing which other byte positions exhibit
 *     miscorrections — miscorrections never cross an ECC word, so
 *     co-occurrence clusters byte offsets into words.
 */

#ifndef BEER_BEER_DISCOVERY_HH
#define BEER_BEER_DISCOVERY_HH

#include <cstddef>
#include <vector>

#include "dram/memory_interface.hh"
#include "dram/types.hh"

namespace beer
{

/** Result of the true-/anti-cell survey. */
struct CellTypeSurvey
{
    /** Inferred encoding per row. */
    std::vector<dram::CellType> rowTypes;
    /** Errors observed per row under the all-ones fill. */
    std::vector<std::uint64_t> onesErrors;
    /** Errors observed per row under the all-zeros fill. */
    std::vector<std::uint64_t> zerosErrors;

    /** Indices of rows inferred as true-cell rows. */
    std::vector<std::size_t> trueRows() const;

    /**
     * Word indices lying in inferred true-cell rows under @p map — the
     * word subset BEER measures, derived purely from external
     * observations (the hardware-faithful counterpart of
     * dram::trueCellWords()).
     */
    std::vector<std::size_t>
    trueCellWords(const dram::AddressMap &map) const;
};

/**
 * Determine each row's cell encoding by inducing retention errors
 * under complementary data fills.
 *
 * @param mem     backend under test (contents are destroyed)
 * @param pause   refresh-pause long enough for a clearly nonzero BER
 * @param temp_c  test temperature
 * @param repeats fill/pause/read rounds to accumulate per fill; one
 *                round can misclassify a marginal row on an unlucky
 *                error draw, and rounds multiply the separation
 */
CellTypeSurvey discoverCellTypes(dram::MemoryInterface &mem, double pause,
                                 double temp_c,
                                 std::size_t repeats = 3);

/** Result of the dataword-layout survey. */
struct WordLayoutSurvey
{
    /** Row-local byte offsets grouped by inferred ECC word. */
    std::vector<std::vector<std::size_t>> wordGroups;
    /**
     * Inferred word lane of each row-local byte offset (index into
     * wordGroups).
     */
    std::vector<std::size_t> laneOfByteOffset;
    /** Co-occurrence counts between byte offsets (diagnostics). */
    std::vector<std::vector<std::uint64_t>> coOccurrence;
};

/**
 * Determine which byte offsets within a row belong to the same ECC
 * word by observing miscorrection co-occurrence.
 *
 * @param mem      backend under test (contents are destroyed)
 * @param types    row-type survey from discoverCellTypes()
 * @param pause    refresh-pause long enough to cause uncorrectable
 *                 errors (multi-bit per word)
 * @param temp_c   test temperature
 * @param repeats  pause/read iterations per probed byte offset
 */
WordLayoutSurvey discoverWordLayout(dram::MemoryInterface &mem,
                                    const CellTypeSurvey &types,
                                    double pause, double temp_c,
                                    std::size_t repeats = 4);

} // namespace beer

#endif // BEER_BEER_DISCOVERY_HH
