#include "beer/measure.hh"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "dram/types.hh"
#include "sim/word_sim.hh"
#include "util/logging.hh"
#include "util/signal.hh"
#include "util/thread_pool.hh"

namespace beer
{

using gf2::BitVec;

MiscorrectionProfile
ProfileCounts::threshold(double min_probability) const
{
    MiscorrectionProfile profile;
    profile.k = k;
    profile.patterns.reserve(patterns.size());
    for (std::size_t p = 0; p < patterns.size(); ++p) {
        PatternProfile entry;
        entry.pattern = patterns[p];
        entry.suspect = suspect(p);
        entry.miscorrectable = BitVec(k);
        for (std::size_t bit = 0; bit < k; ++bit) {
            if (patternContains(patterns[p], bit))
                continue;
            if (probability(p, bit) > min_probability)
                entry.miscorrectable.set(bit, true);
        }
        profile.patterns.push_back(std::move(entry));
    }
    return profile;
}

double
ProfileCounts::probability(std::size_t pattern_idx, std::size_t bit) const
{
    BEER_ASSERT(pattern_idx < patterns.size() && bit < k);
    if (wordsTested[pattern_idx] == 0)
        return 0.0;
    return (double)errorCounts[pattern_idx][bit] /
           (double)wordsTested[pattern_idx];
}

void
ProfileCounts::merge(const ProfileCounts &other, MergeMode mode)
{
    if (k == 0 && patterns.empty()) {
        *this = other;
        return;
    }
    BEER_ASSERT(k == other.k);

    // Pre-quorum producers leave disagreements/votesSpent empty;
    // normalize to dense zero vectors so merging mixed-provenance
    // counts is safe.
    disagreements.resize(patterns.size(), 0);
    votesSpent.resize(patterns.size(), 0);
    const auto otherDisagreements = [&other](std::size_t p) {
        return p < other.disagreements.size() ? other.disagreements[p]
                                              : (std::uint64_t)0;
    };
    const auto otherVotesSpent = [&other](std::size_t p) {
        return p < other.votesSpent.size() ? other.votesSpent[p]
                                           : (std::uint64_t)0;
    };

    std::unordered_map<TestPattern, std::size_t, TestPatternHash> index;
    index.reserve(patterns.size() + other.patterns.size());
    for (std::size_t p = 0; p < patterns.size(); ++p)
        index.emplace(patterns[p], p);

    for (std::size_t p = 0; p < other.patterns.size(); ++p) {
        const auto it = index.find(other.patterns[p]);
        if (it == index.end()) {
            index.emplace(other.patterns[p], patterns.size());
            patterns.push_back(other.patterns[p]);
            errorCounts.push_back(other.errorCounts[p]);
            wordsTested.push_back(other.wordsTested[p]);
            disagreements.push_back(otherDisagreements(p));
            votesSpent.push_back(otherVotesSpent(p));
            continue;
        }
        // Overlap under AppendDisjoint is a caller bug: the caller
        // promised fresh patterns, and silently accumulating would
        // change this pattern's probability denominator.
#ifndef NDEBUG
        BEER_ASSERT(mode != MergeMode::AppendDisjoint);
#else
        (void)mode;
#endif
        const std::size_t at = it->second;
        wordsTested[at] += other.wordsTested[p];
        disagreements[at] += otherDisagreements(p);
        votesSpent[at] += otherVotesSpent(p);
        for (std::size_t bit = 0; bit < k; ++bit)
            errorCounts[at][bit] += other.errorCounts[p][bit];
    }
}

std::uint64_t
ProfileCounts::totalObservations() const
{
    return std::accumulate(wordsTested.begin(), wordsTested.end(),
                           (std::uint64_t)0);
}

std::uint64_t
ProfileCounts::totalDisagreements() const
{
    return std::accumulate(disagreements.begin(), disagreements.end(),
                           (std::uint64_t)0);
}

std::uint64_t
ProfileCounts::totalVotesSpent() const
{
    return std::accumulate(votesSpent.begin(), votesSpent.end(),
                           (std::uint64_t)0);
}

void
ProfileCounts::removePatterns(const std::vector<TestPattern> &to_remove)
{
    if (to_remove.empty())
        return;
    std::unordered_map<TestPattern, std::size_t, TestPatternHash> gone;
    gone.reserve(to_remove.size());
    for (const TestPattern &pattern : to_remove)
        gone.emplace(pattern, 0);

    disagreements.resize(patterns.size(), 0);
    votesSpent.resize(patterns.size(), 0);
    std::size_t out = 0;
    for (std::size_t p = 0; p < patterns.size(); ++p) {
        if (gone.count(patterns[p]))
            continue;
        if (out != p) {
            patterns[out] = std::move(patterns[p]);
            errorCounts[out] = std::move(errorCounts[p]);
            wordsTested[out] = wordsTested[p];
            disagreements[out] = disagreements[p];
            votesSpent[out] = votesSpent[p];
        }
        ++out;
    }
    patterns.resize(out);
    errorCounts.resize(out);
    wordsTested.resize(out);
    disagreements.resize(out);
    votesSpent.resize(out);
}

MeasureConfig
MeasureConfig::paperDefault()
{
    MeasureConfig config;
    for (int minutes = 2; minutes <= 22; ++minutes)
        config.pausesSeconds.push_back(60.0 * minutes);
    config.temperatureC = 80.0;
    return config;
}

namespace
{

ProfileCounts
emptyCounts(std::size_t k, const std::vector<TestPattern> &patterns)
{
    ProfileCounts counts;
    counts.k = k;
    counts.patterns = patterns;
    counts.errorCounts.assign(patterns.size(),
                              std::vector<std::uint64_t>(k, 0));
    counts.wordsTested.assign(patterns.size(), 0);
    counts.disagreements.assign(patterns.size(), 0);
    counts.votesSpent.assign(patterns.size(), 0);
    return counts;
}

/**
 * Count per-bit mismatches of one planar read batch against the
 * written dataword, adding into @p error_counts. Plane pos mismatches
 * where its lane bits differ from data[pos], so the count is a
 * popcount of row XOR fill — identical arithmetic to the scalar
 * per-read loop, just 64 words at a time. Planes are independent and
 * the adds are integer, so sharding over @p pool is bit-identical at
 * any thread count.
 */
void
countMismatchesPlanar(const dram::PlanarReadBatch &batch,
                      const BitVec &data, std::size_t k,
                      std::vector<std::uint64_t> &error_counts,
                      util::ThreadPool *pool)
{
    const std::size_t lanes = batch.laneWords;
    const std::uint64_t tail =
        batch.count % 64 == 0
            ? ~std::uint64_t{0}
            : (~std::uint64_t{0} >> (64 - batch.count % 64));
    const auto countPlane = [&](std::size_t pos) {
        const std::uint64_t *row = batch.row(pos);
        const bool expected = data.get(pos);
        std::uint64_t mismatches = 0;
        for (std::size_t lw = 0; lw < lanes; ++lw) {
            std::uint64_t v = row[lw];
            if (expected)
                v ^= lw + 1 == lanes ? tail : ~std::uint64_t{0};
            mismatches += (std::uint64_t)__builtin_popcountll(v);
        }
        error_counts[pos] += mismatches;
    };
    if (pool)
        pool->parallelFor(k, countPlane);
    else
        for (std::size_t pos = 0; pos < k; ++pos)
            countPlane(pos);
}

/** One experiment's quorum verdict (see quorumVote). */
struct QuorumOutcome
{
    /** Any two votes returned differing data. */
    bool disagreed = false;
    /** Dataword read sweeps this experiment spent in total. */
    std::size_t reads = 1;
    /** The experiment escalated to the full vote count. */
    bool escalated = false;
};

/**
 * Quorum voting for one experiment. @p reads holds the first vote on
 * entry and the per-(word, bit) majority on return; additional votes
 * are read only here, so disabled quorum never reaches this function
 * and the historical single-read operation sequence is preserved
 * exactly.
 *
 * Fixed policy (quorum.adaptive == false): quorum.votes base reads,
 * any disagreement escalates straight to @c escalatedVotes.
 *
 * Adaptive policy: max(2, votes) base reads; on disagreement the
 * pattern's own smoothed disagreement rate — (@p prior_disagreements
 * + 1) / (@p prior_experiments + 1), counting this experiment — is
 * compared against @p estimate + quorum.escalateMargin. Only patterns
 * above the margin pay the full escalation; the rest settle for a
 * quorum.confirmVotes majority (enough to outvote one transient
 * flip). Zero-noise runs never disagree, so the first vote's data is
 * used unchanged and the counts stay bit-identical to votes == 1.
 */
QuorumOutcome
quorumVote(dram::MemoryInterface &mem,
           const std::vector<std::size_t> &words,
           const QuorumConfig &quorum, std::vector<BitVec> &reads,
           double estimate, std::uint64_t prior_disagreements,
           std::uint64_t prior_experiments)
{
    const std::size_t k = mem.datawordBits();
    const std::size_t base =
        quorum.adaptive ? std::max<std::size_t>(2, quorum.votes)
                        : quorum.votes;
    std::vector<std::vector<BitVec>> votes;
    votes.push_back(reads);

    QuorumOutcome outcome;
    std::vector<BitVec> extra;
    for (std::size_t v = 1; v < base; ++v) {
        mem.readDatawords(words.data(), words.size(), extra);
        outcome.disagreed = outcome.disagreed || extra != votes.front();
        votes.push_back(extra);
    }
    outcome.reads = votes.size();
    if (!outcome.disagreed)
        return outcome;

    // Buy more votes before taking the majority; clean experiments
    // never pay these reads. Under the adaptive policy the full
    // escalation is reserved for patterns disagreeing measurably more
    // often than the session as a whole.
    std::size_t target;
    if (!quorum.adaptive) {
        target = std::max(base, quorum.escalatedVotes);
        outcome.escalated = true;
    } else {
        const double observed =
            (double)(prior_disagreements + 1) /
            (double)(prior_experiments + 1);
        if (observed > estimate + quorum.escalateMargin) {
            target = std::max({base, quorum.confirmVotes,
                               quorum.escalatedVotes});
            outcome.escalated = true;
        } else {
            target = std::max(base, quorum.confirmVotes);
        }
    }
    while (votes.size() < target) {
        mem.readDatawords(words.data(), words.size(), extra);
        votes.push_back(extra);
    }
    outcome.reads = votes.size();

    // Per-(word, bit) majority; ties resolve to the first vote.
    const std::size_t n = votes.size();
    for (std::size_t w = 0; w < reads.size(); ++w) {
        for (std::size_t bit = 0; bit < k; ++bit) {
            std::size_t set = 0;
            for (std::size_t v = 0; v < n; ++v)
                if (votes[v][w].get(bit))
                    ++set;
            const bool majority = 2 * set == n
                                      ? votes.front()[w].get(bit)
                                      : 2 * set > n;
            reads[w].set(bit, majority);
        }
    }
    return outcome;
}

} // anonymous namespace

ProfileCounts
measureProfile(dram::MemoryInterface &mem,
               const std::vector<TestPattern> &patterns,
               const MeasureConfig &config,
               const std::vector<std::size_t> &words_under_test)
{
    const std::size_t k = mem.datawordBits();
    ProfileCounts counts = emptyCounts(k, patterns);

    // The adaptive schedule depends only on the estimator's seed
    // state and the observed read data: work on a local copy and
    // write it back on return, so a recorded run and its trace replay
    // (which reconstructs the seed from the trace meta) make the same
    // escalation decisions read for read.
    const bool use_quorum =
        config.quorum.votes > 1 || config.quorum.adaptive;
    QuorumEstimator estimator;
    if (config.estimator)
        estimator = *config.estimator;
    else
        estimator.rate = config.quorum.initialEstimate;

    // The paper's methodology tests true-cell regions (Section 5.1.3).
    // The caller supplies that subset — from discoverCellTypes() on
    // real/unknown backends, or dram::trueCellWords() in simulation; an
    // empty selection means "every word" (all-true-cell backends).
    std::vector<std::size_t> words = words_under_test;
    if (words.empty()) {
        words.resize(mem.numWords());
        std::iota(words.begin(), words.end(), (std::size_t)0);
    }
    BEER_ASSERT(!words.empty());

    // Fill and read through the batched interface seams: on the
    // transposed simulated chip both run on whole lane words (fills
    // broadcast into the planes, reads decode plane windows through
    // the wide kernel, sharded over the chip's worker threads);
    // everywhere else the default per-word loops keep the operation
    // sequence — and any recorded trace — identical to before.
    const auto writeBackEstimator = [&] {
        if (config.estimator)
            *config.estimator = estimator;
    };

    std::vector<BitVec> reads;
    for (std::size_t p = 0; p < patterns.size(); ++p) {
        // Honor a pending SIGINT/SIGTERM between patterns: a partial
        // profile still thresholds into usable constraints, whereas
        // dying mid-pattern would skew that pattern's denominator.
        if (util::shutdownRequested()) {
            util::warn("measurement interrupted: returning %zu of "
                       "%zu patterns",
                       p, patterns.size());
            break;
        }
        const BitVec data = datawordForPattern(patterns[p], k,
                                               dram::CellType::True);
        std::uint64_t experiments = 0;
        for (double pause : config.pausesSeconds) {
            for (std::size_t rep = 0; rep < config.repeatsPerPause;
                 ++rep) {
                if (config.cancel && config.cancel()) {
                    writeBackEstimator();
                    return counts;
                }
                mem.writeDatawordsBroadcast(words.data(), words.size(),
                                            data);
                mem.pauseRefresh(pause, config.temperatureC);
                // Planar fast path (single-vote only; quorum majority
                // logic wants materialized datawords): backends whose
                // read results already live in bit-plane layout (v2
                // trace replay) hand the frame over zero-copy and the
                // mismatch counting runs plane-parallel. Bookkeeping
                // is identical to the scalar branch below, and the
                // counting arithmetic is the same adds in a different
                // order-free grouping, so counts are bit-identical.
                dram::PlanarReadBatch planar;
                if (!use_quorum &&
                    mem.readDatawordsPlanar(words.data(), words.size(),
                                            planar)) {
                    ++counts.votesSpent[p];
                    ++estimator.votesSpent;
                    ++experiments;
                    counts.wordsTested[p] += words.size();
                    countMismatchesPlanar(planar, data, k,
                                          counts.errorCounts[p],
                                          config.pool);
                    continue;
                }
                mem.readDatawords(words.data(), words.size(), reads);
                if (use_quorum) {
                    const QuorumOutcome outcome = quorumVote(
                        mem, words, config.quorum, reads,
                        estimator.rate, counts.disagreements[p],
                        experiments);
                    if (outcome.disagreed)
                        ++counts.disagreements[p];
                    counts.votesSpent[p] += outcome.reads;
                    estimator.votesSpent += outcome.reads;
                    if (config.quorum.adaptive)
                        estimator.observe(outcome.disagreed,
                                          config.quorum.ewmaAlpha);
                    if (outcome.escalated)
                        ++estimator.escalations;
                    else if (outcome.disagreed)
                        ++estimator.confirmations;
                } else {
                    ++counts.votesSpent[p];
                    ++estimator.votesSpent;
                }
                ++experiments;
                counts.wordsTested[p] += words.size();
                for (const BitVec &read : reads) {
                    if (read == data)
                        continue;
                    for (std::size_t bit = 0; bit < k; ++bit)
                        if (read.get(bit) != data.get(bit))
                            ++counts.errorCounts[p][bit];
                }
            }
        }
    }
    writeBackEstimator();
    return counts;
}

ProfileCounts
measureProfileOnChip(dram::Chip &chip,
                     const std::vector<TestPattern> &patterns,
                     const MeasureConfig &config)
{
    const std::vector<std::size_t> words = dram::trueCellWords(chip);
    BEER_ASSERT(!words.empty());
    return measureProfile(chip, patterns, config, words);
}

namespace
{

using dram::formatTraceDouble;

/** Parse an unsigned integer from trace metadata; fatal on garbage. */
std::size_t
parseMetaSize(const std::string &text, const char *what)
{
    try {
        std::size_t consumed = 0;
        const unsigned long value = std::stoul(text, &consumed);
        if (consumed != text.size())
            throw std::invalid_argument(text);
        return (std::size_t)value;
    } catch (const std::exception &) {
        util::fatal("trace meta: malformed %s value '%s'", what,
                    text.c_str());
    }
}

/** Parse a double from trace metadata; fatal on garbage. */
double
parseMetaDouble(const std::string &text, const char *what)
{
    try {
        std::size_t consumed = 0;
        const double value = std::stod(text, &consumed);
        if (consumed != text.size())
            throw std::invalid_argument(text);
        return value;
    } catch (const std::exception &) {
        util::fatal("trace meta: malformed %s value '%s'", what,
                    text.c_str());
    }
}

std::string
serializePattern(const TestPattern &pattern)
{
    if (pattern.empty())
        return "-";
    std::string out;
    for (std::size_t i = 0; i < pattern.size(); ++i) {
        if (i)
            out += ',';
        out += std::to_string(pattern[i]);
    }
    return out;
}

TestPattern
parsePattern(const std::string &text)
{
    TestPattern pattern;
    if (text == "-")
        return pattern;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t next = text.find(',', pos);
        if (next == std::string::npos)
            next = text.size();
        pattern.push_back(parseMetaSize(text.substr(pos, next - pos),
                                        "pattern bit"));
        pos = next + 1;
    }
    return pattern;
}

std::vector<double>
parseDoubleCsv(const std::string &text, const char *what)
{
    std::vector<double> out;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t next = text.find(',', pos);
        if (next == std::string::npos)
            next = text.size();
        out.push_back(
            parseMetaDouble(text.substr(pos, next - pos), what));
        pos = next + 1;
    }
    return out;
}

/** Value of the meta line "<key> <value>", if present. */
std::optional<std::string>
metaValue(const dram::TraceReplayBackend &trace, const std::string &key)
{
    for (const std::string &line : trace.metaLines()) {
        if (line.size() > key.size() && line.compare(0, key.size(), key) == 0 &&
            line[key.size()] == ' ')
            return line.substr(key.size() + 1);
    }
    return std::nullopt;
}

} // anonymous namespace

ProfileCounts
recordProfileTrace(dram::MemoryInterface &mem,
                   const std::vector<TestPattern> &patterns,
                   const MeasureConfig &config,
                   const std::vector<std::size_t> &words_under_test,
                   std::ostream &out)
{
    return recordProfileTrace(mem, patterns, config, words_under_test,
                              out,
                              dram::TraceWriteOptions{
                                  dram::TraceFormat::V1, true});
}

ProfileCounts
recordProfileTrace(dram::MemoryInterface &mem,
                   const std::vector<TestPattern> &patterns,
                   const MeasureConfig &config,
                   const std::vector<std::size_t> &words_under_test,
                   std::ostream &out,
                   const dram::TraceWriteOptions &trace_options)
{
    dram::TraceRecorder recorder(mem, out, trace_options);

    std::string pauses;
    for (std::size_t i = 0; i < config.pausesSeconds.size(); ++i) {
        if (i)
            pauses += ',';
        pauses += formatTraceDouble(config.pausesSeconds[i]);
    }
    recorder.writeMeta("measure-pauses " + pauses);
    recorder.writeMeta("measure-temp " + formatTraceDouble(config.temperatureC));
    recorder.writeMeta("measure-repeats " +
                       std::to_string(config.repeatsPerPause));
    recorder.writeMeta("measure-threshold " +
                       formatTraceDouble(config.thresholdProbability));
    // Only quorum runs carry the meta line, keeping pre-quorum traces
    // byte-identical. Replay re-derives escalation from the recorded
    // read data itself, so the knobs alone reconstruct the schedule;
    // adaptive runs additionally persist the estimator seed (the only
    // other input to their escalation decisions).
    if (config.quorum.votes > 1 || config.quorum.adaptive) {
        std::string meta =
            "measure-quorum " + std::to_string(config.quorum.votes) +
            "," + std::to_string(config.quorum.escalatedVotes);
        if (config.quorum.adaptive) {
            const double seed_rate =
                config.estimator ? config.estimator->rate
                                 : config.quorum.initialEstimate;
            meta += ",adaptive," +
                    formatTraceDouble(config.quorum.ewmaAlpha) + "," +
                    formatTraceDouble(config.quorum.escalateMargin) +
                    "," + std::to_string(config.quorum.confirmVotes) +
                    "," + formatTraceDouble(seed_rate);
        }
        recorder.writeMeta(meta);
    }

    std::string serialized;
    for (std::size_t i = 0; i < patterns.size(); ++i) {
        if (i)
            serialized += ';';
        serialized += serializePattern(patterns[i]);
    }
    recorder.writeMeta("patterns " + serialized);

    std::string words;
    for (std::size_t i = 0; i < words_under_test.size(); ++i) {
        if (i)
            words += ',';
        words += std::to_string(words_under_test[i]);
    }
    recorder.writeMeta("words " + (words.empty() ? "all" : words));

    return measureProfile(recorder, patterns, config, words_under_test);
}

MeasureConfig
traceMeasureConfig(const dram::TraceReplayBackend &trace)
{
    const auto pauses = metaValue(trace, "measure-pauses");
    const auto temp = metaValue(trace, "measure-temp");
    const auto repeats = metaValue(trace, "measure-repeats");
    if (!pauses || !temp || !repeats)
        util::fatal("trace carries no measurement plan (missing "
                    "measure-* meta lines); was it recorded with "
                    "recordProfileTrace()?");

    MeasureConfig config;
    config.pausesSeconds = parseDoubleCsv(*pauses, "measure-pauses");
    config.temperatureC = parseMetaDouble(*temp, "measure-temp");
    config.repeatsPerPause =
        parseMetaSize(*repeats, "measure-repeats");
    if (const auto threshold = metaValue(trace, "measure-threshold"))
        config.thresholdProbability =
            parseMetaDouble(*threshold, "measure-threshold");
    if (const auto quorum = metaValue(trace, "measure-quorum")) {
        std::vector<std::string> fields;
        std::size_t pos = 0;
        while (pos <= quorum->size()) {
            std::size_t next = quorum->find(',', pos);
            if (next == std::string::npos)
                next = quorum->size();
            fields.push_back(quorum->substr(pos, next - pos));
            pos = next + 1;
        }
        if (fields.size() < 2 ||
            (fields.size() > 2 &&
             (fields.size() != 7 || fields[2] != "adaptive")))
            util::fatal("trace meta: malformed measure-quorum '%s'",
                        quorum->c_str());
        config.quorum.votes =
            parseMetaSize(fields[0], "measure-quorum votes");
        config.quorum.escalatedVotes =
            parseMetaSize(fields[1], "measure-quorum escalation");
        if (fields.size() == 7) {
            config.quorum.adaptive = true;
            config.quorum.ewmaAlpha =
                parseMetaDouble(fields[3], "measure-quorum alpha");
            config.quorum.escalateMargin =
                parseMetaDouble(fields[4], "measure-quorum margin");
            config.quorum.confirmVotes = parseMetaSize(
                fields[5], "measure-quorum confirm votes");
            config.quorum.initialEstimate = parseMetaDouble(
                fields[6], "measure-quorum seed estimate");
        }
    }
    return config;
}

ProfileCounts
replayProfileTrace(dram::TraceReplayBackend &trace,
                   util::ThreadPool *pool)
{
    MeasureConfig config = traceMeasureConfig(trace);
    config.pool = pool;

    const auto serialized = metaValue(trace, "patterns");
    if (!serialized)
        util::fatal("trace carries no 'patterns' meta line");
    std::vector<TestPattern> patterns;
    std::size_t pos = 0;
    while (pos <= serialized->size()) {
        std::size_t next = serialized->find(';', pos);
        if (next == std::string::npos)
            next = serialized->size();
        patterns.push_back(
            parsePattern(serialized->substr(pos, next - pos)));
        pos = next + 1;
    }

    std::vector<std::size_t> words;
    const auto words_text = metaValue(trace, "words");
    if (words_text && *words_text != "all") {
        std::size_t at = 0;
        while (at < words_text->size()) {
            std::size_t next = words_text->find(',', at);
            if (next == std::string::npos)
                next = words_text->size();
            words.push_back(parseMetaSize(
                words_text->substr(at, next - at), "words"));
            at = next + 1;
        }
    }

    ProfileCounts counts = measureProfile(trace, patterns, config, words);
    if (!trace.atEnd())
        util::warn("trace replay finished with %zu unconsumed "
                   "operations",
                   trace.remainingOps());
    return counts;
}

ProfileCounts
measureProfileSim(const ecc::LinearCode &code,
                  const std::vector<TestPattern> &patterns, double ber,
                  std::uint64_t words_per_pattern, util::Rng &rng,
                  const sim::SimConfig &sim_config)
{
    const std::size_t k = code.k();
    ProfileCounts counts = emptyCounts(k, patterns);

    // One pool for the whole sweep rather than one per pattern.
    sim::SimConfig config = sim_config;
    std::optional<util::ThreadPool> sweep_pool;
    if (!config.pool && config.threads != 1) {
        sweep_pool.emplace(config.threads);
        config.pool = &*sweep_pool;
    }

    for (std::size_t p = 0; p < patterns.size(); ++p) {
        const BitVec data = datawordForPattern(patterns[p], k,
                                               dram::CellType::True);
        const BitVec codeword = code.encode(data);
        const BitVec mask =
            sim::chargedMask(codeword, dram::CellType::True);
        const sim::WordSimStats stats = sim::simulateRetentionErrors(
            code, codeword, mask, ber, words_per_pattern, rng,
            config);
        counts.wordsTested[p] = stats.wordsSimulated;
        for (std::size_t bit = 0; bit < k; ++bit)
            counts.errorCounts[p][bit] +=
                stats.postCorrectionErrors[bit];
    }
    return counts;
}

} // namespace beer
