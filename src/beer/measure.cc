#include "beer/measure.hh"

#include "dram/types.hh"
#include "sim/word_sim.hh"
#include "util/logging.hh"

namespace beer
{

using gf2::BitVec;

MiscorrectionProfile
ProfileCounts::threshold(double min_probability) const
{
    MiscorrectionProfile profile;
    profile.k = k;
    profile.patterns.reserve(patterns.size());
    for (std::size_t p = 0; p < patterns.size(); ++p) {
        PatternProfile entry;
        entry.pattern = patterns[p];
        entry.miscorrectable = BitVec(k);
        for (std::size_t bit = 0; bit < k; ++bit) {
            if (patternContains(patterns[p], bit))
                continue;
            if (probability(p, bit) > min_probability)
                entry.miscorrectable.set(bit, true);
        }
        profile.patterns.push_back(std::move(entry));
    }
    return profile;
}

double
ProfileCounts::probability(std::size_t pattern_idx, std::size_t bit) const
{
    BEER_ASSERT(pattern_idx < patterns.size() && bit < k);
    if (wordsTested[pattern_idx] == 0)
        return 0.0;
    return (double)errorCounts[pattern_idx][bit] /
           (double)wordsTested[pattern_idx];
}

void
ProfileCounts::merge(const ProfileCounts &other)
{
    BEER_ASSERT(k == other.k && patterns == other.patterns);
    for (std::size_t p = 0; p < patterns.size(); ++p) {
        wordsTested[p] += other.wordsTested[p];
        for (std::size_t bit = 0; bit < k; ++bit)
            errorCounts[p][bit] += other.errorCounts[p][bit];
    }
}

MeasureConfig
MeasureConfig::paperDefault()
{
    MeasureConfig config;
    for (int minutes = 2; minutes <= 22; ++minutes)
        config.pausesSeconds.push_back(60.0 * minutes);
    config.temperatureC = 80.0;
    return config;
}

namespace
{

ProfileCounts
emptyCounts(std::size_t k, const std::vector<TestPattern> &patterns)
{
    ProfileCounts counts;
    counts.k = k;
    counts.patterns = patterns;
    counts.errorCounts.assign(patterns.size(),
                              std::vector<std::uint64_t>(k, 0));
    counts.wordsTested.assign(patterns.size(), 0);
    return counts;
}

} // anonymous namespace

ProfileCounts
measureProfileOnChip(dram::Chip &chip,
                     const std::vector<TestPattern> &patterns,
                     const MeasureConfig &config)
{
    const std::size_t k = chip.datawordBits();
    ProfileCounts counts = emptyCounts(k, patterns);

    // The paper's methodology uses true-cell regions (Section 5.1.3):
    // identify which words decay 1 -> 0. Cell types are discoverable
    // through the external interface (see discovery.hh); here we use
    // the ground-truth accessor purely to pick the word subset.
    std::vector<std::size_t> true_cell_words;
    for (std::size_t w = 0; w < chip.numWords(); ++w)
        if (chip.cellTypeOfWord(w) == dram::CellType::True)
            true_cell_words.push_back(w);
    BEER_ASSERT(!true_cell_words.empty());

    for (std::size_t p = 0; p < patterns.size(); ++p) {
        const BitVec data = datawordForPattern(patterns[p], k,
                                               dram::CellType::True);
        for (double pause : config.pausesSeconds) {
            for (std::size_t rep = 0; rep < config.repeatsPerPause;
                 ++rep) {
                for (std::size_t w : true_cell_words)
                    chip.writeDataword(w, data);
                chip.pauseRefresh(pause, config.temperatureC);
                for (std::size_t w : true_cell_words) {
                    const BitVec read = chip.readDataword(w);
                    ++counts.wordsTested[p];
                    if (read == data)
                        continue;
                    for (std::size_t bit = 0; bit < k; ++bit)
                        if (read.get(bit) != data.get(bit))
                            ++counts.errorCounts[p][bit];
                }
            }
        }
    }
    return counts;
}

ProfileCounts
measureProfileSim(const ecc::LinearCode &code,
                  const std::vector<TestPattern> &patterns, double ber,
                  std::uint64_t words_per_pattern, util::Rng &rng)
{
    const std::size_t k = code.k();
    ProfileCounts counts = emptyCounts(k, patterns);

    for (std::size_t p = 0; p < patterns.size(); ++p) {
        const BitVec data = datawordForPattern(patterns[p], k,
                                               dram::CellType::True);
        const BitVec codeword = code.encode(data);
        const BitVec mask =
            sim::chargedMask(codeword, dram::CellType::True);
        const sim::WordSimStats stats = sim::simulateRetentionErrors(
            code, codeword, mask, ber, words_per_pattern, rng);
        counts.wordsTested[p] = stats.wordsSimulated;
        for (std::size_t bit = 0; bit < k; ++bit)
            counts.errorCounts[p][bit] +=
                stats.postCorrectionErrors[bit];
    }
    return counts;
}

} // namespace beer
