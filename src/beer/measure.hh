/**
 * @file
 * Experimental miscorrection-profile measurement (paper Steps 1-2).
 *
 * Runs BEER's testing loop — program a test pattern, lengthen the
 * refresh window, read back, count post-correction errors per bit —
 * either against a simulated dram::Chip (the end-to-end path, including
 * transient-noise pollution) or through the fast word simulator (the
 * EINSim path used for the large correctness sweeps). A threshold
 * filter (Section 5.2, Figure 4) converts raw counts into the binary
 * miscorrection profile consumed by the solver.
 */

#ifndef BEER_BEER_MEASURE_HH
#define BEER_BEER_MEASURE_HH

#include <cstdint>
#include <vector>

#include "beer/patterns.hh"
#include "beer/profile.hh"
#include "dram/chip.hh"
#include "ecc/linear_code.hh"
#include "util/rng.hh"

namespace beer
{

/** Raw per-(pattern, bit) observation counts before thresholding. */
struct ProfileCounts
{
    std::size_t k = 0;
    std::vector<TestPattern> patterns;
    /** errorCounts[p][bit]: observed post-correction errors. */
    std::vector<std::vector<std::uint64_t>> errorCounts;
    /** Words observed per pattern (denominator for probabilities). */
    std::vector<std::uint64_t> wordsTested;

    /**
     * Apply the threshold filter: bit j is miscorrectable under
     * pattern i iff errorCounts[i][j] / wordsTested[i] >
     * @p min_probability, excluding charged positions.
     */
    MiscorrectionProfile threshold(double min_probability) const;

    /** Observed error probability for (pattern, bit). */
    double probability(std::size_t pattern_idx, std::size_t bit) const;

    void merge(const ProfileCounts &other);
};

/** Configuration of a refresh-window sweep. */
struct MeasureConfig
{
    /** Refresh-pause durations to test, seconds. */
    std::vector<double> pausesSeconds;
    /** Ambient temperature during testing. */
    double temperatureC = 80.0;
    /** Read-back repeats per (pattern, pause). */
    std::size_t repeatsPerPause = 1;
    /** Threshold for ProfileCounts::threshold (relative frequency). */
    double thresholdProbability = 1e-3;

    /** Paper-like default: 2..22 minutes in 1-minute steps at 80C. */
    static MeasureConfig paperDefault();
};

/**
 * Measure profile counts on a simulated chip through its external
 * interface only (write datawords, pause refresh, read datawords).
 *
 * Only words in true-cell rows are used, matching the paper's
 * methodology. Every word of the chip is programmed with the same
 * pattern per experiment; each (pause, repeat) contributes one
 * observation per word.
 */
ProfileCounts measureProfileOnChip(dram::Chip &chip,
                                   const std::vector<TestPattern> &patterns,
                                   const MeasureConfig &config);

/**
 * Fast-path measurement through the word simulator: statistically
 * equivalent to testing @p words_per_pattern words of a chip whose
 * secret ECC function is @p code, at charged-cell bit error rate
 * @p ber. Used for the large simulation sweeps (Section 6.1).
 */
ProfileCounts measureProfileSim(const ecc::LinearCode &code,
                                const std::vector<TestPattern> &patterns,
                                double ber,
                                std::uint64_t words_per_pattern,
                                util::Rng &rng);

} // namespace beer

#endif // BEER_BEER_MEASURE_HH
