/**
 * @file
 * Experimental miscorrection-profile measurement (paper Steps 1-2).
 *
 * Runs BEER's testing loop — program a test pattern, lengthen the
 * refresh window, read back, count post-correction errors per bit —
 * against any dram::MemoryInterface backend (simulated chip, trace
 * replay, fault-injection proxy, ...), or through the fast word
 * simulator (the EINSim path used for the large correctness sweeps). A
 * threshold filter (Section 5.2, Figure 4) converts raw counts into the
 * binary miscorrection profile consumed by the solver.
 *
 * Measurement runs can also be recorded to / replayed from operation
 * traces (dram/trace.hh), mirroring the paper's released tooling for
 * applying BEER to experimental data collected elsewhere.
 */

#ifndef BEER_BEER_MEASURE_HH
#define BEER_BEER_MEASURE_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <vector>

#include "beer/patterns.hh"
#include "beer/profile.hh"
#include "dram/chip.hh"
#include "dram/memory_interface.hh"
#include "dram/trace.hh"
#include "ecc/linear_code.hh"
#include "sim/word_sim.hh"
#include "util/rng.hh"

namespace beer::util
{
class ThreadPool;
}

namespace beer
{

/** Raw per-(pattern, bit) observation counts before thresholding. */
struct ProfileCounts
{
    std::size_t k = 0;
    std::vector<TestPattern> patterns;
    /** errorCounts[p][bit]: observed post-correction errors. */
    std::vector<std::vector<std::uint64_t>> errorCounts;
    /** Words observed per pattern (denominator for probabilities). */
    std::vector<std::uint64_t> wordsTested;
    /**
     * disagreements[p]: experiments on pattern p where quorum votes
     * returned differing data (transient read noise caught in the
     * act). Empty when measured without quorum (pre-quorum producers);
     * treat missing entries as zero.
     */
    std::vector<std::uint64_t> disagreements;
    /**
     * votesSpent[p]: dataword read sweeps spent on pattern p across
     * all its experiments (1 per experiment without quorum, the base
     * vote count plus any confirm/escalation reads with it). The
     * adaptive-vs-fixed vote-spend comparison in bench/chaos_recovery
     * sums these. Empty for producers that predate the counter; treat
     * missing entries as zero.
     */
    std::vector<std::uint64_t> votesSpent;

    /** True iff quorum votes ever disagreed on this pattern. */
    bool suspect(std::size_t pattern_idx) const
    {
        return pattern_idx < disagreements.size() &&
               disagreements[pattern_idx] > 0;
    }

    /** Sum of per-pattern quorum disagreements. */
    std::uint64_t totalDisagreements() const;

    /** Sum of per-pattern read sweeps (vote spend). */
    std::uint64_t totalVotesSpent() const;

    /** Drop the listed patterns (counts, denominators, disagreements). */
    void removePatterns(const std::vector<TestPattern> &to_remove);

    /**
     * Apply the threshold filter: bit j is miscorrectable under
     * pattern i iff errorCounts[i][j] / wordsTested[i] >
     * @p min_probability, excluding charged positions.
     */
    MiscorrectionProfile threshold(double min_probability) const;

    /** Observed error probability for (pattern, bit). */
    double probability(std::size_t pattern_idx, std::size_t bit) const;

    /** How merge() treats patterns present in both operands. */
    enum class MergeMode
    {
        /**
         * Observation counts and denominators add: both operands
         * measured the same pattern over (independent) word
         * populations, and the union is one larger experiment.
         * Patterns only in @p other are appended. This is the safe
         * default — it is correct for disjoint pattern sets too.
         */
        Accumulate,
        /**
         * The caller asserts the pattern sets are disjoint (each
         * round measures new patterns, as beer::Session and the
         * {1,2}-CHARGED escalation do). Overlap is a caller bug —
         * accumulating would silently change probabilities'
         * denominators — and trips a debug-build assertion; release
         * builds fall back to accumulating.
         */
        AppendDisjoint,
    };

    /**
     * Merge @p other into this object under @p mode. Historically the
     * two modes were one implicit behavior — whether counts
     * accumulated or patterns appended depended silently on pattern
     * overlap; callers now state which contract they rely on.
     */
    void merge(const ProfileCounts &other,
               MergeMode mode = MergeMode::Accumulate);

    /** Total (pattern, word) observations across all patterns. */
    std::uint64_t totalObservations() const;
};

/**
 * Quorum-read configuration: how many times each experiment's read is
 * repeated and cross-checked to mask transient read noise.
 */
struct QuorumConfig
{
    /**
     * Reads per (pattern, pause, repeat) experiment. 1 disables quorum
     * entirely — the measurement loop is the exact pre-quorum code
     * path (same operation sequence, same traces). With votes >= 2 the
     * word data used for counting is the per-(word, bit) majority
     * across the votes.
     */
    std::size_t votes = 1;
    /**
     * Adaptive escalation: when any two votes disagree, the experiment
     * re-reads up to this many total votes before taking the majority,
     * so clean patterns pay votes reads and only noisy ones escalate.
     * Ties (possible with an even vote count) resolve to the first
     * vote's value. Clamped up to @c votes.
     */
    std::size_t escalatedVotes = 5;
    /**
     * Adaptive policy: instead of escalating every disagreeing
     * experiment straight to @c escalatedVotes, track a running
     * (EWMA) per-session disagreement-rate estimate and spend the
     * full escalation only on patterns whose own observed rate
     * exceeds that estimate by @c escalateMargin; other disagreeing
     * experiments settle for the cheaper @c confirmVotes majority.
     * The base read count is max(2, votes) — under zero noise the
     * two votes agree, the first vote's data is used unchanged, and
     * the thresholded profile is bit-identical to votes == 1.
     */
    bool adaptive = false;
    /** EWMA smoothing factor for the disagreement-rate estimate. */
    double ewmaAlpha = 0.2;
    /**
     * A pattern escalates to @c escalatedVotes only when its own
     * smoothed disagreement rate exceeds the running estimate by
     * this much (absolute rate margin).
     */
    double escalateMargin = 0.05;
    /**
     * Votes bought for a disagreeing experiment that stays below the
     * escalation margin: enough for a strict majority over a single
     * transient flip without paying the full escalation.
     */
    std::size_t confirmVotes = 3;
    /**
     * Seed for the disagreement-rate estimate when no estimator is
     * injected through MeasureConfig (trace replay reconstructs the
     * recording run's seed from the trace meta so the adaptive
     * schedule replays bit-identically).
     */
    double initialEstimate = 0.0;
};

/**
 * Running disagreement-rate estimator shared across measurement calls
 * (a beer::Session owns one for its whole multi-round run). Injected
 * via MeasureConfig::estimator; measureProfile() copies it in, updates
 * the copy as experiments complete, and writes it back on return, so
 * the adaptive schedule of one call depends only on the seed state and
 * the observed read data — the property trace replay relies on.
 */
struct QuorumEstimator
{
    /** EWMA of the per-experiment disagreement indicator. */
    double rate = 0.0;
    /** Experiments folded into the estimate. */
    std::uint64_t samples = 0;
    /** Total dataword read sweeps spent by quorum measurement. */
    std::uint64_t votesSpent = 0;
    /** Experiments that escalated to the full vote count. */
    std::uint64_t escalations = 0;
    /** Disagreeing experiments settled at the confirm tier. */
    std::uint64_t confirmations = 0;

    /** Fold one experiment's disagreement outcome into the EWMA. */
    void observe(bool disagreed, double alpha)
    {
        rate = (1.0 - alpha) * rate + (disagreed ? alpha : 0.0);
        ++samples;
    }
};

/** Configuration of a refresh-window sweep. */
struct MeasureConfig
{
    /** Refresh-pause durations to test, seconds. */
    std::vector<double> pausesSeconds;
    /** Ambient temperature during testing. */
    double temperatureC = 80.0;
    /** Read-back repeats per (pattern, pause). */
    std::size_t repeatsPerPause = 1;
    /** Threshold for ProfileCounts::threshold (relative frequency). */
    double thresholdProbability = 1e-3;
    /** Quorum reads (votes == 1 keeps the historical single read). */
    QuorumConfig quorum;
    /**
     * Optional adaptive-quorum estimator carried across calls (see
     * QuorumEstimator). Null runs the call self-contained, seeded
     * from quorum.initialEstimate. Ignored unless quorum.adaptive.
     */
    QuorumEstimator *estimator = nullptr;
    /**
     * Polled before each (pattern, pause, repeat) experiment; a true
     * return abandons the rest of the run and returns the counts
     * accumulated so far (a partially measured pattern keeps its
     * partial denominator). The pipelined session uses this to stop
     * speculative measurement the moment the solve running beside it
     * proves uniqueness — the round is discarded either way, so every
     * further refresh pause would be pure waste. Unset = never.
     */
    std::function<bool()> cancel;
    /**
     * Optional worker pool for the planar counting fast path: when the
     * backend serves reads as bit-plane frames (readDatawordsPlanar —
     * trace replay v2), the per-plane mismatch popcounts are sharded
     * across this pool. Counting is integer adds per independent
     * plane, so results are bit-identical at any thread count. Null
     * counts on the calling thread. Must not be a pool this call is
     * already running inside of (parallelFor is not reentrant).
     */
    util::ThreadPool *pool = nullptr;

    /** Paper-like default: 2..22 minutes in 1-minute steps at 80C. */
    static MeasureConfig paperDefault();
};

/**
 * Measure profile counts on any memory backend through the external
 * interface only (write datawords, pause refresh, read datawords).
 *
 * @p words_under_test selects the words to program and observe — the
 * true-cell subset in the paper's methodology, obtainable from
 * discoverCellTypes() (hardware-faithful) or dram::trueCellWords()
 * (simulation ground truth). An empty list tests every word, which is
 * correct only for all-true-cell backends. Every selected word is
 * programmed with the same pattern per experiment; each (pause, repeat)
 * contributes one observation per word.
 */
ProfileCounts
measureProfile(dram::MemoryInterface &mem,
               const std::vector<TestPattern> &patterns,
               const MeasureConfig &config,
               const std::vector<std::size_t> &words_under_test = {});

/**
 * Back-compat wrapper: measure on a simulated chip using its
 * ground-truth true-cell rows as the word subset.
 */
ProfileCounts measureProfileOnChip(dram::Chip &chip,
                                   const std::vector<TestPattern> &patterns,
                                   const MeasureConfig &config);

/**
 * Run measureProfile() while recording every backend operation (plus
 * "meta" lines describing the measurement plan) to @p out in the
 * requested dram/trace.hh format (v2 streams must be opened binary),
 * so the run can be replayed offline.
 */
ProfileCounts
recordProfileTrace(dram::MemoryInterface &mem,
                   const std::vector<TestPattern> &patterns,
                   const MeasureConfig &config,
                   const std::vector<std::size_t> &words_under_test,
                   std::ostream &out,
                   const dram::TraceWriteOptions &trace_options);

/** Back-compat overload recording in the historical v1 text format. */
ProfileCounts
recordProfileTrace(dram::MemoryInterface &mem,
                   const std::vector<TestPattern> &patterns,
                   const MeasureConfig &config,
                   const std::vector<std::size_t> &words_under_test,
                   std::ostream &out);

/**
 * Re-run a measurement recorded by recordProfileTrace() against the
 * trace itself: the measurement plan is reconstructed from the trace's
 * meta lines and the observations come from the recorded reads. The
 * result is bit-identical to what the recording run measured,
 * whichever format the trace is stored in.
 *
 * @p pool optionally shards the planar counting fast path (v2 traces)
 * across worker threads; see MeasureConfig::pool. Results stay
 * bit-identical at any thread count.
 */
ProfileCounts replayProfileTrace(dram::TraceReplayBackend &trace,
                                 util::ThreadPool *pool = nullptr);

/**
 * The measurement configuration stored in a recorded trace's meta
 * lines (pauses, temperature, repeats, threshold); fatal if the trace
 * carries no measurement plan.
 */
MeasureConfig traceMeasureConfig(const dram::TraceReplayBackend &trace);

/**
 * Fast-path measurement through the word simulator: statistically
 * equivalent to testing @p words_per_pattern words of a chip whose
 * secret ECC function is @p code, at charged-cell bit error rate
 * @p ber. Used for the large simulation sweeps (Section 6.1).
 * @p sim_config selects the simulation engine and thread count
 * (bitsliced, single-threaded by default); results are bit-identical
 * for every thread count.
 */
ProfileCounts measureProfileSim(const ecc::LinearCode &code,
                                const std::vector<TestPattern> &patterns,
                                double ber,
                                std::uint64_t words_per_pattern,
                                util::Rng &rng,
                                const sim::SimConfig &sim_config = {});

} // namespace beer

#endif // BEER_BEER_MEASURE_HH
