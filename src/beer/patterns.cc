#include "beer/patterns.hh"

#include <algorithm>

#include "util/logging.hh"

namespace beer
{

std::size_t
TestPatternHash::operator()(const TestPattern &pattern) const
{
    std::size_t hash = 14695981039346656037ULL;
    for (const std::size_t bit : pattern) {
        hash ^= bit;
        hash *= 1099511628211ULL;
    }
    return hash;
}

std::vector<TestPattern>
chargedPatterns(std::size_t k, std::size_t charged_count)
{
    BEER_ASSERT(charged_count >= 1 && charged_count <= k);
    std::vector<TestPattern> out;

    // Iterate all ascending index tuples of length charged_count.
    TestPattern current(charged_count);
    for (std::size_t i = 0; i < charged_count; ++i)
        current[i] = i;
    while (true) {
        out.push_back(current);
        // Advance to the next combination.
        std::size_t pos = charged_count;
        while (pos > 0) {
            --pos;
            if (current[pos] + (charged_count - pos) < k) {
                ++current[pos];
                for (std::size_t i = pos + 1; i < charged_count; ++i)
                    current[i] = current[i - 1] + 1;
                break;
            }
            if (pos == 0)
                return out;
        }
    }
}

std::vector<TestPattern>
chargedPatternUnion(std::size_t k,
                    const std::vector<std::size_t> &charged_counts)
{
    std::vector<TestPattern> out;
    for (std::size_t count : charged_counts) {
        auto patterns = chargedPatterns(k, count);
        out.insert(out.end(), patterns.begin(), patterns.end());
    }
    return out;
}

gf2::BitVec
datawordForPattern(const TestPattern &pattern, std::size_t k,
                   dram::CellType cell_type)
{
    using dram::CellType;
    // Start with every data cell DISCHARGED, then charge the pattern's
    // positions. For true-cells DISCHARGED = 0; for anti-cells = 1.
    gf2::BitVec data(k);
    if (cell_type == CellType::Anti)
        data = gf2::BitVec::ones(k);
    for (std::size_t bit : pattern) {
        BEER_ASSERT(bit < k);
        data.set(bit, cell_type == CellType::True);
    }
    return data;
}

bool
patternContains(const TestPattern &pattern, std::size_t bit)
{
    return std::binary_search(pattern.begin(), pattern.end(), bit);
}

} // namespace beer
