/**
 * @file
 * BEER test patterns.
 *
 * A test pattern is the set of data-bit positions programmed to the
 * CHARGED state (all other data bits DISCHARGED). The x-CHARGED pattern
 * classes of the paper (Section 4.2.3) are the weight-x subsets of the
 * k data bits: 1-CHARGED patterns suffice for full-length codes, and
 * the {1,2}-CHARGED union uniquely identifies shortened codes.
 */

#ifndef BEER_BEER_PATTERNS_HH
#define BEER_BEER_PATTERNS_HH

#include <cstddef>
#include <vector>

#include "dram/types.hh"
#include "gf2/bitvec.hh"

namespace beer
{

/** Charged data-bit positions of one test pattern, sorted ascending. */
using TestPattern = std::vector<std::size_t>;

/**
 * FNV-1a hash over a pattern's positions, for unordered containers
 * (e.g. the pattern index ProfileCounts::merge builds per call).
 */
struct TestPatternHash
{
    std::size_t operator()(const TestPattern &pattern) const;
};

/** All weight-@p charged_count patterns over @p k data bits. */
std::vector<TestPattern> chargedPatterns(std::size_t k,
                                         std::size_t charged_count);

/**
 * The union of x-CHARGED pattern classes for each x in
 * @p charged_counts, e.g. {1,2} for the paper's {1,2}-CHARGED
 * configuration.
 */
std::vector<TestPattern>
chargedPatternUnion(std::size_t k,
                    const std::vector<std::size_t> &charged_counts);

/**
 * Dataword (value domain) that programs @p pattern's cells CHARGED and
 * all other data cells DISCHARGED in cells of type @p cell_type.
 */
gf2::BitVec datawordForPattern(const TestPattern &pattern, std::size_t k,
                               dram::CellType cell_type);

/** True iff @p bit is one of @p pattern's charged positions. */
bool patternContains(const TestPattern &pattern, std::size_t bit);

} // namespace beer

#endif // BEER_BEER_PATTERNS_HH
