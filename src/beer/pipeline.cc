#include "beer/beer.hh"

#include "util/logging.hh"

namespace beer
{

RecoveryReport
recoverEccFunction(dram::Chip &chip, const RecoveryOptions &options)
{
    RecoveryReport report;
    const std::size_t k = chip.datawordBits();

    const auto one_charged = chargedPatterns(k, 1);
    report.counts =
        measureProfileOnChip(chip, one_charged, options.measure);
    report.profile =
        report.counts.threshold(options.measure.thresholdProbability);
    report.solve = solveForEccFunction(report.profile, options.solver);

    if (!report.solve.unique() && options.escalateToTwoCharged) {
        report.usedTwoCharged = true;
        const auto two_charged = chargedPatterns(k, 2);
        ProfileCounts extra =
            measureProfileOnChip(chip, two_charged, options.measure);
        // Merge the pattern sets into one {1,2}-CHARGED profile.
        report.counts.patterns.insert(report.counts.patterns.end(),
                                      extra.patterns.begin(),
                                      extra.patterns.end());
        report.counts.errorCounts.insert(report.counts.errorCounts.end(),
                                         extra.errorCounts.begin(),
                                         extra.errorCounts.end());
        report.counts.wordsTested.insert(report.counts.wordsTested.end(),
                                         extra.wordsTested.begin(),
                                         extra.wordsTested.end());
        report.profile = report.counts.threshold(
            options.measure.thresholdProbability);
        report.solve =
            solveForEccFunction(report.profile, options.solver);
    }
    return report;
}

} // namespace beer
