#include "beer/beer.hh"

#include "util/logging.hh"

namespace beer
{

RecoveryReport
recoverEccFunction(dram::Chip &chip, const RecoveryOptions &options)
{
    SessionConfig config;
    config.measure = options.measure;
    config.solver = options.solver;
    config.escalateToTwoCharged = options.escalateToTwoCharged;
    // Legacy semantics: full pattern sweep before each solve. The
    // session still reuses one incremental solve context across the
    // (at most two) solves, so the 2-CHARGED escalation re-solve only
    // encodes the new patterns.
    config.adaptiveEarlyExit = false;
    config.wordsUnderTest = dram::trueCellWords(chip);
    // An empty selection would silently mean "measure every word"
    // (wrong for anti-cell rows); the legacy path always required
    // true-cell words, so keep failing loudly.
    BEER_ASSERT(!config.wordsUnderTest.empty());

    Session session(chip, std::move(config));
    return session.run();
}

} // namespace beer
