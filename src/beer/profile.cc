#include "beer/profile.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace beer
{

using gf2::BitVec;

bool
miscorrectionPossible(const ecc::LinearCode &code,
                      const TestPattern &pattern, std::size_t bit)
{
    BEER_ASSERT(bit < code.k());
    BEER_ASSERT(!patternContains(pattern, bit));

    // U = xor of the charged data bits' H columns = charge pattern of
    // the parity cells.
    BitVec charged_parity(code.numParityBits());
    for (std::size_t i : pattern)
        charged_parity ^= code.hColumn(i);

    const BitVec col_j = code.hColumn(bit);

    // Check every subset T of pattern \ {first element}; complements
    // give identical conditions (v and v ^ U are subsets of supp(U)
    // together or not at all).
    const std::size_t reduced =
        pattern.empty() ? 0 : pattern.size() - 1;
    for (std::size_t subset = 0; subset < ((std::size_t)1 << reduced);
         ++subset) {
        BitVec v = col_j;
        for (std::size_t i = 0; i < reduced; ++i)
            if ((subset >> i) & 1)
                v ^= code.hColumn(pattern[i + 1]);
        if (v.isSubsetOf(charged_parity))
            return true;
    }
    return false;
}

bool
miscorrectionPossibleBruteForce(const ecc::LinearCode &code,
                                const TestPattern &pattern,
                                std::size_t bit)
{
    BEER_ASSERT(bit < code.k());
    BEER_ASSERT(!patternContains(pattern, bit));

    // Enumerate all error patterns over the charged cells: the charged
    // data bits plus the parity cells set by encoding.
    std::vector<std::size_t> charged_cells(pattern.begin(),
                                           pattern.end());
    BitVec charged_parity(code.numParityBits());
    for (std::size_t i : pattern)
        charged_parity ^= code.hColumn(i);
    for (std::size_t r = 0; r < code.numParityBits(); ++r)
        if (charged_parity.get(r))
            charged_cells.push_back(code.k() + r);

    BEER_ASSERT(charged_cells.size() <= 20);
    const BitVec target = code.hColumn(bit);
    for (std::size_t e = 1; e < ((std::size_t)1 << charged_cells.size());
         ++e) {
        BitVec syndrome(code.numParityBits());
        for (std::size_t i = 0; i < charged_cells.size(); ++i)
            if ((e >> i) & 1)
                syndrome ^= code.hColumn(charged_cells[i]);
        if (syndrome == target)
            return true;
    }
    return false;
}

MiscorrectionProfile
exhaustiveProfile(const ecc::LinearCode &code,
                  const std::vector<TestPattern> &patterns)
{
    MiscorrectionProfile profile;
    profile.k = code.k();
    profile.patterns.reserve(patterns.size());
    for (const TestPattern &pattern : patterns) {
        PatternProfile entry;
        entry.pattern = pattern;
        entry.miscorrectable = BitVec(code.k());
        for (std::size_t bit = 0; bit < code.k(); ++bit) {
            if (patternContains(pattern, bit))
                continue;
            if (miscorrectionPossible(code, pattern, bit))
                entry.miscorrectable.set(bit, true);
        }
        profile.patterns.push_back(std::move(entry));
    }
    return profile;
}

std::string
serializeProfile(const MiscorrectionProfile &profile)
{
    // Suspect markers bump the declared version so strict old readers
    // fail deliberately; marker-free profiles keep emitting version 2
    // byte-identically.
    bool any_suspect = false;
    for (const PatternProfile &entry : profile.patterns)
        any_suspect = any_suspect || entry.suspect;

    std::string out = "# BEER miscorrection profile\n";
    out += "version " +
           std::to_string(any_suspect ? kProfileFormatVersionMax
                                      : kProfileFormatVersion) +
           "\n";
    out += "k " + std::to_string(profile.k) + "\n";
    for (const PatternProfile &entry : profile.patterns) {
        std::string charged;
        for (std::size_t bit : entry.pattern) {
            if (!charged.empty())
                charged += ',';
            charged += std::to_string(bit);
        }
        out += charged + " " + entry.miscorrectable.toString();
        if (entry.suspect)
            out += " ?";
        out += "\n";
    }
    return out;
}

namespace
{

/** printf into a std::string (for ProfileParseStatus::error). */
std::string
formatError(const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    return buf;
}

} // anonymous namespace

ProfileParseStatus
tryParseProfile(std::istream &in, MiscorrectionProfile &out)
{
    MiscorrectionProfile profile;
    ProfileParseStatus status;
    std::string line;
    std::size_t line_no = 0;
    bool have_k = false;
    bool have_version = false;

    const auto fail = [&](std::string error) {
        status.ok = false;
        status.error = std::move(error);
        return status;
    };

    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments and whitespace-only lines.
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ss(line);
        std::string first;
        if (!(ss >> first))
            continue;

        // Optional "version <n>" line ahead of the k header; its
        // absence means the legacy version-1 format.
        if (!have_k && !have_version && first == "version") {
            std::size_t version = 0;
            if (!(ss >> version) || version == 0)
                return fail(formatError(
                    "profile line %zu: expected 'version <n>'",
                    line_no));
            if (version > kProfileFormatVersionMax)
                return fail(formatError(
                    "profile line %zu: unsupported format version %zu "
                    "(this build reads versions up to %zu)",
                    line_no, version, kProfileFormatVersionMax));
            status.version = version;
            have_version = true;
            continue;
        }

        if (!have_k) {
            std::size_t k = 0;
            if (first != "k" || !(ss >> k) || k == 0)
                return fail(formatError(
                    "profile line %zu: expected header 'k <bits>'",
                    line_no));
            profile.k = k;
            have_k = true;
            continue;
        }

        std::string bitmap;
        if (!(ss >> bitmap))
            return fail(formatError(
                "profile line %zu: expected '<charged-csv> <bitmap>'",
                line_no));
        if (bitmap.size() != profile.k)
            return fail(formatError(
                "profile line %zu: bitmap has %zu bits, expected %zu",
                line_no, bitmap.size(), profile.k));
        for (char c : bitmap)
            if (c != '0' && c != '1')
                return fail(formatError(
                    "profile line %zu: bitmap must be 0/1", line_no));

        PatternProfile entry;
        std::istringstream charged(first);
        std::string item;
        while (std::getline(charged, item, ',')) {
            char *end = nullptr;
            const unsigned long bit = std::strtoul(item.c_str(), &end,
                                                   10);
            if (!end || *end != '\0' || bit >= profile.k)
                return fail(formatError(
                    "profile line %zu: bad charged bit '%s'", line_no,
                    item.c_str()));
            entry.pattern.push_back(bit);
        }
        if (entry.pattern.empty())
            return fail(formatError("profile line %zu: empty pattern",
                                    line_no));
        std::sort(entry.pattern.begin(), entry.pattern.end());

        entry.miscorrectable = BitVec::fromString(bitmap);
        for (std::size_t bit : entry.pattern)
            if (entry.miscorrectable.get(bit))
                return fail(formatError(
                    "profile line %zu: charged bit %zu marked "
                    "miscorrectable",
                    line_no, bit));
        // Optional version-3 suspect marker; anything else trailing
        // is malformed (older parsers silently ignored trailing
        // tokens, which is exactly how payload corruption hides).
        std::string marker;
        if (ss >> marker) {
            if (marker != "?")
                return fail(formatError(
                    "profile line %zu: unexpected trailing token '%s'",
                    line_no, marker.c_str()));
            entry.suspect = true;
            std::string extra;
            if (ss >> extra)
                return fail(formatError(
                    "profile line %zu: unexpected trailing token '%s'",
                    line_no, extra.c_str()));
        }
        profile.patterns.push_back(std::move(entry));
    }

    if (!have_k)
        return fail("profile: missing 'k <bits>' header");
    status.ok = true;
    out = std::move(profile);
    return status;
}

MiscorrectionProfile
parseProfile(std::istream &in)
{
    MiscorrectionProfile profile;
    const ProfileParseStatus status = tryParseProfile(in, profile);
    if (!status.ok)
        util::fatal("%s", status.error.c_str());
    return profile;
}

std::string
MiscorrectionProfile::toString() const
{
    std::string out;
    for (const PatternProfile &entry : patterns) {
        std::string pat(k, 'D');
        std::string mc(k, '-');
        for (std::size_t bit : entry.pattern) {
            pat[bit] = 'C';
            mc[bit] = '?';
        }
        for (std::size_t bit = 0; bit < k; ++bit)
            if (entry.miscorrectable.get(bit))
                mc[bit] = '1';
        out += "[" + pat + "] -> [" + mc + "]\n";
    }
    return out;
}

} // namespace beer
