/**
 * @file
 * Miscorrection profiles (paper Section 5.1.3).
 *
 * For every test pattern, the profile records which DISCHARGED data
 * bits can exhibit a miscorrection. Positions that were programmed
 * CHARGED are ambiguous ('?' in the paper's Table 2): an observed error
 * there may be an uncorrected retention error rather than a
 * miscorrection, so they carry no information and are excluded.
 *
 * The exhaustive generator uses the standard-form support predicate
 * derived in DESIGN.md Section 3: under pattern S, a miscorrection at
 * data bit j (not in S) is possible iff some T subset of S satisfies
 *     supp(H_j xor (xor of H_i for i in T)) subset-of supp(xor of H_i
 *     for i in S),
 * and complements T xor S yield the same condition, so only 2^(|S|-1)
 * subsets need checking. This is exactly the set of miscorrections an
 * infinite-sample retention experiment would observe.
 */

#ifndef BEER_BEER_PROFILE_HH
#define BEER_BEER_PROFILE_HH

#include <cstddef>
#include <istream>
#include <string>
#include <vector>

#include "beer/patterns.hh"
#include "ecc/linear_code.hh"
#include "gf2/bitvec.hh"

namespace beer
{

/** Miscorrection observations for one test pattern. */
struct PatternProfile
{
    TestPattern pattern;
    /**
     * Bit j set iff a miscorrection is possible (or was observed) at
     * data bit j. Bits at the pattern's charged positions are always
     * clear; they are ambiguous and carry no information.
     */
    gf2::BitVec miscorrectable;
    /**
     * Measurement-quality metadata: quorum votes disagreed at least
     * once while this pattern was measured (ProfileCounts::suspect),
     * so its row may carry noise residue even after majority voting.
     * The repair-aware fingerprint cache excludes suspect rows from a
     * chip's canonical fingerprint so a repaired chip still matches
     * its clean sibling. Not part of equality — two profiles with the
     * same evidence are the same profile regardless of how noisy the
     * runs that produced them were.
     */
    bool suspect = false;

    bool operator==(const PatternProfile &other) const
    {
        return pattern == other.pattern &&
               miscorrectable == other.miscorrectable;
    }
};

/** The full miscorrection profile over a set of test patterns. */
struct MiscorrectionProfile
{
    std::size_t k = 0;
    std::vector<PatternProfile> patterns;

    bool operator==(const MiscorrectionProfile &other) const = default;

    /** Table-2-style rendering ('C'/'D' pattern, 1/-/? per bit). */
    std::string toString() const;
};

/**
 * Whether a miscorrection at data bit @p bit is possible when the data
 * cells in @p pattern are CHARGED in a chip using @p code (true-cells).
 * @p bit must not be one of the pattern's charged positions.
 */
bool miscorrectionPossible(const ecc::LinearCode &code,
                           const TestPattern &pattern, std::size_t bit);

/**
 * Ground-truth (infinite-sample) profile of @p code under
 * @p patterns.
 */
MiscorrectionProfile exhaustiveProfile(
    const ecc::LinearCode &code,
    const std::vector<TestPattern> &patterns);

/**
 * Brute-force reference implementation of miscorrectionPossible() that
 * enumerates every error pattern over the charged cells. Exponential in
 * the charged-cell count; used by tests to validate the predicate.
 */
bool miscorrectionPossibleBruteForce(const ecc::LinearCode &code,
                                     const TestPattern &pattern,
                                     std::size_t bit);

/**
 * Version written by serializeProfile() for suspect-free profiles.
 * History:
 *  - 1: "k <bits>" header, one "<charged-csv> <bitmap>" line per
 *       pattern (no version line — the implicit legacy format);
 *  - 2: adds an explicit "version <n>" line before the k header, so
 *       long-lived consumers (the recovery service) can reject or
 *       migrate payloads deliberately instead of misparsing them;
 *  - 3: pattern lines may carry a trailing " ?" suspect marker
 *       (quorum disagreement metadata; see PatternProfile::suspect).
 *       Emitted only when some pattern is suspect, so profiles
 *       without the metadata stay byte-identical to version 2 and
 *       old consumers keep parsing them.
 */
inline constexpr std::size_t kProfileFormatVersion = 2;

/** Newest version tryParseProfile() accepts (the suspect-marker
 *  extension). */
inline constexpr std::size_t kProfileFormatVersionMax = 3;

/** Outcome of tryParseProfile(). */
struct ProfileParseStatus
{
    bool ok = false;
    /** Declared format version (1 when the version line is absent). */
    std::size_t version = 1;
    /** Line-numbered message when !ok. */
    std::string error;
};

/**
 * Serialize a profile to the text format consumed by tools/beer_solve
 * (a "version <n>" line, a "k <bits>" line, then one
 * "<charged-csv> <bitmap>" line per pattern; '#' starts a comment).
 */
std::string serializeProfile(const MiscorrectionProfile &profile);

/**
 * Parse the tools/beer_solve text format without terminating on
 * malformed input: the forward-compat entry point for services that
 * must survive bad payloads. Versions newer than
 * kProfileFormatVersionMax are rejected explicitly; version-less
 * input parses as the legacy version 1.
 */
ProfileParseStatus tryParseProfile(std::istream &in,
                                   MiscorrectionProfile &out);

/**
 * Parse the tools/beer_solve text format; fatal on malformed input
 * with a line-numbered message.
 */
MiscorrectionProfile parseProfile(std::istream &in);

} // namespace beer

#endif // BEER_BEER_PROFILE_HH
