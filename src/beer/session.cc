#include "beer/session.hh"

#include <algorithm>
#include <chrono>

#include "ecc/hamming.hh"
#include "util/logging.hh"

namespace beer
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * True iff measuring @p pattern can tell codes @p x and @p y apart:
 * their ground-truth profiles under the pattern differ at some
 * discharged bit.
 */
bool
distinguishes(const TestPattern &pattern, const ecc::LinearCode &x,
              const ecc::LinearCode &y)
{
    for (std::size_t bit = 0; bit < x.k(); ++bit) {
        if (patternContains(pattern, bit))
            continue;
        if (miscorrectionPossible(x, pattern, bit) !=
            miscorrectionPossible(y, pattern, bit))
            return true;
    }
    return false;
}

} // anonymous namespace

Session::Session(dram::MemoryInterface &mem, SessionConfig config)
    : mem_(mem), config_(std::move(config))
{
    const std::size_t k = mem_.datawordBits();
    BEER_ASSERT(k > 0);
    pending_ = chargedPatterns(k, 1);
    // Adaptive schedules measure high-index patterns first. Structured
    // (canonical) parity-check matrices place their largest-support
    // columns at high data-bit indices, and a pattern's measurement
    // constrains every column whose support is included in its own —
    // so large-support patterns prune the candidate space fastest and
    // the solve becomes provably unique after fewer patterns (the
    // manufacturer-B configuration drops from 16 to 10 measured
    // patterns at k=16). The legacy (non-adaptive) sweep keeps the
    // natural order for bit-exact reproducibility.
    if (config_.adaptiveEarlyExit)
        std::reverse(pending_.begin(), pending_.end());
    counts_.k = k;
}

bool
Session::measureRound()
{
    if (nextPending_ >= pending_.size())
        return false;

    std::size_t chunk = pending_.size() - nextPending_;
    if (config_.adaptiveEarlyExit) {
        std::size_t per_round = config_.patternsPerRound;
        if (per_round == 0)
            per_round = std::max<std::size_t>(1, mem_.datawordBits() / 8);
        chunk = std::min(chunk, per_round);

        // Active pattern selection: when the last solve surfaced two
        // candidate functions, prefer pending patterns whose
        // ground-truth profiles differ between them. Measuring such a
        // pattern is guaranteed to eliminate at least one of the pair
        // (the backend's answer can match at most one), so the
        // candidate space shrinks every round instead of waiting for
        // the sweep order to stumble on a discriminating pattern.
        if (solve_ && !countsDirty_ && solve_->solutions.size() >= 2) {
            const ecc::LinearCode &x = solve_->solutions[0];
            const ecc::LinearCode &y = solve_->solutions[1];
            std::stable_partition(
                pending_.begin() + (std::ptrdiff_t)nextPending_,
                pending_.end(), [&](const TestPattern &pattern) {
                    return distinguishes(pattern, x, y);
                });
        }
    }

    const std::vector<TestPattern> round(
        pending_.begin() + (std::ptrdiff_t)nextPending_,
        pending_.begin() + (std::ptrdiff_t)(nextPending_ + chunk));
    nextPending_ += chunk;

    const auto start = Clock::now();
    const ProfileCounts observed = measureProfile(
        mem_, round, config_.measure, config_.wordsUnderTest);
    stats_.measureSeconds += secondsSince(start);

    // Rounds only ever measure patterns pending_ has not handed out
    // before, so overlap with the accumulated counts is a bug.
    counts_.merge(observed, ProfileCounts::MergeMode::AppendDisjoint);
    countsDirty_ = true;
    ++stats_.measureRounds;
    stats_.patternsMeasured = counts_.patterns.size();
    stats_.patternMeasurements +=
        (std::uint64_t)round.size() *
        config_.measure.pausesSeconds.size() *
        config_.measure.repeatsPerPause;
    stats_.wordObservations += observed.totalObservations();

    notify(SessionStage::Measure);
    return true;
}

const BeerSolveResult &
Session::solve()
{
    profile_ = counts_.threshold(config_.measure.thresholdProbability);

    // While more measurement is still available, enumeration only has
    // to decide uniqueness: two solutions suffice.
    std::size_t max_solutions = config_.solver.maxSolutions;
    const bool cap = config_.adaptiveEarlyExit && moreEvidenceAvailable();
    if (cap && (max_solutions == 0 || max_solutions > 2))
        max_solutions = 2;

    SolveRoundStats round;
    std::uint64_t clauses_before = 0;
    std::size_t rebuilds_before = 0;
    auto start = Clock::now();
    if (config_.incrementalSolve && incremental_) {
        clauses_before = incremental_->satSolver().stats().addedClauses;
        rebuilds_before = incremental_->rebuilds();
    } else {
        // First round, or from-scratch mode: (re)build the context.
        // Construction encodes the structural constraints.
        incremental_.emplace(profile_.k,
                             ecc::parityBitsForDataBits(profile_.k),
                             config_.solver);
    }
    incremental_->setMaxSolutions(max_solutions);
    round.patternsEncoded = incremental_->addProfile(profile_);
    round.encodeSeconds = secondsSince(start);

    start = Clock::now();
    solve_ = incremental_->solve();
    round.searchSeconds = secondsSince(start);
    // A non-monotone rebuild replaces the SAT solver, resetting its
    // counters; the round then paid for the whole re-encode.
    if (incremental_->rebuilds() != rebuilds_before)
        clauses_before = 0;
    round.clausesAdded =
        incremental_->satSolver().stats().addedClauses - clauses_before;
    round.solutions = solve_->solutions.size();

    stats_.solveEncodeSeconds += round.encodeSeconds;
    stats_.solveSearchSeconds += round.searchSeconds;
    stats_.solveSeconds += round.encodeSeconds + round.searchSeconds;
    stats_.solveRounds.push_back(round);

    solveWasCapped_ = cap;
    countsDirty_ = false;
    ++stats_.solveCalls;
    stats_.sat.accumulate(solve_->stats);

    notify(SessionStage::Solve);
    return *solve_;
}

bool
Session::escalate()
{
    if (escalated_)
        return false;
    escalated_ = true;
    auto two_charged = chargedPatterns(mem_.datawordBits(), 2);
    if (config_.adaptiveEarlyExit)
        std::reverse(two_charged.begin(), two_charged.end());
    pending_.insert(pending_.end(), two_charged.begin(),
                    two_charged.end());
    ++stats_.escalations;
    notify(SessionStage::Escalate);
    return true;
}

bool
Session::canEscalate() const
{
    return config_.escalateToTwoCharged && !escalated_ &&
           mem_.datawordBits() >= 2;
}

bool
Session::moreEvidenceAvailable() const
{
    return pendingPatternCount() > 0 || canEscalate();
}

bool
Session::finished() const
{
    if (solve_ && solve_->unique() && !countsDirty_)
        return true;
    return !moreEvidenceAvailable() && solve_ && !countsDirty_ &&
           !solveWasCapped_;
}

RecoveryReport
Session::run()
{
    while (true) {
        if (measureRound()) {
            // Outside adaptive mode the round covered every pending
            // pattern; either way, decide on the evidence so far.
            solve();
            if (solve_->unique())
                break;
            continue;
        }
        // Nothing pending. Success, escalation, or a final uncapped
        // solve listing the surviving candidates.
        if (solve_ && !countsDirty_ && solve_->unique())
            break;
        if (canEscalate()) {
            escalate();
            continue;
        }
        if (!solve_ || countsDirty_ || solveWasCapped_)
            solve();
        break;
    }
    notify(SessionStage::Done);
    return report();
}

RecoveryReport
Session::report() const
{
    RecoveryReport report;
    report.counts = counts_;
    report.profile = profile_;
    if (solve_)
        report.solve = *solve_;
    report.usedTwoCharged = escalated_;
    report.stats = stats_;
    return report;
}

void
Session::notify(SessionStage stage)
{
    if (!config_.onProgress)
        return;
    SessionProgress progress;
    progress.stage = stage;
    progress.patternsMeasured = counts_.patterns.size();
    progress.patternsPlanned = pending_.size();
    progress.solutionsFound = solve_ ? solve_->solutions.size() : 0;
    progress.solveComplete = solve_ && solve_->complete;
    progress.escalations = stats_.escalations;
    config_.onProgress(progress);
}

} // namespace beer
