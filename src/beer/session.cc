#include "beer/session.hh"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "ecc/hamming.hh"
#include "util/logging.hh"

namespace beer
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Solution cap for the final solve after a deadline/budget stop,
 *  when no explicit BeerSolverConfig::maxSolutions bounds it. */
constexpr std::size_t kDegradedCandidateCap = 16;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * True iff measuring @p pattern can tell codes @p x and @p y apart:
 * their ground-truth profiles under the pattern differ at some
 * discharged bit.
 */
bool
distinguishes(const TestPattern &pattern, const ecc::LinearCode &x,
              const ecc::LinearCode &y)
{
    for (std::size_t bit = 0; bit < x.k(); ++bit) {
        if (patternContains(pattern, bit))
            continue;
        if (miscorrectionPossible(x, pattern, bit) !=
            miscorrectionPossible(y, pattern, bit))
            return true;
    }
    return false;
}

/**
 * Order [@p begin, @p end) so patterns that distinguish more pairs of
 * the candidate set come first (stable within equal scores). With two
 * candidates this is the classic active-selection partition; with
 * more it compensates for a stale candidate set — a pattern that
 * splits several still-plausible pairs is far more likely to also
 * split whatever pair survives the solve currently in flight.
 */
void
rankPatterns(std::vector<TestPattern>::iterator begin,
             std::vector<TestPattern>::iterator end,
             const std::vector<ecc::LinearCode> &cands)
{
    if (cands.size() < 2 || begin == end)
        return;
    std::vector<std::pair<std::size_t, TestPattern>> ranked;
    ranked.reserve((std::size_t)(end - begin));
    for (auto it = begin; it != end; ++it) {
        std::size_t score = 0;
        for (std::size_t i = 0; i + 1 < cands.size(); ++i)
            for (std::size_t j = i + 1; j < cands.size(); ++j)
                if (distinguishes(*it, cands[i], cands[j]))
                    ++score;
        ranked.emplace_back(score, std::move(*it));
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });
    for (auto &entry : ranked)
        *begin++ = std::move(entry.second);
}

} // anonymous namespace

const char *
sessionOutcomeName(SessionOutcome outcome)
{
    switch (outcome) {
    case SessionOutcome::Unique:
        return "unique";
    case SessionOutcome::Ambiguous:
        return "ambiguous";
    case SessionOutcome::Unsatisfiable:
        return "unsatisfiable";
    case SessionOutcome::DeadlineExceeded:
        return "deadline_exceeded";
    case SessionOutcome::BudgetExhausted:
        return "budget_exhausted";
    }
    return "unknown";
}

std::string
SessionDiagnosis::toJson() const
{
    // detail strings are fixed ASCII literals chosen in diagnose();
    // nothing needs escaping.
    std::ostringstream out;
    out << "{\"outcome\":\"" << sessionOutcomeName(outcome)
        << "\",\"detail\":\"" << detail
        << "\",\"candidates\":" << candidates
        << ",\"suspect_patterns\":" << suspectPatterns.size()
        << ",\"repair_attempts\":" << repairAttempts
        << ",\"rounds_retracted\":" << roundsRetracted
        << ",\"patterns_remeasured\":" << patternsRemeasured
        << ",\"quorum_disagreements\":" << quorumDisagreements
        << ",\"elapsed_seconds\":" << elapsedSeconds << "}";
    return out.str();
}

Session::Session(dram::MemoryInterface &mem, SessionConfig config)
    : mem_(mem), config_(std::move(config))
{
    // Repair retracts per-round clause groups, which exist only in
    // the persistent context's retractable encoding.
    if (config_.repair.enabled) {
        config_.incrementalSolve = true;
        config_.solver.retractableProfile = true;
    }
    const std::size_t k = mem_.datawordBits();
    BEER_ASSERT(k > 0);
    pending_ = chargedPatterns(k, 1);
    // Adaptive schedules measure high-index patterns first. Structured
    // (canonical) parity-check matrices place their largest-support
    // columns at high data-bit indices, and a pattern's measurement
    // constrains every column whose support is included in its own —
    // so large-support patterns prune the candidate space fastest and
    // the solve becomes provably unique after fewer patterns (the
    // manufacturer-B configuration drops from 16 to 10 measured
    // patterns at k=16). The legacy (non-adaptive) sweep keeps the
    // natural order for bit-exact reproducibility.
    if (config_.adaptiveEarlyExit)
        std::reverse(pending_.begin(), pending_.end());
    counts_.k = k;
}

std::size_t
Session::chunkLimit(std::size_t available) const
{
    if (!config_.adaptiveEarlyExit)
        return available;
    std::size_t per_round = config_.patternsPerRound;
    if (per_round == 0)
        per_round = std::max<std::size_t>(1, mem_.datawordBits() / 8);
    return std::min(available, per_round);
}

void
Session::rankPendingBy(const std::vector<ecc::LinearCode> &cands)
{
    rankPatterns(pending_.begin() + (std::ptrdiff_t)nextPending_,
                 pending_.end(), cands);
}

void
Session::partitionPending()
{
    // Active pattern selection: when a solve surfaced two candidate
    // functions, prefer pending patterns whose ground-truth profiles
    // differ between them. Measuring such a pattern is guaranteed to
    // eliminate at least one of the pair (the backend's answer can
    // match at most one), so the candidate space shrinks every round
    // instead of waiting for the sweep order to stumble on a
    // discriminating pattern.
    if (config_.deferredPartition && !config_.pipelined) {
        // Deferred-partition schedule: order the round by the pair of
        // the solve BEFORE the most recent one — the freshest solve a
        // pipelined session has joined when it selects the same chunk
        // (the most recent one is still in flight there; escalation
        // rounds included, since the pipeline measures the first
        // 2-CHARGED chunk speculatively beside the solve that decides
        // the escalation). Bit-exact twin of the pipelined schedule;
        // see session.hh. Round 2 is the exception: the pipeline
        // joins the session's first solve inline (it is the cheap,
        // underconstrained one and nothing runs beside round 1
        // anyway), so round 2 partitions by the fresh pair in both
        // schedules.
        if (!staleCands_.empty())
            rankPendingBy(staleCands_);
        else if (stats_.solveCalls <= 1 && solve_ && !countsDirty_ &&
                 solve_->solutions.size() >= 2)
            rankPendingBy(solve_->solutions);
        return;
    }
    if (solve_ && !countsDirty_ && solve_->solutions.size() >= 2)
        rankPendingBy(solve_->solutions);
}

std::vector<TestPattern>
Session::peekChunk() const
{
    const std::size_t chunk = chunkLimit(pendingPatternCount());
    return std::vector<TestPattern>(
        pending_.begin() + (std::ptrdiff_t)nextPending_,
        pending_.begin() + (std::ptrdiff_t)(nextPending_ + chunk));
}

ProfileCounts
Session::measureChunk(const std::vector<TestPattern> &round,
                      double &seconds,
                      const std::function<bool()> &cancel)
{
    const auto start = Clock::now();
    std::function<bool()> stop = cancel;
    if (config_.deadlineSeconds > 0.0) {
        // The deadline cuts into a round, between experiments: a
        // round costs many refresh pauses, so stopping only at round
        // boundaries could overshoot by minutes — or never return on
        // a stalling chip.
        stop = [this, cancel] {
            return deadlineExceeded() || (cancel && cancel());
        };
    }
    // Always measure through a config copy: the session's estimator is
    // injected per call (and written back by measureProfile), so every
    // round — speculative and repair re-measurement included — feeds
    // the same running disagreement estimate.
    MeasureConfig measure = config_.measure;
    measure.cancel = std::move(stop);
    measure.estimator = &quorumEstimator_;
    const ProfileCounts observed = measureProfile(
        mem_, round, measure, config_.wordsUnderTest);
    seconds = secondsSince(start);
    return observed;
}

bool
Session::deadlineExceeded() const
{
    return config_.deadlineSeconds > 0.0 &&
           secondsSince(start_) >= config_.deadlineSeconds;
}

bool
Session::budgetExhausted() const
{
    return config_.measurementBudget != 0 &&
           stats_.patternMeasurements >= config_.measurementBudget;
}

bool
Session::checkDegraded()
{
    if (stopReason_)
        return true;
    if (deadlineExceeded())
        stopReason_ = SessionOutcome::DeadlineExceeded;
    else if (budgetExhausted())
        stopReason_ = SessionOutcome::BudgetExhausted;
    return stopReason_.has_value();
}

std::uint64_t
Session::experimentsFor(std::size_t patterns) const
{
    return (std::uint64_t)patterns *
           config_.measure.pausesSeconds.size() *
           config_.measure.repeatsPerPause;
}

void
Session::commitRound(const std::vector<TestPattern> &round,
                     const ProfileCounts &observed, double seconds)
{
    stats_.measureSeconds += seconds;
    // Rounds only ever measure patterns pending_ has not handed out
    // before, so overlap with the accumulated counts is a bug.
    counts_.merge(observed, ProfileCounts::MergeMode::AppendDisjoint);
    countsDirty_ = true;
    ++stats_.measureRounds;
    stats_.patternsMeasured = counts_.patterns.size();
    stats_.patternMeasurements += experimentsFor(round.size());
    stats_.wordObservations += observed.totalObservations();
    stats_.quorumDisagreements += observed.totalDisagreements();
    stats_.quorumVotesSpent += observed.totalVotesSpent();
    stats_.quorumEscalations = quorumEstimator_.escalations;

    notify(SessionStage::Measure);
}

bool
Session::measureRound()
{
    if (nextPending_ >= pending_.size())
        return false;

    if (config_.adaptiveEarlyExit)
        partitionPending();
    const std::vector<TestPattern> round = peekChunk();
    nextPending_ += round.size();

    double seconds = 0.0;
    const ProfileCounts observed = measureChunk(round, seconds);
    commitRound(round, observed, seconds);
    return true;
}

void
Session::prepareSolve(PendingSolve &ps)
{
    profile_ = counts_.threshold(config_.measure.thresholdProbability);

    // While more measurement is still available, enumeration only has
    // to decide uniqueness: two solutions suffice. The stale-partition
    // schedules enumerate a few more (SessionConfig::
    // deferredCandidates) so the next round's ranking sees pairs the
    // already-measured round has not eliminated yet.
    ps.maxSolutions = config_.solver.maxSolutions;
    ps.capped = config_.adaptiveEarlyExit && moreEvidenceAvailable() &&
                !stopReason_;
    if (ps.capped) {
        std::size_t cap = 2;
        if (config_.deferredPartition || config_.pipelined)
            cap = std::max<std::size_t>(cap, config_.deferredCandidates);
        if (ps.maxSolutions == 0 || ps.maxSolutions > cap)
            ps.maxSolutions = cap;
    } else if (stopReason_ && ps.maxSolutions == 0) {
        // A degraded stop (deadline/budget) will not measure again;
        // its final solve reports a ranked candidate set. That set
        // must stay bounded: the evidence committed when a tiny
        // budget trips may admit astronomically many functions, and
        // "enumerate them all" would turn a deadline stop into an
        // unbounded solve.
        ps.maxSolutions = kDegradedCandidateCap;
    }
}

void
Session::solveCore(PendingSolve &ps)
{
    // Runs on a pool task in pipelined mode. Exclusive ownership of
    // incremental_ and read-only access to profile_ for the task's
    // whole lifetime; the session thread touches neither until join.
    ps.start = Clock::now();
    std::uint64_t clauses_before = 0;
    std::size_t rebuilds_before = 0;
    auto start = Clock::now();
    if (config_.incrementalSolve && incremental_) {
        // A context prebuilt during round 1 (pipelined mode) holds
        // only the structural clauses; counting the first solve from
        // zero keeps its per-round clause accounting identical to a
        // serial session, whose first solve constructs the context
        // itself.
        if (stats_.solveCalls > 0) {
            clauses_before =
                incremental_->satSolver().stats().addedClauses;
            rebuilds_before = incremental_->rebuilds();
        }
    } else {
        // First round, or from-scratch mode: (re)build the context.
        // Construction encodes the structural constraints.
        incremental_.emplace(profile_.k,
                             ecc::parityBitsForDataBits(profile_.k),
                             config_.solver);
    }
    ps.round.patternsEncoded = incremental_->addProfile(profile_);
    ps.round.encodeSeconds = secondsSince(start);

    start = Clock::now();
    ps.result = incremental_->solve(ps.maxSolutions);
    ps.round.searchSeconds = secondsSince(start);
    // A non-monotone rebuild replaces the SAT solver, resetting its
    // counters; the round then paid for the whole re-encode.
    if (incremental_->rebuilds() != rebuilds_before)
        clauses_before = 0;
    ps.round.clausesAdded =
        incremental_->satSolver().stats().addedClauses - clauses_before;
    ps.round.solutions = ps.result.solutions.size();
    ps.end = Clock::now();
}

void
Session::recordSolve(PendingSolve &ps)
{
    // The candidates being displaced become the deferred-partition
    // set: when the next round is measured, the solve recorded here
    // is the one running beside it in the pipelined schedule, so the
    // displaced solve is the freshest one that schedule has joined.
    // Cleared (not kept sticky) when the displaced solve surfaced
    // fewer than two candidates, mirroring the pipelined arm's
    // "rank only when the joined solve has candidates" guard.
    if (solve_ && solve_->solutions.size() >= 2)
        staleCands_ = solve_->solutions;
    else
        staleCands_.clear();

    solve_ = std::move(ps.result);

    stats_.solveEncodeSeconds += ps.round.encodeSeconds;
    stats_.solveSearchSeconds += ps.round.searchSeconds;
    stats_.solveSeconds +=
        ps.round.encodeSeconds + ps.round.searchSeconds;
    stats_.solveRounds.push_back(ps.round);

    solveWasCapped_ = ps.capped;
    countsDirty_ = false;
    ++stats_.solveCalls;
    stats_.sat.accumulate(solve_->stats);

    notify(SessionStage::Solve);
}

const BeerSolveResult &
Session::solve()
{
    PendingSolve ps;
    prepareSolve(ps);
    solveCore(ps);
    recordSolve(ps);
    return *solve_;
}

void
Session::warmStart(const MiscorrectionProfile &shared)
{
    if (!config_.incrementalSolve || shared.patterns.empty())
        return;
    if (!incremental_) {
        const std::size_t k = mem_.datawordBits();
        incremental_.emplace(k, ecc::parityBitsForDataBits(k),
                             config_.solver);
    }
    incremental_->warmStart(shared);
}

bool
Session::repairNeeded() const
{
    return config_.repair.enabled && solve_ && solve_->complete &&
           solve_->solutions.empty() && incremental_ &&
           incremental_->roundCount() > 0;
}

std::vector<std::size_t>
Session::localizeCorruptRounds()
{
    IncrementalSolver &inc = *incremental_;
    const std::size_t n = inc.roundCount();

    // Probe order encodes suspicion: rounds whose patterns the quorum
    // flagged as noisy first, then newest first — transient noise is
    // far more likely to have hit the round that just broke the solve
    // than evidence many earlier solves already digested.
    const auto round_suspect = [&](std::size_t r) {
        for (const TestPattern &pattern : inc.roundPatterns(r))
            for (std::size_t i = 0; i < counts_.patterns.size(); ++i)
                if (counts_.patterns[i] == pattern &&
                    counts_.suspect(i))
                    return true;
        return false;
    };
    std::vector<std::size_t> order;
    order.reserve(n);
    for (std::size_t pass = 0; pass < 2; ++pass)
        for (std::size_t i = n; i-- > 0;) {
            if (inc.roundDropped(i))
                continue;
            if (round_suspect(i) == (pass == 0))
                order.push_back(i);
        }

    // Grow the suspended set until the remaining constraints are
    // satisfiable: the contradiction lives inside what was suspended.
    const std::uint64_t budget = config_.repair.probeConflictLimit;
    std::vector<std::size_t> suspended;
    bool sat = false;
    for (std::size_t r : order) {
        inc.suspendRound(r);
        suspended.push_back(r);
        if (inc.probe(budget) == sat::SolveResult::Sat) {
            sat = true;
            break;
        }
    }
    if (!sat) {
        // Possible only when budgeted probes ran out of conflicts
        // (structural constraints alone are satisfiable, so with the
        // whole profile suspended an unbounded probe returns Sat).
        for (std::size_t r : suspended)
            inc.resumeRound(r);
        return {};
    }

    // Minimize: resume each suspended round and keep it suspended
    // only if the contradiction comes back with it enforced.
    std::vector<std::size_t> needed;
    for (std::size_t r : suspended) {
        inc.resumeRound(r);
        if (inc.probe(budget) != sat::SolveResult::Sat) {
            inc.suspendRound(r);
            needed.push_back(r);
        }
    }
    // needed can only end up empty if a budgeted probe flip-flopped
    // between Unknown and Sat; treat that as localization failure
    // (everything is resumed at this point).
    return needed;
}

bool
Session::attemptRepair()
{
    for (std::size_t attempt = 0;
         attempt < config_.repair.maxAttempts; ++attempt) {
        if (checkDegraded())
            return false;
        ++stats_.repairAttempts;

        const std::vector<std::size_t> bad = localizeCorruptRounds();
        if (bad.empty())
            return false;

        std::vector<TestPattern> patterns;
        for (std::size_t r : bad) {
            const auto round_patterns = incremental_->roundPatterns(r);
            patterns.insert(patterns.end(), round_patterns.begin(),
                            round_patterns.end());
            incremental_->dropRound(r);
        }
        stats_.roundsRetracted += bad.size();

        // Forget the poisoned observations so the re-measurement
        // commits as a fresh, disjoint round.
        counts_.removePatterns(patterns);
        countsDirty_ = true;

        if (config_.repair.backoffBaseSeconds > 0.0) {
            // Wait out the noise burst that poisoned the round before
            // burning refresh-pause time on re-measuring through it.
            const double delay = config_.repair.backoffBaseSeconds *
                                 (double)(1ULL << attempt);
            std::this_thread::sleep_for(
                std::chrono::duration<double>(delay));
        }

        // Re-measure the retracted patterns at escalated quorum: this
        // evidence was bad once, so every repeat read gets voted.
        const MeasureConfig saved = config_.measure;
        config_.measure.quorum.votes =
            std::max({saved.quorum.votes, saved.quorum.escalatedVotes,
                      config_.repair.remeasureVotes});
        config_.measure.quorum.escalatedVotes =
            config_.measure.quorum.votes;
        double seconds = 0.0;
        const ProfileCounts observed = measureChunk(patterns, seconds);
        config_.measure = saved;
        stats_.patternsRemeasured += patterns.size();
        commitRound(patterns, observed, seconds);

        solve();
        if (!repairNeeded())
            return true;
    }
    return false;
}

void
Session::rankCandidatesByEvidence(
    std::vector<ecc::LinearCode> &cands) const
{
    if (cands.size() < 2)
        return;
    // Every candidate satisfies the *thresholded* profile by
    // construction, so rank by the raw counts instead: sub-threshold
    // residue (noise leftovers, partially measured patterns) still
    // separates candidates the binary profile cannot.
    const auto mismatches = [this](const ecc::LinearCode &code) {
        std::size_t score = 0;
        for (std::size_t p = 0; p < counts_.patterns.size(); ++p) {
            const TestPattern &pattern = counts_.patterns[p];
            for (std::size_t bit = 0; bit < counts_.k; ++bit) {
                if (patternContains(pattern, bit))
                    continue;
                const bool observed = counts_.errorCounts[p][bit] > 0;
                if (miscorrectionPossible(code, pattern, bit) !=
                    observed)
                    ++score;
            }
        }
        return score;
    };
    std::vector<std::pair<std::size_t, ecc::LinearCode>> ranked;
    ranked.reserve(cands.size());
    for (ecc::LinearCode &code : cands)
        ranked.emplace_back(mismatches(code), std::move(code));
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    cands.clear();
    for (auto &entry : ranked)
        cands.push_back(std::move(entry.second));
}

SessionDiagnosis
Session::diagnose() const
{
    SessionDiagnosis d;
    d.candidates = solve_ ? solve_->solutions.size() : 0;
    d.repairAttempts = stats_.repairAttempts;
    d.roundsRetracted = stats_.roundsRetracted;
    d.patternsRemeasured = stats_.patternsRemeasured;
    d.quorumDisagreements = stats_.quorumDisagreements;
    d.elapsedSeconds = secondsSince(start_);
    for (std::size_t i = 0; i < counts_.patterns.size(); ++i)
        if (counts_.suspect(i))
            d.suspectPatterns.push_back(counts_.patterns[i]);

    if (solve_ && solve_->unique() && !countsDirty_) {
        d.outcome = SessionOutcome::Unique;
        d.detail = "recovered a provably unique ECC function";
        return d;
    }
    if (stopReason_) {
        d.outcome = *stopReason_;
        d.detail = *stopReason_ == SessionOutcome::DeadlineExceeded
                       ? "session deadline expired before the evidence "
                         "pinned a unique function"
                       : "measurement budget exhausted before the "
                         "evidence pinned a unique function";
        return d;
    }
    if (solve_ && solve_->complete && solve_->solutions.empty()) {
        d.outcome = SessionOutcome::Unsatisfiable;
        d.detail =
            stats_.repairAttempts > 0
                ? "no ECC function is consistent with the evidence; "
                  "UNSAT repair could not isolate a repairable round "
                  "set (persistent corruption, e.g. stuck-at faults)"
                : "no ECC function is consistent with the evidence "
                  "(corrupted measurements; enable "
                  "SessionConfig::repair)";
        return d;
    }
    d.outcome = SessionOutcome::Ambiguous;
    d.detail = "multiple candidate functions remain, ranked by "
               "agreement with the raw counts";
    return d;
}

std::vector<TestPattern>
Session::escalationPlan() const
{
    auto two_charged = chargedPatterns(mem_.datawordBits(), 2);
    if (config_.adaptiveEarlyExit)
        std::reverse(two_charged.begin(), two_charged.end());
    return two_charged;
}

bool
Session::escalate()
{
    if (escalated_)
        return false;
    escalated_ = true;
    const auto two_charged = escalationPlan();
    pending_.insert(pending_.end(), two_charged.begin(),
                    two_charged.end());
    ++stats_.escalations;
    notify(SessionStage::Escalate);
    return true;
}

bool
Session::canEscalate() const
{
    return config_.escalateToTwoCharged && !escalated_ &&
           mem_.datawordBits() >= 2;
}

bool
Session::moreEvidenceAvailable() const
{
    return pendingPatternCount() > 0 || canEscalate();
}

bool
Session::finished() const
{
    if (solve_ && solve_->unique() && !countsDirty_)
        return true;
    return !moreEvidenceAvailable() && solve_ && !countsDirty_ &&
           !solveWasCapped_;
}

RecoveryReport
Session::run()
{
    if (config_.pipelined)
        return runPipelined();
    while (true) {
        if (checkDegraded())
            break;
        if (measureRound()) {
            // Outside adaptive mode the round covered every pending
            // pattern; either way, decide on the evidence so far.
            solve();
            if (repairNeeded() && !attemptRepair())
                break;
            if (solve_->unique())
                break;
            continue;
        }
        // Nothing pending. Success, escalation, or a final uncapped
        // solve listing the surviving candidates.
        if (solve_ && !countsDirty_ && solve_->unique())
            break;
        if (canEscalate()) {
            escalate();
            continue;
        }
        if (!solve_ || countsDirty_ || solveWasCapped_) {
            solve();
            if (repairNeeded())
                attemptRepair();
        }
        break;
    }
    // Graceful degradation: a deadline/budget stop still reports the
    // ranked candidate set the committed evidence admits (prepareSolve
    // lifts the uniqueness cap once stopReason_ is latched). The
    // deadline bounds measurement — the dominant, refresh-pause cost —
    // not this one last solve.
    if (stopReason_ && (countsDirty_ || solveWasCapped_) &&
        !counts_.patterns.empty())
        solve();
    notify(SessionStage::Done);
    return report();
}

namespace
{

/** Seconds the two steady-clock windows overlap. */
double
windowOverlap(std::chrono::steady_clock::time_point a_start,
              std::chrono::steady_clock::time_point a_end,
              std::chrono::steady_clock::time_point b_start,
              std::chrono::steady_clock::time_point b_end)
{
    const auto start = std::max(a_start, b_start);
    const auto end = std::min(a_end, b_end);
    if (end <= start)
        return 0.0;
    return std::chrono::duration<double>(end - start).count();
}

} // anonymous namespace

RecoveryReport
Session::runPipelined()
{
    util::ThreadPool *pool = config_.solverPool;
    if (!pool) {
        // Background priority: the solve task should consume only CPU
        // time the measurement loop is not using (refresh-pause idle,
        // join blocks) — competing with the measurement datapath for
        // cycles would stretch its wall clock by exactly the cycles
        // borrowed and hide nothing.
        if (!privatePool_)
            privatePool_ = std::make_unique<util::ThreadPool>(
                2, /*background=*/true);
        pool = privatePool_.get();
    }

    // The solver context's structural constraints (column validity,
    // distinctness, symmetry breaking) depend only on the dataword
    // geometry, never on measurements — so build the context on a
    // worker while round 1 measures. Without this the session's first
    // solve is its most expensive (construction dominates it) and
    // runs fully exposed; with it, round 1's refresh pauses hide the
    // construction and the first solve shrinks to round 1's encode
    // and search. Pure wall-clock: the serial twin runs the identical
    // construction inside its first solve.
    util::ClaimableTask prebuild;
    if (config_.incrementalSolve && !incremental_) {
        const std::size_t k = mem_.datawordBits();
        prebuild = util::ClaimableTask(*pool, [this, k] {
            incremental_.emplace(k, ecc::parityBitsForDataBits(k),
                                 config_.solver);
        });
    }

    // Round 1 has nothing else to overlap with (no solve exists yet),
    // and its solve joins inline too: the remaining first-solve work
    // is cheap (the search is underconstrained and the two-solution
    // cap is hit almost immediately), and joining it before selecting
    // round 2 keeps that round's partition fresh — the deferred
    // schedule would otherwise spend round 2 on an unranked pattern.
    measureRound();
    prebuild.join();
    solve();
    if (repairNeeded() && !attemptRepair()) {
        notify(SessionStage::Done);
        return report();
    }
    if (solve_->unique()) {
        notify(SessionStage::Done);
        return report();
    }
    if (pendingPatternCount() > 0) {
        measureRound(); // round 2: fresh partition, like the twin
    } else if (canEscalate()) {
        // Round 1 consumed the whole plan: mirror the serial loop
        // (escalate, then a fresh-partitioned first 2-CHARGED round)
        // before the pipeline takes over.
        escalate();
        measureRound();
    } else {
        // Round 1 consumed the whole plan and nothing is left to try:
        // the inline solve was launched uncapped and is final.
        notify(SessionStage::Done);
        return report();
    }

    while (true) {
        if (checkDegraded())
            break;
        // Launch this round's solve asynchronously. prepareSolve runs
        // on this thread (it reads counts_ and the pending plan);
        // solveCore owns incremental_/profile_ until the join.
        PendingSolve ps;
        prepareSolve(ps);
        ps.task = util::ClaimableTask(*pool, [this, &ps] {
            solveCore(ps);
        });

        // Measure the next round while the solve runs. Its chunk is
        // selected by the deferred-partition policy: ranked by the
        // candidates of the freshest JOINED solve — the one whose
        // evidence the in-flight solve is consuming — because the
        // in-flight outcome is not available yet. The serial twin
        // (SessionConfig::deferredPartition) makes the identical
        // choice from staleCands_, so both arms issue the identical
        // chip-operation sequence and recover bit-identical results.
        // When the plan is dry but an escalation is still possible,
        // the escalation that the in-flight solve may trigger is
        // speculated the same way: the would-be first 2-CHARGED chunk
        // (same partition policy over the escalation plan) is
        // measured beside the solve, committed only if the solve
        // comes back non-unique.
        std::vector<TestPattern> ahead;
        ProfileCounts ahead_counts;
        double ahead_seconds = 0.0;
        bool ahead_escalates = false;
        // Stop the speculative measurement early once the in-flight
        // solve has finished AND already proved uniqueness: the round
        // is then certain to be discarded, so its remaining refresh
        // pauses would be pure waste. ready() synchronizes with the
        // worker's completion, so reading ps.result after it returns
        // true is race-free; a false return touches nothing.
        const auto doomed = [&ps] {
            return ps.task.ready() && ps.result.unique();
        };
        const auto meas_start = Clock::now();
        if (pendingPatternCount() > 0) {
            if (config_.adaptiveEarlyExit && solve_ &&
                solve_->solutions.size() >= 2)
                rankPendingBy(solve_->solutions);
            ahead = peekChunk();
            nextPending_ += ahead.size();
            ahead_counts = measureChunk(ahead, ahead_seconds, doomed);
        } else if (canEscalate()) {
            std::vector<TestPattern> plan = escalationPlan();
            if (config_.adaptiveEarlyExit && solve_ &&
                solve_->solutions.size() >= 2)
                rankPatterns(plan.begin(), plan.end(),
                             solve_->solutions);
            plan.resize(chunkLimit(plan.size()));
            ahead = std::move(plan);
            ahead_escalates = true;
            ahead_counts = measureChunk(ahead, ahead_seconds, doomed);
        }
        const auto meas_end = Clock::now();

        const bool ran_inline = ps.task.join();
        recordSolve(ps);
        if (!ran_inline && !ahead.empty()) {
            ++stats_.speculatedRounds;
            stats_.overlapSeconds += windowOverlap(
                ps.start, ps.end, meas_start, meas_end);
        }

        // An UNSAT solve means corrupted evidence; repair runs
        // serially here (the solve task is joined, so this thread
        // owns the context again). On failure the measured-ahead
        // round is abandoned with the session — committing evidence
        // into a profile already proven contradictory helps nobody.
        if (repairNeeded() && !attemptRepair())
            break;

        if (solve_->unique()) {
            // Committed evidence already pins the function; the round
            // measured beside this solve overshot the early exit and
            // is dropped unseen (a speculated escalation never
            // happens at all). Its chip operations all came after
            // every committed one, so committed evidence (and the
            // serial twin's RNG stream) is untouched.
            if (!ahead.empty()) {
                ++stats_.discardedRounds;
                // Count what the chip actually executed, not the
                // round's plan: the doomed() cancel usually aborts
                // the measurement partway through.
                const std::size_t words_per_experiment =
                    config_.wordsUnderTest.empty()
                        ? mem_.numWords()
                        : config_.wordsUnderTest.size();
                std::uint64_t observations = 0;
                for (const std::uint64_t tested :
                     ahead_counts.wordsTested)
                    observations += tested;
                stats_.discardedMeasurements +=
                    observations / words_per_experiment;
            }
            break;
        }
        if (ahead.empty()) {
            // Plan dry, no escalation left: the solve above was
            // launched with moreEvidenceAvailable() false, hence
            // uncapped — exactly the serial loop's final solve.
            break;
        }
        if (ahead_escalates) {
            // The solve confirmed the escalation the measured-ahead
            // chunk anticipated. Replaying its selection over the
            // now-appended plan (same candidates — recordSolve()
            // banked them in staleCands_ — same stable ranking)
            // consumes exactly the patterns already measured.
            escalate();
            if (config_.adaptiveEarlyExit && !staleCands_.empty())
                rankPendingBy(staleCands_);
            nextPending_ += ahead.size();
        }
        commitRound(ahead, ahead_counts, ahead_seconds);
    }

    // Same graceful-degradation final solve as the serial loop.
    if (stopReason_ && (countsDirty_ || solveWasCapped_) &&
        !counts_.patterns.empty())
        solve();
    notify(SessionStage::Done);
    return report();
}

RecoveryReport
Session::report() const
{
    RecoveryReport report;
    report.counts = counts_;
    report.profile = profile_;
    if (solve_)
        report.solve = *solve_;
    // An ambiguous ending still hands callers a best guess: order the
    // surviving candidates by raw-count agreement so front() is the
    // likeliest function (the provably-unique case is unaffected).
    if (report.solve.solutions.size() > 1)
        rankCandidatesByEvidence(report.solve.solutions);
    report.usedTwoCharged = escalated_;
    report.stats = stats_;
    report.diagnosis = diagnose();
    return report;
}

void
Session::notify(SessionStage stage)
{
    if (!config_.onProgress)
        return;
    SessionProgress progress;
    progress.stage = stage;
    progress.patternsMeasured = counts_.patterns.size();
    progress.patternsPlanned = pending_.size();
    progress.solutionsFound = solve_ ? solve_->solutions.size() : 0;
    progress.solveComplete = solve_ && solve_->complete;
    progress.escalations = stats_.escalations;
    config_.onProgress(progress);
}

} // namespace beer
