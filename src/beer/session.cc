#include "beer/session.hh"

#include <algorithm>
#include <chrono>

#include "ecc/hamming.hh"
#include "util/logging.hh"

namespace beer
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * True iff measuring @p pattern can tell codes @p x and @p y apart:
 * their ground-truth profiles under the pattern differ at some
 * discharged bit.
 */
bool
distinguishes(const TestPattern &pattern, const ecc::LinearCode &x,
              const ecc::LinearCode &y)
{
    for (std::size_t bit = 0; bit < x.k(); ++bit) {
        if (patternContains(pattern, bit))
            continue;
        if (miscorrectionPossible(x, pattern, bit) !=
            miscorrectionPossible(y, pattern, bit))
            return true;
    }
    return false;
}

/**
 * Order [@p begin, @p end) so patterns that distinguish more pairs of
 * the candidate set come first (stable within equal scores). With two
 * candidates this is the classic active-selection partition; with
 * more it compensates for a stale candidate set — a pattern that
 * splits several still-plausible pairs is far more likely to also
 * split whatever pair survives the solve currently in flight.
 */
void
rankPatterns(std::vector<TestPattern>::iterator begin,
             std::vector<TestPattern>::iterator end,
             const std::vector<ecc::LinearCode> &cands)
{
    if (cands.size() < 2 || begin == end)
        return;
    std::vector<std::pair<std::size_t, TestPattern>> ranked;
    ranked.reserve((std::size_t)(end - begin));
    for (auto it = begin; it != end; ++it) {
        std::size_t score = 0;
        for (std::size_t i = 0; i + 1 < cands.size(); ++i)
            for (std::size_t j = i + 1; j < cands.size(); ++j)
                if (distinguishes(*it, cands[i], cands[j]))
                    ++score;
        ranked.emplace_back(score, std::move(*it));
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });
    for (auto &entry : ranked)
        *begin++ = std::move(entry.second);
}

} // anonymous namespace

Session::Session(dram::MemoryInterface &mem, SessionConfig config)
    : mem_(mem), config_(std::move(config))
{
    const std::size_t k = mem_.datawordBits();
    BEER_ASSERT(k > 0);
    pending_ = chargedPatterns(k, 1);
    // Adaptive schedules measure high-index patterns first. Structured
    // (canonical) parity-check matrices place their largest-support
    // columns at high data-bit indices, and a pattern's measurement
    // constrains every column whose support is included in its own —
    // so large-support patterns prune the candidate space fastest and
    // the solve becomes provably unique after fewer patterns (the
    // manufacturer-B configuration drops from 16 to 10 measured
    // patterns at k=16). The legacy (non-adaptive) sweep keeps the
    // natural order for bit-exact reproducibility.
    if (config_.adaptiveEarlyExit)
        std::reverse(pending_.begin(), pending_.end());
    counts_.k = k;
}

std::size_t
Session::chunkLimit(std::size_t available) const
{
    if (!config_.adaptiveEarlyExit)
        return available;
    std::size_t per_round = config_.patternsPerRound;
    if (per_round == 0)
        per_round = std::max<std::size_t>(1, mem_.datawordBits() / 8);
    return std::min(available, per_round);
}

void
Session::rankPendingBy(const std::vector<ecc::LinearCode> &cands)
{
    rankPatterns(pending_.begin() + (std::ptrdiff_t)nextPending_,
                 pending_.end(), cands);
}

void
Session::partitionPending()
{
    // Active pattern selection: when a solve surfaced two candidate
    // functions, prefer pending patterns whose ground-truth profiles
    // differ between them. Measuring such a pattern is guaranteed to
    // eliminate at least one of the pair (the backend's answer can
    // match at most one), so the candidate space shrinks every round
    // instead of waiting for the sweep order to stumble on a
    // discriminating pattern.
    if (config_.deferredPartition && !config_.pipelined) {
        // Deferred-partition schedule: order the round by the pair of
        // the solve BEFORE the most recent one — the freshest solve a
        // pipelined session has joined when it selects the same chunk
        // (the most recent one is still in flight there; escalation
        // rounds included, since the pipeline measures the first
        // 2-CHARGED chunk speculatively beside the solve that decides
        // the escalation). Bit-exact twin of the pipelined schedule;
        // see session.hh. Round 2 is the exception: the pipeline
        // joins the session's first solve inline (it is the cheap,
        // underconstrained one and nothing runs beside round 1
        // anyway), so round 2 partitions by the fresh pair in both
        // schedules.
        if (!staleCands_.empty())
            rankPendingBy(staleCands_);
        else if (stats_.solveCalls <= 1 && solve_ && !countsDirty_ &&
                 solve_->solutions.size() >= 2)
            rankPendingBy(solve_->solutions);
        return;
    }
    if (solve_ && !countsDirty_ && solve_->solutions.size() >= 2)
        rankPendingBy(solve_->solutions);
}

std::vector<TestPattern>
Session::peekChunk() const
{
    const std::size_t chunk = chunkLimit(pendingPatternCount());
    return std::vector<TestPattern>(
        pending_.begin() + (std::ptrdiff_t)nextPending_,
        pending_.begin() + (std::ptrdiff_t)(nextPending_ + chunk));
}

ProfileCounts
Session::measureChunk(const std::vector<TestPattern> &round,
                      double &seconds,
                      const std::function<bool()> &cancel)
{
    const auto start = Clock::now();
    ProfileCounts observed;
    if (cancel) {
        MeasureConfig measure = config_.measure;
        measure.cancel = cancel;
        observed = measureProfile(mem_, round, measure,
                                  config_.wordsUnderTest);
    } else {
        observed = measureProfile(mem_, round, config_.measure,
                                  config_.wordsUnderTest);
    }
    seconds = secondsSince(start);
    return observed;
}

std::uint64_t
Session::experimentsFor(std::size_t patterns) const
{
    return (std::uint64_t)patterns *
           config_.measure.pausesSeconds.size() *
           config_.measure.repeatsPerPause;
}

void
Session::commitRound(const std::vector<TestPattern> &round,
                     const ProfileCounts &observed, double seconds)
{
    stats_.measureSeconds += seconds;
    // Rounds only ever measure patterns pending_ has not handed out
    // before, so overlap with the accumulated counts is a bug.
    counts_.merge(observed, ProfileCounts::MergeMode::AppendDisjoint);
    countsDirty_ = true;
    ++stats_.measureRounds;
    stats_.patternsMeasured = counts_.patterns.size();
    stats_.patternMeasurements += experimentsFor(round.size());
    stats_.wordObservations += observed.totalObservations();

    notify(SessionStage::Measure);
}

bool
Session::measureRound()
{
    if (nextPending_ >= pending_.size())
        return false;

    if (config_.adaptiveEarlyExit)
        partitionPending();
    const std::vector<TestPattern> round = peekChunk();
    nextPending_ += round.size();

    double seconds = 0.0;
    const ProfileCounts observed = measureChunk(round, seconds);
    commitRound(round, observed, seconds);
    return true;
}

void
Session::prepareSolve(PendingSolve &ps)
{
    profile_ = counts_.threshold(config_.measure.thresholdProbability);

    // While more measurement is still available, enumeration only has
    // to decide uniqueness: two solutions suffice. The stale-partition
    // schedules enumerate a few more (SessionConfig::
    // deferredCandidates) so the next round's ranking sees pairs the
    // already-measured round has not eliminated yet.
    ps.maxSolutions = config_.solver.maxSolutions;
    ps.capped = config_.adaptiveEarlyExit && moreEvidenceAvailable();
    if (ps.capped) {
        std::size_t cap = 2;
        if (config_.deferredPartition || config_.pipelined)
            cap = std::max<std::size_t>(cap, config_.deferredCandidates);
        if (ps.maxSolutions == 0 || ps.maxSolutions > cap)
            ps.maxSolutions = cap;
    }
}

void
Session::solveCore(PendingSolve &ps)
{
    // Runs on a pool task in pipelined mode. Exclusive ownership of
    // incremental_ and read-only access to profile_ for the task's
    // whole lifetime; the session thread touches neither until join.
    ps.start = Clock::now();
    std::uint64_t clauses_before = 0;
    std::size_t rebuilds_before = 0;
    auto start = Clock::now();
    if (config_.incrementalSolve && incremental_) {
        // A context prebuilt during round 1 (pipelined mode) holds
        // only the structural clauses; counting the first solve from
        // zero keeps its per-round clause accounting identical to a
        // serial session, whose first solve constructs the context
        // itself.
        if (stats_.solveCalls > 0) {
            clauses_before =
                incremental_->satSolver().stats().addedClauses;
            rebuilds_before = incremental_->rebuilds();
        }
    } else {
        // First round, or from-scratch mode: (re)build the context.
        // Construction encodes the structural constraints.
        incremental_.emplace(profile_.k,
                             ecc::parityBitsForDataBits(profile_.k),
                             config_.solver);
    }
    ps.round.patternsEncoded = incremental_->addProfile(profile_);
    ps.round.encodeSeconds = secondsSince(start);

    start = Clock::now();
    ps.result = incremental_->solve(ps.maxSolutions);
    ps.round.searchSeconds = secondsSince(start);
    // A non-monotone rebuild replaces the SAT solver, resetting its
    // counters; the round then paid for the whole re-encode.
    if (incremental_->rebuilds() != rebuilds_before)
        clauses_before = 0;
    ps.round.clausesAdded =
        incremental_->satSolver().stats().addedClauses - clauses_before;
    ps.round.solutions = ps.result.solutions.size();
    ps.end = Clock::now();
}

void
Session::recordSolve(PendingSolve &ps)
{
    // The candidates being displaced become the deferred-partition
    // set: when the next round is measured, the solve recorded here
    // is the one running beside it in the pipelined schedule, so the
    // displaced solve is the freshest one that schedule has joined.
    // Cleared (not kept sticky) when the displaced solve surfaced
    // fewer than two candidates, mirroring the pipelined arm's
    // "rank only when the joined solve has candidates" guard.
    if (solve_ && solve_->solutions.size() >= 2)
        staleCands_ = solve_->solutions;
    else
        staleCands_.clear();

    solve_ = std::move(ps.result);

    stats_.solveEncodeSeconds += ps.round.encodeSeconds;
    stats_.solveSearchSeconds += ps.round.searchSeconds;
    stats_.solveSeconds +=
        ps.round.encodeSeconds + ps.round.searchSeconds;
    stats_.solveRounds.push_back(ps.round);

    solveWasCapped_ = ps.capped;
    countsDirty_ = false;
    ++stats_.solveCalls;
    stats_.sat.accumulate(solve_->stats);

    notify(SessionStage::Solve);
}

const BeerSolveResult &
Session::solve()
{
    PendingSolve ps;
    prepareSolve(ps);
    solveCore(ps);
    recordSolve(ps);
    return *solve_;
}

std::vector<TestPattern>
Session::escalationPlan() const
{
    auto two_charged = chargedPatterns(mem_.datawordBits(), 2);
    if (config_.adaptiveEarlyExit)
        std::reverse(two_charged.begin(), two_charged.end());
    return two_charged;
}

bool
Session::escalate()
{
    if (escalated_)
        return false;
    escalated_ = true;
    const auto two_charged = escalationPlan();
    pending_.insert(pending_.end(), two_charged.begin(),
                    two_charged.end());
    ++stats_.escalations;
    notify(SessionStage::Escalate);
    return true;
}

bool
Session::canEscalate() const
{
    return config_.escalateToTwoCharged && !escalated_ &&
           mem_.datawordBits() >= 2;
}

bool
Session::moreEvidenceAvailable() const
{
    return pendingPatternCount() > 0 || canEscalate();
}

bool
Session::finished() const
{
    if (solve_ && solve_->unique() && !countsDirty_)
        return true;
    return !moreEvidenceAvailable() && solve_ && !countsDirty_ &&
           !solveWasCapped_;
}

RecoveryReport
Session::run()
{
    if (config_.pipelined)
        return runPipelined();
    while (true) {
        if (measureRound()) {
            // Outside adaptive mode the round covered every pending
            // pattern; either way, decide on the evidence so far.
            solve();
            if (solve_->unique())
                break;
            continue;
        }
        // Nothing pending. Success, escalation, or a final uncapped
        // solve listing the surviving candidates.
        if (solve_ && !countsDirty_ && solve_->unique())
            break;
        if (canEscalate()) {
            escalate();
            continue;
        }
        if (!solve_ || countsDirty_ || solveWasCapped_)
            solve();
        break;
    }
    notify(SessionStage::Done);
    return report();
}

namespace
{

/** Seconds the two steady-clock windows overlap. */
double
windowOverlap(std::chrono::steady_clock::time_point a_start,
              std::chrono::steady_clock::time_point a_end,
              std::chrono::steady_clock::time_point b_start,
              std::chrono::steady_clock::time_point b_end)
{
    const auto start = std::max(a_start, b_start);
    const auto end = std::min(a_end, b_end);
    if (end <= start)
        return 0.0;
    return std::chrono::duration<double>(end - start).count();
}

} // anonymous namespace

RecoveryReport
Session::runPipelined()
{
    util::ThreadPool *pool = config_.solverPool;
    if (!pool) {
        // Background priority: the solve task should consume only CPU
        // time the measurement loop is not using (refresh-pause idle,
        // join blocks) — competing with the measurement datapath for
        // cycles would stretch its wall clock by exactly the cycles
        // borrowed and hide nothing.
        if (!privatePool_)
            privatePool_ = std::make_unique<util::ThreadPool>(
                2, /*background=*/true);
        pool = privatePool_.get();
    }

    // The solver context's structural constraints (column validity,
    // distinctness, symmetry breaking) depend only on the dataword
    // geometry, never on measurements — so build the context on a
    // worker while round 1 measures. Without this the session's first
    // solve is its most expensive (construction dominates it) and
    // runs fully exposed; with it, round 1's refresh pauses hide the
    // construction and the first solve shrinks to round 1's encode
    // and search. Pure wall-clock: the serial twin runs the identical
    // construction inside its first solve.
    util::ClaimableTask prebuild;
    if (config_.incrementalSolve && !incremental_) {
        const std::size_t k = mem_.datawordBits();
        prebuild = util::ClaimableTask(*pool, [this, k] {
            incremental_.emplace(k, ecc::parityBitsForDataBits(k),
                                 config_.solver);
        });
    }

    // Round 1 has nothing else to overlap with (no solve exists yet),
    // and its solve joins inline too: the remaining first-solve work
    // is cheap (the search is underconstrained and the two-solution
    // cap is hit almost immediately), and joining it before selecting
    // round 2 keeps that round's partition fresh — the deferred
    // schedule would otherwise spend round 2 on an unranked pattern.
    measureRound();
    prebuild.join();
    solve();
    if (solve_->unique()) {
        notify(SessionStage::Done);
        return report();
    }
    if (pendingPatternCount() > 0) {
        measureRound(); // round 2: fresh partition, like the twin
    } else if (canEscalate()) {
        // Round 1 consumed the whole plan: mirror the serial loop
        // (escalate, then a fresh-partitioned first 2-CHARGED round)
        // before the pipeline takes over.
        escalate();
        measureRound();
    } else {
        // Round 1 consumed the whole plan and nothing is left to try:
        // the inline solve was launched uncapped and is final.
        notify(SessionStage::Done);
        return report();
    }

    while (true) {
        // Launch this round's solve asynchronously. prepareSolve runs
        // on this thread (it reads counts_ and the pending plan);
        // solveCore owns incremental_/profile_ until the join.
        PendingSolve ps;
        prepareSolve(ps);
        ps.task = util::ClaimableTask(*pool, [this, &ps] {
            solveCore(ps);
        });

        // Measure the next round while the solve runs. Its chunk is
        // selected by the deferred-partition policy: ranked by the
        // candidates of the freshest JOINED solve — the one whose
        // evidence the in-flight solve is consuming — because the
        // in-flight outcome is not available yet. The serial twin
        // (SessionConfig::deferredPartition) makes the identical
        // choice from staleCands_, so both arms issue the identical
        // chip-operation sequence and recover bit-identical results.
        // When the plan is dry but an escalation is still possible,
        // the escalation that the in-flight solve may trigger is
        // speculated the same way: the would-be first 2-CHARGED chunk
        // (same partition policy over the escalation plan) is
        // measured beside the solve, committed only if the solve
        // comes back non-unique.
        std::vector<TestPattern> ahead;
        ProfileCounts ahead_counts;
        double ahead_seconds = 0.0;
        bool ahead_escalates = false;
        // Stop the speculative measurement early once the in-flight
        // solve has finished AND already proved uniqueness: the round
        // is then certain to be discarded, so its remaining refresh
        // pauses would be pure waste. ready() synchronizes with the
        // worker's completion, so reading ps.result after it returns
        // true is race-free; a false return touches nothing.
        const auto doomed = [&ps] {
            return ps.task.ready() && ps.result.unique();
        };
        const auto meas_start = Clock::now();
        if (pendingPatternCount() > 0) {
            if (config_.adaptiveEarlyExit && solve_ &&
                solve_->solutions.size() >= 2)
                rankPendingBy(solve_->solutions);
            ahead = peekChunk();
            nextPending_ += ahead.size();
            ahead_counts = measureChunk(ahead, ahead_seconds, doomed);
        } else if (canEscalate()) {
            std::vector<TestPattern> plan = escalationPlan();
            if (config_.adaptiveEarlyExit && solve_ &&
                solve_->solutions.size() >= 2)
                rankPatterns(plan.begin(), plan.end(),
                             solve_->solutions);
            plan.resize(chunkLimit(plan.size()));
            ahead = std::move(plan);
            ahead_escalates = true;
            ahead_counts = measureChunk(ahead, ahead_seconds, doomed);
        }
        const auto meas_end = Clock::now();

        const bool ran_inline = ps.task.join();
        recordSolve(ps);
        if (!ran_inline && !ahead.empty()) {
            ++stats_.speculatedRounds;
            stats_.overlapSeconds += windowOverlap(
                ps.start, ps.end, meas_start, meas_end);
        }

        if (solve_->unique()) {
            // Committed evidence already pins the function; the round
            // measured beside this solve overshot the early exit and
            // is dropped unseen (a speculated escalation never
            // happens at all). Its chip operations all came after
            // every committed one, so committed evidence (and the
            // serial twin's RNG stream) is untouched.
            if (!ahead.empty()) {
                ++stats_.discardedRounds;
                // Count what the chip actually executed, not the
                // round's plan: the doomed() cancel usually aborts
                // the measurement partway through.
                const std::size_t words_per_experiment =
                    config_.wordsUnderTest.empty()
                        ? mem_.numWords()
                        : config_.wordsUnderTest.size();
                std::uint64_t observations = 0;
                for (const std::uint64_t tested :
                     ahead_counts.wordsTested)
                    observations += tested;
                stats_.discardedMeasurements +=
                    observations / words_per_experiment;
            }
            break;
        }
        if (ahead.empty()) {
            // Plan dry, no escalation left: the solve above was
            // launched with moreEvidenceAvailable() false, hence
            // uncapped — exactly the serial loop's final solve.
            break;
        }
        if (ahead_escalates) {
            // The solve confirmed the escalation the measured-ahead
            // chunk anticipated. Replaying its selection over the
            // now-appended plan (same candidates — recordSolve()
            // banked them in staleCands_ — same stable ranking)
            // consumes exactly the patterns already measured.
            escalate();
            if (config_.adaptiveEarlyExit && !staleCands_.empty())
                rankPendingBy(staleCands_);
            nextPending_ += ahead.size();
        }
        commitRound(ahead, ahead_counts, ahead_seconds);
    }

    notify(SessionStage::Done);
    return report();
}

RecoveryReport
Session::report() const
{
    RecoveryReport report;
    report.counts = counts_;
    report.profile = profile_;
    if (solve_)
        report.solve = *solve_;
    report.usedTwoCharged = escalated_;
    report.stats = stats_;
    return report;
}

void
Session::notify(SessionStage stage)
{
    if (!config_.onProgress)
        return;
    SessionProgress progress;
    progress.stage = stage;
    progress.patternsMeasured = counts_.patterns.size();
    progress.patternsPlanned = pending_.size();
    progress.solutionsFound = solve_ ? solve_->solutions.size() : 0;
    progress.solveComplete = solve_ && solve_->complete;
    progress.escalations = stats_.escalations;
    config_.onProgress(progress);
}

} // namespace beer
