/**
 * @file
 * Staged, resumable BEER recovery sessions.
 *
 * beer::Session decomposes the monolithic recovery pipeline into
 * explicit, caller-driven stages over any dram::MemoryInterface
 * backend:
 *
 *   - measureRound()  measures the next chunk of planned test patterns
 *                     and accumulates the observations into the
 *                     running ProfileCounts via merge();
 *   - solve()         thresholds the accumulated counts and runs the
 *                     SAT solve on everything measured so far;
 *   - escalate()      appends the 2-CHARGED pattern class to the plan
 *                     (paper Section 4.2.4, for shortened codes);
 *   - run()           drives the full adaptive loop to completion.
 *
 * The adaptive loop exploits a property of the profile constraints:
 * any subset of a code's true miscorrection profile is satisfied by
 * the code itself, so if the patterns measured so far already admit
 * exactly one ECC function (solve-to-UNSAT proof), that function is
 * the answer and the remaining patterns need not be measured at all.
 * On real chips, where each pattern costs refresh-pause minutes, this
 * early exit is the difference between hours and days of test time;
 * see bench/session_speedup.cc for the measured reduction.
 *
 * Solver side, a session owns ONE beer::IncrementalSolver for its
 * whole lifetime (unless SessionConfig::incrementalSolve is off). The
 * structural constraints are encoded exactly once, each solve() round
 * encodes only the patterns measured since the previous round, learned
 * clauses and branching activity persist across rounds, and the
 * uniqueness-check blocking clauses of round r are retracted before
 * round r+1 (see solver.hh for the group mechanics). Multi-round
 * adaptive recovery therefore pays the SAT encode cost once instead of
 * O(rounds) times; bench/session_speedup.cc measures the win.
 *
 * Every stage records wall-clock and SAT statistics (SessionStats,
 * including the per-round encode/search split) and reports through an
 * optional progress callback, so long-running recoveries are
 * observable and resumable between stages.
 */

#ifndef BEER_BEER_SESSION_HH
#define BEER_BEER_SESSION_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "beer/measure.hh"
#include "beer/patterns.hh"
#include "beer/profile.hh"
#include "beer/solver.hh"
#include "dram/memory_interface.hh"

namespace beer
{

/** What a Session is currently doing (progress reporting). */
enum class SessionStage
{
    Measure,
    Solve,
    Escalate,
    Done,
};

/** Snapshot passed to SessionConfig::onProgress after every stage. */
struct SessionProgress
{
    SessionStage stage = SessionStage::Measure;
    /** Distinct patterns measured so far. */
    std::size_t patternsMeasured = 0;
    /** Patterns in the current plan (measured + still pending). */
    std::size_t patternsPlanned = 0;
    /** Solutions found by the most recent solve (0 before any solve). */
    std::size_t solutionsFound = 0;
    /** True iff the most recent solve proved its enumeration total. */
    bool solveComplete = false;
    /** 2-CHARGED escalations performed. */
    std::size_t escalations = 0;
};

/** Solver-side accounting for one Session::solve() round. */
struct SolveRoundStats
{
    /** Seconds encoding constraints (CNF construction). */
    double encodeSeconds = 0.0;
    /** Seconds enumerating solutions (SAT search). */
    double searchSeconds = 0.0;
    /** Problem clauses added to the SAT context this round. */
    std::uint64_t clausesAdded = 0;
    /** Profile entries newly encoded this round. */
    std::size_t patternsEncoded = 0;
    /** Solutions the round's enumeration returned. */
    std::size_t solutions = 0;
};

/** Per-stage accounting accumulated across a session's lifetime. */
struct SessionStats
{
    /** Wall-clock seconds spent inside measureRound(). */
    double measureSeconds = 0.0;
    /** Wall-clock seconds spent inside solve(). */
    double solveSeconds = 0.0;
    /** solveSeconds split: constraint encoding vs SAT search. */
    double solveEncodeSeconds = 0.0;
    double solveSearchSeconds = 0.0;
    /** One entry per solve() call, in order. */
    std::vector<SolveRoundStats> solveRounds;
    std::size_t measureRounds = 0;
    std::size_t solveCalls = 0;
    std::size_t escalations = 0;
    /** Distinct patterns measured. */
    std::size_t patternsMeasured = 0;
    /**
     * (pattern, pause, repeat) experiments issued — the unit of
     * physical test time the adaptive early exit saves.
     */
    std::uint64_t patternMeasurements = 0;
    /** Total word read-backs observed. */
    std::uint64_t wordObservations = 0;
    /** SAT statistics accumulated across all solve() calls. */
    sat::SolverStats sat;
};

/** Knobs for a recovery session. */
struct SessionConfig
{
    MeasureConfig measure = MeasureConfig::paperDefault();
    BeerSolverConfig solver;
    /**
     * Add 2-CHARGED patterns when the 1-CHARGED profile does not
     * identify a unique function (needed for shortened codes).
     */
    bool escalateToTwoCharged = true;
    /**
     * Solve after every measurement round and stop measuring as soon
     * as the solution is provably unique. Disable to reproduce the
     * legacy full-sweep pipeline exactly.
     */
    bool adaptiveEarlyExit = true;
    /**
     * Patterns measured per measureRound() when adaptive
     * (0 = automatic: max(1, k/8)). Ignored without adaptive early
     * exit, where every round measures all pending patterns.
     */
    std::size_t patternsPerRound = 0;
    /**
     * Keep one IncrementalSolver alive across solve() calls: encode
     * each pattern once, reuse learned clauses, retract stale blocking
     * clauses. Disable to re-encode and re-search from scratch on
     * every round (the legacy behavior; bench baseline).
     */
    bool incrementalSolve = true;
    /**
     * Words to program and observe; see measureProfile(). Empty means
     * every word (correct only for all-true-cell backends).
     */
    std::vector<std::size_t> wordsUnderTest;
    /** Invoked after every stage when set. */
    std::function<void(const SessionProgress &)> onProgress;
};

/** Everything a recovery produced, for reporting and validation. */
struct RecoveryReport
{
    ProfileCounts counts;
    MiscorrectionProfile profile;
    BeerSolveResult solve;
    /** True iff the 2-CHARGED escalation ran. */
    bool usedTwoCharged = false;
    /** Per-stage accounting (measurement effort, solver cost). */
    SessionStats stats;

    bool succeeded() const { return solve.unique(); }
    const ecc::LinearCode &recoveredCode() const
    {
        return solve.solutions.front();
    }
};

/** Staged BEER recovery; see file comment. */
class Session
{
  public:
    /**
     * Plan a recovery against @p mem starting from the 1-CHARGED
     * pattern class. @p mem must outlive the session.
     */
    explicit Session(dram::MemoryInterface &mem,
                     SessionConfig config = {});

    /**
     * Measure the next chunk of pending patterns and merge the
     * observations into counts().
     *
     * @return false if no patterns were pending (nothing measured)
     */
    bool measureRound();

    /**
     * Threshold the accumulated counts and solve for all consistent
     * ECC functions. While more measurement is available (pending
     * patterns or a possible escalation) and adaptive early exit is
     * on, enumeration is capped at two solutions — enough to decide
     * uniqueness; the final solve honors the configured cap.
     */
    const BeerSolveResult &solve();

    /**
     * Append the 2-CHARGED pattern class to the measurement plan.
     *
     * @return false if the escalation already happened
     */
    bool escalate();

    /** Drive measure/solve/escalate to completion and report. */
    RecoveryReport run();

    /** True iff solved unique, or nothing is left to measure or try. */
    bool finished() const;

    /** Patterns planned but not yet measured. */
    std::size_t pendingPatternCount() const
    {
        return pending_.size() - nextPending_;
    }

    const ProfileCounts &counts() const { return counts_; }
    const SessionStats &stats() const { return stats_; }
    const dram::MemoryInterface &memory() const { return mem_; }

    /** Report of everything produced so far. */
    RecoveryReport report() const;

  private:
    bool canEscalate() const;
    /** True while another measurement could still refine the solve. */
    bool moreEvidenceAvailable() const;
    void notify(SessionStage stage);

    dram::MemoryInterface &mem_;
    SessionConfig config_;
    std::vector<TestPattern> pending_;
    std::size_t nextPending_ = 0;
    ProfileCounts counts_;
    MiscorrectionProfile profile_;
    /**
     * Persistent solve context (lives for the whole session when
     * config_.incrementalSolve; re-created per solve() call otherwise).
     */
    std::optional<IncrementalSolver> incremental_;
    std::optional<BeerSolveResult> solve_;
    /** True iff solve_ was produced under the uniqueness-only cap. */
    bool solveWasCapped_ = false;
    /** True iff counts_ changed since solve_ was produced. */
    bool countsDirty_ = false;
    bool escalated_ = false;
    SessionStats stats_;
};

} // namespace beer

#endif // BEER_BEER_SESSION_HH
