/**
 * @file
 * Staged, resumable BEER recovery sessions.
 *
 * beer::Session decomposes the monolithic recovery pipeline into
 * explicit, caller-driven stages over any dram::MemoryInterface
 * backend:
 *
 *   - measureRound()  measures the next chunk of planned test patterns
 *                     and accumulates the observations into the
 *                     running ProfileCounts via merge();
 *   - solve()         thresholds the accumulated counts and runs the
 *                     SAT solve on everything measured so far;
 *   - escalate()      appends the 2-CHARGED pattern class to the plan
 *                     (paper Section 4.2.4, for shortened codes);
 *   - run()           drives the full adaptive loop to completion.
 *
 * The adaptive loop exploits a property of the profile constraints:
 * any subset of a code's true miscorrection profile is satisfied by
 * the code itself, so if the patterns measured so far already admit
 * exactly one ECC function (solve-to-UNSAT proof), that function is
 * the answer and the remaining patterns need not be measured at all.
 * On real chips, where each pattern costs refresh-pause minutes, this
 * early exit is the difference between hours and days of test time;
 * see bench/session_speedup.cc for the measured reduction.
 *
 * Solver side, a session owns ONE beer::IncrementalSolver for its
 * whole lifetime (unless SessionConfig::incrementalSolve is off). The
 * structural constraints are encoded exactly once, each solve() round
 * encodes only the patterns measured since the previous round, learned
 * clauses and branching activity persist across rounds, and the
 * uniqueness-check blocking clauses of round r are retracted before
 * round r+1 (see solver.hh for the group mechanics). Multi-round
 * adaptive recovery therefore pays the SAT encode cost once instead of
 * O(rounds) times; bench/session_speedup.cc measures the win.
 *
 * Every stage records wall-clock and SAT statistics (SessionStats,
 * including the per-round encode/search split) and reports through an
 * optional progress callback, so long-running recoveries are
 * observable and resumable between stages.
 *
 * SessionConfig::pipelined replaces the serial measure -> solve
 * barrier with a task-graph pipeline: round r's solve runs on a
 * util::ThreadPool task while the backend measures round r+1's
 * patterns, and the session joins the task only when the adaptive
 * early-exit decision actually needs the solution count. For the two
 * sides to proceed concurrently, round r+1's chunk must be selected
 * before solve r finishes, so active pattern selection runs one
 * solve stale: the partition that orders the pending tail uses the
 * freshest solve that has already JOINED (r-1), not the one in
 * flight. That deferred-partition schedule is a property of the
 * schedule, not of concurrency — SessionConfig::deferredPartition
 * runs the plain serial loop under the identical policy, and because
 * the chip sees the exact same operations in the exact same order,
 * a pipelined session and its serial twin produce bit-identical
 * profiles, counts, and recovered functions (the differential tests
 * assert this). Against the default serial schedule (which partitions
 * with the just-finished solve, one round fresher) the recovered
 * function is still identical — both converge to the provably unique
 * ECC function — though the pattern count may differ by a round or
 * two. The win is the solver time hidden behind measurement latency
 * (SessionStats::overlapSeconds): on real chips a refresh-pause
 * round costs minutes while a capped incremental solve costs
 * seconds-to-minutes, so hiding the solve entirely approaches a 2x
 * end-to-end reduction; see bench/session_speedup.cc --pipeline for
 * measured numbers. The only speculative cost is the one chunk
 * measured ahead while the final solve proves uniqueness
 * (SessionStats::discardedMeasurements).
 */

#ifndef BEER_BEER_SESSION_HH
#define BEER_BEER_SESSION_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "beer/measure.hh"
#include "beer/patterns.hh"
#include "beer/profile.hh"
#include "beer/solver.hh"
#include "dram/memory_interface.hh"
#include "util/thread_pool.hh"

namespace beer
{

/** What a Session is currently doing (progress reporting). */
enum class SessionStage
{
    Measure,
    Solve,
    Escalate,
    Done,
};

/** Snapshot passed to SessionConfig::onProgress after every stage. */
struct SessionProgress
{
    SessionStage stage = SessionStage::Measure;
    /** Distinct patterns measured so far. */
    std::size_t patternsMeasured = 0;
    /** Patterns in the current plan (measured + still pending). */
    std::size_t patternsPlanned = 0;
    /** Solutions found by the most recent solve (0 before any solve). */
    std::size_t solutionsFound = 0;
    /** True iff the most recent solve proved its enumeration total. */
    bool solveComplete = false;
    /** 2-CHARGED escalations performed. */
    std::size_t escalations = 0;
};

/** Solver-side accounting for one Session::solve() round. */
struct SolveRoundStats
{
    /** Seconds encoding constraints (CNF construction). */
    double encodeSeconds = 0.0;
    /** Seconds enumerating solutions (SAT search). */
    double searchSeconds = 0.0;
    /** Problem clauses added to the SAT context this round. */
    std::uint64_t clausesAdded = 0;
    /** Profile entries newly encoded this round. */
    std::size_t patternsEncoded = 0;
    /** Solutions the round's enumeration returned. */
    std::size_t solutions = 0;
};

/** Per-stage accounting accumulated across a session's lifetime. */
struct SessionStats
{
    /** Wall-clock seconds spent inside measureRound(). */
    double measureSeconds = 0.0;
    /** Wall-clock seconds spent inside solve(). */
    double solveSeconds = 0.0;
    /** solveSeconds split: constraint encoding vs SAT search. */
    double solveEncodeSeconds = 0.0;
    double solveSearchSeconds = 0.0;
    /** One entry per solve() call, in order. */
    std::vector<SolveRoundStats> solveRounds;
    std::size_t measureRounds = 0;
    std::size_t solveCalls = 0;
    std::size_t escalations = 0;
    /** Distinct patterns measured. */
    std::size_t patternsMeasured = 0;
    /**
     * (pattern, pause, repeat) experiments issued — the unit of
     * physical test time the adaptive early exit saves.
     */
    std::uint64_t patternMeasurements = 0;
    /** Total word read-backs observed. */
    std::uint64_t wordObservations = 0;
    /**
     * Solver wall-clock hidden behind concurrent measurement
     * (pipelined mode): the intersection of each async solve's
     * execution window with the measure-ahead of the next round
     * running beside it. 0 in serial mode.
     */
    double overlapSeconds = 0.0;
    /** Rounds measured while a solve ran concurrently beside them. */
    std::size_t speculatedRounds = 0;
    /**
     * Measured-ahead rounds never committed because the solve running
     * beside them proved uniqueness, ending the session first. At
     * most one per run.
     */
    std::size_t discardedRounds = 0;
    /**
     * Experiments actually performed for those never-committed
     * rounds. Physical test time burned on overshooting the early
     * exit — NOT part of patternMeasurements, which counts committed
     * evidence only and so stays comparable with the serial twin.
     * Usually well under a full round: speculative measurement aborts
     * between experiments as soon as the solve beside it proves
     * uniqueness.
     */
    std::uint64_t discardedMeasurements = 0;
    /** SAT statistics accumulated across all solve() calls. */
    sat::SolverStats sat;
    /** UNSAT-repair loop iterations run (SessionConfig::repair). */
    std::size_t repairAttempts = 0;
    /** Measurement rounds retracted as corrupted by the repair loop. */
    std::size_t roundsRetracted = 0;
    /** Patterns re-measured at escalated quorum by the repair loop. */
    std::size_t patternsRemeasured = 0;
    /** Quorum vote disagreements observed across all rounds. */
    std::uint64_t quorumDisagreements = 0;
    /**
     * Dataword read sweeps spent by committed measurement rounds —
     * the adaptive-vs-fixed quorum comparison's cost metric (1 per
     * experiment without quorum).
     */
    std::uint64_t quorumVotesSpent = 0;
    /** Experiments escalated to the full quorum vote count
     *  (speculative, later-discarded rounds included). */
    std::uint64_t quorumEscalations = 0;
};

/**
 * UNSAT-core repair of noise-poisoned measurement rounds.
 *
 * When a solve proves the accumulated profile unsatisfiable — no ECC
 * function exists, so some round recorded corrupted evidence — run()
 * localizes a minimal set of measurement rounds the contradiction
 * depends on by suspending the incremental solver's retractable
 * per-round clause groups in suspicion order (quorum-flagged rounds
 * first, then newest first) and probing satisfiability after each,
 * then minimizing the suspended set. The localized rounds are
 * permanently retracted, their patterns re-measured at escalated
 * quorum (with optional exponential backoff to wait out noise
 * bursts), and the solve resumes on the repaired evidence — all
 * bounded by @c maxAttempts. Enabling repair forces
 * SessionConfig::incrementalSolve and
 * BeerSolverConfig::retractableProfile, whose grouped encoding the
 * localization requires.
 */
struct SessionRepairConfig
{
    bool enabled = false;
    /** Retract / re-measure / re-solve iterations before giving up. */
    std::size_t maxAttempts = 3;
    /** Quorum votes used when re-measuring retracted patterns (the
     *  evidence was bad once, so every repeat read is voted); clamped
     *  up to the session's configured quorum. */
    std::size_t remeasureVotes = 5;
    /** Sleep backoffBaseSeconds * 2^attempt before each re-measure
     *  (0 disables). On real chips this waits out the transient noise
     *  burst that poisoned the round in the first place. */
    double backoffBaseSeconds = 0.0;
    /** SAT conflict cap per localization probe (0 = unlimited). A
     *  probe that exhausts it counts as "still contradictory". */
    std::uint64_t probeConflictLimit = 0;
};

/** Knobs for a recovery session. */
struct SessionConfig
{
    MeasureConfig measure = MeasureConfig::paperDefault();
    BeerSolverConfig solver;
    /**
     * Add 2-CHARGED patterns when the 1-CHARGED profile does not
     * identify a unique function (needed for shortened codes).
     */
    bool escalateToTwoCharged = true;
    /**
     * Solve after every measurement round and stop measuring as soon
     * as the solution is provably unique. Disable to reproduce the
     * legacy full-sweep pipeline exactly.
     */
    bool adaptiveEarlyExit = true;
    /**
     * Patterns measured per measureRound() when adaptive
     * (0 = automatic: max(1, k/8)). Ignored without adaptive early
     * exit, where every round measures all pending patterns.
     */
    std::size_t patternsPerRound = 0;
    /**
     * Keep one IncrementalSolver alive across solve() calls: encode
     * each pattern once, reuse learned clauses, retract stale blocking
     * clauses. Disable to re-encode and re-search from scratch on
     * every round (the legacy behavior; bench baseline).
     */
    bool incrementalSolve = true;
    /**
     * Words to program and observe; see measureProfile(). Empty means
     * every word (correct only for all-true-cell backends).
     */
    std::vector<std::size_t> wordsUnderTest;
    /**
     * Select each round's patterns with the partition pair of the
     * last solve already joined when the previous round was measured
     * — one solve stale — instead of the just-finished solve. This is
     * the schedule a pipelined session necessarily follows (the fresh
     * solve is still in flight when the next chunk starts measuring);
     * setting it on a serial session yields the pipelined schedule's
     * bit-exact twin for differential testing. Ignored when pipelined
     * (implied) or without adaptive early exit (no partitioning).
     */
    bool deferredPartition = false;
    /**
     * Overlap solving with measurement: run() executes each adaptive
     * solve on a pool task while the backend measures the next
     * round's patterns beside it (see the file comment). The
     * recovered function is identical to the serial path's; the
     * measurement schedule is the deferredPartition one. The staged
     * API (measureRound()/solve()/escalate()) stays serial either
     * way.
     */
    bool pipelined = false;
    /**
     * Candidate functions enumerated by each capped solve under the
     * stale-partition schedules (deferredPartition or pipelined);
     * clamped to at least 2. The default serial schedule always stops
     * at two — enough to decide uniqueness and rank the next round —
     * but a stale schedule ranks round r+1 on solve r-1's candidates,
     * some of which round r may already have eliminated, so widening
     * the set gives the ranking pairs that are still plausible. In
     * practice the default 2 wins: enumerating past two makes every
     * tail solve pay the near-UNSAT proof that no further candidate
     * exists (the expensive part of the final uniqueness check),
     * which the refresh pauses cannot hide.
     */
    std::size_t deferredCandidates = 2;
    /**
     * Pool that runs the pipelined solve tasks (at most one in flight
     * per session). Must outlive the session. nullptr = the session
     * lazily creates a private two-thread pool when pipelined. The
     * claimable-task handoff never deadlocks on a busy shared pool:
     * if no worker picks the solve up, the join runs it inline.
     */
    util::ThreadPool *solverPool = nullptr;
    /** UNSAT-core repair of corrupted rounds; see SessionRepairConfig. */
    SessionRepairConfig repair;
    /**
     * Wall-clock budget for run(), seconds (0 = none). Checked
     * between rounds AND between experiments inside a round (refresh
     * pauses dominate round cost, so waiting for the round boundary
     * could overshoot by many pause durations — or hang forever on a
     * stalling chip). On expiry the session stops measuring and
     * reports a DeadlineExceeded diagnosis with the ranked candidate
     * set the committed evidence admits.
     */
    double deadlineSeconds = 0.0;
    /**
     * Cap on (pattern, pause, repeat) experiments issued (0 = none),
     * repair re-measurement included; checked at round granularity.
     * On exhaustion the session degrades exactly like the deadline
     * does, with a BudgetExhausted diagnosis.
     */
    std::uint64_t measurementBudget = 0;
    /** Invoked after every stage when set. */
    std::function<void(const SessionProgress &)> onProgress;
};

/** Terminal classification of a recovery session. */
enum class SessionOutcome
{
    /** Exactly one ECC function is consistent with the evidence. */
    Unique,
    /** Multiple candidates remain (plan or evidence exhausted). */
    Ambiguous,
    /** No function is consistent with the evidence and repair could
     *  not fix it (persistent corruption, e.g. stuck-at faults). */
    Unsatisfiable,
    /** SessionConfig::deadlineSeconds expired first. */
    DeadlineExceeded,
    /** SessionConfig::measurementBudget ran out first. */
    BudgetExhausted,
};

/** Stable lower_snake name for logs and JSON (e.g. "unique"). */
const char *sessionOutcomeName(SessionOutcome outcome);

/**
 * Machine-readable post-mortem attached to every RecoveryReport: how
 * the session ended and why, plus the noise/repair accounting fleet
 * tooling needs to decide what to do next (retry the chip, accept the
 * best-ranked candidate, quarantine) without parsing logs.
 */
struct SessionDiagnosis
{
    SessionOutcome outcome = SessionOutcome::Ambiguous;
    /** One-line human-readable explanation. */
    std::string detail;
    /** Candidate functions in the final solve (0 if none ran). */
    std::size_t candidates = 0;
    /** Patterns whose quorum votes disagreed at least once. */
    std::vector<TestPattern> suspectPatterns;
    std::size_t repairAttempts = 0;
    std::size_t roundsRetracted = 0;
    std::size_t patternsRemeasured = 0;
    std::uint64_t quorumDisagreements = 0;
    /** Session wall-clock at report time, seconds. */
    double elapsedSeconds = 0.0;
    /** Single-line JSON object (stable keys). */
    std::string toJson() const;
};

/** Everything a recovery produced, for reporting and validation. */
struct RecoveryReport
{
    ProfileCounts counts;
    MiscorrectionProfile profile;
    /**
     * The final solve. When the session ends ambiguous the surviving
     * candidates are ranked by agreement with the raw observation
     * counts (best first), so front() is the best guess even without
     * a uniqueness proof.
     */
    BeerSolveResult solve;
    /** Post-mortem: outcome classification + repair accounting. */
    SessionDiagnosis diagnosis;
    /** True iff the 2-CHARGED escalation ran. */
    bool usedTwoCharged = false;
    /** Per-stage accounting (measurement effort, solver cost). */
    SessionStats stats;

    bool succeeded() const { return solve.unique(); }
    const ecc::LinearCode &recoveredCode() const
    {
        return solve.solutions.front();
    }
};

/** Staged BEER recovery; see file comment. */
class Session
{
  public:
    /**
     * Plan a recovery against @p mem starting from the 1-CHARGED
     * pattern class. @p mem must outlive the session.
     */
    explicit Session(dram::MemoryInterface &mem,
                     SessionConfig config = {});

    /**
     * Measure the next chunk of pending patterns and merge the
     * observations into counts().
     *
     * @return false if no patterns were pending (nothing measured)
     */
    bool measureRound();

    /**
     * Threshold the accumulated counts and solve for all consistent
     * ECC functions. While more measurement is available (pending
     * patterns or a possible escalation) and adaptive early exit is
     * on, enumeration is capped at two solutions — enough to decide
     * uniqueness; the final solve honors the configured cap.
     */
    const BeerSolveResult &solve();

    /**
     * Append the 2-CHARGED pattern class to the measurement plan.
     *
     * @return false if the escalation already happened
     */
    bool escalate();

    /** Drive measure/solve/escalate to completion and report. */
    RecoveryReport run();

    /**
     * Seed the session's solver context from a fingerprint-cache near
     * match before any measurement: @p shared is the profile subset a
     * previously solved sibling chip also exhibited (see
     * IncrementalSolver::warmStart). Call before run(); no-op when
     * @p shared is empty or incremental solving is off. The repaired
     * sibling of a cached chip re-enters recovery through this hook
     * instead of cold-solving.
     */
    void warmStart(const MiscorrectionProfile &shared);

    /** True iff solved unique, or nothing is left to measure or try. */
    bool finished() const;

    /** Patterns planned but not yet measured. */
    std::size_t pendingPatternCount() const
    {
        return pending_.size() - nextPending_;
    }

    const ProfileCounts &counts() const { return counts_; }
    const SessionStats &stats() const { return stats_; }
    const dram::MemoryInterface &memory() const { return mem_; }

    /** Report of everything produced so far. */
    RecoveryReport report() const;

  private:
    /** One solve round's inputs and outputs; in pipelined mode the
     * core runs on a pool task while this struct carries the results
     * (and the execution window, for overlap accounting) back to the
     * session thread at join. */
    struct PendingSolve
    {
        std::size_t maxSolutions = 0;
        /** True iff capped to the two-solution uniqueness check. */
        bool capped = false;
        BeerSolveResult result;
        SolveRoundStats round;
        std::chrono::steady_clock::time_point start{};
        std::chrono::steady_clock::time_point end{};
        util::ClaimableTask task;
    };

    bool canEscalate() const;
    /** True while another measurement could still refine the solve. */
    bool moreEvidenceAvailable() const;
    void notify(SessionStage stage);

    /** Patterns one round may take from @p available pending ones. */
    std::size_t chunkLimit(std::size_t available) const;
    /** Active pattern selection over the pending tail (see .cc). */
    void partitionPending();
    /** Rank the pending tail: patterns distinguishing more pairs of
     * @p cands first (stable; for two candidates this is the classic
     * active-selection partition). */
    void rankPendingBy(const std::vector<ecc::LinearCode> &cands);
    /** Copy of the next chunk, without consuming it. */
    std::vector<TestPattern> peekChunk() const;
    /** The 2-CHARGED plan escalate() would append, in session order. */
    std::vector<TestPattern> escalationPlan() const;
    /** Measure @p round (no bookkeeping); wall-clock into @p seconds.
     * A non-empty @p cancel aborts between experiments (speculative
     * rounds stop once the solve beside them proves uniqueness). */
    ProfileCounts measureChunk(const std::vector<TestPattern> &round,
                               double &seconds,
                               const std::function<bool()> &cancel = {});
    /** Merge measured observations + stats + progress notification. */
    void commitRound(const std::vector<TestPattern> &round,
                     const ProfileCounts &observed, double seconds);
    /** Experiments one pattern round costs (pauses x repeats). */
    std::uint64_t experimentsFor(std::size_t patterns) const;

    bool deadlineExceeded() const;
    bool budgetExhausted() const;
    /** Latch stopReason_ on deadline/budget expiry; true = stop now. */
    bool checkDegraded();
    /** True iff the last solve proved the profile unsatisfiable and
     *  the retractable-round machinery is armed to act on it. */
    bool repairNeeded() const;
    /** The UNSAT-core repair loop (see SessionRepairConfig); true iff
     *  the profile is satisfiable again. */
    bool attemptRepair();
    /** Minimal set of profile rounds the contradiction depends on,
     *  found by suspend+probe in suspicion order then minimized;
     *  empty if localization failed (every returned round is left
     *  suspended for the caller to drop). */
    std::vector<std::size_t> localizeCorruptRounds();
    /** Order @p cands by agreement with the raw counts, best first. */
    void rankCandidatesByEvidence(
        std::vector<ecc::LinearCode> &cands) const;
    /** Classify how the session ended; see SessionDiagnosis. */
    SessionDiagnosis diagnose() const;

    /** Threshold the counts and derive this round's enumeration cap. */
    void prepareSolve(PendingSolve &ps);
    /** Encode + search (thread-safe: exclusive solver ownership). */
    void solveCore(PendingSolve &ps);
    /** Publish a finished solve into solve_/stats_ and notify. */
    void recordSolve(PendingSolve &ps);

    /** The pipelined run() loop; see the file comment. */
    RecoveryReport runPipelined();

    dram::MemoryInterface &mem_;
    SessionConfig config_;
    std::vector<TestPattern> pending_;
    std::size_t nextPending_ = 0;
    ProfileCounts counts_;
    MiscorrectionProfile profile_;
    /**
     * Persistent solve context (lives for the whole session when
     * config_.incrementalSolve; re-created per solve() call otherwise).
     */
    std::optional<IncrementalSolver> incremental_;
    std::optional<BeerSolveResult> solve_;
    /** True iff solve_ was produced under the uniqueness-only cap. */
    bool solveWasCapped_ = false;
    /** True iff counts_ changed since solve_ was produced. */
    bool countsDirty_ = false;
    bool escalated_ = false;
    /** Lazily created when pipelined without a configured solverPool. */
    std::unique_ptr<util::ThreadPool> privatePool_;
    /**
     * Candidate set of the second-most-recent solve, for the serial
     * deferredPartition schedule: when round r+1 is measured, this
     * holds solve r-1's candidates — exactly the freshest JOINED
     * solve at the moment a pipelined session selects the same chunk.
     * Empty when that solve surfaced fewer than two candidates.
     */
    std::vector<ecc::LinearCode> staleCands_;
    /** Session construction time (deadline + elapsed accounting). */
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
    /** Degraded-stop reason, latched once triggered. */
    std::optional<SessionOutcome> stopReason_;
    /**
     * Adaptive-quorum disagreement-rate estimator carried across every
     * measurement this session issues (speculative rounds and repair
     * re-measurement included) — escalation decisions late in a run
     * lean on the noise level the whole run observed.
     */
    QuorumEstimator quorumEstimator_;
    SessionStats stats_;
};

} // namespace beer

#endif // BEER_BEER_SESSION_HH
