#include "beer/solver.hh"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "ecc/code_equiv.hh"
#include "ecc/hamming.hh"
#include "gf2/matrix.hh"
#include "sat/encoder.hh"
#include "util/logging.hh"

namespace beer
{

using ecc::LinearCode;
using gf2::BitVec;
using gf2::Matrix;
using sat::Encoder;
using sat::Lit;
using sat::Solver;

namespace
{

/** SAT variables for the unknown P matrix, row-major. */
struct PVars
{
    std::size_t p; // parity bits (rows)
    std::size_t k; // data bits (columns)
    std::vector<Lit> lits;

    Lit at(std::size_t r, std::size_t c) const { return lits[r * k + c]; }

    std::vector<Lit>
    column(std::size_t c) const
    {
        std::vector<Lit> out(p);
        for (std::size_t r = 0; r < p; ++r)
            out[r] = at(r, c);
        return out;
    }

    std::vector<Lit>
    rowLits(std::size_t r) const
    {
        std::vector<Lit> out(k);
        for (std::size_t c = 0; c < k; ++c)
            out[c] = at(r, c);
        return out;
    }
};

PVars
makePVars(Encoder &enc, std::size_t p, std::size_t k)
{
    PVars vars;
    vars.p = p;
    vars.k = k;
    vars.lits.reserve(p * k);
    for (std::size_t i = 0; i < p * k; ++i)
        vars.lits.push_back(enc.fresh());
    return vars;
}

/** Constraint 1: every data column has weight >= 2 (nonzero and not a
 *  unit vector, i.e. distinct from all parity columns). */
void
encodeColumnWeights(Encoder &enc, const PVars &vars)
{
    for (std::size_t c = 0; c < vars.k; ++c) {
        const std::vector<Lit> col = vars.column(c);
        enc.require(col); // at least one bit set
        for (std::size_t r = 0; r < vars.p; ++r) {
            // If bit r is set, some other bit must be set too.
            std::vector<Lit> clause;
            clause.reserve(vars.p);
            clause.push_back(~col[r]);
            for (std::size_t r2 = 0; r2 < vars.p; ++r2)
                if (r2 != r)
                    clause.push_back(col[r2]);
            enc.require(clause);
        }
    }
}

/** Constraint 1 (continued): data columns pairwise distinct. */
void
encodeDistinctColumns(Encoder &enc, const PVars &vars)
{
    for (std::size_t a = 0; a < vars.k; ++a) {
        for (std::size_t b = a + 1; b < vars.k; ++b) {
            std::vector<Lit> diffs;
            diffs.reserve(vars.p);
            for (std::size_t r = 0; r < vars.p; ++r)
                diffs.push_back(enc.mkXor(vars.at(r, a), vars.at(r, b)));
            enc.require(diffs); // some row differs
        }
    }
}

/**
 * XOR of pattern columns per row: U_r = xor_{i in S} P[r][i].
 * For |S| == 1 these are the column literals themselves.
 */
std::vector<Lit>
encodeChargedParity(Encoder &enc, const PVars &vars,
                    const TestPattern &pattern)
{
    std::vector<Lit> u(vars.p);
    for (std::size_t r = 0; r < vars.p; ++r) {
        std::vector<Lit> terms;
        terms.reserve(pattern.size());
        for (std::size_t i : pattern)
            terms.push_back(vars.at(r, i));
        u[r] = enc.mkXor(terms);
    }
    return u;
}

/**
 * Literal equivalent to "a miscorrection at bit j is possible under
 * this pattern": OR over the reduced subsets T of AND over rows of
 * (v_r -> U_r), with v = column j xor the columns in T.
 */
Lit
encodeMiscorrectionPossible(Encoder &enc, const PVars &vars,
                            const TestPattern &pattern, std::size_t j,
                            const std::vector<Lit> &u)
{
    const std::size_t reduced = pattern.size() - 1;
    std::vector<Lit> conditions;
    conditions.reserve((std::size_t)1 << reduced);
    for (std::size_t subset = 0; subset < ((std::size_t)1 << reduced);
         ++subset) {
        std::vector<Lit> implications;
        implications.reserve(vars.p);
        for (std::size_t r = 0; r < vars.p; ++r) {
            std::vector<Lit> terms;
            terms.push_back(vars.at(r, j));
            for (std::size_t i = 0; i < reduced; ++i)
                if ((subset >> i) & 1)
                    terms.push_back(vars.at(r, pattern[i + 1]));
            const Lit v = enc.mkXor(terms);
            implications.push_back(enc.mkOr(~v, u[r]));
        }
        conditions.push_back(enc.mkAnd(implications));
    }
    return enc.mkOr(conditions);
}

/** Constraint 3: one observed profile entry. */
void
encodePatternEntry(Encoder &enc, const PVars &vars,
                   const PatternProfile &entry)
{
    const TestPattern &pattern = entry.pattern;
    BEER_ASSERT(!pattern.empty());

    if (pattern.size() == 1) {
        // Specialized 1-CHARGED encoding: possible(c, j) reduces to
        // supp(col_j) subset-of supp(col_c): pure 2-CNF positives,
        // one small Tseitin OR for negatives.
        const std::size_t c = pattern[0];
        for (std::size_t j = 0; j < vars.k; ++j) {
            if (j == c)
                continue;
            if (entry.miscorrectable.get(j)) {
                for (std::size_t r = 0; r < vars.p; ++r)
                    enc.require({~vars.at(r, j), vars.at(r, c)});
            } else {
                std::vector<Lit> violations;
                violations.reserve(vars.p);
                for (std::size_t r = 0; r < vars.p; ++r)
                    violations.push_back(
                        enc.mkAnd(vars.at(r, j), ~vars.at(r, c)));
                enc.require(violations);
            }
        }
        return;
    }

    const std::vector<Lit> u = encodeChargedParity(enc, vars, pattern);
    for (std::size_t j = 0; j < vars.k; ++j) {
        if (patternContains(pattern, j))
            continue;
        const Lit possible =
            encodeMiscorrectionPossible(enc, vars, pattern, j, u);
        enc.require(entry.miscorrectable.get(j) ? possible : ~possible);
    }
}

/** Symmetry breaking: rows of P in ascending lexicographic order. */
void
encodeRowOrder(Encoder &enc, const PVars &vars)
{
    for (std::size_t r = 0; r + 1 < vars.p; ++r)
        enc.requireLexLeq(vars.rowLits(r), vars.rowLits(r + 1));
}

Matrix
extractModel(const Solver &solver, const PVars &vars)
{
    Matrix out(vars.p, vars.k);
    for (std::size_t r = 0; r < vars.p; ++r)
        for (std::size_t c = 0; c < vars.k; ++c)
            out.set(r, c, solver.modelValue(vars.at(r, c).var()));
    return out;
}

/** Forbid the exact assignment of the P variables just found. */
void
addBlockingClause(Solver &solver, const PVars &vars, const Matrix &model,
                  sat::GroupId group)
{
    std::vector<Lit> clause;
    clause.reserve(vars.p * vars.k);
    for (std::size_t r = 0; r < vars.p; ++r)
        for (std::size_t c = 0; c < vars.k; ++c) {
            const Lit l = vars.at(r, c);
            clause.push_back(model.get(r, c) ? ~l : l);
        }
    solver.addClause(std::move(clause), group);
}

} // anonymous namespace

struct IncrementalSolver::Impl
{
    std::size_t k;
    std::size_t p;
    BeerSolverConfig config;
    Solver solver;
    Encoder enc;
    PVars vars;
    /**
     * Encoded entries in arrival order (rebuild replays these). Slots
     * are stable: dropRound() tombstones entries (entryDropped) rather
     * than erasing them, so round slot lists stay valid.
     */
    std::vector<PatternProfile> entries;
    std::vector<bool> entryDropped;
    std::map<TestPattern, std::size_t> entryIndex;

    /** One retractable clause group per addProfile() batch. */
    struct Round
    {
        sat::GroupId group = sat::kGroupNone;
        std::vector<std::size_t> slots;
        bool suspended = false;
        bool dropped = false;
    };
    /** Populated only when config.retractableProfile. */
    std::vector<Round> rounds;

    /** Group holding the current round's blocking clauses. */
    sat::GroupId blockGroup = sat::kGroupNone;
    std::size_t rebuilds = 0;

    Impl(std::size_t k_, std::size_t p_, const BeerSolverConfig &config_)
        : k(k_), p(p_), config(config_), enc(solver),
          vars(makePVars(enc, p_, k_))
    {
        encodeColumnWeights(enc, vars);
        encodeDistinctColumns(enc, vars);
        if (config.symmetryBreaking)
            encodeRowOrder(enc, vars);
    }

    void
    encodeEntry(const PatternProfile &entry)
    {
        entryIndex.emplace(entry.pattern, entries.size());
        entries.push_back(entry);
        entryDropped.push_back(false);
        encodePatternEntry(enc, vars, entry);
        if (!rounds.empty() && enc.group() != sat::kGroupNone)
            rounds.back().slots.push_back(entries.size() - 1);
    }
};

IncrementalSolver::IncrementalSolver(std::size_t k,
                                     std::size_t num_parity_bits,
                                     BeerSolverConfig config)
{
    BEER_ASSERT(k >= 1);
    BEER_ASSERT(num_parity_bits >= 1);
    impl_ = std::make_unique<Impl>(k, num_parity_bits, config);
}

IncrementalSolver::~IncrementalSolver() = default;
IncrementalSolver::IncrementalSolver(IncrementalSolver &&) noexcept =
    default;
IncrementalSolver &
IncrementalSolver::operator=(IncrementalSolver &&) noexcept = default;

std::size_t
IncrementalSolver::k() const
{
    return impl_->k;
}

std::size_t
IncrementalSolver::parityBits() const
{
    return impl_->p;
}

std::size_t
IncrementalSolver::encodedPatterns() const
{
    return impl_->entryIndex.size();
}

std::size_t
IncrementalSolver::rebuilds() const
{
    return impl_->rebuilds;
}

const sat::Solver &
IncrementalSolver::satSolver() const
{
    return impl_->solver;
}

void
IncrementalSolver::setMaxSolutions(std::size_t max_solutions)
{
    impl_->config.maxSolutions = max_solutions;
}

BeerSolveResult
IncrementalSolver::solve(std::size_t max_solutions)
{
    const std::size_t previous = impl_->config.maxSolutions;
    impl_->config.maxSolutions = max_solutions;
    BeerSolveResult result = solve();
    impl_->config.maxSolutions = previous;
    return result;
}

void
IncrementalSolver::rebuild()
{
    auto entries = std::move(impl_->entries);
    auto dropped = std::move(impl_->entryDropped);
    auto rounds = std::move(impl_->rounds);
    const std::size_t rebuilds = impl_->rebuilds + 1;
    auto fresh =
        std::make_unique<Impl>(impl_->k, impl_->p, impl_->config);
    fresh->rebuilds = rebuilds;
    if (rounds.empty()) {
        for (const PatternProfile &entry : entries)
            fresh->encodeEntry(entry);
    } else {
        // Retractable mode: replay round by round so round indices,
        // entry slots, suspension, and drop state all survive the
        // rebuild. Tombstoned slots are carried over un-encoded.
        fresh->entries = std::move(entries);
        fresh->entryDropped = std::move(dropped);
        for (const Impl::Round &round : rounds) {
            Impl::Round nr;
            nr.slots = round.slots;
            nr.suspended = round.suspended;
            nr.dropped = round.dropped;
            if (!round.dropped) {
                nr.group = fresh->solver.newGroup();
                fresh->enc.setGroup(nr.group);
                for (std::size_t slot : nr.slots) {
                    if (fresh->entryDropped[slot])
                        continue;
                    const PatternProfile &entry = fresh->entries[slot];
                    fresh->entryIndex.emplace(entry.pattern, slot);
                    encodePatternEntry(fresh->enc, fresh->vars, entry);
                }
                fresh->enc.setGroup(sat::kGroupNone);
                if (nr.suspended)
                    fresh->solver.suspendGroup(nr.group);
            }
            fresh->rounds.push_back(std::move(nr));
        }
    }
    impl_ = std::move(fresh);
}

std::size_t
IncrementalSolver::addProfile(const MiscorrectionProfile &profile)
{
    Impl &im = *impl_;
    BEER_ASSERT(profile.k == im.k);

    // Non-monotone evidence (an already-encoded pattern whose bitmap
    // changed, e.g. after a threshold flip) invalidates permanently
    // asserted constraints: overwrite the stored entries and rebuild.
    bool changed = false;
    for (const PatternProfile &entry : profile.patterns) {
        const auto it = im.entryIndex.find(entry.pattern);
        if (it != im.entryIndex.end() &&
            !(im.entries[it->second] == entry)) {
            im.entries[it->second] = entry;
            changed = true;
        }
    }
    if (changed)
        rebuild();

    std::size_t added = 0;
    bool opened = false;
    for (const PatternProfile &entry : profile.patterns) {
        if (impl_->entryIndex.count(entry.pattern))
            continue;
        if (impl_->config.retractableProfile && !opened) {
            // First new pattern of this batch opens the round lazily,
            // so duplicate-only calls do not burn round slots.
            Impl::Round round;
            round.group = impl_->solver.newGroup();
            impl_->rounds.push_back(round);
            impl_->enc.setGroup(round.group);
            opened = true;
        }
        impl_->encodeEntry(entry);
        ++added;
    }
    if (opened)
        impl_->enc.setGroup(sat::kGroupNone);
    return added;
}

std::size_t
IncrementalSolver::roundCount() const
{
    return impl_->rounds.size();
}

std::vector<TestPattern>
IncrementalSolver::roundPatterns(std::size_t round) const
{
    BEER_ASSERT(round < impl_->rounds.size());
    std::vector<TestPattern> out;
    const Impl::Round &r = impl_->rounds[round];
    if (r.dropped)
        return out;
    out.reserve(r.slots.size());
    for (std::size_t slot : r.slots)
        if (!impl_->entryDropped[slot])
            out.push_back(impl_->entries[slot].pattern);
    return out;
}

bool
IncrementalSolver::roundDropped(std::size_t round) const
{
    BEER_ASSERT(round < impl_->rounds.size());
    return impl_->rounds[round].dropped;
}

bool
IncrementalSolver::roundSuspended(std::size_t round) const
{
    BEER_ASSERT(round < impl_->rounds.size());
    const Impl::Round &r = impl_->rounds[round];
    return !r.dropped && r.suspended;
}

void
IncrementalSolver::suspendRound(std::size_t round)
{
    BEER_ASSERT(round < impl_->rounds.size());
    Impl::Round &r = impl_->rounds[round];
    BEER_ASSERT(!r.dropped);
    if (r.suspended)
        return;
    impl_->solver.suspendGroup(r.group);
    r.suspended = true;
}

void
IncrementalSolver::resumeRound(std::size_t round)
{
    BEER_ASSERT(round < impl_->rounds.size());
    Impl::Round &r = impl_->rounds[round];
    BEER_ASSERT(!r.dropped);
    if (!r.suspended)
        return;
    impl_->solver.resumeGroup(r.group);
    r.suspended = false;
}

void
IncrementalSolver::dropRound(std::size_t round)
{
    BEER_ASSERT(round < impl_->rounds.size());
    Impl::Round &r = impl_->rounds[round];
    if (r.dropped)
        return;
    r.dropped = true;
    impl_->solver.releaseGroup(r.group);
    r.group = sat::kGroupNone;
    for (std::size_t slot : r.slots) {
        if (impl_->entryDropped[slot])
            continue;
        impl_->entryDropped[slot] = true;
        impl_->entryIndex.erase(impl_->entries[slot].pattern);
    }
}

sat::SolveResult
IncrementalSolver::probe(std::uint64_t conflict_budget)
{
    Impl &im = *impl_;
    Solver &solver = im.solver;
    // Blocking clauses reflect a previous enumeration, not the
    // constraint set under test: retract them or a suspended-round
    // probe could report Unsat for a satisfiable set.
    if (im.blockGroup != sat::kGroupNone) {
        solver.releaseGroup(im.blockGroup);
        im.blockGroup = sat::kGroupNone;
    }
    const std::uint64_t before = solver.stats().conflicts;
    if (conflict_budget)
        solver.setConflictLimit(before + conflict_budget);
    const sat::SolveResult result = solver.solve();
    solver.setConflictLimit(0);
    return result;
}

IncrementalSolver::WarmStartStats
IncrementalSolver::warmStart(const MiscorrectionProfile &shared,
                             std::uint64_t conflict_budget)
{
    WarmStartStats stats;
    stats.patternsEncoded = addProfile(shared);

    // addProfile can rebuild impl_; bind afterwards.
    Solver &solver = impl_->solver;
    const std::uint64_t before = solver.stats().conflicts;
    if (conflict_budget)
        solver.setConflictLimit(before + conflict_budget);
    stats.presolveSat = solver.solve() == sat::SolveResult::Sat;
    // The budget must not leak into the real solve; solve() re-arms
    // its own limit from the config when one is set.
    solver.setConflictLimit(0);
    stats.conflicts = solver.stats().conflicts - before;
    return stats;
}

BeerSolveResult
IncrementalSolver::solve()
{
    Impl &im = *impl_;
    Solver &solver = im.solver;

    // Blocking clauses only reflect the evidence they were derived
    // under: retract the previous round's group so solutions blocked
    // while checking uniqueness reappear if still consistent.
    if (im.blockGroup != sat::kGroupNone)
        solver.releaseGroup(im.blockGroup);
    im.blockGroup = solver.newGroup();

    const sat::SolverStats before = solver.stats();
    if (im.config.conflictLimit)
        solver.setConflictLimit(before.conflicts +
                                im.config.conflictLimit);

    BeerSolveResult result;
    std::set<std::string> seen; // canonical P serializations

    while (true) {
        const sat::SolveResult sat_result = solver.solve();
        if (sat_result == sat::SolveResult::Unknown) {
            result.complete = false;
            break;
        }
        if (sat_result == sat::SolveResult::Unsat)
            break;

        const Matrix model = extractModel(solver, im.vars);
        const LinearCode canonical =
            ecc::canonicalize(LinearCode(model));
        if (seen.insert(canonical.pMatrix().toString()).second)
            result.solutions.push_back(canonical);

        if (im.config.maxSolutions &&
            result.solutions.size() >= im.config.maxSolutions) {
            result.complete = false;
            break;
        }
        addBlockingClause(solver, im.vars, model, im.blockGroup);
        if (solver.isUnsat())
            break;
    }

    result.stats = solver.stats().deltaSince(before);
    result.memoryBytes = solver.stats().arenaBytes;
    return result;
}

BeerSolveResult
solveForEccFunction(const MiscorrectionProfile &profile,
                    std::size_t num_parity_bits,
                    const BeerSolverConfig &config)
{
    IncrementalSolver incremental(profile.k, num_parity_bits, config);
    incremental.addProfile(profile);
    return incremental.solve();
}

BeerSolveResult
solveForEccFunction(const MiscorrectionProfile &profile,
                    const BeerSolverConfig &config)
{
    return solveForEccFunction(
        profile, ecc::parityBitsForDataBits(profile.k), config);
}

ParityInference
inferEccFunction(const MiscorrectionProfile &profile,
                 std::size_t max_parity, const BeerSolverConfig &config)
{
    ParityInference out;
    for (std::size_t p = ecc::parityBitsForDataBits(profile.k);
         p <= max_parity; ++p) {
        out.result = solveForEccFunction(profile, p, config);
        if (!out.result.solutions.empty()) {
            out.parityBits = p;
            return out;
        }
    }
    util::fatal("inferEccFunction: no consistent function with up to "
                "%zu parity bits (noisy profile?)",
                max_parity);
}

} // namespace beer
