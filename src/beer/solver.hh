/**
 * @file
 * BEER Step 3: solve for the ECC function (paper Section 5.3).
 *
 * Given a miscorrection profile, find every standard-form parity-check
 * matrix H = [P | I] consistent with it. The unknowns are the bits of
 * P; the constraints are:
 *
 *  1. basic SEC-code validity: H columns distinct and nonzero, which
 *     for data columns means weight >= 2 and pairwise-distinct;
 *  2. standard form (implicit in the representation);
 *  3. the profile: for each (pattern S, discharged bit j), a
 *     miscorrection at j is possible iff observed, where "possible" is
 *     the support-inclusion predicate of profile.hh encoded in CNF.
 *
 * Parity-row permutations of P are externally indistinguishable
 * (equivalent codes), so lexicographic row-ordering symmetry-breaking
 * constraints are added by default and solutions are counted up to
 * this equivalence, exactly as the paper counts "unique ECC functions"
 * (Figure 5). Enumeration follows the paper's procedure: solve, add a
 * blocking clause forbidding the found matrix, repeat until UNSAT.
 *
 * Two entry points share one engine:
 *
 *  - solveForEccFunction() is the one-shot API: encode, enumerate,
 *    discard. Internally it is a thin wrapper over a fresh
 *    IncrementalSolver.
 *  - IncrementalSolver is the persistent API for adaptive sessions
 *    (beer::Session): the structural constraints (column weights,
 *    distinctness, symmetry breaking) are encoded exactly once at
 *    construction; each addProfile() call encodes only constraints for
 *    patterns not seen before (profile constraints are monotone across
 *    measurement rounds); and each solve() call enumerates with warm
 *    learned clauses and variable activity carried over from every
 *    previous round. Per-round blocking clauses live in a retractable
 *    sat::Solver group, so a solution blocked while checking
 *    uniqueness in round r is re-reported in round r+1 if it is still
 *    consistent with the grown profile.
 *
 * Threading: neither engine uses global or static mutable state, so
 * distinct solver instances are independent, and ONE instance may be
 * handed between threads as long as ownership is exclusive at any
 * moment and the handoff synchronizes (mutex, task join, ...). The
 * pipelined session (beer/session.hh) relies on this: the session
 * thread prepares the profile delta, a pool task runs
 * addProfile()+solve(max) exclusively, and the session only touches
 * the context again after joining the task.
 */

#ifndef BEER_BEER_SOLVER_HH
#define BEER_BEER_SOLVER_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "beer/profile.hh"
#include "ecc/linear_code.hh"
#include "sat/solver.hh"

namespace beer
{

/** Knobs for the BEER solve. */
struct BeerSolverConfig
{
    /** Row-permutation symmetry breaking (ablation: disable). */
    bool symmetryBreaking = true;
    /**
     * Stop enumerating after this many solutions (0 = find all). The
     * uniqueness check of the paper needs at most 2.
     */
    std::size_t maxSolutions = 0;
    /** SAT conflict budget per solve() call; 0 = unlimited. */
    std::uint64_t conflictLimit = 0;
    /**
     * Encode each addProfile() batch into its own retractable clause
     * group (a "round") instead of asserting it permanently. Rounds
     * can then be suspended, probed, and dropped — the machinery the
     * session's UNSAT-core repair uses to localize and retract
     * measurement rounds poisoned by read noise. Off by default: the
     * grouped encoding disables cross-round structural-hash gate
     * sharing and adds one guard literal per profile clause, so clean
     * pipelines keep the permanent encoding.
     */
    bool retractableProfile = false;
};

/** Outcome of a BEER solve. */
struct BeerSolveResult
{
    /**
     * Canonical (sorted-row) solutions. With symmetry breaking these
     * are exactly the solver's models; without, models are
     * canonicalized and deduplicated.
     */
    std::vector<ecc::LinearCode> solutions;
    /** True iff enumeration ran to UNSAT (the solution list is total). */
    bool complete = true;
    /** True iff exactly one equivalence class satisfies the profile. */
    bool unique() const { return complete && solutions.size() == 1; }
    /** Aggregate SAT statistics for the performance evaluation. */
    sat::SolverStats stats;
    /** Peak arena + watch memory estimate in bytes. */
    std::uint64_t memoryBytes = 0;
};

/**
 * Persistent incremental solve context; see the file comment for the
 * lifecycle. Construction encodes the structural constraints once;
 * addProfile() extends the CNF with newly measured patterns;
 * solve() enumerates all consistent ECC functions, retracting the
 * previous round's blocking clauses first.
 */
class IncrementalSolver
{
  public:
    IncrementalSolver(std::size_t k, std::size_t num_parity_bits,
                      BeerSolverConfig config = {});
    ~IncrementalSolver();
    IncrementalSolver(IncrementalSolver &&) noexcept;
    IncrementalSolver &operator=(IncrementalSolver &&) noexcept;

    std::size_t k() const;
    std::size_t parityBits() const;

    /**
     * Encode constraints for every entry of @p profile not already
     * encoded; previously seen patterns are skipped (their constraints
     * are already in force). If a previously seen pattern re-arrives
     * with a *different* miscorrection bitmap (non-monotone evidence,
     * e.g. a threshold flip), the whole context is rebuilt from
     * scratch — correctness never depends on monotonicity.
     *
     * @return number of newly encoded patterns
     */
    std::size_t addProfile(const MiscorrectionProfile &profile);

    /**
     * Enumerate every ECC function consistent with all profile entries
     * encoded so far. Blocking clauses from the previous solve() are
     * retracted first, so solutions suppressed by an earlier
     * enumeration reappear while they remain consistent. Returned
     * SolverStats are the delta for this call.
     */
    BeerSolveResult solve();

    /**
     * solve() with a one-call enumeration cap (0 = find all). The
     * configured cap is restored afterwards. This is the preferred
     * form when the solve runs on another thread: the cap travels
     * with the call instead of requiring a separate setMaxSolutions()
     * that would have to be sequenced across the handoff.
     */
    BeerSolveResult solve(std::size_t max_solutions);

    /** Outcome of a warmStart() presolve. */
    struct WarmStartStats
    {
        /** Entries of the shared subset newly encoded. */
        std::size_t patternsEncoded = 0;
        /** True iff the budgeted presolve reached a model. */
        bool presolveSat = false;
        /** Conflicts the presolve spent. */
        std::uint64_t conflicts = 0;
    };

    /**
     * Seed the context from a fingerprint-cache near match: encode
     * @p shared — the subset of a new chip's profile that an earlier
     * solved chip also exhibited, so every constraint holds for the
     * new chip too — and run one budgeted, single-model SAT probe.
     * Learned clauses and branching activity from the probe persist
     * (the point of the exercise), the probe's model is discarded,
     * and no blocking clauses are left behind, so subsequent
     * addProfile()/solve() rounds return exactly what a cold context
     * would. @p conflict_budget caps the probe (0 = unlimited).
     */
    WarmStartStats warmStart(const MiscorrectionProfile &shared,
                             std::uint64_t conflict_budget = 20000);

    /** Adjust the enumeration cap for subsequent solve() calls. */
    void setMaxSolutions(std::size_t max_solutions);

    // ---- retractable profile rounds (config.retractableProfile) --------
    //
    // Each addProfile() call that encodes at least one new pattern
    // opens a new *round*; round indices are stable for the lifetime
    // of the context (rebuilds preserve them, dropped rounds keep
    // their slot). The UNSAT-core repair loop in beer::Session uses
    // probe() + suspendRound() to find which rounds a contradiction
    // depends on, then dropRound() to retract them for good.

    /** Rounds opened so far (including dropped ones). 0 unless
     *  config.retractableProfile. */
    std::size_t roundCount() const;

    /** Patterns of round @p round still encoded (empty if dropped). */
    std::vector<TestPattern> roundPatterns(std::size_t round) const;

    /** True iff dropRound(@p round) has been called. */
    bool roundDropped(std::size_t round) const;

    /** True iff the round is currently suspended. */
    bool roundSuspended(std::size_t round) const;

    /**
     * Temporarily disable the round's constraints for subsequent
     * probe()/solve() calls. Reversible via resumeRound().
     */
    void suspendRound(std::size_t round);
    void resumeRound(std::size_t round);

    /**
     * Permanently retract the round: its clauses are released and its
     * patterns forgotten, so a later addProfile() carrying re-measured
     * evidence for those patterns encodes them afresh (into a new
     * round) instead of being skipped as duplicates.
     */
    void dropRound(std::size_t round);

    /**
     * Plain satisfiability check of the currently enforced constraint
     * set (suspended rounds excluded) — no enumeration, no blocking
     * clauses. Any blocking clauses left by a previous solve() are
     * retracted first so they cannot mask satisfiability.
     *
     * @param conflict_budget per-call conflict cap (0 = unlimited);
     *        Unknown is returned when it is exhausted.
     */
    sat::SolveResult probe(std::uint64_t conflict_budget = 0);

    /** Patterns whose constraints are currently encoded. */
    std::size_t encodedPatterns() const;
    /** Times a non-monotone entry forced a from-scratch rebuild. */
    std::size_t rebuilds() const;
    /** Underlying SAT context (cumulative stats, DIMACS export). */
    const sat::Solver &satSolver() const;

  private:
    struct Impl;
    void rebuild();

    std::unique_ptr<Impl> impl_;
};

/**
 * Enumerate every ECC function with @p num_parity_bits parity bits
 * whose miscorrection profile matches @p profile.
 */
BeerSolveResult solveForEccFunction(const MiscorrectionProfile &profile,
                                    std::size_t num_parity_bits,
                                    const BeerSolverConfig &config = {});

/**
 * Convenience wrapper using the minimum SEC parity-bit count for the
 * profile's dataword length (the configuration on-die ECC uses).
 */
BeerSolveResult solveForEccFunction(const MiscorrectionProfile &profile,
                                    const BeerSolverConfig &config = {});

/** Result of a parity-count inference run. */
struct ParityInference
{
    /** Smallest parity-bit count admitting a consistent function. */
    std::size_t parityBits = 0;
    /** The solve at that count. */
    BeerSolveResult result;
};

/**
 * Fully prerequisite-free recovery: BEER does not even need to know
 * the parity-bit count. Any profile consistent with a p-bit code is
 * also consistent with codes of more parity bits (append all-zero
 * rows to P), so the *smallest* consistent count is the canonical
 * answer — and real on-die ECC uses the minimum count for its
 * dataword length. Tries p from the SEC minimum for k upward.
 *
 * @param max_parity inclusive upper bound on the search (fatal if
 *                   exceeded without finding a solution)
 */
ParityInference inferEccFunction(const MiscorrectionProfile &profile,
                                 std::size_t max_parity = 12,
                                 const BeerSolverConfig &config = {});

} // namespace beer

#endif // BEER_BEER_SOLVER_HH
