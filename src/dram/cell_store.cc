#include "dram/cell_store.hh"

#include <algorithm>
#include <cstring>

#include "sim/engine.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace beer::dram
{

using gf2::BitVec;

TransposedCellStore::TransposedCellStore(
    std::size_t num_words, std::size_t n,
    const std::function<CellType(std::size_t)> &type_of_word)
    : numWords_(num_words), n_(n)
{
    BEER_ASSERT(n > 0);
    laneWords_ = (num_words + 63) / 64;
    // Pad rows to the widest SIMD group so any kernel width can read
    // aligned windows; padded lanes are invalid and never charged.
    stride_ = (laneWords_ + ecc::kMaxSimdWords - 1) /
              ecc::kMaxSimdWords * ecc::kMaxSimdWords;
    if (stride_ == 0)
        stride_ = ecc::kMaxSimdWords;
    err_.assign(n_ * stride_, 0);
    ref_.assign(n_ * stride_, 0);
    anti_.assign(stride_, 0);
    valid_.assign(stride_, 0);
    for (std::size_t w = 0; w < num_words; ++w) {
        const std::uint64_t bit = (std::uint64_t)1 << (w & 63);
        valid_[w / 64] |= bit;
        if (type_of_word(w) == CellType::Anti)
            anti_[w / 64] |= bit;
    }
}

void
TransposedCellStore::writeWord(std::size_t w, const BitVec &codeword)
{
    BEER_ASSERT(w < numWords_ && codeword.size() == n_);
    const std::size_t j = w / 64;
    const std::uint64_t bit = (std::uint64_t)1 << (w & 63);
    for (std::size_t pos = 0; pos < n_; ++pos) {
        const std::size_t at = pos * stride_ + j;
        if (codeword.get(pos))
            ref_[at] |= bit;
        else
            ref_[at] &= ~bit;
        err_[at] &= ~bit;
    }
}

BitVec
TransposedCellStore::storedWord(std::size_t w) const
{
    BEER_ASSERT(w < numWords_);
    const std::size_t j = w / 64;
    const std::size_t lane = w & 63;
    BitVec stored(n_);
    for (std::size_t pos = 0; pos < n_; ++pos) {
        const std::size_t at = pos * stride_ + j;
        stored.set(pos, ((ref_[at] ^ err_[at]) >> lane) & 1);
    }
    return stored;
}

bool
TransposedCellStore::chargedBit(std::size_t w, std::size_t pos) const
{
    const std::size_t j = w / 64;
    const std::size_t lane = w & 63;
    const std::size_t at = pos * stride_ + j;
    return (((ref_[at] ^ err_[at] ^ anti_[j]) >> lane) & 1) != 0;
}

void
TransposedCellStore::decayBit(std::size_t w, std::size_t pos)
{
    // Decaying a CHARGED cell always flips its stored value (CHARGED
    // means stored != the cell type's discharged value).
    err_[pos * stride_ + w / 64] ^= (std::uint64_t)1 << (w & 63);
}

void
TransposedCellStore::broadcastWrite(const BitVec &codeword,
                                    const std::vector<std::uint64_t> &sel)
{
    BEER_ASSERT(codeword.size() == n_ && sel.size() >= laneWords_);
    // Touch only the selected lane words: a sparse word subset (a
    // wordsUnderTest list covering a sliver of a big chip) must not
    // pay a full-plane traversal per row.
    touchedScratch_.clear();
    for (std::size_t j = 0; j < laneWords_; ++j)
        if (sel[j])
            touchedScratch_.push_back(j);
    for (std::size_t pos = 0; pos < n_; ++pos) {
        std::uint64_t *ref = &ref_[pos * stride_];
        std::uint64_t *err = &err_[pos * stride_];
        if (codeword.get(pos)) {
            for (const std::size_t j : touchedScratch_) {
                ref[j] |= sel[j];
                err[j] &= ~sel[j];
            }
        } else {
            for (const std::size_t j : touchedScratch_) {
                ref[j] &= ~sel[j];
                err[j] &= ~sel[j];
            }
        }
    }
}

void
TransposedCellStore::broadcastWriteAll(const BitVec &codeword)
{
    broadcastWrite(codeword, valid_);
}

void
TransposedCellStore::laneRange(std::size_t begin, std::size_t end,
                               std::size_t &jb, std::size_t &je) const
{
    BEER_ASSERT(begin % 64 == 0 && begin <= end && end <= numWords_);
    BEER_ASSERT(end % 64 == 0 || end == numWords_);
    jb = begin / 64;
    je = (end + 63) / 64;
}

std::uint64_t
TransposedCellStore::decaySkipSampled(std::size_t begin, std::size_t end,
                                      double ber, util::Rng &rng)
{
    // Identical candidate enumeration to the legacy layout's
    // decayIid: skip-sample the word-major (word, bit) grid with the
    // alias-table geometric sampler and the reciprocal divide, so the
    // Rng stream — and therefore the injected error pattern — matches
    // the legacy chip bit for bit.
    std::uint64_t errors = 0;
    const std::uint64_t total = (std::uint64_t)(end - begin) * n_;
    if (total == 0)
        return 0;
    const bool small = total <= UINT32_MAX;
    const util::FastDiv32 divn((std::uint32_t)(small ? n_ : 1));
    const util::GeometricSampler candidates(ber);
    candidates.forEach(rng, total, [&](std::uint64_t cell) {
        std::size_t rel;
        std::size_t bit;
        if (small) {
            const std::uint32_t q = divn.div((std::uint32_t)cell);
            rel = q;
            bit = (std::size_t)((std::uint32_t)cell -
                                q * (std::uint32_t)n_);
        } else {
            rel = (std::size_t)(cell / n_);
            bit = (std::size_t)(cell % n_);
        }
        const std::size_t w = begin + rel;
        if (chargedBit(w, bit)) {
            decayBit(w, bit);
            ++errors;
        }
    });
    return errors;
}

std::uint64_t
TransposedCellStore::decayBernoulli(std::size_t begin, std::size_t end,
                                    double ber, util::Rng &rng)
{
    std::size_t jb;
    std::size_t je;
    laneRange(begin, end, jb, je);
    const util::BernoulliMask candidates(ber);
    std::uint64_t errors = 0;
    for (std::size_t pos = 0; pos < n_; ++pos) {
        std::uint64_t *err = &err_[pos * stride_];
        for (std::size_t j = jb; j < je; ++j) {
            const std::uint64_t charged = chargedMaskWord(pos, j);
            if (!charged)
                continue;
            const std::uint64_t decayed = candidates.draw(rng) & charged;
            err[j] ^= decayed;
            errors += (std::uint64_t)util::popcount64(decayed);
        }
    }
    return errors;
}

void
readDatawordsWide(const TransposedCellStore &store,
                  const ecc::BitslicedDecoder &decoder,
                  const sim::EngineKernel &kernel,
                  const std::size_t *words, std::size_t count,
                  double transient_rate, util::Rng *rng,
                  WideReadScratch &scratch, BitVec *out)
{
    const std::size_t n = store.n();
    const std::size_t k = decoder.k();
    const std::size_t W = kernel.words;
    const std::size_t stride = store.strideWords();
    const bool noisy = transient_rate > 0.0 && rng;
    // Construction is Rng-free, so hoisting it out of the per-word
    // loop keeps the stream identical to sequential scalar reads.
    const util::GeometricSkip flips(noisy ? transient_rate : 0.5);

    std::size_t i = 0;
    while (i < count) {
        // Aligned window of W lane words around the next word; every
        // following word in the same window joins the batch. Input
        // order is preserved (runs never reorder), so transient flips
        // consume the Rng exactly as a scalar read loop would. A
        // noisy run additionally ends at a repeated word: duplicates
        // must each get their own perturbed window copy (and decode),
        // or their flips would accumulate into one shared lane and
        // diverge from sequential readDataword results.
        const std::size_t j0 = words[i] / 64 / W * W;
        const std::size_t lane_base = j0 * 64;
        const std::size_t lane_limit = lane_base + W * 64;
        if (noisy)
            scratch.seen.assign(W, 0);
        std::size_t run = i;
        while (run < count && words[run] >= lane_base &&
               words[run] < lane_limit) {
            if (noisy) {
                const std::size_t lane = words[run] - lane_base;
                std::uint64_t &seen = scratch.seen[lane / 64];
                const std::uint64_t bit = (std::uint64_t)1
                                          << (lane & 63);
                if (seen & bit)
                    break;
                seen |= bit;
            }
            ++run;
        }

        const std::uint64_t *err = store.errRow(0) + j0;
        std::size_t err_stride = stride;
        if (noisy) {
            // Transient flips must not persist: decode a perturbed
            // copy of the window instead of the planes themselves.
            scratch.noisy.resize(n * W);
            for (std::size_t pos = 0; pos < n; ++pos)
                std::memcpy(&scratch.noisy[pos * W],
                            store.errRow(pos) + j0,
                            W * sizeof(std::uint64_t));
            for (std::size_t t = i; t < run; ++t) {
                const std::size_t lane = words[t] - lane_base;
                flips.forEach(*rng, n, [&](std::uint64_t pos) {
                    scratch.noisy[(std::size_t)pos * W + lane / 64] ^=
                        (std::uint64_t)1 << (lane & 63);
                });
            }
            err = scratch.noisy.data();
            err_stride = W;
        }

        scratch.lanes.prepare(n, W);
        kernel.decodeStrided(decoder, err, err_stride, scratch.lanes);

        // Post-correction dataword = ref ^ (error ^ correction) over
        // the data rows (the code is systematic). Row-major scatter:
        // each data row is loaded once per window, then sprinkled
        // over the selected lanes.
        for (std::size_t pos = 0; pos < k; ++pos) {
            const std::uint64_t *refw = store.refRow(pos) + j0;
            const std::uint64_t *errw = err + pos * err_stride;
            const std::uint64_t *corr =
                &scratch.lanes.correction[pos * W];
            const std::size_t word_at = pos / 64;
            const std::uint64_t word_bit = (std::uint64_t)1
                                           << (pos & 63);
            for (std::size_t t = i; t < run; ++t) {
                const std::size_t lane = words[t] - lane_base;
                const std::size_t j = lane / 64;
                if ((refw[j] ^ errw[j] ^ corr[j]) >> (lane & 63) & 1)
                    out[t].words()[word_at] |= word_bit;
            }
        }
        i = run;
    }
}

} // namespace beer::dram
