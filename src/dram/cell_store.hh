/**
 * @file
 * Transposed (bit-plane) cell storage for the simulated DRAM chip.
 *
 * The legacy chip stored one gf2::BitVec per ECC word and flipped
 * cells bit by bit; after the decode side went wide (PR 3/4),
 * retention injection, refresh pauses, and profile reads became the
 * dominant cost of every simulated experiment. This store keeps the
 * chip's cells in the same lane-major SoA layout the simulation
 * engine's batches use: plane row @p pos holds bit @p pos of every
 * word, 64 words per uint64 lane word, rows padded to the widest SIMD
 * group (ecc::kMaxSimdWords lane words) so any kernel width can read
 * aligned windows straight out of the store via the strided decode
 * entry (ecc::decodeWideStrided) — no per-batch gather copy.
 *
 * Two plane sets are kept, both in the value domain:
 *
 *  - ref: the reference codeword each word was last written with
 *    (error-free encode);
 *  - err: the accumulated error bits (stored value XOR ref).
 *
 * Splitting stored state into ref ^ err makes every hot path a whole-
 * lane-word operation: a wide read feeds err windows directly to the
 * decode kernel (decoding depends only on the error pattern), decay
 * flips err bits, and the CHARGED mask of 64 cells is one XOR against
 * the precomputed anti-cell lane mask (stored ^ anti, masked to valid
 * lanes). Scalar MemoryInterface semantics (per-word writes, byte
 * read-modify-write, ground-truth accessors) go through the
 * gather/scatter shim, bit-identical to the legacy layout.
 *
 * Three retention-decay paths are provided; all implement "a candidate
 * cell decays iff it is CHARGED", differing only in how candidates
 * are drawn:
 *
 *  - decayDeterministic: per-cell predicate (repeatable retention
 *    times, VRT) — pure function of the cell id, so plane-major
 *    iteration over CHARGED bits gives bit-identical results to the
 *    legacy word-major loop at word-level memory cost;
 *  - decaySkipSampled: iid candidates by geometric skip-sampling in
 *    the legacy word-major cell order, consuming the exact Rng stream
 *    the legacy chip consumed — the differential anchor;
 *  - decayBernoulli: iid candidates as whole Bernoulli lane masks
 *    (util::BernoulliMask), plane-major; statistically equivalent to
 *    skip-sampling but a different Rng stream, and faster above the
 *    crossover rate bench/sim_throughput measures.
 */

#ifndef BEER_DRAM_CELL_STORE_HH
#define BEER_DRAM_CELL_STORE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "dram/types.hh"
#include "ecc/bitsliced.hh"
#include "ecc/bitsliced_kernel.hh"
#include "gf2/bitvec.hh"
#include "util/bitops.hh"
#include "util/rng.hh"

namespace beer::sim
{
struct EngineKernel;
} // namespace beer::sim

namespace beer::dram
{

/** Plane-major cell store; see file comment. */
class TransposedCellStore
{
  public:
    /**
     * @param num_words    ECC words stored
     * @param n            codeword bits per word (plane rows)
     * @param type_of_word cell type of each word (builds the anti-cell
     *                     lane mask; only called during construction)
     */
    TransposedCellStore(
        std::size_t num_words, std::size_t n,
        const std::function<CellType(std::size_t)> &type_of_word);

    std::size_t numWords() const { return numWords_; }
    std::size_t n() const { return n_; }
    /** uint64 lane words per plane row (padded to kMaxSimdWords). */
    std::size_t strideWords() const { return stride_; }
    /** Lane words actually holding words: ceil(numWords / 64). */
    std::size_t numLaneWords() const { return laneWords_; }

    // ---- scalar gather/scatter shim ---------------------------------
    /** Store @p codeword as word @p w's new reference; clears errors. */
    void writeWord(std::size_t w, const gf2::BitVec &codeword);

    /** Current stored value (ref ^ err) of word @p w, gathered. */
    gf2::BitVec storedWord(std::size_t w) const;

    /** True iff cell (w, pos) is CHARGED under its cell type. */
    bool chargedBit(std::size_t w, std::size_t pos) const;

    /**
     * Decay cell (w, pos) to its DISCHARGED value. Flips the stored
     * bit, so callers must only decay CHARGED cells.
     */
    void decayBit(std::size_t w, std::size_t pos);

    // ---- wide paths --------------------------------------------------
    /**
     * Write the same @p codeword into every lane selected by @p sel
     * (numLaneWords() masks): references updated, errors cleared, one
     * lane-word operation per (row, lane word).
     */
    void broadcastWrite(const gf2::BitVec &codeword,
                        const std::vector<std::uint64_t> &sel);

    /** broadcastWrite selecting every stored word. */
    void broadcastWriteAll(const gf2::BitVec &codeword);

    /** Error plane row @p pos (strideWords() lane words). */
    const std::uint64_t *errRow(std::size_t pos) const
    {
        return &err_[pos * stride_];
    }
    std::uint64_t *errRow(std::size_t pos)
    {
        return &err_[pos * stride_];
    }
    /** Reference plane row @p pos. */
    const std::uint64_t *refRow(std::size_t pos) const
    {
        return &ref_[pos * stride_];
    }
    /** Lanes of lane word @p j lying in anti-cell rows. */
    std::uint64_t antiMask(std::size_t j) const { return anti_[j]; }
    /** Lanes of lane word @p j holding real words (w < numWords). */
    std::uint64_t validMask(std::size_t j) const { return valid_[j]; }

    /** CHARGED lanes of (row @p pos, lane word @p j). */
    std::uint64_t chargedMaskWord(std::size_t pos, std::size_t j) const
    {
        const std::size_t at = pos * stride_ + j;
        return ((ref_[at] ^ err_[at]) ^ anti_[j]) & valid_[j];
    }

    // ---- retention decay ---------------------------------------------
    /**
     * Deterministic per-cell decay over words [begin, end): every
     * CHARGED cell decays iff fails(cell_id) with cell_id =
     * w * n + pos. Returns the number of cells decayed. @p begin must
     * be lane-word aligned; @p end lane-word aligned or numWords().
     * Templated on the predicate (like util::forEachSuccess): it runs
     * once per CHARGED cell, and a type-erased call there would put
     * an uninlinable indirection on the hottest non-iid loop.
     */
    template <typename Fails>
    std::uint64_t decayDeterministic(std::size_t begin,
                                     std::size_t end, Fails &&fails);

    /**
     * iid decay at rate @p ber via geometric skip-sampling over the
     * word-major (word, bit) cell grid of [begin, end) — the legacy
     * chip's exact candidate order and Rng stream, so the resulting
     * error pattern is bit-identical to the legacy layout's.
     */
    std::uint64_t decaySkipSampled(std::size_t begin, std::size_t end,
                                   double ber, util::Rng &rng);

    /**
     * iid decay at rate @p ber via whole Bernoulli lane masks,
     * plane-major over [begin, end); same distribution as
     * decaySkipSampled, different Rng stream. Lane words with no
     * CHARGED cell draw nothing.
     */
    std::uint64_t decayBernoulli(std::size_t begin, std::size_t end,
                                 double ber, util::Rng &rng);

  private:
    /** [jb, je) lane-word range of the word range [begin, end). */
    void laneRange(std::size_t begin, std::size_t end, std::size_t &jb,
                   std::size_t &je) const;

    std::size_t numWords_;
    std::size_t n_;
    std::size_t laneWords_;
    std::size_t stride_;
    std::vector<std::uint64_t> err_;
    std::vector<std::uint64_t> ref_;
    std::vector<std::uint64_t> anti_;
    std::vector<std::uint64_t> valid_;
    /** Selected lane-word indices of the current broadcastWrite. */
    std::vector<std::size_t> touchedScratch_;
};

template <typename Fails>
std::uint64_t
TransposedCellStore::decayDeterministic(std::size_t begin,
                                        std::size_t end, Fails &&fails)
{
    std::size_t jb;
    std::size_t je;
    laneRange(begin, end, jb, je);
    std::uint64_t errors = 0;
    for (std::size_t pos = 0; pos < n_; ++pos) {
        std::uint64_t *err = &err_[pos * stride_];
        for (std::size_t j = jb; j < je; ++j) {
            std::uint64_t charged = chargedMaskWord(pos, j);
            std::uint64_t decayed = 0;
            while (charged) {
                const std::uint64_t bit = charged & (0 - charged);
                charged ^= bit;
                const std::uint64_t w =
                    (std::uint64_t)j * 64 +
                    (std::uint64_t)util::ctz64(bit);
                if (fails(w * n_ + pos))
                    decayed |= bit;
            }
            err[j] ^= decayed;
            errors += (std::uint64_t)util::popcount64(decayed);
        }
    }
    return errors;
}

/** Reusable scratch for readDatawordsWide (no hot-loop allocation). */
struct WideReadScratch
{
    ecc::WideDecodeLanes lanes;
    /** Noisy copy of one error-plane window (transient flips). */
    std::vector<std::uint64_t> noisy;
    /** Lanes already read in the current noisy run (duplicate split). */
    std::vector<std::uint64_t> seen;
};

/**
 * Read words through the on-die decoder, wide: for each selected word
 * (in order) reconstruct the post-correction dataword written ^
 * (error ^ correction) over the data rows. Error windows are decoded
 * straight from the store's planes via @p kernel's strided entry;
 * only a positive @p transient_rate forces a per-window copy (flips
 * are drawn from @p rng per word in input order — the exact stream a
 * sequential scalar read loop consumes).
 *
 * @p out must hold @p count BitVecs of size decoder.k(), zeroed
 * (e.g. freshly assigned); results are OR-scattered into them.
 */
void readDatawordsWide(const TransposedCellStore &store,
                       const ecc::BitslicedDecoder &decoder,
                       const sim::EngineKernel &kernel,
                       const std::size_t *words, std::size_t count,
                       double transient_rate, util::Rng *rng,
                       WideReadScratch &scratch, gf2::BitVec *out);

} // namespace beer::dram

#endif // BEER_DRAM_CELL_STORE_HH
