#include "dram/chip.hh"

#include <algorithm>

#include "ecc/decoder.hh"
#include "ecc/hamming.hh"
#include "sim/engine.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace beer::dram
{

using gf2::BitVec;

namespace
{

/** Words per retention shard; fixed so sharding never depends on the
 * thread count (and matching the simulation engine's widest lane
 * group, 512 words, so a shard is one u64x8 batch window's worth of
 * work). Lane-word aligned, which the transposed store requires. */
constexpr std::size_t kRetentionShardWords = 512;

/** Words per wide-read shard (noise-free batched reads only; reads
 * draw no randomness, so this is purely a scheduling grain). */
constexpr std::size_t kReadShardWords = 8192;

/** splitmix64-style finalizer mapping a mixed key to [0, 1). */
double
hashToUnit(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return (double)(x >> 11) * 0x1.0p-53;
}

} // anonymous namespace

SimulatedChip::SimulatedChip(ChipConfig config)
    : config_(std::move(config)), rng_(config_.seed ^ 0x5eed)
{
    config_.map.validate();
    if (config_.code.k() != config_.map.bytesPerWord * 8)
        util::fatal("SimulatedChip: code k (%zu) does not match word "
                    "size (%zu bytes)",
                    config_.code.k(), config_.map.bytesPerWord);
    // Power-on state: store the encoding of all-zero data so that every
    // word holds a consistent codeword.
    const BitVec zero_cw = config_.code.encode(BitVec(config_.code.k()));
    if (config_.storage == ChipStorage::Scalar) {
        cells_.assign(config_.map.numWords(), zero_cw);
    } else {
        store_.emplace(config_.map.numWords(), config_.code.n(),
                       [this](std::size_t w) {
                           return cellTypeOfWord(w);
                       });
        store_->broadcastWriteAll(zero_cw);
    }
}

void
SimulatedChip::writeDataword(std::size_t word_index, const BitVec &data)
{
    BEER_ASSERT(word_index < numWords());
    if (store_)
        store_->writeWord(word_index, config_.code.encode(data));
    else
        cells_[word_index] = config_.code.encode(data);
}

gf2::BitVec
SimulatedChip::readDataword(std::size_t word_index)
{
    BEER_ASSERT(word_index < numWords());
    BitVec received = store_ ? store_->storedWord(word_index)
                             : cells_[word_index];
    if (config_.transientErrorRate > 0.0) {
        // Skip-sample the flipped bits: each bit flips iid at the
        // transient rate, but bits that do not flip cost nothing.
        const util::GeometricSkip flips(config_.transientErrorRate);
        flips.forEach(rng_, received.size(), [&](std::uint64_t i) {
            received.flip((std::size_t)i);
        });
    }
    return ecc::decode(config_.code, received).dataword;
}

void
SimulatedChip::prepareWideRead()
{
    if (decoder_)
        return;
    decoder_ = std::make_unique<ecc::BitslicedDecoder>(config_.code);
    // Resolve once per chip (config backend, then BEER_SIMD, then
    // CPUID) — resolution scans the environment, and batched reads
    // sit on the measurement hot loop.
    kernel_ = &sim::engineKernel(config_.simdBackend);
}

void
SimulatedChip::writeDatawordsBroadcast(const std::size_t *words,
                                       std::size_t count,
                                       const BitVec &data)
{
    if (!store_) {
        MemoryInterface::writeDatawordsBroadcast(words, count, data);
        return;
    }
    const BitVec codeword = config_.code.encode(data);
    broadcastSel_.assign(store_->numLaneWords(), 0);
    for (std::size_t i = 0; i < count; ++i) {
        BEER_ASSERT(words[i] < numWords());
        broadcastSel_[words[i] / 64] |= (std::uint64_t)1
                                        << (words[i] & 63);
    }
    store_->broadcastWrite(codeword, broadcastSel_);
}

void
SimulatedChip::readDatawords(const std::size_t *words,
                             std::size_t count,
                             std::vector<BitVec> &out)
{
    if (!store_) {
        MemoryInterface::readDatawords(words, count, out);
        return;
    }
    prepareWideRead();
    out.assign(count, BitVec(config_.code.k()));
    if (config_.transientErrorRate > 0.0) {
        // Noisy reads consume the chip Rng per word in order; keep
        // them on one thread so the stream matches sequential reads.
        readDatawordsWide(*store_, *decoder_, *kernel_, words, count,
                          config_.transientErrorRate, &rng_,
                          readScratch_, out.data());
        return;
    }
    if (config_.threads != 1 && count >= 2 * kReadShardWords) {
        // Reads draw no randomness and shards write disjoint output
        // slots, so any split is deterministic.
        const std::size_t num_shards =
            (count + kReadShardWords - 1) / kReadShardWords;
        pool().parallelFor(num_shards, [&](std::size_t s) {
            const std::size_t begin = s * kReadShardWords;
            const std::size_t len =
                std::min(kReadShardWords, count - begin);
            WideReadScratch scratch;
            readDatawordsWide(*store_, *decoder_, *kernel_,
                              words + begin, len, 0.0, nullptr,
                              scratch, out.data() + begin);
        });
        return;
    }
    readDatawordsWide(*store_, *decoder_, *kernel_, words, count, 0.0,
                      nullptr, readScratch_, out.data());
}

void
SimulatedChip::writeByte(std::size_t byte_addr, std::uint8_t value)
{
    const auto slot = config_.map.slotOfByte(byte_addr);
    // On-die ECC works on whole words: read-modify-write the dataword.
    // The read bypasses decoding on purpose — a real chip's write path
    // merges raw data; going through the decoder here would scrub
    // retention errors on every byte write.
    const BitVec stored = store_ ? store_->storedWord(slot.wordIndex)
                                 : cells_[slot.wordIndex];
    BitVec data = config_.code.extractData(stored);
    for (std::size_t b = 0; b < 8; ++b)
        data.set(slot.byteInWord * 8 + b, (value >> b) & 1);
    writeDataword(slot.wordIndex, data);
}

std::uint8_t
SimulatedChip::readByte(std::size_t byte_addr)
{
    const auto slot = config_.map.slotOfByte(byte_addr);
    const BitVec data = readDataword(slot.wordIndex);
    std::uint8_t out = 0;
    for (std::size_t b = 0; b < 8; ++b)
        if (data.get(slot.byteInWord * 8 + b))
            out |= (std::uint8_t)(1u << b);
    return out;
}

void
SimulatedChip::fill(std::uint8_t value)
{
    BitVec data(config_.code.k());
    for (std::size_t i = 0; i < data.size(); ++i)
        data.set(i, (value >> (i % 8)) & 1);
    if (store_) {
        store_->broadcastWriteAll(config_.code.encode(data));
        return;
    }
    for (std::size_t w = 0; w < cells_.size(); ++w)
        writeDataword(w, data);
}

util::ThreadPool &
SimulatedChip::pool()
{
    if (!pool_)
        pool_ = std::make_unique<util::ThreadPool>(config_.threads);
    return *pool_;
}

bool
SimulatedChip::cellFailsThisPause(std::uint64_t cell_id, double seconds,
                                  double temp_c) const
{
    if (config_.vrtRate > 0.0 &&
        hashToUnit(config_.seed ^
                   (pauseEpoch_ * 0xd1342543de82ef95ULL) ^
                   cell_id) < config_.vrtRate) {
        // VRT: the cell transiently follows a different retention
        // time this pause. The affected subset is a pure function of
        // (seed, pause, cell), so the path parallelizes without
        // losing repeatability.
        return config_.retention.cellFails(
            config_.seed ^ (0x1157ULL + pauseEpoch_), cell_id, seconds,
            temp_c);
    }
    return config_.retention.cellFails(config_.seed, cell_id, seconds,
                                       temp_c);
}

std::uint64_t
SimulatedChip::decayIid(std::size_t begin, std::size_t end, double ber,
                        util::Rng &rng)
{
    // Skip-sample candidate cells over the shard's (word, bit) grid at
    // rate ber; a candidate decays iff it is CHARGED. Equivalent to a
    // Bernoulli(ber) trial per charged cell, at O(candidates) cost.
    // Same hot-loop treatment as the simulation engine: alias-table
    // geometric gaps, reciprocal division for the flat-index split
    // (shards are 512 words, so indices always fit 32 bits), and the
    // cell-type/layout lookup hoisted per word instead of per cell.
    std::uint64_t errors = 0;
    const std::size_t n = config_.code.n();
    const std::uint64_t total = (std::uint64_t)(end - begin) * n;
    const bool small = total <= UINT32_MAX;
    const util::FastDiv32 divn((std::uint32_t)(small ? n : 1));
    const util::GeometricSampler candidates(ber);
    std::size_t cached_w = SIZE_MAX;
    CellType cached_type = CellType::True;
    candidates.forEach(rng, total, [&](std::uint64_t cell) {
        std::size_t rel;
        std::size_t bit;
        if (small) {
            const std::uint32_t q = divn.div((std::uint32_t)cell);
            rel = q;
            bit = (std::size_t)((std::uint32_t)cell -
                                q * (std::uint32_t)n);
        } else {
            rel = (std::size_t)(cell / n);
            bit = (std::size_t)(cell % n);
        }
        const std::size_t w = begin + rel;
        if (w != cached_w) {
            cached_w = w;
            cached_type = cellTypeOfWord(w);
        }
        BitVec &word = cells_[w];
        if (chargeOf(word.get(bit), cached_type) ==
            ChargeState::Charged) {
            word.set(bit, decayedValue(cached_type));
            ++errors;
        }
    });
    return errors;
}

std::uint64_t
SimulatedChip::decayPerCell(std::size_t begin, std::size_t end,
                            double seconds, double temp_c)
{
    std::uint64_t errors = 0;
    const std::size_t n = config_.code.n();
    for (std::size_t w = begin; w < end; ++w) {
        const CellType type = cellTypeOfWord(w);
        BitVec &word = cells_[w];
        for (std::size_t bit = 0; bit < n; ++bit) {
            if (chargeOf(word.get(bit), type) != ChargeState::Charged)
                continue;
            const std::uint64_t cell_id = (std::uint64_t)w * n + bit;
            if (cellFailsThisPause(cell_id, seconds, temp_c)) {
                word.set(bit, decayedValue(type));
                ++errors;
            }
        }
    }
    return errors;
}

InjectionMode
SimulatedChip::injectionModeFor(double ber) const
{
    if (config_.injection != InjectionMode::Auto)
        return config_.injection;
    return ber >= kInjectionCrossoverBer ? InjectionMode::BernoulliMask
                                         : InjectionMode::SkipSample;
}

std::uint64_t
SimulatedChip::decayTransposed(std::size_t begin, std::size_t end,
                               double seconds, double temp_c,
                               double ber, util::Rng *rng)
{
    if (!config_.iidErrors) {
        // Per-cell outcomes are a pure function of (seed, pause,
        // cell), so plane-major iteration over CHARGED bits lands on
        // the exact cell set the legacy word-major loop decayed.
        return store_->decayDeterministic(
            begin, end, [&](std::uint64_t cell_id) {
                return cellFailsThisPause(cell_id, seconds, temp_c);
            });
    }
    if (injectionModeFor(ber) == InjectionMode::BernoulliMask)
        return store_->decayBernoulli(begin, end, ber, *rng);
    return store_->decaySkipSampled(begin, end, ber, *rng);
}

void
SimulatedChip::pauseRefresh(double seconds, double temp_c)
{
    const double ber =
        config_.retention.failProbability(seconds, temp_c);
    ++pauseEpoch_;
    const std::size_t num_words = numWords();
    if (num_words == 0 || (config_.iidErrors && ber <= 0.0))
        return;

    // Fixed-size word shards keep the error pattern independent of
    // the thread count: iid shards consume forked Rng streams keyed by
    // shard index, per-cell decay is deterministic in (seed, cell).
    const std::size_t num_shards =
        (num_words + kRetentionShardWords - 1) / kRetentionShardWords;

    std::vector<util::Rng> shard_rngs;
    if (config_.iidErrors) {
        shard_rngs.reserve(num_shards);
        for (std::size_t s = 0; s < num_shards; ++s)
            shard_rngs.push_back(rng_.fork());
    }

    std::vector<std::uint64_t> shard_errors(num_shards, 0);
    auto run_shard = [&](std::size_t s) {
        const std::size_t begin = s * kRetentionShardWords;
        const std::size_t end =
            std::min(begin + kRetentionShardWords, num_words);
        util::Rng *rng =
            config_.iidErrors ? &shard_rngs[s] : nullptr;
        if (store_)
            shard_errors[s] = decayTransposed(begin, end, seconds,
                                              temp_c, ber, rng);
        else
            shard_errors[s] =
                config_.iidErrors
                    ? decayIid(begin, end, ber, *rng)
                    : decayPerCell(begin, end, seconds, temp_c);
    };

    if (config_.threads == 1 || num_shards == 1) {
        for (std::size_t s = 0; s < num_shards; ++s)
            run_shard(s);
    } else {
        pool().parallelFor(num_shards, run_shard);
    }
    for (const std::uint64_t errors : shard_errors)
        rawErrors_ += errors;
}

CellType
SimulatedChip::cellTypeOfWord(std::size_t word_index) const
{
    return config_.cellLayout.typeOfRow(
        config_.map.rowOfWord(word_index));
}

gf2::BitVec
SimulatedChip::storedCodeword(std::size_t word_index) const
{
    BEER_ASSERT(word_index < numWords());
    return store_ ? store_->storedWord(word_index)
                  : cells_[word_index];
}

std::vector<std::size_t>
trueCellWords(const SimulatedChip &chip)
{
    std::vector<std::size_t> words;
    for (std::size_t w = 0; w < chip.numWords(); ++w)
        if (chip.cellTypeOfWord(w) == CellType::True)
            words.push_back(w);
    return words;
}

ChipConfig
makeVendorConfig(char vendor, std::size_t k, std::uint64_t seed)
{
    BEER_ASSERT(k % 8 == 0);
    ChipConfig config;
    config.map.bytesPerWord = k / 8;
    config.map.wordsPerRegion = 2;
    config.map.bytesPerRow = 2 * k / 8; // one region per row
    config.map.rows = 256;
    config.seed = seed;

    util::Rng rng(seed ^ (std::uint64_t)vendor * 0x9e3779b97f4a7c15ULL);
    switch (vendor) {
      case 'A':
        config.cellLayout = CellTypeLayout::allTrue();
        config.code = ecc::randomSecCode(k, rng);
        break;
      case 'B':
        config.cellLayout = CellTypeLayout::allTrue();
        config.code = ecc::canonicalSecCode(k);
        break;
      case 'C':
        config.cellLayout =
            CellTypeLayout::alternating({8, 8, 12, 12});
        config.code = ecc::randomSecCode(k, rng);
        break;
      default:
        util::fatal("unknown vendor '%c' (expected A, B, or C)", vendor);
    }
    return config;
}

} // namespace beer::dram
