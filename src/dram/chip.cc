#include "dram/chip.hh"

#include "ecc/decoder.hh"
#include "ecc/hamming.hh"
#include "util/logging.hh"

namespace beer::dram
{

using gf2::BitVec;

SimulatedChip::SimulatedChip(ChipConfig config)
    : config_(std::move(config)), rng_(config_.seed ^ 0x5eed)
{
    config_.map.validate();
    if (config_.code.k() != config_.map.bytesPerWord * 8)
        util::fatal("SimulatedChip: code k (%zu) does not match word "
                    "size (%zu bytes)",
                    config_.code.k(), config_.map.bytesPerWord);
    cells_.assign(config_.map.numWords(), BitVec(config_.code.n()));
    // Power-on state: store the encoding of all-zero data so that every
    // word holds a consistent codeword.
    const BitVec zero_cw = config_.code.encode(BitVec(config_.code.k()));
    for (auto &word : cells_)
        word = zero_cw;
}

void
SimulatedChip::writeDataword(std::size_t word_index, const BitVec &data)
{
    BEER_ASSERT(word_index < cells_.size());
    cells_[word_index] = config_.code.encode(data);
}

gf2::BitVec
SimulatedChip::readDataword(std::size_t word_index)
{
    BEER_ASSERT(word_index < cells_.size());
    BitVec received = cells_[word_index];
    if (config_.transientErrorRate > 0.0) {
        for (std::size_t i = 0; i < received.size(); ++i)
            if (rng_.bernoulli(config_.transientErrorRate))
                received.flip(i);
    }
    return ecc::decode(config_.code, received).dataword;
}

void
SimulatedChip::writeByte(std::size_t byte_addr, std::uint8_t value)
{
    const auto slot = config_.map.slotOfByte(byte_addr);
    // On-die ECC works on whole words: read-modify-write the dataword.
    // The read bypasses decoding on purpose — a real chip's write path
    // merges raw data; going through the decoder here would scrub
    // retention errors on every byte write.
    BitVec data = config_.code.extractData(cells_[slot.wordIndex]);
    for (std::size_t b = 0; b < 8; ++b)
        data.set(slot.byteInWord * 8 + b, (value >> b) & 1);
    writeDataword(slot.wordIndex, data);
}

std::uint8_t
SimulatedChip::readByte(std::size_t byte_addr)
{
    const auto slot = config_.map.slotOfByte(byte_addr);
    const BitVec data = readDataword(slot.wordIndex);
    std::uint8_t out = 0;
    for (std::size_t b = 0; b < 8; ++b)
        if (data.get(slot.byteInWord * 8 + b))
            out |= (std::uint8_t)(1u << b);
    return out;
}

void
SimulatedChip::fill(std::uint8_t value)
{
    BitVec data(config_.code.k());
    for (std::size_t i = 0; i < data.size(); ++i)
        data.set(i, (value >> (i % 8)) & 1);
    for (std::size_t w = 0; w < cells_.size(); ++w)
        writeDataword(w, data);
}

void
SimulatedChip::pauseRefresh(double seconds, double temp_c)
{
    const double ber =
        config_.retention.failProbability(seconds, temp_c);
    ++pauseEpoch_;

    const std::size_t n = config_.code.n();
    for (std::size_t w = 0; w < cells_.size(); ++w) {
        const CellType type = cellTypeOfWord(w);
        BitVec &word = cells_[w];
        for (std::size_t bit = 0; bit < n; ++bit) {
            const bool value = word.get(bit);
            if (chargeOf(value, type) != ChargeState::Charged)
                continue;
            bool fails;
            if (config_.iidErrors) {
                fails = rng_.bernoulli(ber);
            } else {
                const std::uint64_t cell_id = (std::uint64_t)w * n + bit;
                if (config_.vrtRate > 0.0 &&
                    rng_.bernoulli(config_.vrtRate)) {
                    // VRT: the cell transiently follows a different
                    // retention time this pause.
                    fails = config_.retention.cellFails(
                        config_.seed ^ (0x1157ULL + pauseEpoch_),
                        cell_id, seconds, temp_c);
                } else {
                    fails = config_.retention.cellFails(
                        config_.seed, cell_id, seconds, temp_c);
                }
            }
            if (fails) {
                word.set(bit, decayedValue(type));
                ++rawErrors_;
            }
        }
    }
}

CellType
SimulatedChip::cellTypeOfWord(std::size_t word_index) const
{
    return config_.cellLayout.typeOfRow(
        config_.map.rowOfWord(word_index));
}

const gf2::BitVec &
SimulatedChip::storedCodeword(std::size_t word_index) const
{
    BEER_ASSERT(word_index < cells_.size());
    return cells_[word_index];
}

std::vector<std::size_t>
trueCellWords(const SimulatedChip &chip)
{
    std::vector<std::size_t> words;
    for (std::size_t w = 0; w < chip.numWords(); ++w)
        if (chip.cellTypeOfWord(w) == CellType::True)
            words.push_back(w);
    return words;
}

ChipConfig
makeVendorConfig(char vendor, std::size_t k, std::uint64_t seed)
{
    BEER_ASSERT(k % 8 == 0);
    ChipConfig config;
    config.map.bytesPerWord = k / 8;
    config.map.wordsPerRegion = 2;
    config.map.bytesPerRow = 2 * k / 8; // one region per row
    config.map.rows = 256;
    config.seed = seed;

    util::Rng rng(seed ^ (std::uint64_t)vendor * 0x9e3779b97f4a7c15ULL);
    switch (vendor) {
      case 'A':
        config.cellLayout = CellTypeLayout::allTrue();
        config.code = ecc::randomSecCode(k, rng);
        break;
      case 'B':
        config.cellLayout = CellTypeLayout::allTrue();
        config.code = ecc::canonicalSecCode(k);
        break;
      case 'C':
        config.cellLayout =
            CellTypeLayout::alternating({8, 8, 12, 12});
        config.code = ecc::randomSecCode(k, rng);
        break;
      default:
        util::fatal("unknown vendor '%c' (expected A, B, or C)", vendor);
    }
    return config;
}

} // namespace beer::dram
