/**
 * @file
 * A simulated DRAM chip with on-die ECC.
 *
 * This is the stand-in for the paper's 80 real LPDDR4 chips: the ECC
 * function is a construction-time secret, and the only externally
 * visible interface is writing/reading datawords (or bytes) and
 * manipulating the refresh window — exactly the interface BEER assumes.
 * Ground-truth accessors are provided for validation in simulation and
 * are clearly marked; BEER itself never uses them.
 *
 * Error behaviour implemented (paper Section 3.2):
 *  - data-retention errors: unidirectional CHARGED -> DISCHARGED decay,
 *    spatially uniform-random, controlled by refresh-pause length and
 *    temperature, and repeatable (per-cell deterministic retention
 *    times) unless iid mode is selected;
 *  - transient errors: rare random flips on read that do not persist,
 *    modeling particle strikes / VRT noise (used to evaluate BEER's
 *    thresholding filter, Figure 4).
 */

#ifndef BEER_DRAM_CHIP_HH
#define BEER_DRAM_CHIP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "dram/layout.hh"
#include "dram/memory_interface.hh"
#include "dram/retention.hh"
#include "dram/types.hh"
#include "ecc/linear_code.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace beer::dram
{

/** Construction parameters for a simulated chip. */
struct ChipConfig
{
    AddressMap map;
    CellTypeLayout cellLayout;
    /** The secret on-die ECC function. k must be 8 * map.bytesPerWord. */
    ecc::LinearCode code = ecc::paperExampleCode();
    RetentionModel retention;
    /** Per-cell per-read transient flip probability (non-persistent). */
    double transientErrorRate = 0.0;
    /**
     * Variable-retention-time rate: on each pauseRefresh(), this
     * fraction of cells (chosen afresh per pause) behaves per a
     * re-drawn retention time instead of its fixed one, modeling VRT
     * cells (one of the noise sources Section 5.2 lists). Only
     * meaningful in the per-cell (non-iid) mode.
     */
    double vrtRate = 0.0;
    /**
     * If true, each pauseRefresh() draws fresh iid errors at the model
     * BER instead of using fixed per-cell retention times. Faster and
     * samples more distinct error patterns per experiment; used by the
     * profile-measurement loops. If false, errors are repeatable.
     */
    bool iidErrors = false;
    std::uint64_t seed = 1;
    /**
     * Worker threads for pauseRefresh()'s retention-error injection
     * (0 = all hardware threads). Words are sharded deterministically
     * — iid shards draw from forked Rng streams keyed by shard index,
     * per-cell mode is a pure function of (seed, cell) — so the error
     * pattern is bit-identical for every thread count.
     */
    std::size_t threads = 1;
};

/** Simulated DRAM chip; see file comment. */
class SimulatedChip : public MemoryInterface
{
  public:
    explicit SimulatedChip(ChipConfig config);

    // ---- geometry -------------------------------------------------------
    std::size_t datawordBits() const override { return config_.code.k(); }
    const AddressMap &addressMap() const override { return config_.map; }

    // ---- data interface (everything a real chip exposes) ----------------
    /** Write a k-bit dataword; the chip encodes and stores it. */
    void writeDataword(std::size_t word_index,
                       const gf2::BitVec &data) override;

    /** Read a dataword through the on-die ECC decoder. */
    gf2::BitVec readDataword(std::size_t word_index) override;

    /** Byte-granularity accessors through the address map. */
    void writeByte(std::size_t byte_addr, std::uint8_t value) override;
    std::uint8_t readByte(std::size_t byte_addr) override;

    /** Fill every data byte of the chip with @p value. */
    void fill(std::uint8_t value) override;

    /**
     * Disable refresh for @p seconds at @p temp_c, injecting
     * data-retention errors into the stored cells. Errors persist until
     * the affected word is rewritten.
     */
    void pauseRefresh(double seconds, double temp_c) override;

    // ---- ground truth (simulation/validation only) -----------------------
    /** The secret ECC function. BEER never calls this. */
    const ecc::LinearCode &groundTruthCode() const { return config_.code; }

    /** Cell type of the row holding @p word_index. */
    CellType cellTypeOfWord(std::size_t word_index) const;

    /** Raw stored codeword including parity bits (pre-decode view). */
    const gf2::BitVec &storedCodeword(std::size_t word_index) const;

    /** Raw error count injected by pauseRefresh() so far (validation). */
    std::uint64_t rawErrorCount() const { return rawErrors_; }

    const RetentionModel &retentionModel() const
    {
        return config_.retention;
    }

  private:
    /** Charged cells of words [begin, end) fail iid at @p ber. */
    std::uint64_t decayIid(std::size_t begin, std::size_t end,
                           double ber, util::Rng &rng);
    /** Deterministic per-cell retention decay for words [begin, end). */
    std::uint64_t decayPerCell(std::size_t begin, std::size_t end,
                               double seconds, double temp_c);
    /** Lazily created pool sized to config_.threads. */
    util::ThreadPool &pool();

    ChipConfig config_;
    /** Stored codeword (value domain, not charge domain) per word. */
    std::vector<gf2::BitVec> cells_;
    util::Rng rng_;
    std::unique_ptr<util::ThreadPool> pool_;
    std::uint64_t pauseEpoch_ = 0;
    std::uint64_t rawErrors_ = 0;
};

/** Back-compat name from before the backend abstraction existed. */
using Chip = SimulatedChip;

/**
 * Ground-truth word selection for simulation runs: indices of all words
 * stored in true-cell rows, the subset the paper's methodology tests.
 * Hardware-faithful flows derive the same set externally via
 * beer::discoverCellTypes().
 */
std::vector<std::size_t> trueCellWords(const SimulatedChip &chip);

/**
 * Build a chip configuration in the style of one of the paper's three
 * anonymized manufacturers:
 *  - 'A': all true-cells, unstructured (random) ECC function;
 *  - 'B': all true-cells, structured (canonical) ECC function, whose
 *         regular parity-check matrix produces the repeating
 *         miscorrection patterns the paper observes;
 *  - 'C': alternating true-/anti-cell row blocks, random ECC function.
 *
 * @param vendor 'A', 'B', or 'C'
 * @param k      dataword length in bits (multiple of 8)
 * @param seed   secret-selection and error seed
 */
ChipConfig makeVendorConfig(char vendor, std::size_t k,
                            std::uint64_t seed);

} // namespace beer::dram

#endif // BEER_DRAM_CHIP_HH
