/**
 * @file
 * A simulated DRAM chip with on-die ECC.
 *
 * This is the stand-in for the paper's 80 real LPDDR4 chips: the ECC
 * function is a construction-time secret, and the only externally
 * visible interface is writing/reading datawords (or bytes) and
 * manipulating the refresh window — exactly the interface BEER assumes.
 * Ground-truth accessors are provided for validation in simulation and
 * are clearly marked; BEER itself never uses them.
 *
 * Error behaviour implemented (paper Section 3.2):
 *  - data-retention errors: unidirectional CHARGED -> DISCHARGED decay,
 *    spatially uniform-random, controlled by refresh-pause length and
 *    temperature, and repeatable (per-cell deterministic retention
 *    times) unless iid mode is selected;
 *  - transient errors: rare random flips on read that do not persist,
 *    modeling particle strikes / VRT noise (used to evaluate BEER's
 *    thresholding filter, Figure 4).
 *
 * Cells are stored transposed by default (dram::TransposedCellStore:
 * bit-planes in the simulation engine's lane-major SoA layout), so
 * refresh-pause decay, batched reads, and fills run on whole 64-word
 * lane groups through the width-generic SIMD kernels; the external
 * word/byte MemoryInterface contract is preserved bit-for-bit by a
 * gather/scatter shim. ChipStorage::Scalar keeps the legacy
 * BitVec-per-word layout as the differential-testing baseline.
 */

#ifndef BEER_DRAM_CHIP_HH
#define BEER_DRAM_CHIP_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "dram/cell_store.hh"
#include "dram/layout.hh"
#include "dram/memory_interface.hh"
#include "dram/retention.hh"
#include "dram/types.hh"
#include "ecc/linear_code.hh"
#include "util/rng.hh"
#include "util/simd.hh"
#include "util/thread_pool.hh"

namespace beer::dram
{

/** Cell-array layout of a simulated chip. */
enum class ChipStorage
{
    /**
     * Transposed bit-plane store (dram::TransposedCellStore): refresh
     * pauses, wide reads, and fills run on whole lane words through
     * the SIMD decode kernels. The default.
     */
    Transposed,
    /**
     * Legacy layout: one gf2::BitVec per word, cells flipped bit by
     * bit, every read through the scalar decoder. Kept as the
     * differential-testing and benchmarking baseline; identical
     * externally visible behavior (given the same seed) by
     * construction, enforced by tests/test_transposed_chip.cc.
     */
    Scalar,
};

/** How pauseRefresh() draws iid retention-error candidates. */
enum class InjectionMode
{
    /**
     * SkipSample below kInjectionCrossoverBer, BernoulliMask at or
     * above it — the crossover bench/sim_throughput measures.
     */
    Auto,
    /**
     * Geometric skip-sampling over the cell grid: one Rng draw per
     * candidate cell, O(candidates) cost. Bit-identical error
     * patterns across storage layouts; cheapest at low BER.
     */
    SkipSample,
    /**
     * Whole Bernoulli lane masks per (bit-position, lane word):
     * ~log2(64)+2 Rng draws per 64 cells regardless of rate, so it
     * wins at high BER. Same error distribution as SkipSample but a
     * different Rng stream (patterns differ, statistics match).
     * Transposed storage only; Scalar chips always skip-sample.
     */
    BernoulliMask,
};

/**
 * iid BER at or above which InjectionMode::Auto switches from
 * skip-sampling to Bernoulli lane masks. Measured by
 * bench/sim_throughput (reported as injection_crossover_ber in its
 * JSON); the constant tracks the measured value on x86 hosts, where
 * the ratio crosses 1 between the 0.03 and 0.1 grid points.
 */
inline constexpr double kInjectionCrossoverBer = 0.035;

/** Construction parameters for a simulated chip. */
struct ChipConfig
{
    AddressMap map;
    CellTypeLayout cellLayout;
    /** The secret on-die ECC function. k must be 8 * map.bytesPerWord. */
    ecc::LinearCode code = ecc::paperExampleCode();
    RetentionModel retention;
    /** Per-cell per-read transient flip probability (non-persistent). */
    double transientErrorRate = 0.0;
    /**
     * Variable-retention-time rate: on each pauseRefresh(), this
     * fraction of cells (chosen afresh per pause) behaves per a
     * re-drawn retention time instead of its fixed one, modeling VRT
     * cells (one of the noise sources Section 5.2 lists). Only
     * meaningful in the per-cell (non-iid) mode.
     */
    double vrtRate = 0.0;
    /**
     * If true, each pauseRefresh() draws fresh iid errors at the model
     * BER instead of using fixed per-cell retention times. Faster and
     * samples more distinct error patterns per experiment; used by the
     * profile-measurement loops. If false, errors are repeatable.
     */
    bool iidErrors = false;
    std::uint64_t seed = 1;
    /** Cell-array layout; see ChipStorage. */
    ChipStorage storage = ChipStorage::Transposed;
    /** iid candidate sampling; see InjectionMode. */
    InjectionMode injection = InjectionMode::Auto;
    /**
     * SIMD width of the wide read path (transposed storage only);
     * Auto resolves via BEER_SIMD, then CPUID, like the simulation
     * engine. Reads are bit-identical for every width.
     */
    util::simd::Backend simdBackend = util::simd::Backend::Auto;
    /**
     * Worker threads for pauseRefresh()'s retention-error injection
     * (0 = all hardware threads). Words are sharded deterministically
     * — iid shards draw from forked Rng streams keyed by shard index,
     * per-cell mode is a pure function of (seed, cell) — so the error
     * pattern is bit-identical for every thread count.
     */
    std::size_t threads = 1;
};

/** Simulated DRAM chip; see file comment. */
class SimulatedChip : public MemoryInterface
{
  public:
    explicit SimulatedChip(ChipConfig config);

    // ---- geometry -------------------------------------------------------
    std::size_t datawordBits() const override { return config_.code.k(); }
    const AddressMap &addressMap() const override { return config_.map; }

    // ---- data interface (everything a real chip exposes) ----------------
    /** Write a k-bit dataword; the chip encodes and stores it. */
    void writeDataword(std::size_t word_index,
                       const gf2::BitVec &data) override;

    /** Read a dataword through the on-die ECC decoder. */
    gf2::BitVec readDataword(std::size_t word_index) override;

    /**
     * Batched fill: with transposed storage the encoded pattern is
     * broadcast into whole lane words (one operation per plane row
     * and lane word) instead of scattered per word.
     */
    void writeDatawordsBroadcast(const std::size_t *words,
                                 std::size_t count,
                                 const gf2::BitVec &data) override;

    /**
     * Batched read: with transposed storage, error-plane windows feed
     * the wide decode kernel directly (no gather copy) and the
     * post-correction datawords are reconstructed row-major.
     * Bit-identical to sequential readDataword calls, including the
     * transient-noise Rng stream; noise-free reads shard over the
     * configured worker threads.
     */
    void readDatawords(const std::size_t *words, std::size_t count,
                       std::vector<gf2::BitVec> &out) override;

    /** Byte-granularity accessors through the address map. */
    void writeByte(std::size_t byte_addr, std::uint8_t value) override;
    std::uint8_t readByte(std::size_t byte_addr) override;

    /** Fill every data byte of the chip with @p value. */
    void fill(std::uint8_t value) override;

    /**
     * Disable refresh for @p seconds at @p temp_c, injecting
     * data-retention errors into the stored cells. Errors persist until
     * the affected word is rewritten.
     */
    void pauseRefresh(double seconds, double temp_c) override;

    // ---- ground truth (simulation/validation only) -----------------------
    /** The secret ECC function. BEER never calls this. */
    const ecc::LinearCode &groundTruthCode() const { return config_.code; }

    /** Cell type of the row holding @p word_index. */
    CellType cellTypeOfWord(std::size_t word_index) const;

    /** Raw stored codeword including parity bits (pre-decode view). */
    gf2::BitVec storedCodeword(std::size_t word_index) const;

    /** Raw error count injected by pauseRefresh() so far (validation). */
    std::uint64_t rawErrorCount() const { return rawErrors_; }

    const RetentionModel &retentionModel() const
    {
        return config_.retention;
    }

  private:
    /** Charged cells of words [begin, end) fail iid at @p ber
     * (legacy scalar layout). */
    std::uint64_t decayIid(std::size_t begin, std::size_t end,
                           double ber, util::Rng &rng);
    /** Deterministic per-cell retention decay for words [begin, end)
     * (legacy scalar layout). */
    std::uint64_t decayPerCell(std::size_t begin, std::size_t end,
                               double seconds, double temp_c);
    /** One transposed-store decay shard (dispatches on mode). */
    std::uint64_t decayTransposed(std::size_t begin, std::size_t end,
                                  double seconds, double temp_c,
                                  double ber, util::Rng *rng);
    /** Whether cell (cell_id) fails this pause (retention + VRT). */
    bool cellFailsThisPause(std::uint64_t cell_id, double seconds,
                            double temp_c) const;
    /** iid injection mode after Auto resolution at @p ber. */
    InjectionMode injectionModeFor(double ber) const;
    /** Lazily resolved wide-read state (decoder + kernel). */
    void prepareWideRead();
    /** Lazily created pool sized to config_.threads. */
    util::ThreadPool &pool();

    ChipConfig config_;
    /** Legacy layout: stored codeword (value domain) per word. */
    std::vector<gf2::BitVec> cells_;
    /** Transposed layout: bit-plane store (value domain). */
    std::optional<TransposedCellStore> store_;
    util::Rng rng_;
    std::unique_ptr<util::ThreadPool> pool_;
    /** Wide read path, resolved on first batched read. */
    std::unique_ptr<ecc::BitslicedDecoder> decoder_;
    const sim::EngineKernel *kernel_ = nullptr;
    WideReadScratch readScratch_;
    /** Selection-mask scratch for writeDatawordsBroadcast. */
    std::vector<std::uint64_t> broadcastSel_;
    std::uint64_t pauseEpoch_ = 0;
    std::uint64_t rawErrors_ = 0;
};

/** Back-compat name from before the backend abstraction existed. */
using Chip = SimulatedChip;

/**
 * Ground-truth word selection for simulation runs: indices of all words
 * stored in true-cell rows, the subset the paper's methodology tests.
 * Hardware-faithful flows derive the same set externally via
 * beer::discoverCellTypes().
 */
std::vector<std::size_t> trueCellWords(const SimulatedChip &chip);

/**
 * Build a chip configuration in the style of one of the paper's three
 * anonymized manufacturers:
 *  - 'A': all true-cells, unstructured (random) ECC function;
 *  - 'B': all true-cells, structured (canonical) ECC function, whose
 *         regular parity-check matrix produces the repeating
 *         miscorrection patterns the paper observes;
 *  - 'C': alternating true-/anti-cell row blocks, random ECC function.
 *
 * @param vendor 'A', 'B', or 'C'
 * @param k      dataword length in bits (multiple of 8)
 * @param seed   secret-selection and error seed
 */
ChipConfig makeVendorConfig(char vendor, std::size_t k,
                            std::uint64_t seed);

} // namespace beer::dram

#endif // BEER_DRAM_CHIP_HH
