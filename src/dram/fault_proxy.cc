#include "dram/fault_proxy.hh"

#include "util/logging.hh"

namespace beer::dram
{

using gf2::BitVec;

FaultInjectionProxy::FaultInjectionProxy(MemoryInterface &inner,
                                         FaultInjectionConfig config)
    : inner_(inner),
      config_(std::move(config)),
      rng_(config_.seed ^ 0xfa017)
{
    for (const StuckAtFault &fault : config_.stuckAt) {
        BEER_ASSERT(fault.wordIndex < inner_.numWords());
        BEER_ASSERT(fault.bit < inner_.datawordBits());
    }
}

void
FaultInjectionProxy::perturbRead(std::size_t word_index, BitVec &data)
{
    if (config_.transientFlipRate > 0.0) {
        for (std::size_t bit = 0; bit < data.size(); ++bit) {
            if (rng_.bernoulli(config_.transientFlipRate)) {
                data.flip(bit);
                ++injectedFlips_;
            }
        }
    }
    for (const StuckAtFault &fault : config_.stuckAt)
        if (fault.wordIndex == word_index)
            data.set(fault.bit, fault.value);
}

BitVec
FaultInjectionProxy::readDataword(std::size_t word_index)
{
    BitVec data = inner_.readDataword(word_index);
    perturbRead(word_index, data);
    return data;
}

void
FaultInjectionProxy::readDatawords(const std::size_t *words,
                                   std::size_t count,
                                   std::vector<BitVec> &out)
{
    inner_.readDatawords(words, count, out);
    for (std::size_t i = 0; i < count; ++i)
        perturbRead(words[i], out[i]);
}

std::uint8_t
FaultInjectionProxy::readByte(std::size_t byte_addr)
{
    std::uint8_t value = inner_.readByte(byte_addr);
    if (config_.transientFlipRate > 0.0) {
        for (std::size_t bit = 0; bit < 8; ++bit) {
            if (rng_.bernoulli(config_.transientFlipRate)) {
                value ^= (std::uint8_t)(1u << bit);
                ++injectedFlips_;
            }
        }
    }
    const AddressMap::WordSlot slot =
        inner_.addressMap().slotOfByte(byte_addr);
    for (const StuckAtFault &fault : config_.stuckAt) {
        if (fault.wordIndex != slot.wordIndex)
            continue;
        const std::size_t lo = slot.byteInWord * 8;
        if (fault.bit < lo || fault.bit >= lo + 8)
            continue;
        const std::size_t in_byte = fault.bit - lo;
        if (fault.value)
            value |= (std::uint8_t)(1u << in_byte);
        else
            value &= (std::uint8_t)~(1u << in_byte);
    }
    return value;
}

} // namespace beer::dram
