#include "dram/fault_proxy.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/logging.hh"

namespace beer::dram
{

using gf2::BitVec;

FaultInjectionProxy::FaultInjectionProxy(MemoryInterface &inner,
                                         FaultInjectionConfig config)
    : inner_(inner),
      config_(std::move(config)),
      rng_(config_.seed ^ 0xfa017)
{
    for (const StuckAtFault &fault : config_.stuckAt) {
        BEER_ASSERT(fault.wordIndex < inner_.numWords());
        BEER_ASSERT(fault.bit < inner_.datawordBits());
    }
    for (const FaultWindow &window : config_.windows)
        BEER_ASSERT(window.startReadOp <= window.endReadOp);
    for (const PatternCorruption &fault : config_.patternFaults)
        BEER_ASSERT(fault.bit < inner_.datawordBits());
    patternFaultHits_.assign(config_.patternFaults.size(), 0);
}

double
FaultInjectionProxy::effectiveFlipRate(std::uint64_t op) const
{
    double rate = config_.transientFlipRate;
    for (const FaultWindow &window : config_.windows)
        if (op >= window.startReadOp && op < window.endReadOp)
            rate = std::max(rate, window.flipRate);
    const BurstFaults &burst = config_.burst;
    if (burst.period && op % burst.period < burst.length)
        rate = std::max(rate, burst.flipRate);
    return rate;
}

void
FaultInjectionProxy::perturbRead(std::size_t word_index, BitVec &data)
{
    const std::uint64_t op = readOps_++;
    if (config_.throwEveryReads &&
        (op + 1) % config_.throwEveryReads == 0) {
        ++throwsInjected_;
        throw InjectedReadFailure();
    }
    if (config_.stallEveryReads &&
        (op + 1) % config_.stallEveryReads == 0) {
        ++stallsInjected_;
        if (config_.stallSeconds > 0.0)
            std::this_thread::sleep_for(std::chrono::duration<double>(
                config_.stallSeconds));
    }
    const double rate = effectiveFlipRate(op);
    if (rate > 0.0) {
        for (std::size_t bit = 0; bit < data.size(); ++bit) {
            if (rng_.bernoulli(rate)) {
                data.flip(bit);
                ++injectedFlips_;
            }
        }
    }
    for (std::size_t i = 0; i < config_.patternFaults.size(); ++i) {
        const PatternCorruption &fault = config_.patternFaults[i];
        if (lastBroadcast_ != fault.triggerData)
            continue;
        if (fault.maxHits && patternFaultHits_[i] >= fault.maxHits)
            continue;
        if (fault.flipRate < 1.0 && !rng_.bernoulli(fault.flipRate))
            continue;
        data.flip(fault.bit);
        ++patternFaultHits_[i];
        ++patternHits_;
        ++injectedFlips_;
    }
    for (const StuckAtFault &fault : config_.stuckAt) {
        if (fault.wordIndex != word_index)
            continue;
        data.set(fault.bit, fault.value);
        ++stuckAtHits_;
    }
}

BitVec
FaultInjectionProxy::readDataword(std::size_t word_index)
{
    BitVec data = inner_.readDataword(word_index);
    perturbRead(word_index, data);
    return data;
}

void
FaultInjectionProxy::readDatawords(const std::size_t *words,
                                   std::size_t count,
                                   std::vector<BitVec> &out)
{
    inner_.readDatawords(words, count, out);
    for (std::size_t i = 0; i < count; ++i)
        perturbRead(words[i], out[i]);
}

std::uint8_t
FaultInjectionProxy::readByte(std::size_t byte_addr)
{
    std::uint8_t value = inner_.readByte(byte_addr);
    if (config_.transientFlipRate > 0.0) {
        for (std::size_t bit = 0; bit < 8; ++bit) {
            if (rng_.bernoulli(config_.transientFlipRate)) {
                value ^= (std::uint8_t)(1u << bit);
                ++injectedFlips_;
            }
        }
    }
    // Stuck-at pins apply to byte reads aliasing a pinned data bit
    // too: the fault models a broken post-correction data line, which
    // the byte access path reads through just the same.
    const AddressMap::WordSlot slot =
        inner_.addressMap().slotOfByte(byte_addr);
    for (const StuckAtFault &fault : config_.stuckAt) {
        if (fault.wordIndex != slot.wordIndex)
            continue;
        const std::size_t lo = slot.byteInWord * 8;
        if (fault.bit < lo || fault.bit >= lo + 8)
            continue;
        const std::size_t in_byte = fault.bit - lo;
        if (fault.value)
            value |= (std::uint8_t)(1u << in_byte);
        else
            value &= (std::uint8_t)~(1u << in_byte);
        ++stuckAtHits_;
    }
    return value;
}

} // namespace beer::dram
