/**
 * @file
 * Fault-injection / chaos decorator over any memory backend.
 *
 * Wraps a MemoryInterface and perturbs what the wrapped backend
 * returns, for scenario-diversity studies (paper Sections 5.2 and
 * 7.1.5) and for the chaos test suite that proves the recovery stack
 * survives noisy measurement: extra transient read errors —
 * post-correction bit flips on every read, modeling particle strikes /
 * bus noise beyond what the backend itself simulates — stuck-at faults
 * that pin individual post-correction data bits of chosen words to a
 * fixed value, time-varying noise (flip-rate windows keyed to the
 * read-operation count, periodic bursts), per-pattern corruption
 * triggered by the last broadcast-written dataword, and injected read
 * stalls. Because it decorates the abstract interface, it composes
 * with every backend: a SimulatedChip, a TraceReplayBackend, or
 * another proxy.
 *
 * Writes and refresh pauses pass through untouched; only read paths
 * (readDataword/readByte) are perturbed. With every chaos knob at its
 * default the proxy is transparent: reads pass through bit-identical
 * and no Rng draws are consumed.
 */

#ifndef BEER_DRAM_FAULT_PROXY_HH
#define BEER_DRAM_FAULT_PROXY_HH

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "dram/memory_interface.hh"
#include "util/rng.hh"

namespace beer::dram
{

/** A post-correction data bit pinned to a fixed read value. */
struct StuckAtFault
{
    std::size_t wordIndex = 0;
    /** Data-bit position within the word, [0, k). */
    std::size_t bit = 0;
    /** Value the bit always reads back as. */
    bool value = false;
};

/**
 * A flip-rate override active for a half-open range of per-word read
 * operations [startReadOp, endReadOp) — transient noise that comes and
 * goes, e.g. one poisoned measurement round.
 */
struct FaultWindow
{
    std::uint64_t startReadOp = 0;
    std::uint64_t endReadOp = 0;
    double flipRate = 0.0;
};

/** Periodic burst noise: the first @c length of every @c period read
 *  ops flip at @c flipRate (0 period disables). */
struct BurstFaults
{
    std::uint64_t period = 0;
    std::uint64_t length = 0;
    double flipRate = 0.0;
};

/**
 * Corruption keyed to the test pattern being measured: while the last
 * writeDatawordsBroadcast() data equals @c triggerData, each word read
 * flips @c bit with probability @c flipRate. Deterministic (rate 1)
 * triggers fabricate a consistently wrong profile entry — the
 * poisoned-round scenario BEER's UNSAT repair must localize.
 */
struct PatternCorruption
{
    gf2::BitVec triggerData;
    std::size_t bit = 0;
    double flipRate = 1.0;
    /** Stop corrupting after this many flipped reads (0 = never). */
    std::uint64_t maxHits = 0;
};

/** Knobs for FaultInjectionProxy. */
struct FaultInjectionConfig
{
    /** Per-data-bit flip probability applied to every read. */
    double transientFlipRate = 0.0;
    /** Bits pinned on read. */
    std::vector<StuckAtFault> stuckAt;
    std::uint64_t seed = 99;

    // ---- chaos extensions (all inert by default) ----------------------
    /** Flip-rate overrides over read-op ranges (max wins vs base). */
    std::vector<FaultWindow> windows;
    /** Periodic burst noise. */
    BurstFaults burst;
    /** Pattern-triggered corruption. */
    std::vector<PatternCorruption> patternFaults;
    /** Sleep on every Nth per-word read op (0 disables). */
    std::uint64_t stallEveryReads = 0;
    /** Stall duration, seconds. */
    double stallSeconds = 0.0;
    /**
     * Infrastructure failure (not data noise): every Nth per-word
     * read op THROWS instead of returning data — a flaky measurement
     * bus / dropped RPC to the test head (0 disables). The service
     * classifies the throw as MeasurementFailed and the scheduler's
     * retry/quarantine policy decides what happens next; the chaos
     * suite uses this to drive that path deterministically.
     */
    std::uint64_t throwEveryReads = 0;
};

/** Thrown by the proxy's injected read failures. */
struct InjectedReadFailure : std::runtime_error
{
    InjectedReadFailure()
        : std::runtime_error("injected read failure (chaos proxy)")
    {
    }
};

/** Decorator injecting extra read faults; see file comment. */
class FaultInjectionProxy : public MemoryInterface
{
  public:
    FaultInjectionProxy(MemoryInterface &inner,
                        FaultInjectionConfig config);

    const AddressMap &addressMap() const override
    {
        return inner_.addressMap();
    }
    std::size_t datawordBits() const override
    {
        return inner_.datawordBits();
    }

    void writeDataword(std::size_t word_index,
                       const gf2::BitVec &data) override
    {
        inner_.writeDataword(word_index, data);
    }

    gf2::BitVec readDataword(std::size_t word_index) override;

    void writeDatawordsBroadcast(const std::size_t *words,
                                 std::size_t count,
                                 const gf2::BitVec &data) override
    {
        lastBroadcast_ = data;
        inner_.writeDatawordsBroadcast(words, count, data);
    }

    /**
     * Batched reads stay batched through the proxy: the wrapped
     * backend reads all words first (its own Rng stream, in word
     * order), then the proxy perturbs each result in word order (its
     * own Rng stream). The two streams are independent, so the
     * results are bit-identical to interleaved sequential reads.
     */
    void readDatawords(const std::size_t *words, std::size_t count,
                       std::vector<gf2::BitVec> &out) override;

    void writeByte(std::size_t byte_addr, std::uint8_t value) override
    {
        inner_.writeByte(byte_addr, value);
    }

    std::uint8_t readByte(std::size_t byte_addr) override;

    void fill(std::uint8_t value) override { inner_.fill(value); }

    void pauseRefresh(double seconds, double temp_c) override
    {
        inner_.pauseRefresh(seconds, temp_c);
    }

    /** Transient flips injected so far (diagnostics). Counted
     *  identically on the scalar and batched read paths: the batched
     *  path perturbs each word in order with the same Rng stream. */
    std::uint64_t injectedFlips() const { return injectedFlips_; }

    /** Stuck-at pins applied to dataword/byte reads so far. Each
     *  (read, matching fault) application counts once, whether or not
     *  the pin changed the read-back value. */
    std::uint64_t stuckAtHits() const { return stuckAtHits_; }

    /** Per-word read operations observed (dataword paths; batched
     *  reads count each word). Windows and bursts key off this. */
    std::uint64_t readOps() const { return readOps_; }

    /** Read stalls injected so far. */
    std::uint64_t stallsInjected() const { return stallsInjected_; }

    /** Pattern-corruption flips injected so far. */
    std::uint64_t patternHits() const { return patternHits_; }

    /** Injected read-failure throws so far. */
    std::uint64_t throwsInjected() const { return throwsInjected_; }

  private:
    /** Apply transient flips and stuck-at pins to one read result. */
    void perturbRead(std::size_t word_index, gf2::BitVec &data);

    /** Flip rate in force for read op @p op (max of base/window/burst). */
    double effectiveFlipRate(std::uint64_t op) const;

    MemoryInterface &inner_;
    FaultInjectionConfig config_;
    util::Rng rng_;
    gf2::BitVec lastBroadcast_;
    std::uint64_t injectedFlips_ = 0;
    std::uint64_t stuckAtHits_ = 0;
    std::uint64_t readOps_ = 0;
    std::uint64_t stallsInjected_ = 0;
    std::uint64_t patternHits_ = 0;
    std::uint64_t throwsInjected_ = 0;
    /** Per-patternFaults[i] flips, for maxHits expiry. */
    std::vector<std::uint64_t> patternFaultHits_;
};

} // namespace beer::dram

#endif // BEER_DRAM_FAULT_PROXY_HH
