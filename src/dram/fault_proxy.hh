/**
 * @file
 * Fault-injection decorator over any memory backend.
 *
 * Wraps a MemoryInterface and perturbs what the wrapped backend
 * returns, for scenario-diversity studies (paper Sections 5.2 and
 * 7.1.5): extra transient read errors — post-correction bit flips on
 * every read, modeling particle strikes / bus noise beyond what the
 * backend itself simulates — and stuck-at faults that pin individual
 * post-correction data bits of chosen words to a fixed value. Because
 * it decorates the abstract interface, it composes with every backend:
 * a SimulatedChip, a TraceReplayBackend, or another proxy.
 *
 * Writes and refresh pauses pass through untouched; only read paths
 * (readDataword/readByte) are perturbed.
 */

#ifndef BEER_DRAM_FAULT_PROXY_HH
#define BEER_DRAM_FAULT_PROXY_HH

#include <cstdint>
#include <vector>

#include "dram/memory_interface.hh"
#include "util/rng.hh"

namespace beer::dram
{

/** A post-correction data bit pinned to a fixed read value. */
struct StuckAtFault
{
    std::size_t wordIndex = 0;
    /** Data-bit position within the word, [0, k). */
    std::size_t bit = 0;
    /** Value the bit always reads back as. */
    bool value = false;
};

/** Knobs for FaultInjectionProxy. */
struct FaultInjectionConfig
{
    /** Per-data-bit flip probability applied to every read. */
    double transientFlipRate = 0.0;
    /** Bits pinned on read. */
    std::vector<StuckAtFault> stuckAt;
    std::uint64_t seed = 99;
};

/** Decorator injecting extra read faults; see file comment. */
class FaultInjectionProxy : public MemoryInterface
{
  public:
    FaultInjectionProxy(MemoryInterface &inner,
                        FaultInjectionConfig config);

    const AddressMap &addressMap() const override
    {
        return inner_.addressMap();
    }
    std::size_t datawordBits() const override
    {
        return inner_.datawordBits();
    }

    void writeDataword(std::size_t word_index,
                       const gf2::BitVec &data) override
    {
        inner_.writeDataword(word_index, data);
    }

    gf2::BitVec readDataword(std::size_t word_index) override;

    void writeDatawordsBroadcast(const std::size_t *words,
                                 std::size_t count,
                                 const gf2::BitVec &data) override
    {
        inner_.writeDatawordsBroadcast(words, count, data);
    }

    /**
     * Batched reads stay batched through the proxy: the wrapped
     * backend reads all words first (its own Rng stream, in word
     * order), then the proxy perturbs each result in word order (its
     * own Rng stream). The two streams are independent, so the
     * results are bit-identical to interleaved sequential reads.
     */
    void readDatawords(const std::size_t *words, std::size_t count,
                       std::vector<gf2::BitVec> &out) override;

    void writeByte(std::size_t byte_addr, std::uint8_t value) override
    {
        inner_.writeByte(byte_addr, value);
    }

    std::uint8_t readByte(std::size_t byte_addr) override;

    void fill(std::uint8_t value) override { inner_.fill(value); }

    void pauseRefresh(double seconds, double temp_c) override
    {
        inner_.pauseRefresh(seconds, temp_c);
    }

    /** Transient flips injected so far (diagnostics). */
    std::uint64_t injectedFlips() const { return injectedFlips_; }

  private:
    /** Apply transient flips and stuck-at pins to one read result. */
    void perturbRead(std::size_t word_index, gf2::BitVec &data);

    MemoryInterface &inner_;
    FaultInjectionConfig config_;
    util::Rng rng_;
    std::uint64_t injectedFlips_ = 0;
};

} // namespace beer::dram

#endif // BEER_DRAM_FAULT_PROXY_HH
