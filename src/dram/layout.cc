#include "dram/layout.hh"

#include "util/logging.hh"

namespace beer::dram
{

AddressMap::WordSlot
AddressMap::slotOfByte(std::size_t byte_addr) const
{
    BEER_ASSERT(byte_addr < numBytes());
    const std::size_t region = byte_addr / bytesPerRegion();
    const std::size_t offset = byte_addr % bytesPerRegion();
    WordSlot slot;
    slot.wordIndex = region * wordsPerRegion + offset % wordsPerRegion;
    slot.byteInWord = offset / wordsPerRegion;
    return slot;
}

std::size_t
AddressMap::byteOfSlot(std::size_t word_index,
                       std::size_t byte_in_word) const
{
    BEER_ASSERT(word_index < numWords());
    BEER_ASSERT(byte_in_word < bytesPerWord);
    const std::size_t region = word_index / wordsPerRegion;
    const std::size_t lane = word_index % wordsPerRegion;
    return region * bytesPerRegion() + byte_in_word * wordsPerRegion +
           lane;
}

std::size_t
AddressMap::rowOfWord(std::size_t word_index) const
{
    BEER_ASSERT(word_index < numWords());
    return word_index / wordsPerRow();
}

void
AddressMap::validate() const
{
    if (bytesPerWord == 0 || wordsPerRegion == 0 || rows == 0)
        util::fatal("AddressMap: all dimensions must be nonzero");
    if (bytesPerRow % bytesPerRegion() != 0)
        util::fatal("AddressMap: bytesPerRow (%zu) must be a multiple of "
                    "the region size (%zu)",
                    bytesPerRow, bytesPerRegion());
}

CellType
CellTypeLayout::typeOfRow(std::size_t row) const
{
    if (blockRows.empty())
        return CellType::True;
    std::size_t period = 0;
    for (std::size_t height : blockRows)
        period += height;
    BEER_ASSERT(period > 0);
    std::size_t offset = row % period;
    for (std::size_t i = 0; i < blockRows.size(); ++i) {
        if (offset < blockRows[i])
            return (i % 2 == 0) ? CellType::True : CellType::Anti;
        offset -= blockRows[i];
    }
    return CellType::True; // unreachable
}

} // namespace beer::dram
