/**
 * @file
 * Physical layout of a simulated DRAM chip: how byte addresses map to
 * ECC datawords and how true-/anti-cell regions tile the row space.
 *
 * The dataword layout follows what the paper reverse-engineers from all
 * three manufacturers (Section 5.1.2): each contiguous 32B region holds
 * two 16B ECC datawords interleaved at byte granularity. The true/anti
 * layout follows Section 5.1.1: manufacturers A and B use exclusively
 * true-cells; manufacturer C alternates true/anti blocks of rows.
 */

#ifndef BEER_DRAM_LAYOUT_HH
#define BEER_DRAM_LAYOUT_HH

#include <cstddef>
#include <vector>

#include "dram/types.hh"

namespace beer::dram
{

/** Byte-address to ECC-word mapping. */
struct AddressMap
{
    /** Data bytes per ECC dataword (16 for a 128-bit dataword). */
    std::size_t bytesPerWord = 16;
    /** Datawords interleaved per region (2 in all chips studied). */
    std::size_t wordsPerRegion = 2;
    /** Data bytes per DRAM row. */
    std::size_t bytesPerRow = 64;
    /** Number of rows in the chip. */
    std::size_t rows = 256;

    std::size_t bytesPerRegion() const
    {
        return bytesPerWord * wordsPerRegion;
    }
    std::size_t regionsPerRow() const
    {
        return bytesPerRow / bytesPerRegion();
    }
    std::size_t wordsPerRow() const
    {
        return regionsPerRow() * wordsPerRegion;
    }
    std::size_t numWords() const { return rows * wordsPerRow(); }
    std::size_t numBytes() const { return rows * bytesPerRow; }

    /** Location of one data byte inside the ECC-word space. */
    struct WordSlot
    {
        std::size_t wordIndex;
        std::size_t byteInWord;
    };

    /** Map a chip byte address to its ECC word and byte offset. */
    WordSlot slotOfByte(std::size_t byte_addr) const;

    /** Inverse of slotOfByte(). */
    std::size_t byteOfSlot(std::size_t word_index,
                           std::size_t byte_in_word) const;

    /** Row containing @p word_index (words never straddle rows). */
    std::size_t rowOfWord(std::size_t word_index) const;

    /** Sanity-check the configuration; fatal on inconsistency. */
    void validate() const;
};

/**
 * True-/anti-cell tiling: alternating blocks of rows, starting with a
 * true-cell block. An empty block list means all rows are true-cells.
 */
struct CellTypeLayout
{
    /**
     * Cyclic block heights in rows, alternating True, Anti, True, ...
     * e.g. {8, 8, 12} means 8 true rows, 8 anti rows, 12 true rows,
     * 8 anti rows, ... (the paper observed irregular block lengths of
     * 800, 824, and 1224 rows on manufacturer C chips).
     */
    std::vector<std::size_t> blockRows;

    /** Cell type of @p row under this tiling. */
    CellType typeOfRow(std::size_t row) const;

    /** All-true layout (manufacturers A and B). */
    static CellTypeLayout allTrue() { return CellTypeLayout{}; }

    /** Alternating layout (manufacturer C style). */
    static CellTypeLayout
    alternating(std::vector<std::size_t> block_rows)
    {
        return CellTypeLayout{std::move(block_rows)};
    }
};

} // namespace beer::dram

#endif // BEER_DRAM_LAYOUT_HH
