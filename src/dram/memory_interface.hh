/**
 * @file
 * The abstract memory-backend interface BEER drives.
 *
 * This is exactly the surface a real DRAM chip with on-die ECC exposes
 * to an external tester (paper Section 5): geometry, dataword and byte
 * read/write through the ECC encoder/decoder, whole-chip fills, and
 * refresh-window manipulation. Nothing else — in particular no ground
 * truth — so anything implementing it can stand in for a chip:
 *
 *  - dram::SimulatedChip  — the error-model simulator (chip.hh);
 *  - dram::TraceReplayBackend — replays a recorded operation log, so
 *    BEER can run against externally collected measurements (trace.hh);
 *  - dram::FaultInjectionProxy — wraps any backend and injects extra
 *    transient / stuck-at errors for robustness studies (fault_proxy.hh).
 *
 * All of beer:: (measurement, discovery, session) and the beep:: word
 * adapter target this interface; only simulation-validation code may
 * downcast to SimulatedChip for ground truth.
 */

#ifndef BEER_DRAM_MEMORY_INTERFACE_HH
#define BEER_DRAM_MEMORY_INTERFACE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dram/layout.hh"
#include "gf2/bitvec.hh"

namespace beer::dram
{

/**
 * Zero-copy view of one batched read's results in bit-plane (SoA)
 * layout — the same transposed layout dram::TransposedCellStore and
 * the wide decode kernels use. Row @p pos is the laneWords uint64s at
 * rows + pos * rowStride; bit t of the row (bit t%64 of lane word
 * t/64) is bit @p pos of the t-th dataword in the batch. Bits at or
 * beyond @p count in the last lane word are zero. The view aliases
 * backend-owned storage and is valid only until the next operation on
 * the backend.
 */
struct PlanarReadBatch
{
    const std::uint64_t *rows = nullptr;
    /** uint64s between consecutive rows (>= laneWords). */
    std::size_t rowStride = 0;
    /** uint64s holding lane bits per row: ceil(count / 64). */
    std::size_t laneWords = 0;
    /** Datawords in the batch. */
    std::size_t count = 0;

    /** Row @p pos (dataword bit position). */
    const std::uint64_t *row(std::size_t pos) const
    {
        return rows + pos * rowStride;
    }
};

/** Abstract DRAM-with-on-die-ECC backend; see file comment. */
class MemoryInterface
{
  public:
    virtual ~MemoryInterface() = default;

    // ---- geometry -------------------------------------------------------
    virtual const AddressMap &addressMap() const = 0;
    /** Data bits per ECC word (k of the on-die code). */
    virtual std::size_t datawordBits() const = 0;

    std::size_t numWords() const { return addressMap().numWords(); }
    std::size_t numBytes() const { return addressMap().numBytes(); }

    // ---- data interface (everything a real chip exposes) ----------------
    /** Write a k-bit dataword; the backend encodes and stores it. */
    virtual void writeDataword(std::size_t word_index,
                               const gf2::BitVec &data) = 0;

    /** Read a dataword through the on-die ECC decoder. */
    virtual gf2::BitVec readDataword(std::size_t word_index) = 0;

    /**
     * Write the same @p data to each word of @p words, in order. Must
     * be observably identical to the writeDataword loop the default
     * implementation is; backends with batch-friendly storage (the
     * transposed simulated chip) override it to write whole lane
     * words. This is the shape of every profile-measurement fill, so
     * the batch seam sits on the measurement hot path.
     */
    virtual void writeDatawordsBroadcast(const std::size_t *words,
                                         std::size_t count,
                                         const gf2::BitVec &data)
    {
        for (std::size_t i = 0; i < count; ++i)
            writeDataword(words[i], data);
    }

    /**
     * Read each word of @p words, in order, into @p out. Must be
     * observably identical — including any Rng stream consumption for
     * simulated read noise — to the sequential readDataword loop the
     * default implementation is, so batching is purely a throughput
     * knob (the same contract as beep::WordUnderTest::testMany).
     */
    virtual void readDatawords(const std::size_t *words,
                               std::size_t count,
                               std::vector<gf2::BitVec> &out)
    {
        out.clear();
        out.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            out.push_back(readDataword(words[i]));
    }

    /**
     * Read each word of @p words through the decoder and expose the
     * results as a bit-plane view (k rows) instead of materialized
     * BitVecs, for callers whose downstream math is plane-parallel
     * (the measurement loop's per-bit mismatch counting). Must be
     * observably identical to readDatawords — same post-correction
     * data, same side effects, same Rng consumption — differing only
     * in the result container. Backends whose storage is already
     * columnar (trace replay v2) return true and a view that stays
     * valid until the next operation; the default declines, and the
     * caller falls back to readDatawords. A false return must have no
     * side effects.
     */
    virtual bool readDatawordsPlanar(const std::size_t *words,
                                     std::size_t count,
                                     PlanarReadBatch &out)
    {
        (void)words;
        (void)count;
        (void)out;
        return false;
    }

    /** Byte-granularity accessors through the address map. */
    virtual void writeByte(std::size_t byte_addr, std::uint8_t value) = 0;
    virtual std::uint8_t readByte(std::size_t byte_addr) = 0;

    /** Fill every data byte with @p value. */
    virtual void fill(std::uint8_t value) = 0;

    /**
     * Disable refresh for @p seconds at @p temp_c, letting
     * data-retention errors accumulate in the stored cells.
     */
    virtual void pauseRefresh(double seconds, double temp_c) = 0;
};

} // namespace beer::dram

#endif // BEER_DRAM_MEMORY_INTERFACE_HH
