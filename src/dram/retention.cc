#include "dram/retention.hh"

#include <cmath>

#include "util/logging.hh"

namespace beer::dram
{

namespace
{

/** Standard normal CDF. */
double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

/** Inverse standard normal CDF (Acklam's rational approximation). */
double
normalQuantile(double p)
{
    BEER_ASSERT(p > 0.0 && p < 1.0);
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425;

    if (p < plow) {
        const double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                    q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p > 1.0 - plow) {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                     q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
}

std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // anonymous namespace

RetentionModel::RetentionModel(const Config &config)
    : config_(config)
{
    BEER_ASSERT(config_.logSigma > 0.0);
    BEER_ASSERT(config_.retentionHalvingCelsius > 0.0);
}

double
RetentionModel::effectivePause(double pause_seconds, double temp_c) const
{
    // Hotter than refTempC shortens retention; model as lengthening the
    // effective pause by 2^((T - Tref) / halving).
    const double exponent =
        (temp_c - config_.refTempC) / config_.retentionHalvingCelsius;
    return pause_seconds * std::exp2(exponent);
}

double
RetentionModel::failProbability(double pause_seconds, double temp_c) const
{
    if (pause_seconds <= 0.0)
        return 0.0;
    const double t = effectivePause(pause_seconds, temp_c);
    const double z =
        (std::log(t) - config_.logMedianRetention) / config_.logSigma;
    return normalCdf(z);
}

double
RetentionModel::cellRetentionSeconds(std::uint64_t seed,
                                     std::uint64_t cell_id) const
{
    // Deterministic uniform in (0,1) from (seed, cell_id), then invert
    // the log-normal CDF.
    const std::uint64_t h = mix64(mix64(seed ^ 0x2545f4914f6cdd1dULL) ^
                                  mix64(cell_id + 0x9e3779b97f4a7c15ULL));
    double u = ((double)(h >> 11) + 0.5) * 0x1.0p-53;
    const double z = normalQuantile(u);
    return std::exp(config_.logMedianRetention + config_.logSigma * z);
}

bool
RetentionModel::cellFails(std::uint64_t seed, std::uint64_t cell_id,
                          double pause_seconds, double temp_c) const
{
    if (pause_seconds <= 0.0)
        return false;
    return cellRetentionSeconds(seed, cell_id) <
           effectivePause(pause_seconds, temp_c);
}

double
RetentionModel::pauseForBitErrorRate(double target_ber,
                                     double temp_c) const
{
    BEER_ASSERT(target_ber > 0.0 && target_ber < 1.0);
    const double z = normalQuantile(target_ber);
    const double log_t = config_.logMedianRetention + config_.logSigma * z;
    const double exponent =
        (temp_c - config_.refTempC) / config_.retentionHalvingCelsius;
    return std::exp(log_t) / std::exp2(exponent);
}

} // namespace beer::dram
