/**
 * @file
 * Data-retention error model.
 *
 * Each DRAM cell retains charge for a cell-specific retention time; a
 * CHARGED cell decays (and its stored bit flips) when the time since
 * its last refresh exceeds that retention time. Following the DRAM
 * retention literature the paper builds on (Hamamoto+, Liu+, Patel+),
 * the model uses:
 *
 *  - a log-normal tail for per-cell retention times, which yields the
 *    uniform-random spatial error distribution BEER relies on;
 *  - exponential (Arrhenius-style) temperature acceleration, with
 *    retention halving every retentionHalvingCelsius degrees.
 *
 * Default parameters are calibrated to the operating points the paper
 * reports for its LPDDR4 chips: BER ~1e-7 at a 2-minute refresh window
 * and ~1e-3 at 22 minutes, both at 80C (Section 5.1.3).
 */

#ifndef BEER_DRAM_RETENTION_HH
#define BEER_DRAM_RETENTION_HH

#include <cstdint>

namespace beer::dram
{

/** Log-normal retention-time model with temperature acceleration. */
class RetentionModel
{
  public:
    struct Config
    {
        /** Log-normal mu of retention time (log-seconds) at refTempC. */
        double logMedianRetention = 10.698;
        /** Log-normal sigma (log-seconds). */
        double logSigma = 1.137;
        /** Reference temperature for the parameters above. */
        double refTempC = 80.0;
        /** Retention time halves every this many degrees C. */
        double retentionHalvingCelsius = 10.0;
    };

    RetentionModel() : RetentionModel(Config{}) {}
    explicit RetentionModel(const Config &config);

    /**
     * Probability that a CHARGED cell decays within @p pause_seconds at
     * @p temp_c — the raw bit error rate of CHARGED cells.
     */
    double failProbability(double pause_seconds, double temp_c) const;

    /**
     * Whether the cell with stable identifier @p cell_id fails after
     * @p pause_seconds at @p temp_c.
     *
     * The per-cell retention time is derived deterministically from
     * (seed, cell_id), so repeated tests of the same cell at the same
     * conditions give identical outcomes — the repeatability property
     * the paper's experiments depend on — without storing per-cell
     * state.
     */
    bool cellFails(std::uint64_t seed, std::uint64_t cell_id,
                   double pause_seconds, double temp_c) const;

    /** Deterministic per-cell retention time (seconds at refTempC). */
    double cellRetentionSeconds(std::uint64_t seed,
                                std::uint64_t cell_id) const;

    /**
     * Refresh-window (seconds at @p temp_c) that produces raw bit error
     * rate @p target_ber in CHARGED cells; inverse of
     * failProbability().
     */
    double pauseForBitErrorRate(double target_ber, double temp_c) const;

    const Config &config() const { return config_; }

  private:
    /** Pause time scaled to an equivalent duration at refTempC. */
    double effectivePause(double pause_seconds, double temp_c) const;

    Config config_;
};

} // namespace beer::dram

#endif // BEER_DRAM_RETENTION_HH
