#include "dram/trace.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/checksum.hh"
#include "util/logging.hh"

namespace beer::dram
{

using gf2::BitVec;

std::string
formatTraceDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

const char *
traceFormatName(TraceFormat format)
{
    return format == TraceFormat::V1 ? "v1" : "v2";
}

std::optional<TraceFormat>
parseTraceFormat(const std::string &text)
{
    if (text == "v1" || text == "1")
        return TraceFormat::V1;
    if (text == "v2" || text == "2")
        return TraceFormat::V2;
    return std::nullopt;
}

namespace
{

// ---- v2 binary layout (see trace.hh file comment) ---------------------

constexpr char kMagic[8] = {'B', 'E', 'E', 'R', 'T', 'R', 'C', '2'};
constexpr std::size_t kHeaderBytes = 32;

constexpr std::uint32_t kRecMeta = 1;
constexpr std::uint32_t kRecWordSet = 2;
constexpr std::uint32_t kRecWriteBroadcast = 3;
constexpr std::uint32_t kRecReadBatch = 4;
constexpr std::uint32_t kRecWriteWord = 5;
constexpr std::uint32_t kRecReadWord = 6;
constexpr std::uint32_t kRecWriteByte = 7;
constexpr std::uint32_t kRecReadByte = 8;
constexpr std::uint32_t kRecFill = 9;
constexpr std::uint32_t kRecPause = 10;

constexpr std::uint32_t kFrameRaw = 0;
constexpr std::uint32_t kFrameSparse = 1;

std::size_t
roundUp8(std::size_t n)
{
    return (n + 7) & ~std::size_t{7};
}

std::uint32_t
ld32(const std::uint8_t *at)
{
    std::uint32_t v;
    std::memcpy(&v, at, sizeof v);
    return v;
}

void
append32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    const auto *p = reinterpret_cast<const std::uint8_t *>(&v);
    out.insert(out.end(), p, p + sizeof v);
}

void
append64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    const auto *p = reinterpret_cast<const std::uint8_t *>(&v);
    out.insert(out.end(), p, p + sizeof v);
}

void
appendDouble(std::vector<std::uint8_t> &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    append64(out, bits);
}

/** uint64s holding @p bits bits. */
std::size_t
wordsFor(std::size_t bits)
{
    return (bits + 63) / 64;
}

/** Mask of the valid bits in the last lane word of a count-bit row. */
std::uint64_t
tailMask(std::size_t count)
{
    const std::size_t rem = count % 64;
    return rem == 0 ? ~std::uint64_t{0}
                    : (~std::uint64_t{0} >> (64 - rem));
}

/** BitVec of @p k bits from packed uint64s, tail bits forced clear. */
BitVec
bitvecFromWords(const std::uint64_t *src, std::size_t k)
{
    BitVec v(k);
    const std::size_t n = wordsFor(k);
    std::memcpy(v.words(), src, n * sizeof(std::uint64_t));
    v.words()[n - 1] &= tailMask(k);
    return v;
}

/** Dataword of batch element @p t gathered from a bit-plane frame. */
BitVec
gatherElement(const TraceRecord &rec, std::size_t t, std::size_t k)
{
    BitVec v(k);
    const std::uint64_t mask = std::uint64_t{1} << (t % 64);
    const std::size_t lane = t / 64;
    for (std::size_t pos = 0; pos < k; ++pos)
        if (rec.frame[pos * rec.laneWords + lane] & mask)
            v.set(pos, true);
    return v;
}

// ---- divergence diagnostics -------------------------------------------

std::string
describeWordOp(const char *name, std::size_t word, const BitVec &data)
{
    return std::string(name) + "(word " + std::to_string(word) +
           ", data " + data.toString() + ")";
}

/** Human description of one recorded element for divergence messages. */
std::string
describeRecordElement(const TraceRecord &rec, std::size_t elem,
                      std::size_t k)
{
    switch (rec.kind) {
    case TraceRecord::Kind::WriteWord:
        return describeWordOp("writeDataword", rec.index, rec.data);
    case TraceRecord::Kind::ReadWord:
        return describeWordOp("readDataword", rec.index, rec.data);
    case TraceRecord::Kind::WriteBroadcast:
        return "writeDatawordsBroadcast element " +
               std::to_string(elem + 1) + "/" +
               std::to_string(rec.count) + " (word " +
               std::to_string(rec.words[elem]) + ", data " +
               rec.data.toString() + ")";
    case TraceRecord::Kind::ReadBatch:
        return "readDatawords element " + std::to_string(elem + 1) +
               "/" + std::to_string(rec.count) + " (word " +
               std::to_string(rec.words[elem]) + ", data " +
               gatherElement(rec, elem, k).toString() + ")";
    case TraceRecord::Kind::WriteByte:
        return "writeByte(addr " + std::to_string(rec.index) +
               ", value " + std::to_string(rec.byte) + ")";
    case TraceRecord::Kind::ReadByte:
        return "readByte(addr " + std::to_string(rec.index) + ") -> " +
               std::to_string(rec.byte);
    case TraceRecord::Kind::Fill:
        return "fill(" + std::to_string(rec.byte) + ")";
    case TraceRecord::Kind::Pause:
        return "pauseRefresh(" + formatTraceDouble(rec.seconds) + ", " +
               formatTraceDouble(rec.tempC) + ")";
    case TraceRecord::Kind::Meta:
        break;
    }
    return "meta";
}

} // anonymous namespace

// ---- TraceWriter ------------------------------------------------------

TraceWriter::TraceWriter(std::ostream &out, const AddressMap &map,
                         std::size_t k, const TraceWriteOptions &options)
    : out_(out), k_(k), options_(options)
{
    if (options_.format == TraceFormat::V1) {
        out_ << "beertrace 1\n"
             << "geom " << map.bytesPerWord << ' ' << map.wordsPerRegion
             << ' ' << map.bytesPerRow << ' ' << map.rows << '\n'
             << "k " << k_ << '\n';
        return;
    }
    if (map.bytesPerWord > 0xFFFFFFFFu ||
        map.wordsPerRegion > 0xFFFFFFFFu || map.bytesPerRow > 0xFFFFFFFFu ||
        map.rows > 0xFFFFFFFFu || k_ > 0xFFFFFFFFu)
        util::fatal("trace v2: geometry does not fit the 32-bit header");
    std::vector<std::uint8_t> header;
    header.insert(header.end(), kMagic, kMagic + sizeof kMagic);
    append32(header, (std::uint32_t)map.bytesPerWord);
    append32(header, (std::uint32_t)map.wordsPerRegion);
    append32(header, (std::uint32_t)map.bytesPerRow);
    append32(header, (std::uint32_t)map.rows);
    append32(header, (std::uint32_t)k_);
    append32(header, 0);
    out_.write(reinterpret_cast<const char *>(header.data()),
               (std::streamsize)header.size());
}

void
TraceWriter::emitRecord(std::uint32_t kind, const void *payload,
                        std::size_t payload_bytes)
{
    static const char pad[8] = {};
    const std::uint32_t head[2] = {kind, (std::uint32_t)payload_bytes};
    out_.write(reinterpret_cast<const char *>(head), sizeof head);
    out_.write(static_cast<const char *>(payload),
               (std::streamsize)payload_bytes);
    const std::size_t rem = payload_bytes % 8;
    if (rem != 0)
        out_.write(pad, (std::streamsize)(8 - rem));
}

std::uint64_t
TraceWriter::wordSetId(const std::size_t *words, std::size_t count)
{
    std::vector<std::uint64_t> key(words, words + count);
    auto it = wordSets_.find(key);
    if (it != wordSets_.end())
        return it->second;
    const std::uint64_t id = wordSets_.size();
    scratch_.clear();
    append64(scratch_, count);
    for (std::size_t i = 0; i < count; ++i)
        append64(scratch_, key[i]);
    emitRecord(kRecWordSet, scratch_.data(), scratch_.size());
    wordSets_.emplace(std::move(key), id);
    return id;
}

void
TraceWriter::emitWordPayload(std::uint32_t kind, std::uint64_t index,
                             const BitVec &data)
{
    scratch_.clear();
    append64(scratch_, index);
    for (std::size_t w = 0; w < wordsFor(k_); ++w)
        append64(scratch_, data.words()[w]);
    emitRecord(kind, scratch_.data(), scratch_.size());
}

void
TraceWriter::meta(const std::string &text)
{
    if (options_.format == TraceFormat::V1) {
        out_ << "meta " << text << '\n';
        return;
    }
    emitRecord(kRecMeta, text.data(), text.size());
}

void
TraceWriter::writeWord(std::size_t word, const BitVec &data)
{
    if (options_.format == TraceFormat::V1) {
        out_ << "w " << word << ' ' << data.toString() << '\n';
        return;
    }
    emitWordPayload(kRecWriteWord, word, data);
}

void
TraceWriter::readWord(std::size_t word, const BitVec &data)
{
    if (options_.format == TraceFormat::V1) {
        out_ << "r " << word << ' ' << data.toString() << '\n';
        return;
    }
    emitWordPayload(kRecReadWord, word, data);
}

void
TraceWriter::writeBroadcast(const std::size_t *words, std::size_t count,
                            const BitVec &data)
{
    if (options_.format == TraceFormat::V1) {
        const std::string bits = data.toString();
        for (std::size_t i = 0; i < count; ++i)
            out_ << "w " << words[i] << ' ' << bits << '\n';
        return;
    }
    const std::uint64_t set = wordSetId(words, count);
    scratch_.clear();
    append64(scratch_, set);
    for (std::size_t w = 0; w < wordsFor(k_); ++w)
        append64(scratch_, data.words()[w]);
    emitRecord(kRecWriteBroadcast, scratch_.data(), scratch_.size());
}

void
TraceWriter::readBatch(const std::size_t *words, std::size_t count,
                       const BitVec *results)
{
    if (options_.format == TraceFormat::V1) {
        for (std::size_t i = 0; i < count; ++i)
            out_ << "r " << words[i] << ' ' << results[i].toString()
                 << '\n';
        return;
    }
    // Transpose the datawords into a contiguous bit-plane frame; only
    // set bits cost work, so mostly-zero planes are nearly free.
    const std::size_t lane_words = wordsFor(count);
    std::vector<std::uint64_t> frame(k_ * lane_words, 0);
    for (std::size_t t = 0; t < count; ++t) {
        const std::uint64_t *src = results[t].words();
        const std::uint64_t bit = std::uint64_t{1} << (t % 64);
        const std::size_t lane = t / 64;
        for (std::size_t w = 0; w < wordsFor(k_); ++w) {
            std::uint64_t bits = src[w];
            while (bits != 0) {
                const std::size_t pos =
                    w * 64 + (std::size_t)__builtin_ctzll(bits);
                bits &= bits - 1;
                frame[pos * lane_words + lane] |= bit;
            }
        }
    }
    emitReadFrame(wordSetId(words, count), frame.data(), lane_words,
                  lane_words, count);
}

void
TraceWriter::readBatchPlanar(const std::size_t *words, std::size_t count,
                             const PlanarReadBatch &view)
{
    if (options_.format == TraceFormat::V1) {
        // Expand back to per-word result lines.
        std::string bits(k_, '0');
        for (std::size_t t = 0; t < count; ++t) {
            const std::uint64_t mask = std::uint64_t{1} << (t % 64);
            const std::size_t lane = t / 64;
            for (std::size_t pos = 0; pos < k_; ++pos)
                bits[pos] = (view.row(pos)[lane] & mask) ? '1' : '0';
            out_ << "r " << words[t] << ' ' << bits << '\n';
        }
        return;
    }
    emitReadFrame(wordSetId(words, count), view.rows, view.rowStride,
                  view.laneWords, count);
}

void
TraceWriter::emitReadFrame(std::uint64_t set_id,
                           const std::uint64_t *rows,
                           std::size_t row_stride, std::size_t lane_words,
                           std::size_t count)
{
    // The CRC and the raw encoding cover the contiguous frame.
    std::vector<std::uint64_t> packed;
    if (row_stride != lane_words) {
        packed.resize(k_ * lane_words);
        for (std::size_t pos = 0; pos < k_; ++pos)
            std::memcpy(packed.data() + pos * lane_words,
                        rows + pos * row_stride,
                        lane_words * sizeof(std::uint64_t));
        rows = packed.data();
    }
    const std::size_t frame_words = k_ * lane_words;
    const std::uint32_t crc =
        util::crc32(rows, frame_words * sizeof(std::uint64_t));

    // Sparse candidate: per-row majority fill + lane-word exceptions.
    std::vector<std::uint64_t> base(wordsFor(k_), 0);
    std::vector<std::uint64_t> exceptions; // (frameIndex, laneWord)
    const std::uint64_t tail = tailMask(count);
    for (std::size_t pos = 0; pos < k_; ++pos) {
        const std::uint64_t *row = rows + pos * lane_words;
        std::size_t ones = 0;
        for (std::size_t lw = 0; lw < lane_words; ++lw)
            ones += (std::size_t)__builtin_popcountll(row[lw]);
        const bool fill = ones * 2 > count;
        if (fill)
            base[pos / 64] |= std::uint64_t{1} << (pos % 64);
        const std::uint64_t full = fill ? ~std::uint64_t{0} : 0;
        for (std::size_t lw = 0; lw < lane_words; ++lw) {
            const std::uint64_t expect =
                lw + 1 == lane_words ? (full & tail) : full;
            if (row[lw] != expect) {
                exceptions.push_back(pos * lane_words + lw);
                exceptions.push_back(row[lw]);
            }
        }
    }

    const std::size_t raw_bytes = frame_words * sizeof(std::uint64_t);
    const std::size_t sparse_bytes =
        (base.size() + 1 + exceptions.size()) * sizeof(std::uint64_t);
    const bool sparse =
        options_.compressFrames && sparse_bytes < raw_bytes;

    scratch_.clear();
    append64(scratch_, set_id);
    append32(scratch_, sparse ? kFrameSparse : kFrameRaw);
    append32(scratch_, crc);
    if (sparse) {
        for (std::uint64_t w : base)
            append64(scratch_, w);
        append64(scratch_, exceptions.size() / 2);
        for (std::uint64_t w : exceptions)
            append64(scratch_, w);
    } else {
        const auto *p = reinterpret_cast<const std::uint8_t *>(rows);
        scratch_.insert(scratch_.end(), p, p + raw_bytes);
    }
    emitRecord(kRecReadBatch, scratch_.data(), scratch_.size());
}

void
TraceWriter::writeByte(std::size_t byte_addr, std::uint8_t value)
{
    if (options_.format == TraceFormat::V1) {
        out_ << "wb " << byte_addr << ' ' << (unsigned)value << '\n';
        return;
    }
    scratch_.clear();
    append64(scratch_, byte_addr);
    append64(scratch_, value);
    emitRecord(kRecWriteByte, scratch_.data(), scratch_.size());
}

void
TraceWriter::readByte(std::size_t byte_addr, std::uint8_t value)
{
    if (options_.format == TraceFormat::V1) {
        out_ << "rb " << byte_addr << ' ' << (unsigned)value << '\n';
        return;
    }
    scratch_.clear();
    append64(scratch_, byte_addr);
    append64(scratch_, value);
    emitRecord(kRecReadByte, scratch_.data(), scratch_.size());
}

void
TraceWriter::fill(std::uint8_t value)
{
    if (options_.format == TraceFormat::V1) {
        out_ << "f " << (unsigned)value << '\n';
        return;
    }
    scratch_.clear();
    append64(scratch_, value);
    emitRecord(kRecFill, scratch_.data(), scratch_.size());
}

void
TraceWriter::pause(double seconds, double temp_c)
{
    if (options_.format == TraceFormat::V1) {
        out_ << "p " << formatTraceDouble(seconds) << ' '
             << formatTraceDouble(temp_c) << '\n';
        return;
    }
    scratch_.clear();
    appendDouble(scratch_, seconds);
    appendDouble(scratch_, temp_c);
    emitRecord(kRecPause, scratch_.data(), scratch_.size());
}

// ---- TraceRecorder ----------------------------------------------------

TraceRecorder::TraceRecorder(MemoryInterface &inner, std::ostream &out)
    : TraceRecorder(inner, out, TraceWriteOptions{TraceFormat::V1, true})
{
}

TraceRecorder::TraceRecorder(MemoryInterface &inner, std::ostream &out,
                             const TraceWriteOptions &options)
    : inner_(inner),
      writer_(out, inner.addressMap(), inner.datawordBits(), options)
{
}

void
TraceRecorder::writeMeta(const std::string &text)
{
    writer_.meta(text);
}

const AddressMap &
TraceRecorder::addressMap() const
{
    return inner_.addressMap();
}

std::size_t
TraceRecorder::datawordBits() const
{
    return inner_.datawordBits();
}

void
TraceRecorder::writeDataword(std::size_t word_index, const BitVec &data)
{
    inner_.writeDataword(word_index, data);
    writer_.writeWord(word_index, data);
}

BitVec
TraceRecorder::readDataword(std::size_t word_index)
{
    BitVec data = inner_.readDataword(word_index);
    writer_.readWord(word_index, data);
    return data;
}

void
TraceRecorder::writeDatawordsBroadcast(const std::size_t *words,
                                       std::size_t count,
                                       const BitVec &data)
{
    inner_.writeDatawordsBroadcast(words, count, data);
    writer_.writeBroadcast(words, count, data);
}

void
TraceRecorder::readDatawords(const std::size_t *words, std::size_t count,
                             std::vector<BitVec> &out)
{
    inner_.readDatawords(words, count, out);
    writer_.readBatch(words, count, out.data());
}

bool
TraceRecorder::readDatawordsPlanar(const std::size_t *words,
                                   std::size_t count, PlanarReadBatch &out)
{
    if (!inner_.readDatawordsPlanar(words, count, out))
        return false;
    writer_.readBatchPlanar(words, count, out);
    return true;
}

void
TraceRecorder::writeByte(std::size_t byte_addr, std::uint8_t value)
{
    inner_.writeByte(byte_addr, value);
    writer_.writeByte(byte_addr, value);
}

std::uint8_t
TraceRecorder::readByte(std::size_t byte_addr)
{
    const std::uint8_t value = inner_.readByte(byte_addr);
    writer_.readByte(byte_addr, value);
    return value;
}

void
TraceRecorder::fill(std::uint8_t value)
{
    inner_.fill(value);
    writer_.fill(value);
}

void
TraceRecorder::pauseRefresh(double seconds, double temp_c)
{
    inner_.pauseRefresh(seconds, temp_c);
    writer_.pause(seconds, temp_c);
}

// ---- TraceReplayBackend: parsing --------------------------------------

TraceReplayBackend::TraceReplayBackend(std::istream &in)
{
    loadStream(in);
}

TraceReplayBackend::TraceReplayBackend(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        util::fatal("cannot open trace file '%s'", path.c_str());
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        util::fatal("cannot stat trace file '%s'", path.c_str());
    }
    const std::size_t len = (std::size_t)st.st_size;
    char magic[8] = {};
    const bool v2 = len >= sizeof magic &&
                    ::pread(fd, magic, sizeof magic, 0) ==
                        (ssize_t)sizeof magic &&
                    std::memcmp(magic, kMagic, sizeof magic) == 0;
    if (!v2) {
        ::close(fd);
        std::ifstream in(path);
        if (!in)
            util::fatal("cannot open trace file '%s'", path.c_str());
        parseText(in);
        return;
    }
    void *base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED)
        util::fatal("cannot mmap trace file '%s'", path.c_str());
    mapBase_ = base;
    mapLen_ = len;
    parseBinary(static_cast<const std::uint8_t *>(base), len);
}

TraceReplayBackend::~TraceReplayBackend()
{
    if (mapBase_ != nullptr)
        ::munmap(mapBase_, mapLen_);
}

void
TraceReplayBackend::loadStream(std::istream &in)
{
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (bytes.size() >= sizeof kMagic &&
        std::memcmp(bytes.data(), kMagic, sizeof kMagic) == 0) {
        // Copy into uint64 storage so payloads are 8-byte aligned.
        buffer_.resize((bytes.size() + 7) / 8, 0);
        std::memcpy(buffer_.data(), bytes.data(), bytes.size());
        parseBinary(reinterpret_cast<const std::uint8_t *>(
                        buffer_.data()),
                    bytes.size());
        return;
    }
    std::istringstream text(bytes);
    parseText(text);
}

void
TraceReplayBackend::parseText(std::istream &in)
{
    format_ = TraceFormat::V1;

    std::string line;
    std::size_t line_no = 0;
    bool saw_version = false;
    bool saw_geom = false;
    bool saw_k = false;

    // Consecutive same-data `w` lines and consecutive `r` lines group
    // into one batch record, so v1 traces replay through the same
    // batched paths as v2 (grouping is invisible to the element-level
    // matching contract).
    enum class Run
    {
        None,
        Write,
        Read,
    };
    Run run = Run::None;
    std::size_t run_line = 0;
    std::vector<std::uint64_t> run_words;
    BitVec run_data;
    std::vector<BitVec> run_results;

    auto flushRun = [&] {
        if (run == Run::None)
            return;
        if (run_words.size() == 1) {
            TraceRecord rec;
            rec.kind = run == Run::Write ? TraceRecord::Kind::WriteWord
                                         : TraceRecord::Kind::ReadWord;
            rec.line = run_line;
            rec.index = (std::size_t)run_words[0];
            rec.data = run == Run::Write ? std::move(run_data)
                                         : std::move(run_results[0]);
            stream_.push_back(std::move(rec));
        } else {
            owned_.push_back(run_words);
            TraceRecord rec;
            rec.line = run_line;
            rec.words = owned_.back().data();
            rec.count = run_words.size();
            if (run == Run::Write) {
                rec.kind = TraceRecord::Kind::WriteBroadcast;
                rec.data = std::move(run_data);
            } else {
                rec.kind = TraceRecord::Kind::ReadBatch;
                rec.laneWords = wordsFor(rec.count);
                std::vector<std::uint64_t> frame(k_ * rec.laneWords, 0);
                for (std::size_t t = 0; t < rec.count; ++t) {
                    const std::uint64_t *src = run_results[t].words();
                    const std::uint64_t bit = std::uint64_t{1}
                                              << (t % 64);
                    const std::size_t lane = t / 64;
                    for (std::size_t w = 0; w < wordsFor(k_); ++w) {
                        std::uint64_t bits = src[w];
                        while (bits != 0) {
                            const std::size_t pos =
                                w * 64 +
                                (std::size_t)__builtin_ctzll(bits);
                            bits &= bits - 1;
                            frame[pos * rec.laneWords + lane] |= bit;
                        }
                    }
                }
                owned_.push_back(std::move(frame));
                rec.frame = owned_.back().data();
            }
            stream_.push_back(std::move(rec));
        }
        run = Run::None;
        run_words.clear();
        run_results.clear();
    };

    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;

        std::istringstream fields(line);
        std::string op;
        fields >> op;

        auto want = [&](bool ok) {
            if (!ok || fields.fail())
                util::fatal("trace line %zu: malformed '%s' record",
                            line_no, op.c_str());
        };

        if (op == "w" || op == "r") {
            std::size_t index = 0;
            std::string bits;
            fields >> index >> bits;
            want(saw_k && bits.size() == k_);
            BitVec data = BitVec::fromString(bits);
            if (op == "w") {
                if (run != Run::Write || !(run_data == data))
                    flushRun();
                if (run == Run::None) {
                    run = Run::Write;
                    run_line = line_no;
                    run_data = std::move(data);
                }
                run_words.push_back(index);
            } else {
                if (run != Run::Read)
                    flushRun();
                if (run == Run::None) {
                    run = Run::Read;
                    run_line = line_no;
                }
                run_words.push_back(index);
                run_results.push_back(std::move(data));
            }
            continue;
        }

        flushRun();

        if (op == "beertrace") {
            int version = 0;
            fields >> version;
            want(version == 1);
            saw_version = true;
        } else if (op == "geom") {
            fields >> map_.bytesPerWord >> map_.wordsPerRegion >>
                map_.bytesPerRow >> map_.rows;
            want(true);
            saw_geom = true;
        } else if (op == "k") {
            fields >> k_;
            want(k_ > 0);
            saw_k = true;
        } else if (op == "meta") {
            std::string rest;
            std::getline(fields, rest);
            if (!rest.empty() && rest[0] == ' ')
                rest.erase(0, 1);
            TraceRecord rec;
            rec.kind = TraceRecord::Kind::Meta;
            rec.line = line_no;
            rec.metaIndex = meta_.size();
            meta_.push_back(std::move(rest));
            stream_.push_back(std::move(rec));
        } else if (op == "wb" || op == "rb") {
            TraceRecord rec;
            rec.kind = op == "wb" ? TraceRecord::Kind::WriteByte
                                  : TraceRecord::Kind::ReadByte;
            rec.line = line_no;
            unsigned value = 0;
            fields >> rec.index >> value;
            want(value <= 0xFF);
            rec.byte = (std::uint8_t)value;
            stream_.push_back(std::move(rec));
        } else if (op == "f") {
            TraceRecord rec;
            rec.kind = TraceRecord::Kind::Fill;
            rec.line = line_no;
            unsigned value = 0;
            fields >> value;
            want(value <= 0xFF);
            rec.byte = (std::uint8_t)value;
            stream_.push_back(std::move(rec));
        } else if (op == "p") {
            TraceRecord rec;
            rec.kind = TraceRecord::Kind::Pause;
            rec.line = line_no;
            fields >> rec.seconds >> rec.tempC;
            want(true);
            stream_.push_back(std::move(rec));
        } else {
            util::fatal("trace line %zu: unknown record '%s'", line_no,
                        op.c_str());
        }
    }
    flushRun();

    if (!saw_version || !saw_geom || !saw_k)
        util::fatal("trace is missing its beertrace/geom/k header");
    map_.validate();

    for (const TraceRecord &rec : stream_)
        totalElements_ += rec.elements();
}

void
TraceReplayBackend::parseBinary(const std::uint8_t *data, std::size_t len)
{
    format_ = TraceFormat::V2;
    if (len < kHeaderBytes ||
        std::memcmp(data, kMagic, sizeof kMagic) != 0)
        util::fatal("trace v2: truncated or missing header");
    map_.bytesPerWord = ld32(data + 8);
    map_.wordsPerRegion = ld32(data + 12);
    map_.bytesPerRow = ld32(data + 16);
    map_.rows = ld32(data + 20);
    k_ = ld32(data + 24);
    if (k_ == 0)
        util::fatal("trace v2: header has k = 0");
    map_.validate();
    const std::size_t data_words = wordsFor(k_);

    // Word sets referenced by later batch records, in file order.
    std::vector<std::pair<const std::uint64_t *, std::size_t>> sets;

    std::size_t offset = kHeaderBytes;
    std::size_t record_no = 0;
    while (offset < len) {
        ++record_no;
        if (offset + 8 > len)
            util::fatal("trace v2: truncated header of record %zu",
                        record_no);
        const std::uint32_t kind = ld32(data + offset);
        const std::size_t payload_bytes = ld32(data + offset + 4);
        const std::uint8_t *payload = data + offset + 8;
        const std::size_t next = offset + 8 + roundUp8(payload_bytes);
        if (next < offset || next > len)
            util::fatal("trace v2: record %zu overruns the file "
                        "(truncated trace?)",
                        record_no);

        auto want = [&](bool ok) {
            if (!ok)
                util::fatal("trace v2: malformed record %zu (kind %u)",
                            record_no, kind);
        };
        // Payloads are 8-aligned: the header is 32 bytes and every
        // record is padded, so uint64 views of the mmap are safe.
        const auto *p64 =
            reinterpret_cast<const std::uint64_t *>(payload);

        TraceRecord rec;
        rec.line = record_no;
        switch (kind) {
        case kRecMeta: {
            rec.kind = TraceRecord::Kind::Meta;
            rec.metaIndex = meta_.size();
            meta_.emplace_back(reinterpret_cast<const char *>(payload),
                               payload_bytes);
            break;
        }
        case kRecWordSet: {
            want(payload_bytes >= 8);
            const std::uint64_t count = p64[0];
            want(payload_bytes == 8 + count * 8);
            sets.emplace_back(p64 + 1, (std::size_t)count);
            offset = next;
            continue; // not an operation record
        }
        case kRecWriteBroadcast: {
            want(payload_bytes == 8 + data_words * 8);
            const std::uint64_t set = p64[0];
            want(set < sets.size());
            rec.kind = TraceRecord::Kind::WriteBroadcast;
            rec.words = sets[set].first;
            rec.count = sets[set].second;
            rec.data = bitvecFromWords(p64 + 1, k_);
            break;
        }
        case kRecReadBatch: {
            want(payload_bytes >= 16);
            const std::uint64_t set = p64[0];
            want(set < sets.size());
            const std::uint32_t encoding = ld32(payload + 8);
            const std::uint32_t crc = ld32(payload + 12);
            rec.kind = TraceRecord::Kind::ReadBatch;
            rec.words = sets[set].first;
            rec.count = sets[set].second;
            rec.laneWords = wordsFor(rec.count);
            const std::size_t frame_words = k_ * rec.laneWords;
            if (encoding == kFrameRaw) {
                want(payload_bytes == 16 + frame_words * 8);
                rec.frame = p64 + 2; // zero-copy out of the mmap
            } else if (encoding == kFrameSparse) {
                want(payload_bytes >= 16 + data_words * 8 + 8);
                const std::uint64_t *base = p64 + 2;
                const std::uint64_t ex_count = base[data_words];
                want(payload_bytes ==
                     16 + data_words * 8 + 8 + ex_count * 16);
                const std::uint64_t *pairs = base + data_words + 1;
                std::vector<std::uint64_t> frame(frame_words);
                const std::uint64_t tail = tailMask(rec.count);
                for (std::size_t pos = 0; pos < k_; ++pos) {
                    const bool fill = (base[pos / 64] >> (pos % 64)) & 1;
                    const std::uint64_t full =
                        fill ? ~std::uint64_t{0} : 0;
                    std::uint64_t *row =
                        frame.data() + pos * rec.laneWords;
                    for (std::size_t lw = 0; lw < rec.laneWords; ++lw)
                        row[lw] = lw + 1 == rec.laneWords
                                      ? (full & tail)
                                      : full;
                }
                for (std::uint64_t e = 0; e < ex_count; ++e) {
                    const std::uint64_t idx = pairs[e * 2];
                    want(idx < frame_words);
                    frame[idx] = pairs[e * 2 + 1];
                }
                owned_.push_back(std::move(frame));
                rec.frame = owned_.back().data();
            } else {
                want(false);
            }
            if (util::crc32(rec.frame, frame_words * 8) != crc)
                util::fatal("trace v2: read-frame CRC mismatch in "
                            "record %zu (corrupted trace?)",
                            record_no);
            break;
        }
        case kRecWriteWord:
        case kRecReadWord: {
            want(payload_bytes == 8 + data_words * 8);
            rec.kind = kind == kRecWriteWord
                           ? TraceRecord::Kind::WriteWord
                           : TraceRecord::Kind::ReadWord;
            rec.index = (std::size_t)p64[0];
            rec.data = bitvecFromWords(p64 + 1, k_);
            break;
        }
        case kRecWriteByte:
        case kRecReadByte: {
            want(payload_bytes == 16 && p64[1] <= 0xFF);
            rec.kind = kind == kRecWriteByte
                           ? TraceRecord::Kind::WriteByte
                           : TraceRecord::Kind::ReadByte;
            rec.index = (std::size_t)p64[0];
            rec.byte = (std::uint8_t)p64[1];
            break;
        }
        case kRecFill: {
            want(payload_bytes == 8 && p64[0] <= 0xFF);
            rec.kind = TraceRecord::Kind::Fill;
            rec.byte = (std::uint8_t)p64[0];
            break;
        }
        case kRecPause: {
            want(payload_bytes == 16);
            rec.kind = TraceRecord::Kind::Pause;
            std::memcpy(&rec.seconds, payload, 8);
            std::memcpy(&rec.tempC, payload + 8, 8);
            break;
        }
        default:
            util::fatal("trace v2: unknown record kind %u at record %zu",
                        kind, record_no);
        }
        stream_.push_back(std::move(rec));
        offset = next;
    }

    for (const TraceRecord &rec : stream_)
        totalElements_ += rec.elements();
}

// ---- TraceReplayBackend: replay ---------------------------------------

const TraceRecord &
TraceReplayBackend::current(const char *requested)
{
    while (rec_ < stream_.size() &&
           stream_[rec_].kind == TraceRecord::Kind::Meta)
        ++rec_;
    if (rec_ >= stream_.size())
        util::fatal("trace replay: %s requested but the trace is "
                    "exhausted after %zu operations",
                    requested, totalElements_);
    return stream_[rec_];
}

void
TraceReplayBackend::consumeElement()
{
    ++consumedElements_;
    if (++elem_ >= stream_[rec_].elements()) {
        ++rec_;
        elem_ = 0;
    }
}

void
TraceReplayBackend::consumeRecord()
{
    consumedElements_ += stream_[rec_].elements() - elem_;
    ++rec_;
    elem_ = 0;
}

void
TraceReplayBackend::diverge(const std::string &requested,
                            const TraceRecord &rec)
{
    const char *unit = format_ == TraceFormat::V1 ? "line" : "record";
    util::fatal("trace replay diverged at %s %zu: requested %s, but the "
                "trace records %s",
                unit, rec.line, requested.c_str(),
                describeRecordElement(rec, elem_, k_).c_str());
}

void
TraceReplayBackend::writeDataword(std::size_t word_index,
                                  const BitVec &data)
{
    const TraceRecord &rec = current("writeDataword");
    if (rec.kind == TraceRecord::Kind::WriteWord) {
        if (rec.index == word_index && rec.data == data) {
            consumeElement();
            return;
        }
    } else if (rec.kind == TraceRecord::Kind::WriteBroadcast) {
        if (rec.words[elem_] == word_index && rec.data == data) {
            consumeElement();
            return;
        }
    }
    diverge(describeWordOp("writeDataword", word_index, data), rec);
}

BitVec
TraceReplayBackend::readDataword(std::size_t word_index)
{
    const TraceRecord &rec = current("readDataword");
    if (rec.kind == TraceRecord::Kind::ReadWord &&
        rec.index == word_index) {
        BitVec data = rec.data;
        consumeElement();
        return data;
    }
    if (rec.kind == TraceRecord::Kind::ReadBatch &&
        rec.words[elem_] == word_index) {
        BitVec data = gatherElement(rec, elem_, k_);
        consumeElement();
        return data;
    }
    diverge("readDataword(word " + std::to_string(word_index) + ")",
            rec);
}

void
TraceReplayBackend::writeDatawordsBroadcast(const std::size_t *words,
                                            std::size_t count,
                                            const BitVec &data)
{
    if (count == 0)
        return;
    const TraceRecord &rec = current("writeDatawordsBroadcast");
    if (rec.kind == TraceRecord::Kind::WriteBroadcast && elem_ == 0 &&
        rec.count == count && rec.data == data) {
        bool match = true;
        for (std::size_t i = 0; i < count; ++i)
            if (rec.words[i] != words[i]) {
                match = false;
                break;
            }
        if (match) {
            consumeRecord();
            return;
        }
    }
    // Any other alignment (scalar records, a differently-split batch,
    // or a true divergence) replays element by element; writeDataword
    // raises the diagnostic on the first mismatching element.
    for (std::size_t i = 0; i < count; ++i)
        writeDataword(words[i], data);
}

void
TraceReplayBackend::readDatawords(const std::size_t *words,
                                  std::size_t count,
                                  std::vector<BitVec> &out)
{
    out.clear();
    out.reserve(count);
    if (count == 0)
        return;
    const TraceRecord &rec = current("readDatawords");
    if (rec.kind == TraceRecord::Kind::ReadBatch && elem_ == 0 &&
        rec.count == count) {
        bool match = true;
        for (std::size_t i = 0; i < count; ++i)
            if (rec.words[i] != words[i]) {
                match = false;
                break;
            }
        if (match) {
            // Scatter only the set bits of each plane (errors are
            // sparse, so most lane words are skipped whole).
            out.assign(count, BitVec(k_));
            for (std::size_t pos = 0; pos < k_; ++pos) {
                const std::uint64_t *row =
                    rec.frame + pos * rec.laneWords;
                for (std::size_t lw = 0; lw < rec.laneWords; ++lw) {
                    std::uint64_t bits = row[lw];
                    while (bits != 0) {
                        const std::size_t t =
                            lw * 64 +
                            (std::size_t)__builtin_ctzll(bits);
                        bits &= bits - 1;
                        out[t].set(pos, true);
                    }
                }
            }
            consumeRecord();
            return;
        }
    }
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(readDataword(words[i]));
}

bool
TraceReplayBackend::readDatawordsPlanar(const std::size_t *words,
                                        std::size_t count,
                                        PlanarReadBatch &out)
{
    if (count == 0)
        return false;
    // Peek without committing: a decline must have no side effects.
    std::size_t r = rec_;
    while (r < stream_.size() &&
           stream_[r].kind == TraceRecord::Kind::Meta)
        ++r;
    if (r >= stream_.size())
        return false;
    const TraceRecord &rec = stream_[r];
    if (rec.kind != TraceRecord::Kind::ReadBatch || elem_ != 0 ||
        rec.count != count)
        return false;
    for (std::size_t i = 0; i < count; ++i)
        if (rec.words[i] != words[i])
            return false;
    out.rows = rec.frame;
    out.rowStride = rec.laneWords;
    out.laneWords = rec.laneWords;
    out.count = count;
    rec_ = r;
    consumeRecord();
    return true;
}

void
TraceReplayBackend::writeByte(std::size_t byte_addr, std::uint8_t value)
{
    const TraceRecord &rec = current("writeByte");
    if (rec.kind == TraceRecord::Kind::WriteByte &&
        rec.index == byte_addr && rec.byte == value) {
        consumeElement();
        return;
    }
    diverge("writeByte(addr " + std::to_string(byte_addr) + ", value " +
                std::to_string(value) + ")",
            rec);
}

std::uint8_t
TraceReplayBackend::readByte(std::size_t byte_addr)
{
    const TraceRecord &rec = current("readByte");
    if (rec.kind == TraceRecord::Kind::ReadByte &&
        rec.index == byte_addr) {
        const std::uint8_t value = rec.byte;
        consumeElement();
        return value;
    }
    diverge("readByte(addr " + std::to_string(byte_addr) + ")", rec);
}

void
TraceReplayBackend::fill(std::uint8_t value)
{
    const TraceRecord &rec = current("fill");
    if (rec.kind == TraceRecord::Kind::Fill && rec.byte == value) {
        consumeElement();
        return;
    }
    diverge("fill(" + std::to_string(value) + ")", rec);
}

void
TraceReplayBackend::pauseRefresh(double seconds, double temp_c)
{
    const TraceRecord &rec = current("pauseRefresh");
    if (rec.kind == TraceRecord::Kind::Pause && rec.seconds == seconds &&
        rec.tempC == temp_c) {
        consumeElement();
        return;
    }
    diverge("pauseRefresh(" + formatTraceDouble(seconds) + ", " +
                formatTraceDouble(temp_c) + ")",
            rec);
}

// ---- sniffing and conversion ------------------------------------------

std::optional<TraceFormat>
tryTraceFileFormat(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    char magic[8] = {};
    in.read(magic, sizeof magic);
    if (in.gcount() == (std::streamsize)sizeof magic &&
        std::memcmp(magic, kMagic, sizeof magic) == 0)
        return TraceFormat::V2;
    in.clear();
    in.seekg(0);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        std::string word;
        int version = 0;
        fields >> word >> version;
        if (word == "beertrace" && version == 1)
            return TraceFormat::V1;
        return std::nullopt;
    }
    return std::nullopt;
}

TraceConvertStats
convertTraceFile(const std::string &in_path, const std::string &out_path,
                 const TraceWriteOptions &options)
{
    TraceReplayBackend in(in_path);

    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out)
        util::fatal("cannot open trace output file '%s'",
                    out_path.c_str());
    TraceWriter writer(out, in.addressMap(), in.datawordBits(), options);

    std::vector<std::size_t> words;
    for (const TraceRecord &rec : in.records()) {
        switch (rec.kind) {
        case TraceRecord::Kind::Meta:
            writer.meta(in.metaLines()[rec.metaIndex]);
            break;
        case TraceRecord::Kind::WriteWord:
            writer.writeWord(rec.index, rec.data);
            break;
        case TraceRecord::Kind::ReadWord:
            writer.readWord(rec.index, rec.data);
            break;
        case TraceRecord::Kind::WriteBroadcast:
            words.assign(rec.words, rec.words + rec.count);
            writer.writeBroadcast(words.data(), rec.count, rec.data);
            break;
        case TraceRecord::Kind::ReadBatch: {
            words.assign(rec.words, rec.words + rec.count);
            PlanarReadBatch view;
            view.rows = rec.frame;
            view.rowStride = rec.laneWords;
            view.laneWords = rec.laneWords;
            view.count = rec.count;
            writer.readBatchPlanar(words.data(), rec.count, view);
            break;
        }
        case TraceRecord::Kind::WriteByte:
            writer.writeByte(rec.index, rec.byte);
            break;
        case TraceRecord::Kind::ReadByte:
            writer.readByte(rec.index, rec.byte);
            break;
        case TraceRecord::Kind::Fill:
            writer.fill(rec.byte);
            break;
        case TraceRecord::Kind::Pause:
            writer.pause(rec.seconds, rec.tempC);
            break;
        }
    }
    const std::streampos written = out.tellp();
    out.flush();
    if (!out)
        util::fatal("failed writing trace output file '%s'",
                    out_path.c_str());

    TraceConvertStats stats;
    stats.from = in.format();
    stats.to = options.format;
    stats.ops = in.totalOps();
    struct stat st = {};
    if (::stat(in_path.c_str(), &st) == 0)
        stats.bytesIn = (std::uintmax_t)st.st_size;
    stats.bytesOut = (std::uintmax_t)written;
    return stats;
}

} // namespace beer::dram
