#include "dram/trace.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace beer::dram
{

using gf2::BitVec;

std::string
formatTraceDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

// ---- TraceRecorder ----------------------------------------------------

TraceRecorder::TraceRecorder(MemoryInterface &inner, std::ostream &out)
    : inner_(inner), out_(out)
{
    const AddressMap &map = inner_.addressMap();
    out_ << "beertrace 1\n"
         << "geom " << map.bytesPerWord << ' ' << map.wordsPerRegion
         << ' ' << map.bytesPerRow << ' ' << map.rows << '\n'
         << "k " << inner_.datawordBits() << '\n';
}

void
TraceRecorder::writeMeta(const std::string &text)
{
    out_ << "meta " << text << '\n';
}

const AddressMap &
TraceRecorder::addressMap() const
{
    return inner_.addressMap();
}

std::size_t
TraceRecorder::datawordBits() const
{
    return inner_.datawordBits();
}

void
TraceRecorder::writeDataword(std::size_t word_index, const BitVec &data)
{
    inner_.writeDataword(word_index, data);
    out_ << "w " << word_index << ' ' << data.toString() << '\n';
}

BitVec
TraceRecorder::readDataword(std::size_t word_index)
{
    BitVec data = inner_.readDataword(word_index);
    out_ << "r " << word_index << ' ' << data.toString() << '\n';
    return data;
}

void
TraceRecorder::writeByte(std::size_t byte_addr, std::uint8_t value)
{
    inner_.writeByte(byte_addr, value);
    out_ << "wb " << byte_addr << ' ' << (unsigned)value << '\n';
}

std::uint8_t
TraceRecorder::readByte(std::size_t byte_addr)
{
    const std::uint8_t value = inner_.readByte(byte_addr);
    out_ << "rb " << byte_addr << ' ' << (unsigned)value << '\n';
    return value;
}

void
TraceRecorder::fill(std::uint8_t value)
{
    inner_.fill(value);
    out_ << "f " << (unsigned)value << '\n';
}

void
TraceRecorder::pauseRefresh(double seconds, double temp_c)
{
    inner_.pauseRefresh(seconds, temp_c);
    out_ << "p " << formatTraceDouble(seconds) << ' '
         << formatTraceDouble(temp_c) << '\n';
}

// ---- TraceReplayBackend -----------------------------------------------

TraceReplayBackend::TraceReplayBackend(std::istream &in)
{
    parse(in);
}

TraceReplayBackend::TraceReplayBackend(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("cannot open trace file '%s'", path.c_str());
    parse(in);
}

void
TraceReplayBackend::parse(std::istream &in)
{
    std::string line;
    std::size_t line_no = 0;
    bool saw_version = false;
    bool saw_geom = false;
    bool saw_k = false;

    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;

        std::istringstream fields(line);
        std::string op;
        fields >> op;

        auto want = [&](bool ok) {
            if (!ok || fields.fail())
                util::fatal("trace line %zu: malformed '%s' record",
                            line_no, op.c_str());
        };

        if (op == "beertrace") {
            int version = 0;
            fields >> version;
            want(version == 1);
            saw_version = true;
        } else if (op == "geom") {
            fields >> map_.bytesPerWord >> map_.wordsPerRegion >>
                map_.bytesPerRow >> map_.rows;
            want(true);
            saw_geom = true;
        } else if (op == "k") {
            fields >> k_;
            want(k_ > 0);
            saw_k = true;
        } else if (op == "meta") {
            std::string rest;
            std::getline(fields, rest);
            if (!rest.empty() && rest[0] == ' ')
                rest.erase(0, 1);
            meta_.push_back(rest);
        } else if (op == "w" || op == "r") {
            TraceOp rec;
            rec.kind = op == "w" ? TraceOp::Kind::WriteWord
                                 : TraceOp::Kind::ReadWord;
            rec.line = line_no;
            std::string bits;
            fields >> rec.index >> bits;
            want(bits.size() == k_);
            rec.data = BitVec::fromString(bits);
            ops_.push_back(std::move(rec));
        } else if (op == "wb" || op == "rb") {
            TraceOp rec;
            rec.kind = op == "wb" ? TraceOp::Kind::WriteByte
                                  : TraceOp::Kind::ReadByte;
            rec.line = line_no;
            unsigned value = 0;
            fields >> rec.index >> value;
            want(value <= 0xFF);
            rec.byte = (std::uint8_t)value;
            ops_.push_back(rec);
        } else if (op == "f") {
            TraceOp rec;
            rec.kind = TraceOp::Kind::Fill;
            rec.line = line_no;
            unsigned value = 0;
            fields >> value;
            want(value <= 0xFF);
            rec.byte = (std::uint8_t)value;
            ops_.push_back(rec);
        } else if (op == "p") {
            TraceOp rec;
            rec.kind = TraceOp::Kind::Pause;
            rec.line = line_no;
            fields >> rec.seconds >> rec.tempC;
            want(true);
            ops_.push_back(rec);
        } else {
            util::fatal("trace line %zu: unknown record '%s'", line_no,
                        op.c_str());
        }
    }

    if (!saw_version || !saw_geom || !saw_k)
        util::fatal("trace is missing its beertrace/geom/k header");
    map_.validate();
}

const TraceOp &
TraceReplayBackend::expect(TraceOp::Kind kind, const char *what)
{
    if (cursor_ >= ops_.size())
        util::fatal("trace replay: %s requested but the trace is "
                    "exhausted after %zu operations",
                    what, ops_.size());
    const TraceOp &rec = ops_[cursor_];
    if (rec.kind != kind)
        util::fatal("trace replay: %s requested but trace line %zu "
                    "records a different operation",
                    what, rec.line);
    ++cursor_;
    return rec;
}

void
TraceReplayBackend::writeDataword(std::size_t word_index,
                                  const BitVec &data)
{
    const TraceOp &rec =
        expect(TraceOp::Kind::WriteWord, "writeDataword");
    if (rec.index != word_index || !(rec.data == data))
        util::fatal("trace replay diverged at line %zu: writeDataword "
                    "operands do not match the recording",
                    rec.line);
}

BitVec
TraceReplayBackend::readDataword(std::size_t word_index)
{
    const TraceOp &rec = expect(TraceOp::Kind::ReadWord, "readDataword");
    if (rec.index != word_index)
        util::fatal("trace replay diverged at line %zu: readDataword of "
                    "word %zu, recording has word %zu",
                    rec.line, word_index, rec.index);
    return rec.data;
}

void
TraceReplayBackend::writeByte(std::size_t byte_addr, std::uint8_t value)
{
    const TraceOp &rec = expect(TraceOp::Kind::WriteByte, "writeByte");
    if (rec.index != byte_addr || rec.byte != value)
        util::fatal("trace replay diverged at line %zu: writeByte "
                    "operands do not match the recording",
                    rec.line);
}

std::uint8_t
TraceReplayBackend::readByte(std::size_t byte_addr)
{
    const TraceOp &rec = expect(TraceOp::Kind::ReadByte, "readByte");
    if (rec.index != byte_addr)
        util::fatal("trace replay diverged at line %zu: readByte of "
                    "address %zu, recording has %zu",
                    rec.line, byte_addr, rec.index);
    return rec.byte;
}

void
TraceReplayBackend::fill(std::uint8_t value)
{
    const TraceOp &rec = expect(TraceOp::Kind::Fill, "fill");
    if (rec.byte != value)
        util::fatal("trace replay diverged at line %zu: fill(%u), "
                    "recording has fill(%u)",
                    rec.line, (unsigned)value, (unsigned)rec.byte);
}

void
TraceReplayBackend::pauseRefresh(double seconds, double temp_c)
{
    const TraceOp &rec = expect(TraceOp::Kind::Pause, "pauseRefresh");
    if (rec.seconds != seconds || rec.tempC != temp_c)
        util::fatal("trace replay diverged at line %zu: pauseRefresh "
                    "operands do not match the recording",
                    rec.line);
}

} // namespace beer::dram
