/**
 * @file
 * Operation-trace recording and replay backends, formats v1 and v2.
 *
 * The paper's released tooling applies BEER to measurements collected
 * on real chips offline. These classes provide the equivalent seam for
 * this codebase: TraceRecorder wraps any MemoryInterface and logs every
 * operation (with read results) to a stream, and TraceReplayBackend
 * implements MemoryInterface from such a log, so an analysis can re-run
 * bit-for-bit against externally collected data with no chip (or
 * simulator) present.
 *
 * Two on-disk formats are supported; TraceReplayBackend sniffs them
 * automatically and convertTraceFile() translates losslessly between
 * them (v1 -> v2 -> v1 is byte-identical for recorder-produced files).
 *
 * ## Format v1 — text, one line per word op
 *
 *     beertrace 1
 *     geom <bytesPerWord> <wordsPerRegion> <bytesPerRow> <rows>
 *     k <dataword-bits>
 *     w <word> <dataword-bits-as-01-string>    # writeDataword
 *     r <word> <returned-dataword>             # readDataword + result
 *     wb <byte-addr> <value>                   # writeByte (decimal)
 *     rb <byte-addr> <value>                   # readByte + result
 *     f <value>                                # fill
 *     p <seconds> <temp-c>                     # pauseRefresh
 *
 * '#' starts a comment; "meta" lines carry analysis-level annotations
 * and are kept but not interpreted here. Batched interface calls
 * (writeDatawordsBroadcast / readDatawords) are decomposed into their
 * per-word lines, so v1 files stay readable by pre-batch tooling — at
 * ~(k + 10) bytes per word op.
 *
 * ## Format v2 — binary, columnar, one record per batched op
 *
 * Little-endian throughout; every record is 8-byte aligned so mmap'd
 * payloads can be read as uint64 arrays in place.
 *
 *     header (32 bytes):
 *       char[8]  magic "BEERTRC2"
 *       u32      bytesPerWord, wordsPerRegion, bytesPerRow, rows
 *       u32      k (dataword bits)
 *       u32      reserved (0)
 *     records, each:
 *       u32 kind, u32 payloadBytes, payload, zero pad to 8 bytes
 *
 *     kind  payload
 *     ----  -------------------------------------------------------
 *     1     meta: UTF-8 annotation text
 *     2     word set: u64 count, count x u64 word indices. Sets are
 *           deduplicated; later records reference them by ordinal
 *           (0-based, in file order).
 *     3     writeDatawordsBroadcast: u64 wordSetId,
 *           ceil(k/64) x u64 dataword bits
 *     4     readDatawords batch: u64 wordSetId, u32 encoding,
 *           u32 crc32 (over the raw frame bytes), then the frame:
 *             encoding 0 (raw): k rows x ceil(count/64) u64 lane
 *               words — bit t of row pos = bit pos of the t-th
 *               dataword read. This is the bit-plane (SoA) layout of
 *               dram::TransposedCellStore, so replay hands whole rows
 *               to the plane-parallel counting kernels untransposed.
 *             encoding 1 (sparse): ceil(k/64) x u64 per-row majority
 *               bits, u64 exceptionCount, then exceptionCount x
 *               (u64 frameIndex, u64 laneWord) overrides of the
 *               majority-filled raw frame. Chosen per frame when
 *               smaller (errors are sparse, so most rows are a
 *               constant fill).
 *     5/6   writeDataword / readDataword: u64 word, dataword bits
 *     7/8   writeByte / readByte: u64 byteAddr, u64 value
 *     9     fill: u64 value
 *     10    pause: f64 seconds, f64 tempC
 *
 * A batched measurement records ~k/8 bytes per read word (one bit per
 * cell) and amortizes word lists to nothing, >= 10x smaller than v1;
 * sparse frames shrink further. Frame CRCs are verified at open, so a
 * truncated or bit-flipped trace is rejected before any replay runs.
 *
 * ## Replay strictness
 *
 * Replay is strict at word granularity: every interface call must
 * match the recorded operation stream element for element (kind, word
 * index, and payload), and divergence is a fatal error naming both the
 * requested and the recorded operation. Batch boundaries are NOT part
 * of the contract — a v2 batch record of 100 words replays equally
 * under one readDatawords(100) call or 100 readDataword calls, exactly
 * as the equivalent 100 v1 lines always did — so scalar and batched
 * analyses replay the same trace bit-identically.
 */

#ifndef BEER_DRAM_TRACE_HH
#define BEER_DRAM_TRACE_HH

#include <cstdint>
#include <deque>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "dram/memory_interface.hh"

namespace beer::dram
{

/** Round-trip-exact ("%.17g") rendering of a trace double operand. */
std::string formatTraceDouble(double value);

/** On-disk trace format; see file comment. */
enum class TraceFormat
{
    V1 = 1,
    V2 = 2,
};

/** "v1" / "v2". */
const char *traceFormatName(TraceFormat format);

/** Parse "v1"/"v2" (std::nullopt on anything else). */
std::optional<TraceFormat> parseTraceFormat(const std::string &text);

/** Knobs for writing a trace. */
struct TraceWriteOptions
{
    TraceFormat format = TraceFormat::V2;
    /**
     * v2 only: store each read frame sparse (majority fill +
     * exceptions) when that is smaller than the raw bit planes. Raw
     * frames replay zero-copy from the mmap; sparse frames are
     * decoded once at open.
     */
    bool compressFrames = true;
};

/**
 * One parsed trace record at batch granularity. Scalar ops are their
 * own records; a batched op is one record of count elements. Batch
 * pointers alias storage owned by the TraceReplayBackend that parsed
 * the record (or the mmap'd file).
 */
struct TraceRecord
{
    enum class Kind
    {
        Meta,
        WriteBroadcast,
        ReadBatch,
        WriteWord,
        ReadWord,
        WriteByte,
        ReadByte,
        Fill,
        Pause,
    };

    Kind kind;
    /**
     * Source position for diagnostics: the (first) 1-based text line
     * in v1, the 1-based record ordinal in v2.
     */
    std::size_t line = 0;

    /** Word index (word ops) or byte address (byte ops). */
    std::size_t index = 0;
    /** Byte payload (WriteByte/Fill) or result (ReadByte). */
    std::uint8_t byte = 0;
    /** pauseRefresh() operands. */
    double seconds = 0.0;
    double tempC = 0.0;
    /** Dataword payload: WriteWord/ReadWord data, WriteBroadcast fill. */
    gf2::BitVec data;

    /** Batch word list (count entries), in recorded order. */
    const std::uint64_t *words = nullptr;
    std::size_t count = 0;
    /** ReadBatch bit-plane frame: k rows x laneWords uint64s. */
    const std::uint64_t *frame = nullptr;
    std::size_t laneWords = 0;

    /** Meta: index into TraceReplayBackend::metaLines(). */
    std::size_t metaIndex = 0;

    /** Interface operations this record stands for (0 for Meta). */
    std::size_t elements() const
    {
        switch (kind) {
        case Kind::Meta:
            return 0;
        case Kind::WriteBroadcast:
        case Kind::ReadBatch:
            return count;
        default:
            return 1;
        }
    }
};

/**
 * Serializer shared by TraceRecorder and convertTraceFile(): receives
 * operations at batch granularity and emits them in either format
 * (expanding batches to per-word lines for v1). The header is written
 * at construction. For v2 the stream must be binary-clean (open files
 * with std::ios::binary).
 */
class TraceWriter
{
  public:
    TraceWriter(std::ostream &out, const AddressMap &map, std::size_t k,
                const TraceWriteOptions &options);

    TraceFormat format() const { return options_.format; }

    void meta(const std::string &text);
    void writeWord(std::size_t word, const gf2::BitVec &data);
    void readWord(std::size_t word, const gf2::BitVec &data);
    void writeBroadcast(const std::size_t *words, std::size_t count,
                        const gf2::BitVec &data);
    /** Batched read results as materialized datawords. */
    void readBatch(const std::size_t *words, std::size_t count,
                   const gf2::BitVec *results);
    /** Batched read results already in bit-plane layout (no transpose). */
    void readBatchPlanar(const std::size_t *words, std::size_t count,
                         const PlanarReadBatch &view);
    void writeByte(std::size_t byte_addr, std::uint8_t value);
    void readByte(std::size_t byte_addr, std::uint8_t value);
    void fill(std::uint8_t value);
    void pause(double seconds, double temp_c);

  private:
    /** v2: id of the deduplicated word set, emitting it if new. */
    std::uint64_t wordSetId(const std::size_t *words,
                            std::size_t count);
    /** v2: emit one record (header, payload, alignment pad). */
    void emitRecord(std::uint32_t kind, const void *payload,
                    std::size_t payload_bytes);
    void emitWordPayload(std::uint32_t kind, std::uint64_t index,
                         const gf2::BitVec &data);
    void emitReadFrame(std::uint64_t set_id, const std::uint64_t *rows,
                       std::size_t row_stride, std::size_t lane_words,
                       std::size_t count);

    std::ostream &out_;
    std::size_t k_;
    TraceWriteOptions options_;
    std::map<std::vector<std::uint64_t>, std::uint64_t> wordSets_;
    std::vector<std::uint8_t> scratch_;
};

/**
 * Decorator that forwards every operation to @p inner and appends it
 * to the trace stream. The header (version, geometry, k) is written at
 * construction; the stream must outlive the recorder. Batched calls
 * stay batched on the inner backend (so a transposed chip keeps its
 * wide path) and are recorded at batch granularity in v2, or expanded
 * to the compatible per-word lines in v1.
 */
class TraceRecorder : public MemoryInterface
{
  public:
    /** Record in the default (v1) format — byte-compatible history. */
    TraceRecorder(MemoryInterface &inner, std::ostream &out);
    TraceRecorder(MemoryInterface &inner, std::ostream &out,
                  const TraceWriteOptions &options);

    /** Append an uninterpreted "meta <text>" annotation line. */
    void writeMeta(const std::string &text);

    const AddressMap &addressMap() const override;
    std::size_t datawordBits() const override;
    void writeDataword(std::size_t word_index,
                       const gf2::BitVec &data) override;
    gf2::BitVec readDataword(std::size_t word_index) override;
    void writeDatawordsBroadcast(const std::size_t *words,
                                 std::size_t count,
                                 const gf2::BitVec &data) override;
    void readDatawords(const std::size_t *words, std::size_t count,
                       std::vector<gf2::BitVec> &out) override;
    bool readDatawordsPlanar(const std::size_t *words,
                             std::size_t count,
                             PlanarReadBatch &out) override;
    void writeByte(std::size_t byte_addr, std::uint8_t value) override;
    std::uint8_t readByte(std::size_t byte_addr) override;
    void fill(std::uint8_t value) override;
    void pauseRefresh(double seconds, double temp_c) override;

  private:
    MemoryInterface &inner_;
    TraceWriter writer_;
};

/**
 * MemoryInterface backend that replays a recorded trace; see file
 * comment. The format is sniffed from the leading bytes: v2 files are
 * mmap'd (raw read frames replay zero-copy out of the page cache),
 * v1 text is parsed into the same record-granular representation.
 * Strict by construction: any operation that does not match the
 * recorded element sequence is fatal, with a message naming both the
 * requested and the recorded operation.
 */
class TraceReplayBackend : public MemoryInterface
{
  public:
    /** Parse a trace from @p in (e.g. an open binary std::ifstream). */
    explicit TraceReplayBackend(std::istream &in);

    /** Parse (v1) or mmap (v2) a trace file; fatal if unreadable. */
    explicit TraceReplayBackend(const std::string &path);

    ~TraceReplayBackend() override;
    TraceReplayBackend(const TraceReplayBackend &) = delete;
    TraceReplayBackend &operator=(const TraceReplayBackend &) = delete;

    /** The on-disk format this trace was stored in. */
    TraceFormat format() const { return format_; }

    const AddressMap &addressMap() const override { return map_; }
    std::size_t datawordBits() const override { return k_; }
    void writeDataword(std::size_t word_index,
                       const gf2::BitVec &data) override;
    gf2::BitVec readDataword(std::size_t word_index) override;
    void writeDatawordsBroadcast(const std::size_t *words,
                                 std::size_t count,
                                 const gf2::BitVec &data) override;
    void readDatawords(const std::size_t *words, std::size_t count,
                       std::vector<gf2::BitVec> &out) override;
    /**
     * Zero-copy batched read: succeeds when the requested batch is
     * exactly the next recorded read batch, returning the recorded
     * bit-plane frame directly (raw v2 frames straight from the mmap).
     * Any other alignment declines with no side effects and the
     * caller's readDatawords fallback replays element by element.
     */
    bool readDatawordsPlanar(const std::size_t *words,
                             std::size_t count,
                             PlanarReadBatch &out) override;
    void writeByte(std::size_t byte_addr, std::uint8_t value) override;
    std::uint8_t readByte(std::size_t byte_addr) override;
    void fill(std::uint8_t value) override;
    void pauseRefresh(double seconds, double temp_c) override;

    /** Uninterpreted "meta" annotation lines, in file order. */
    const std::vector<std::string> &metaLines() const { return meta_; }

    /** Word-granular operation counts (batches count their elements). */
    std::size_t totalOps() const { return totalElements_; }
    std::size_t remainingOps() const
    {
        return totalElements_ - consumedElements_;
    }
    bool atEnd() const { return consumedElements_ == totalElements_; }

    /**
     * The parsed record stream at batch granularity, metas included,
     * in file order — the input convertTraceFile() re-serializes.
     */
    const std::vector<TraceRecord> &records() const { return stream_; }

  private:
    void parseText(std::istream &in);
    void parseBinary(const std::uint8_t *data, std::size_t len);
    void loadStream(std::istream &in);

    /** Current non-meta record, advancing past metas; fatal at end. */
    const TraceRecord &current(const char *requested);
    /** Consume one element of the current record. */
    void consumeElement();
    /** Consume the current record whole (batch fast paths). */
    void consumeRecord();
    [[noreturn]] void diverge(const std::string &requested,
                              const TraceRecord &rec);

    AddressMap map_;
    std::size_t k_ = 0;
    TraceFormat format_ = TraceFormat::V1;
    std::vector<TraceRecord> stream_;
    std::vector<std::string> meta_;
    /** Backing store for word lists / frames not aliasing the mmap. */
    std::deque<std::vector<std::uint64_t>> owned_;
    /** v2 bytes sourced from an istream (8-byte aligned). */
    std::vector<std::uint64_t> buffer_;
    void *mapBase_ = nullptr;
    std::size_t mapLen_ = 0;

    std::size_t totalElements_ = 0;
    std::size_t consumedElements_ = 0;
    /** Cursor: record index and element offset within it. */
    std::size_t rec_ = 0;
    std::size_t elem_ = 0;
};

/** Sniff a trace file's format; std::nullopt if it is neither. */
std::optional<TraceFormat> tryTraceFileFormat(const std::string &path);

/** What convertTraceFile() did. */
struct TraceConvertStats
{
    TraceFormat from;
    TraceFormat to;
    /** Word-granular operations converted. */
    std::size_t ops = 0;
    std::uintmax_t bytesIn = 0;
    std::uintmax_t bytesOut = 0;
};

/**
 * Re-serialize @p in_path as @p options.format at @p out_path. The
 * element streams are identical, so both files replay bit-identically;
 * converting a recorder-produced v1 file to v2 and back reproduces the
 * v1 bytes exactly.
 */
TraceConvertStats convertTraceFile(const std::string &in_path,
                                   const std::string &out_path,
                                   const TraceWriteOptions &options);

} // namespace beer::dram

#endif // BEER_DRAM_TRACE_HH
