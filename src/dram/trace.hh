/**
 * @file
 * Operation-trace recording and replay backends.
 *
 * The paper's released tooling applies BEER to measurements collected
 * on real chips offline. These classes provide the equivalent seam for
 * this codebase: TraceRecorder wraps any MemoryInterface and logs every
 * operation (with read results) to a text stream, and
 * TraceReplayBackend implements MemoryInterface from such a log, so an
 * analysis can re-run bit-for-bit against externally collected data
 * with no chip (or simulator) present.
 *
 * Trace format, one operation per line ('#' starts a comment; "meta"
 * lines carry analysis-level annotations and are kept but not
 * interpreted here):
 *
 *     beertrace 1
 *     geom <bytesPerWord> <wordsPerRegion> <bytesPerRow> <rows>
 *     k <dataword-bits>
 *     w <word> <dataword-bits-as-01-string>    # writeDataword
 *     r <word> <returned-dataword>             # readDataword + result
 *     wb <byte-addr> <value>                   # writeByte (decimal)
 *     rb <byte-addr> <value>                   # readByte + result
 *     f <value>                                # fill
 *     p <seconds> <temp-c>                     # pauseRefresh
 *
 * Replay is strict: each interface call must match the next recorded
 * operation (kind and operands); divergence is a fatal error naming the
 * trace line. This guarantees that a replayed analysis observed exactly
 * the recorded data.
 */

#ifndef BEER_DRAM_TRACE_HH
#define BEER_DRAM_TRACE_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "dram/memory_interface.hh"

namespace beer::dram
{

/** Round-trip-exact ("%.17g") rendering of a trace double operand. */
std::string formatTraceDouble(double value);

/** One recorded MemoryInterface operation. */
struct TraceOp
{
    enum class Kind
    {
        WriteWord,
        ReadWord,
        WriteByte,
        ReadByte,
        Fill,
        Pause,
    };

    Kind kind;
    /** Word index (WriteWord/ReadWord) or byte address (byte ops). */
    std::size_t index = 0;
    /** Dataword payload (WriteWord) or result (ReadWord). */
    gf2::BitVec data;
    /** Byte payload (WriteByte/Fill) or result (ReadByte). */
    std::uint8_t byte = 0;
    /** pauseRefresh() operands. */
    double seconds = 0.0;
    double tempC = 0.0;

    /** 1-based line number in the source trace (replay diagnostics). */
    std::size_t line = 0;
};

/**
 * Decorator that forwards every operation to @p inner and appends it to
 * the trace stream. The header (version, geometry, k) is written at
 * construction; the stream must outlive the recorder.
 */
class TraceRecorder : public MemoryInterface
{
  public:
    TraceRecorder(MemoryInterface &inner, std::ostream &out);

    /** Append an uninterpreted "meta <text>" annotation line. */
    void writeMeta(const std::string &text);

    const AddressMap &addressMap() const override;
    std::size_t datawordBits() const override;
    void writeDataword(std::size_t word_index,
                       const gf2::BitVec &data) override;
    gf2::BitVec readDataword(std::size_t word_index) override;
    void writeByte(std::size_t byte_addr, std::uint8_t value) override;
    std::uint8_t readByte(std::size_t byte_addr) override;
    void fill(std::uint8_t value) override;
    void pauseRefresh(double seconds, double temp_c) override;

  private:
    MemoryInterface &inner_;
    std::ostream &out_;
};

/**
 * MemoryInterface backend that replays a recorded trace; see file
 * comment. Strict by construction: any operation that does not match
 * the recorded sequence is fatal.
 */
class TraceReplayBackend : public MemoryInterface
{
  public:
    /** Parse a trace from @p in (e.g. an open std::ifstream). */
    explicit TraceReplayBackend(std::istream &in);

    /** Parse a trace file; fatal if the file cannot be opened. */
    explicit TraceReplayBackend(const std::string &path);

    const AddressMap &addressMap() const override { return map_; }
    std::size_t datawordBits() const override { return k_; }
    void writeDataword(std::size_t word_index,
                       const gf2::BitVec &data) override;
    gf2::BitVec readDataword(std::size_t word_index) override;
    void writeByte(std::size_t byte_addr, std::uint8_t value) override;
    std::uint8_t readByte(std::size_t byte_addr) override;
    void fill(std::uint8_t value) override;
    void pauseRefresh(double seconds, double temp_c) override;

    /** Uninterpreted "meta" annotation lines, in file order. */
    const std::vector<std::string> &metaLines() const { return meta_; }

    std::size_t totalOps() const { return ops_.size(); }
    std::size_t remainingOps() const { return ops_.size() - cursor_; }
    bool atEnd() const { return cursor_ == ops_.size(); }

  private:
    void parse(std::istream &in);
    /** Consume the next op; fatal if kind does not match. */
    const TraceOp &expect(TraceOp::Kind kind, const char *what);

    AddressMap map_;
    std::size_t k_ = 0;
    std::vector<TraceOp> ops_;
    std::vector<std::string> meta_;
    std::size_t cursor_ = 0;
};

} // namespace beer::dram

#endif // BEER_DRAM_TRACE_HH
