/**
 * @file
 * Basic DRAM cell concepts: true-/anti-cells and charge states.
 *
 * A true-cell encodes data '1' as a CHARGED capacitor; an anti-cell
 * encodes data '1' as DISCHARGED (paper Section 3.1). Data-retention
 * errors decay cells unidirectionally from CHARGED to DISCHARGED, which
 * is the physical asymmetry that BEER's test patterns exploit.
 */

#ifndef BEER_DRAM_TYPES_HH
#define BEER_DRAM_TYPES_HH

#include <cstdint>

namespace beer::dram
{

/** Charge-encoding convention of a cell. */
enum class CellType : std::uint8_t
{
    True, //!< data '1' = CHARGED
    Anti, //!< data '1' = DISCHARGED
};

/** Capacitor charge state. */
enum class ChargeState : std::uint8_t
{
    Discharged = 0,
    Charged = 1,
};

/** Charge state that a stored bit @p value produces in a @p type cell. */
inline ChargeState
chargeOf(bool value, CellType type)
{
    const bool charged = (type == CellType::True) ? value : !value;
    return charged ? ChargeState::Charged : ChargeState::Discharged;
}

/** Bit value that a cell of @p type must store to reach @p state. */
inline bool
valueFor(ChargeState state, CellType type)
{
    const bool charged = state == ChargeState::Charged;
    return (type == CellType::True) ? charged : !charged;
}

/** Value read from a fully decayed (DISCHARGED) cell of @p type. */
inline bool
decayedValue(CellType type)
{
    return valueFor(ChargeState::Discharged, type);
}

} // namespace beer::dram

#endif // BEER_DRAM_TYPES_HH
