#include "ecc/bitsliced.hh"

#include "util/logging.hh"

namespace beer::ecc
{

namespace
{

/** Stack bound for syndrome lanes; the library caps n-k well below. */
constexpr std::size_t kMaxParityBits = 32;

} // anonymous namespace

BitslicedDecoder::BitslicedDecoder(const LinearCode &code)
    : n_(code.n()), k_(code.k()), r_(code.numParityBits())
{
    BEER_ASSERT(r_ <= kMaxParityBits);

    rowSupport_.assign(r_, {});
    for (std::size_t row = 0; row < r_; ++row) {
        // H = [P | I]: row support is P's row support plus the unit.
        for (std::size_t c = 0; c < k_; ++c)
            if (code.pMatrix().get(row, c))
                rowSupport_[row].push_back((std::uint32_t)c);
        rowSupport_[row].push_back((std::uint32_t)(k_ + row));
    }

    correctable_.reserve(n_);
    for (std::size_t pos = 0; pos < n_; ++pos) {
        const gf2::BitVec column = code.hColumn(pos);
        // Only the position the scalar decoder would flip for this
        // syndrome pattern participates; duplicate columns lose the
        // same tie-break they lose in findColumn().
        if (code.findColumn(column) != pos)
            continue;
        correctable_.emplace_back((std::uint32_t)pos,
                                  (std::uint32_t)syndromeIndex(column));
    }
}

void
BitslicedDecoder::decode(const std::uint64_t *error_lanes,
                         BitslicedDecodeLanes &out) const
{
    out.correction.assign(n_, 0);

    // Syndrome lanes: s[row] has lane L set iff word L's syndrome has
    // bit row set.
    std::uint64_t s[kMaxParityBits];
    std::uint64_t nonzero = 0;
    for (std::size_t row = 0; row < r_; ++row) {
        std::uint64_t acc = 0;
        for (const std::uint32_t pos : rowSupport_[row])
            acc ^= error_lanes[pos];
        s[row] = acc;
        nonzero |= acc;
    }

    // Raw-error census: lanes with any error, and with exactly one.
    std::uint64_t seen_one = 0;
    std::uint64_t seen_two = 0;
    for (std::size_t pos = 0; pos < n_; ++pos) {
        seen_two |= seen_one & error_lanes[pos];
        seen_one |= error_lanes[pos];
    }
    const std::uint64_t exactly_one = seen_one & ~seen_two;

    // Column match: a lane matches a column iff every syndrome bit
    // agrees with the column's pattern. Candidate lanes shrink as
    // matches are claimed, which makes sparse batches cheap.
    std::uint64_t corrected_any = 0;
    std::uint64_t flipped_real = 0;
    std::uint64_t candidates = nonzero;
    for (const auto &[pos, pattern] : correctable_) {
        if (!candidates)
            break;
        std::uint64_t match = candidates;
        for (std::size_t row = 0; row < r_ && match; ++row)
            match &= (pattern >> row) & 1 ? s[row] : ~s[row];
        if (!match)
            continue;
        out.correction[pos] = match;
        corrected_any |= match;
        flipped_real |= match & error_lanes[pos];
        candidates &= ~match;
    }

    out.anyRaw = seen_one;
    out.outcome[(std::size_t)DecodeOutcome::NoError] = ~seen_one;
    out.outcome[(std::size_t)DecodeOutcome::Corrected] =
        flipped_real & exactly_one;
    out.outcome[(std::size_t)DecodeOutcome::PartialCorrection] =
        flipped_real & ~exactly_one;
    out.outcome[(std::size_t)DecodeOutcome::Miscorrection] =
        corrected_any & ~flipped_real;
    out.outcome[(std::size_t)DecodeOutcome::SilentCorruption] =
        seen_one & ~nonzero;
    out.outcome[(std::size_t)DecodeOutcome::DetectedUncorrectable] =
        nonzero & ~corrected_any;
}

} // namespace beer::ecc
