#include "ecc/bitsliced.hh"

#include "ecc/bitsliced_kernel.hh"
#include "util/logging.hh"
#include "util/simd_vec.hh"

namespace beer::ecc
{

BitslicedDecoder::BitslicedDecoder(const LinearCode &code)
    : n_(code.n()), k_(code.k()), r_(code.numParityBits())
{
    BEER_ASSERT(r_ <= kMaxParityBits);

    rowSupport_.assign(r_, {});
    for (std::size_t row = 0; row < r_; ++row) {
        // H = [P | I]: row support is P's row support plus the unit.
        for (std::size_t c = 0; c < k_; ++c)
            if (code.pMatrix().get(row, c))
                rowSupport_[row].push_back((std::uint32_t)c);
        rowSupport_[row].push_back((std::uint32_t)(k_ + row));
    }

    correctable_.reserve(n_);
    for (std::size_t pos = 0; pos < n_; ++pos) {
        const gf2::BitVec column = code.hColumn(pos);
        // Only the position the scalar decoder would flip for this
        // syndrome pattern participates; duplicate columns lose the
        // same tie-break they lose in findColumn().
        if (code.findColumn(column) != pos)
            continue;
        correctable_.emplace_back((std::uint32_t)pos,
                                  (std::uint32_t)syndromeIndex(column));
    }
}

void
BitslicedDecoder::decode(const std::uint64_t *error_lanes,
                         BitslicedDecodeLanes &out) const
{
    // Compatibility shim over the width-generic kernel at W = 1; hot
    // paths call decodeWide() directly through sim::engineKernel and
    // keep the scratch (including its touched-row clearing) across
    // calls instead of re-zeroing a fresh correction vector.
    static thread_local WideDecodeLanes scratch;
    scratch.prepare(n_, 1);
    decodeWide<util::simd::Vec<1>>(*this, error_lanes, scratch);

    out.correction.assign(n_, 0);
    for (const std::uint32_t pos : scratch.touched)
        out.correction[pos] = scratch.correction[pos];
    out.anyRaw = scratch.anyRaw[0];
    for (std::size_t o = 0; o < 6; ++o)
        out.outcome[o] = scratch.outcome[o][0];
}

} // namespace beer::ecc
