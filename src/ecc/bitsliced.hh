/**
 * @file
 * Bitsliced (64-words-per-lane) syndrome decoding and classification.
 *
 * The scalar decoder (ecc/decoder.hh) walks one word at a time through
 * heap-allocated BitVecs; at the paper's scale of 1e9 simulated ECC
 * words per data point that is the dominant cost of every measurement.
 * This kernel processes 64 words per call on transposed lane masks
 * (bit L of every operand word belongs to simulated word L), so each
 * uint64 operation advances all 64 words at once:
 *
 *  - syndrome bit r = XOR of the error lanes of H row r's support;
 *  - the corrected position is the H column equal to the syndrome,
 *    found by AND-ing per-row lane agreements for each column;
 *  - the paper's decode-outcome taxonomy (Section 3.3) is evaluated
 *    lane-parallel from the same masks.
 *
 * Because decoding a linear code depends on the received word only
 * through its difference from the stored codeword, the kernel consumes
 * raw-error lanes alone (error = received XOR codeword) and is
 * independent of which codeword was stored. Outputs match the scalar
 * decode()/classify() pair lane-for-lane for every code, including
 * shortened and malformed (duplicate-column) ones.
 */

#ifndef BEER_ECC_BITSLICED_HH
#define BEER_ECC_BITSLICED_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ecc/decoder.hh"
#include "ecc/linear_code.hh"

namespace beer::ecc
{

/** Lane-parallel result of one 64-word bitsliced decode. */
struct BitslicedDecodeLanes
{
    /**
     * correction[pos]: lanes whose decoder flipped codeword bit @p pos.
     * At most one position is flipped per lane (as in the scalar
     * decoder), so these masks are pairwise disjoint.
     */
    std::vector<std::uint64_t> correction;
    /** Lanes with at least one raw error. */
    std::uint64_t anyRaw = 0;
    /**
     * outcome[o]: lanes classified as DecodeOutcome o. The six masks
     * partition the full 64 lanes; error-free lanes land in
     * outcome[NoError].
     */
    std::uint64_t outcome[6] = {};
};

/**
 * Precomputed bitsliced decoder for one code; immutable after
 * construction and safe to share across threads.
 */
class BitslicedDecoder
{
  public:
    /**
     * Stack bound for syndrome lane arrays in the decode kernels; the
     * library caps n-k well below (LinearCode asserts <= 24).
     */
    static constexpr std::size_t kMaxParityBits = 32;

    explicit BitslicedDecoder(const LinearCode &code);

    std::size_t n() const { return n_; }
    std::size_t k() const { return k_; }
    std::size_t numParityBits() const { return r_; }

    /**
     * Decode and classify 64 words given their raw-error lanes
     * (@p error_lanes, n() entries). All-zero lanes cost nothing and
     * classify as NoError, so partially filled batches need no mask.
     *
     * This is the fixed-width compatibility entry; the hot paths run
     * the width-generic kernel (ecc/bitsliced_kernel.hh) through the
     * sim::engineKernel dispatch instead.
     */
    void decode(const std::uint64_t *error_lanes,
                BitslicedDecodeLanes &out) const;

    /** Positions of each parity-check row's support (H row r). */
    const std::vector<std::vector<std::uint32_t>> &rowSupport() const
    {
        return rowSupport_;
    }

    /**
     * (position, column bit pattern) pairs of the correctable
     * positions, in position order; see the member docs.
     */
    const std::vector<std::pair<std::uint32_t, std::uint32_t>> &
    correctable() const
    {
        return correctable_;
    }

  private:
    std::size_t n_;
    std::size_t k_;
    std::size_t r_;
    /** Positions of each parity-check row's support (H row r). */
    std::vector<std::vector<std::uint32_t>> rowSupport_;
    /**
     * For each correctable position: (position, column bit pattern).
     * A position is correctable iff it is the one findColumn() returns
     * for its own H column, mirroring the scalar decoder's tie-break
     * for duplicate columns; its pattern has bit r set iff H[r][pos].
     */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> correctable_;
};

} // namespace beer::ecc

#endif // BEER_ECC_BITSLICED_HH
