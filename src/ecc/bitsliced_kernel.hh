/**
 * @file
 * Width-generic bitsliced decode kernel.
 *
 * decodeWide<V>() is the SIMD-word generalization of
 * BitslicedDecoder::decode(): one call decodes and classifies
 * V::kWords * 64 words whose raw-error lane masks live in a plain
 * uint64 buffer of n rows x W words (row = codeword bit position,
 * bit L of word j in a row = bit of simulated word j*64+L). Keeping
 * the masks in ordinary memory means the fill/transpose side never
 * touches vector registers — only the kernel does, via V's load/store
 * — so one kernel source serves the portable and the intrinsic
 * backends alike (each instantiated in its own translation unit; see
 * util/simd_vec.hh for why that matters).
 *
 * The algorithm is identical to the 64-lane kernel's, so statistics
 * aggregated over lanes are bit-identical for every width: each
 * lane's syndrome, correction, and outcome depend only on that lane's
 * error bits, never on its neighbors.
 */

#ifndef BEER_ECC_BITSLICED_KERNEL_HH
#define BEER_ECC_BITSLICED_KERNEL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ecc/bitsliced.hh"
#include "util/logging.hh"

namespace beer::ecc
{

/** Widest lane group shipped (u64x8 = 512 lanes). */
inline constexpr std::size_t kMaxSimdWords = 8;

/**
 * Lane-parallel result of one wide decode, sized by prepare(). The
 * buffers persist across decode calls — decodeWide() un-sets only the
 * correction rows it touched on the previous call (the touched list),
 * so the steady-state cost per call is proportional to actual
 * corrections, and nothing is reallocated in the hot loop.
 */
struct WideDecodeLanes
{
    /**
     * correction[pos * words() + j]: lane group j of the positions the
     * decoder flipped. Rows not listed in touched are all-zero.
     */
    std::vector<std::uint64_t> correction;
    /** Positions whose correction rows are (possibly) nonzero. */
    std::vector<std::uint32_t> touched;
    /** Lanes with at least one raw error. */
    std::uint64_t anyRaw[kMaxSimdWords];
    /**
     * outcome[o][j]: lanes classified as DecodeOutcome o. The six
     * masks partition the lanes; error-free lanes land in
     * outcome[NoError].
     */
    std::uint64_t outcome[6][kMaxSimdWords];

    std::size_t words() const { return words_; }
    std::size_t lanes() const { return 64 * words_; }

    /**
     * Size for codes of @p n bit positions and @p words-wide lane
     * groups. Idempotent and cheap when the shape is unchanged, so
     * callers may invoke it per batch.
     */
    void prepare(std::size_t n, std::size_t words)
    {
        BEER_ASSERT(words >= 1 && words <= kMaxSimdWords);
        if (n_ == n && words_ == words)
            return;
        n_ = n;
        words_ = words;
        correction.assign(n * words, 0);
        touched.clear();
    }

  private:
    std::size_t n_ = 0;
    std::size_t words_ = 0;
};

/**
 * Decode and classify V::kWords * 64 words given their raw-error lane
 * buffer: row @p pos (codeword bit position) is the V::kWords uint64s
 * at @p error_lanes + pos * row_stride. A row stride wider than
 * V::kWords lets the kernel read lane windows straight out of a
 * whole-chip transposed plane store (dram::TransposedCellStore) with
 * no per-batch gather copy; the batch buffers the simulation engine
 * fills use the dense stride V::kWords. Correction rows in @p out are
 * always dense (stride V::kWords) regardless of the input stride.
 * @p out must have been prepare()d for (decoder.n(), V::kWords).
 * All-zero lanes cost nothing and classify as NoError.
 */
template <typename V>
void
decodeWideStrided(const BitslicedDecoder &decoder,
                  const std::uint64_t *error_lanes,
                  std::size_t row_stride, WideDecodeLanes &out)
{
    constexpr std::size_t W = V::kWords;
    const std::size_t n = decoder.n();
    const std::size_t r = decoder.numParityBits();
    BEER_ASSERT(row_stride >= W);

    // Clear the previous call's corrections without touching the
    // untouched (still-zero) rows.
    for (const std::uint32_t pos : out.touched) {
        const V z = V::zero();
        z.store(&out.correction[(std::size_t)pos * W]);
    }
    out.touched.clear();

    // Syndrome lanes: s[row] has lane L set iff word L's syndrome has
    // bit row set.
    V s[BitslicedDecoder::kMaxParityBits];
    V nonzero = V::zero();
    const auto &row_support = decoder.rowSupport();
    for (std::size_t row = 0; row < r; ++row) {
        V acc = V::zero();
        for (const std::uint32_t pos : row_support[row])
            acc ^= V::load(error_lanes + (std::size_t)pos * row_stride);
        s[row] = acc;
        nonzero |= acc;
    }

    // Raw-error census: lanes with any error, and with exactly one.
    V seen_one = V::zero();
    V seen_two = V::zero();
    for (std::size_t pos = 0; pos < n; ++pos) {
        const V e = V::load(error_lanes + pos * row_stride);
        seen_two |= seen_one & e;
        seen_one |= e;
    }
    const V exactly_one = V::andnot(seen_two, seen_one);

    // Column match: a lane matches a column iff every syndrome bit
    // agrees with the column's pattern. Candidate lanes shrink as
    // matches are claimed, which makes sparse batches cheap.
    V corrected_any = V::zero();
    V flipped_real = V::zero();
    V candidates = nonzero;
    for (const auto &[pos, pattern] : decoder.correctable()) {
        if (!candidates.any())
            break;
        V match = candidates;
        for (std::size_t row = 0; row < r && match.any(); ++row)
            match = (pattern >> row) & 1 ? match & s[row]
                                         : V::andnot(s[row], match);
        if (!match.any())
            continue;
        match.store(&out.correction[(std::size_t)pos * W]);
        out.touched.push_back(pos);
        corrected_any |= match;
        flipped_real |=
            match & V::load(error_lanes + (std::size_t)pos * row_stride);
        candidates = V::andnot(match, candidates);
    }

    seen_one.store(out.anyRaw);
    // outcome[NoError] = ~seen_one: complement via andnot against
    // all-ones, built once here instead of widening Vec's interface.
    {
        std::uint64_t ones[W];
        for (std::size_t j = 0; j < W; ++j)
            ones[j] = ~(std::uint64_t)0;
        const V all = V::load(ones);
        V::andnot(seen_one, all)
            .store(out.outcome[(std::size_t)DecodeOutcome::NoError]);
    }
    (flipped_real & exactly_one)
        .store(out.outcome[(std::size_t)DecodeOutcome::Corrected]);
    V::andnot(exactly_one, flipped_real)
        .store(out.outcome[(std::size_t)DecodeOutcome::PartialCorrection]);
    V::andnot(flipped_real, corrected_any)
        .store(out.outcome[(std::size_t)DecodeOutcome::Miscorrection]);
    V::andnot(nonzero, seen_one)
        .store(out.outcome[(std::size_t)DecodeOutcome::SilentCorruption]);
    V::andnot(corrected_any, nonzero)
        .store(out.outcome[(std::size_t)DecodeOutcome::DetectedUncorrectable]);
}

/** decodeWideStrided over a dense (stride V::kWords) batch buffer. */
template <typename V>
void
decodeWide(const BitslicedDecoder &decoder,
           const std::uint64_t *error_lanes, WideDecodeLanes &out)
{
    decodeWideStrided<V>(decoder, error_lanes, V::kWords, out);
}

} // namespace beer::ecc

#endif // BEER_ECC_BITSLICED_KERNEL_HH
