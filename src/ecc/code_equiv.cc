#include "ecc/code_equiv.hh"

#include <algorithm>
#include <vector>

#include "gf2/bitvec.hh"
#include "gf2/matrix.hh"

namespace beer::ecc
{

using gf2::BitVec;
using gf2::Matrix;

LinearCode
canonicalize(const LinearCode &code)
{
    const Matrix &p = code.pMatrix();
    std::vector<BitVec> rows;
    rows.reserve(p.rows());
    for (std::size_t r = 0; r < p.rows(); ++r)
        rows.push_back(p.row(r));
    std::sort(rows.begin(), rows.end());

    Matrix sorted(p.rows(), p.cols());
    for (std::size_t r = 0; r < rows.size(); ++r)
        sorted.row(r) = rows[r];
    return LinearCode(std::move(sorted));
}

bool
equivalent(const LinearCode &a, const LinearCode &b)
{
    if (a.k() != b.k() || a.n() != b.n())
        return false;
    return canonicalize(a) == canonicalize(b);
}

bool
isCanonical(const LinearCode &code)
{
    const Matrix &p = code.pMatrix();
    for (std::size_t r = 0; r + 1 < p.rows(); ++r)
        if (p.row(r + 1) < p.row(r))
            return false;
    return true;
}

} // namespace beer::ecc
