/**
 * @file
 * Code equivalence under parity-bit relabeling.
 *
 * On-die ECC never exposes parity bits, so permuting the rows of P
 * (equivalently: relabeling the invisible parity cells) yields an
 * externally indistinguishable code (paper Sections 4.2.1, 5.4). BEER
 * can therefore recover the ECC function only up to this equivalence;
 * this module provides the canonical representative used both for
 * counting distinct solutions (Figure 5) and for comparing a recovered
 * code against the ground truth in simulation.
 */

#ifndef BEER_ECC_CODE_EQUIV_HH
#define BEER_ECC_CODE_EQUIV_HH

#include "ecc/linear_code.hh"

namespace beer::ecc
{

/**
 * Canonical representative of @p code's equivalence class: the rows of
 * P sorted in ascending lexicographic order.
 */
LinearCode canonicalize(const LinearCode &code);

/** True iff @p a and @p b are equivalent up to parity relabeling. */
bool equivalent(const LinearCode &a, const LinearCode &b);

/**
 * True iff @p code's P matrix already has lexicographically sorted
 * rows (the form the BEER solver's symmetry-breaking constraints
 * enforce).
 */
bool isCanonical(const LinearCode &code);

} // namespace beer::ecc

#endif // BEER_ECC_CODE_EQUIV_HH
