#include "ecc/decoder.hh"

#include "util/logging.hh"

namespace beer::ecc
{

using gf2::BitVec;

DecodeResult
decode(const LinearCode &code, const BitVec &received)
{
    DecodeResult out;
    out.codeword = received;

    const BitVec s = code.syndrome(received);
    if (!s.isZero()) {
        const std::size_t pos = code.findColumn(s);
        if (pos < code.n()) {
            out.codeword.flip(pos);
            out.flippedBit = pos;
        } else {
            out.detectedUncorrectable = true;
        }
    }
    out.dataword = code.extractData(out.codeword);
    return out;
}

std::string
outcomeName(DecodeOutcome outcome)
{
    switch (outcome) {
      case DecodeOutcome::NoError:
        return "No error";
      case DecodeOutcome::Corrected:
        return "Correctable";
      case DecodeOutcome::PartialCorrection:
        return "Partial correction";
      case DecodeOutcome::Miscorrection:
        return "Miscorrection";
      case DecodeOutcome::SilentCorruption:
        return "Silent corruption";
      case DecodeOutcome::DetectedUncorrectable:
        return "Detected uncorrectable";
    }
    return "?";
}

DecodeOutcome
classify(const LinearCode &code, const BitVec &original,
         const BitVec &received, const DecodeResult &result)
{
    (void)code;
    const BitVec raw_error = original ^ received;
    const std::size_t raw_count = raw_error.popcount();

    if (raw_count == 0) {
        // A valid codeword has a zero syndrome; the decoder never acts.
        BEER_ASSERT(result.flippedBit == SIZE_MAX);
        return DecodeOutcome::NoError;
    }

    if (result.flippedBit == SIZE_MAX) {
        return result.detectedUncorrectable
                   ? DecodeOutcome::DetectedUncorrectable
                   : DecodeOutcome::SilentCorruption;
    }

    const bool flipped_real_error = raw_error.get(result.flippedBit);
    if (!flipped_real_error)
        return DecodeOutcome::Miscorrection;
    // For SEC codes a single raw error always decodes to the true
    // codeword, so Corrected is exact, not just "flipped a real error".
    return raw_count == 1 ? DecodeOutcome::Corrected
                          : DecodeOutcome::PartialCorrection;
}

} // namespace beer::ecc
