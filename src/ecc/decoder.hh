/**
 * @file
 * Syndrome decoding and decode-outcome classification.
 *
 * The decoder implements the standard on-die ECC behaviour described in
 * Section 3.3 of the paper: compute s = H*c'; if s is zero do nothing;
 * if s matches an H column flip that bit (even if the "correction" is
 * wrong); if s matches no column (possible only for shortened codes) do
 * nothing. Classification against the ground-truth codeword reproduces
 * the paper's taxonomy: silent data corruption, partial correction, and
 * miscorrection.
 */

#ifndef BEER_ECC_DECODER_HH
#define BEER_ECC_DECODER_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "ecc/linear_code.hh"
#include "gf2/bitvec.hh"

namespace beer::ecc
{

/** Result of decoding one (possibly erroneous) codeword. */
struct DecodeResult
{
    /** Post-correction dataword (what the DRAM bus would return). */
    gf2::BitVec dataword;
    /** Post-correction codeword (internal view, for simulation only). */
    gf2::BitVec codeword;
    /** Codeword position the decoder flipped, or n if none. */
    std::size_t flippedBit = SIZE_MAX;
    /** True iff the syndrome was nonzero but matched no H column. */
    bool detectedUncorrectable = false;
};

/** Decode @p received with @p code's syndrome decoder. */
DecodeResult decode(const LinearCode &code, const gf2::BitVec &received);

/**
 * Ground-truth classification of a decode event (simulation only; a
 * real chip reveals none of this).
 */
enum class DecodeOutcome
{
    /** No raw errors, none introduced. */
    NoError,
    /** All raw errors corrected (exactly one raw error for SEC). */
    Corrected,
    /** Uncorrectable raw errors; decoder fixed one of them. */
    PartialCorrection,
    /** Decoder flipped a bit that had no raw error. */
    Miscorrection,
    /** Nonzero raw error with zero syndrome: slipped through silently. */
    SilentCorruption,
    /** Nonzero syndrome matching no column; decoder did nothing. */
    DetectedUncorrectable,
};

/** Human-readable outcome name (used by the Table 1 bench). */
std::string outcomeName(DecodeOutcome outcome);

/**
 * Classify a decode event given the transmitted codeword.
 *
 * @param code      the ECC code
 * @param original  the error-free codeword that was stored
 * @param received  the codeword after raw errors
 * @param result    output of decode(code, received)
 */
DecodeOutcome classify(const LinearCode &code,
                       const gf2::BitVec &original,
                       const gf2::BitVec &received,
                       const DecodeResult &result);

} // namespace beer::ecc

#endif // BEER_ECC_DECODER_HH
