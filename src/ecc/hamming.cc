#include "ecc/hamming.hh"

#include <algorithm>
#include <vector>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace beer::ecc
{

using gf2::BitVec;
using gf2::Matrix;

std::size_t
parityBitsForDataBits(std::size_t k)
{
    BEER_ASSERT(k >= 1);
    std::size_t p = 2;
    while (((std::size_t)1 << p) - 1 - p < k)
        ++p;
    return p;
}

bool
isFullLengthDatawordLength(std::size_t k)
{
    const std::size_t p = parityBitsForDataBits(k);
    return k == ((std::size_t)1 << p) - 1 - p;
}

namespace
{

/** All weight->=2 syndromes for p parity bits, as integers. */
std::vector<std::size_t>
dataColumnCandidates(std::size_t p)
{
    std::vector<std::size_t> out;
    for (std::size_t v = 1; v < ((std::size_t)1 << p); ++v)
        if (util::popcount64(v) >= 2)
            out.push_back(v);
    return out;
}

LinearCode
codeFromColumnIndices(std::size_t k, std::size_t p,
                      const std::vector<std::size_t> &cols)
{
    Matrix pm(p, k);
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t r = 0; r < p; ++r)
            if ((cols[c] >> r) & 1)
                pm.set(r, c, true);
    return LinearCode(std::move(pm));
}

} // anonymous namespace

LinearCode
randomSecCode(std::size_t k, util::Rng &rng)
{
    const std::size_t p = parityBitsForDataBits(k);
    std::vector<std::size_t> candidates = dataColumnCandidates(p);
    BEER_ASSERT(candidates.size() >= k);
    // Partial Fisher-Yates: choose k distinct candidates in random order.
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j =
            i + (std::size_t)rng.below(candidates.size() - i);
        std::swap(candidates[i], candidates[j]);
    }
    candidates.resize(k);
    return codeFromColumnIndices(k, p, candidates);
}

LinearCode
canonicalSecCode(std::size_t k)
{
    const std::size_t p = parityBitsForDataBits(k);
    std::vector<std::size_t> candidates = dataColumnCandidates(p);
    BEER_ASSERT(candidates.size() >= k);
    candidates.resize(k);
    return codeFromColumnIndices(k, p, candidates);
}

} // namespace beer::ecc
