/**
 * @file
 * Construction of single-error-correcting (SEC) Hamming codes.
 *
 * On-die ECC uses SEC Hamming codes (64- or 128-bit datawords in known
 * implementations). The BEER evaluation sweeps both full-length codes
 * (k = 2^p - 1 - p) and shortened codes; this module constructs random
 * representatives of either kind, which is how the paper samples the
 * design space of (2^p - 1 - p choose k) * k! possible ECC functions.
 */

#ifndef BEER_ECC_HAMMING_HH
#define BEER_ECC_HAMMING_HH

#include <cstddef>

#include "ecc/linear_code.hh"
#include "util/rng.hh"

namespace beer::ecc
{

/** Smallest parity-bit count p with 2^p - 1 - p >= k. */
std::size_t parityBitsForDataBits(std::size_t k);

/**
 * Construct a uniformly random SEC Hamming code with @p k data bits.
 *
 * Parity-bit count is the minimum for k. Data columns are a random
 * selection (in random order) of the weight->=2 syndromes, so the result
 * ranges over the full design space of standard-form SEC functions.
 */
LinearCode randomSecCode(std::size_t k, util::Rng &rng);

/**
 * The canonical SEC Hamming code with @p k data bits: data columns are
 * the weight->=2 syndromes in ascending integer order. Deterministic;
 * used for reproducible examples and tests.
 */
LinearCode canonicalSecCode(std::size_t k);

/** True iff @p k corresponds to a full-length code (k = 2^p - 1 - p). */
bool isFullLengthDatawordLength(std::size_t k);

} // namespace beer::ecc

#endif // BEER_ECC_HAMMING_HH
