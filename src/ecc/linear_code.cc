#include "ecc/linear_code.hh"

#include "util/logging.hh"

namespace beer::ecc
{

using gf2::BitVec;
using gf2::Matrix;

std::size_t
syndromeIndex(const BitVec &syndrome)
{
    BEER_ASSERT(syndrome.size() <= 24);
    std::size_t idx = 0;
    for (std::size_t r = 0; r < syndrome.size(); ++r)
        if (syndrome.get(r))
            idx |= (std::size_t)1 << r;
    return idx;
}

LinearCode::LinearCode(Matrix p_matrix)
    : p_(std::move(p_matrix)),
      k_(p_.cols()),
      n_(p_.cols() + p_.rows())
{
    const std::size_t parity = p_.rows();
    BEER_ASSERT(parity >= 1 && k_ >= 1);
    BEER_ASSERT(parity <= 24);

    syndromeToPosition_.assign((std::size_t)1 << parity,
                               (std::uint32_t)n_);
    // Parity columns are the identity; fill them first so that data
    // columns (checked for validity elsewhere) take precedence when a
    // malformed code duplicates a unit column.
    for (std::size_t r = 0; r < parity; ++r)
        syndromeToPosition_[(std::size_t)1 << r] =
            (std::uint32_t)(k_ + r);
    for (std::size_t c = 0; c < k_; ++c) {
        const std::size_t idx = syndromeIndex(p_.col(c));
        syndromeToPosition_[idx] = (std::uint32_t)c;
    }
}

Matrix
LinearCode::parityCheckMatrix() const
{
    return Matrix::hconcat(p_, Matrix::identity(p_.rows()));
}

Matrix
LinearCode::generatorMatrix() const
{
    return Matrix::vconcat(Matrix::identity(k_), p_);
}

BitVec
LinearCode::encode(const BitVec &dataword) const
{
    BEER_ASSERT(dataword.size() == k_);
    return dataword.concat(p_.mulVec(dataword));
}

BitVec
LinearCode::parityBits(const BitVec &dataword) const
{
    BEER_ASSERT(dataword.size() == k_);
    return p_.mulVec(dataword);
}

BitVec
LinearCode::extractData(const BitVec &codeword) const
{
    BEER_ASSERT(codeword.size() == n_);
    return codeword.slice(0, k_);
}

BitVec
LinearCode::syndrome(const BitVec &word) const
{
    BEER_ASSERT(word.size() == n_);
    // H * c = P * d + parity(c).
    BitVec s = p_.mulVec(word.slice(0, k_));
    s ^= word.slice(k_, n_ - k_);
    return s;
}

BitVec
LinearCode::hColumn(std::size_t i) const
{
    BEER_ASSERT(i < n_);
    if (i < k_)
        return p_.col(i);
    return BitVec::unit(n_ - k_, i - k_);
}

std::size_t
LinearCode::findColumn(const BitVec &syndrome) const
{
    BEER_ASSERT(syndrome.size() == n_ - k_);
    if (syndrome.isZero())
        return n_;
    return syndromeToPosition_[syndromeIndex(syndrome)];
}

bool
LinearCode::isValidSec() const
{
    // All H columns distinct & nonzero. Parity columns are distinct
    // units by construction, so check: no zero/weight-1 data column and
    // no duplicate data columns.
    std::vector<bool> seen((std::size_t)1 << p_.rows(), false);
    for (std::size_t r = 0; r < p_.rows(); ++r)
        seen[(std::size_t)1 << r] = true;
    for (std::size_t c = 0; c < k_; ++c) {
        const std::size_t idx = syndromeIndex(p_.col(c));
        if (idx == 0 || seen[idx])
            return false;
        seen[idx] = true;
    }
    return true;
}

bool
LinearCode::isFullLength() const
{
    const std::size_t parity = p_.rows();
    return k_ == ((std::size_t)1 << parity) - 1 - parity;
}

std::string
LinearCode::toString() const
{
    return parityCheckMatrix().toString();
}

LinearCode
paperExampleCode()
{
    // Equation 1 of the paper: H = [1110 100 / 1101 010 / 1011 001].
    return LinearCode(Matrix{
        {1, 1, 1, 0},
        {1, 1, 0, 1},
        {1, 0, 1, 1},
    });
}

} // namespace beer::ecc
