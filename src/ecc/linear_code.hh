/**
 * @file
 * Systematic linear block codes in standard form.
 *
 * Following the paper's formalization (Section 4.2.1), every code is
 * represented by the sub-matrix P of its standard-form parity-check
 * matrix H = [P | I]: codewords are c = [d | P*d] and the generator is
 * G^T = [I | P^T]. On-die ECC exposes only data bits, so all externally
 * distinguishable codes have a unique representative of this form (up to
 * a permutation of the rows of P; see code_equiv.hh).
 */

#ifndef BEER_ECC_LINEAR_CODE_HH
#define BEER_ECC_LINEAR_CODE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "gf2/bitvec.hh"
#include "gf2/matrix.hh"

namespace beer::ecc
{

/** A systematic (n, k) linear block code in standard form. */
class LinearCode
{
  public:
    /**
     * Build from the P sub-matrix.
     *
     * @param p_matrix (n-k) x k matrix mapping data bits to parity bits
     */
    explicit LinearCode(gf2::Matrix p_matrix);

    /** Number of data bits. */
    std::size_t k() const { return k_; }
    /** Codeword length. */
    std::size_t n() const { return n_; }
    /** Number of parity-check bits. */
    std::size_t numParityBits() const { return n_ - k_; }

    /** The P sub-matrix of H = [P | I]. */
    const gf2::Matrix &pMatrix() const { return p_; }

    /** Full parity-check matrix H = [P | I], (n-k) x n. */
    gf2::Matrix parityCheckMatrix() const;

    /** Generator matrix G, n x k, with c = G * d. */
    gf2::Matrix generatorMatrix() const;

    /** Encode a k-bit dataword into an n-bit codeword [d | P*d]. */
    gf2::BitVec encode(const gf2::BitVec &dataword) const;

    /** Just the parity bits P*d of a dataword. */
    gf2::BitVec parityBits(const gf2::BitVec &dataword) const;

    /** Data bits of a codeword (first k positions). */
    gf2::BitVec extractData(const gf2::BitVec &codeword) const;

    /** Syndrome H*c of an n-bit word. */
    gf2::BitVec syndrome(const gf2::BitVec &word) const;

    /**
     * Column i of H: P's column for data positions (i < k), the unit
     * vector e_{i-k} for parity positions.
     */
    gf2::BitVec hColumn(std::size_t i) const;

    /**
     * Codeword position whose H column equals @p syndrome, or n() if no
     * column matches (possible only for shortened codes).
     */
    std::size_t findColumn(const gf2::BitVec &syndrome) const;

    /**
     * True iff this is a valid single-error-correcting code: all H
     * columns distinct and nonzero (minimum distance >= 3).
     */
    bool isValidSec() const;

    /**
     * True iff the code is full-length for its parity-bit count, i.e.
     * every nonzero syndrome appears as a column of H
     * (k == 2^(n-k) - 1 - (n-k)).
     */
    bool isFullLength() const;

    bool operator==(const LinearCode &other) const
    {
        return p_ == other.p_;
    }

    /** Render H for docs/debugging. */
    std::string toString() const;

  private:
    gf2::Matrix p_;
    std::size_t k_;
    std::size_t n_;
    /**
     * Lookup table from syndrome (as an integer, bit r of the syndrome
     * = bit r of the index) to codeword position, or n_ if absent.
     * Sized 2^(n-k); the library targets on-die-ECC-scale codes where
     * n-k <= 24.
     */
    std::vector<std::uint32_t> syndromeToPosition_;
};

/** Convert a syndrome BitVec to its integer table index. */
std::size_t syndromeIndex(const gf2::BitVec &syndrome);

/** The (7,4,3) Hamming code used as the paper's running example (Eq. 1). */
LinearCode paperExampleCode();

} // namespace beer::ecc

#endif // BEER_ECC_LINEAR_CODE_HH
