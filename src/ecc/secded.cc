#include "ecc/secded.hh"

#include <vector>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace beer::ecc
{

using gf2::BitVec;
using gf2::Matrix;

std::size_t
SecDedCode::parityBitsFor(std::size_t k)
{
    BEER_ASSERT(k >= 1);
    // Need k distinct odd-weight-(>=3) columns: 2^(p-1) - p available.
    std::size_t p = 3;
    while ((((std::size_t)1 << (p - 1)) - p) < k)
        ++p;
    return p;
}

namespace
{

std::vector<std::size_t>
oddColumnCandidates(std::size_t p)
{
    std::vector<std::size_t> out;
    for (std::size_t v = 1; v < ((std::size_t)1 << p); ++v)
        if (util::popcount64(v) % 2 == 1 && util::popcount64(v) >= 3)
            out.push_back(v);
    return out;
}

LinearCode
buildFromColumns(std::size_t k, std::size_t p,
                 const std::vector<std::size_t> &cols)
{
    Matrix pm(p, k);
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t r = 0; r < p; ++r)
            if ((cols[c] >> r) & 1)
                pm.set(r, c, true);
    return LinearCode(std::move(pm));
}

} // anonymous namespace

SecDedCode
SecDedCode::minimal(std::size_t k)
{
    const std::size_t p = parityBitsFor(k);
    std::vector<std::size_t> cols = oddColumnCandidates(p);
    BEER_ASSERT(cols.size() >= k);
    cols.resize(k);
    return SecDedCode(buildFromColumns(k, p, cols));
}

SecDedCode
SecDedCode::random(std::size_t k, util::Rng &rng)
{
    return randomWithParity(k, parityBitsFor(k), rng);
}

SecDedCode
SecDedCode::randomWithParity(std::size_t k, std::size_t p,
                             util::Rng &rng)
{
    BEER_ASSERT(p >= parityBitsFor(k));
    std::vector<std::size_t> cols = oddColumnCandidates(p);
    BEER_ASSERT(cols.size() >= k);
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j = i + (std::size_t)rng.below(cols.size() - i);
        std::swap(cols[i], cols[j]);
    }
    cols.resize(k);
    return SecDedCode(buildFromColumns(k, p, cols));
}

SecDedCode::SecDedCode(LinearCode code)
    : code_(std::move(code))
{
    if (!isValidSecDed(code_))
        util::fatal("SecDedCode: matrix is not a valid SEC-DED form "
                    "(columns must be distinct and odd-weight)");
}

bool
SecDedCode::isValidSecDed(const LinearCode &code)
{
    std::vector<bool> seen((std::size_t)1 << code.numParityBits(),
                           false);
    for (std::size_t c = 0; c < code.n(); ++c) {
        const std::size_t idx = syndromeIndex(code.hColumn(c));
        if (idx == 0 || seen[idx])
            return false;
        if (util::popcount64(idx) % 2 == 0)
            return false;
        seen[idx] = true;
    }
    return true;
}

SecDedResult
SecDedCode::decode(const BitVec &received) const
{
    SecDedResult out;
    const BitVec syndrome = code_.syndrome(received);
    BitVec corrected = received;

    if (syndrome.isZero()) {
        out.outcome = SecDedOutcome::Clean;
    } else if (syndrome.popcount() % 2 == 1) {
        const std::size_t pos = code_.findColumn(syndrome);
        if (pos < code_.n()) {
            corrected.flip(pos);
            out.correctedBit = pos;
            out.outcome = SecDedOutcome::Corrected;
        } else {
            // Odd syndrome with no matching column: >= 3 errors
            // detected (possible for shortened codes).
            out.outcome = SecDedOutcome::Detected;
        }
    } else {
        out.outcome = SecDedOutcome::Detected;
    }
    out.dataword = code_.extractData(corrected);
    return out;
}

} // namespace beer::ecc
