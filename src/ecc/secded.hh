/**
 * @file
 * SEC-DED (single-error-correcting, double-error-detecting) codes in
 * the style of Hsiao, used as the rank-level ECC substrate for the
 * paper's Section 7.2.1 use case (co-designing a memory-controller
 * ECC with a known on-die ECC function) and for quantifying the
 * Son et al. interference problem the paper cites: an on-die
 * miscorrection can convert a detectable double error into an
 * undetectable (or miscorrected) triple error at the rank level.
 *
 * Construction: standard form H = [P | I] where data columns are
 * distinct odd-weight (>= 3) vectors and identity columns have weight
 * 1; every column having odd weight gives the code minimum distance 4
 * (SEC-DED), and a nonzero even-weight syndrome safely signals an
 * uncorrectable (double) error.
 */

#ifndef BEER_ECC_SECDED_HH
#define BEER_ECC_SECDED_HH

#include <cstddef>
#include <cstdint>

#include "ecc/linear_code.hh"
#include "util/rng.hh"

namespace beer::ecc
{

/** Outcome of a SEC-DED decode. */
enum class SecDedOutcome
{
    /** Zero syndrome: word accepted as-is. */
    Clean,
    /** Odd syndrome matching a column: single error corrected. */
    Corrected,
    /** Even nonzero syndrome (or unmatched odd): detected, no action. */
    Detected,
};

/** Result of decoding one word with a SEC-DED code. */
struct SecDedResult
{
    gf2::BitVec dataword;
    SecDedOutcome outcome = SecDedOutcome::Clean;
    /** Codeword position corrected, or n if none. */
    std::size_t correctedBit = SIZE_MAX;
};

/** A systematic SEC-DED code built on LinearCode's representation. */
class SecDedCode
{
  public:
    /** Construct with the minimum parity-bit count for @p k. */
    static SecDedCode minimal(std::size_t k);

    /** Random code over the odd-weight column design space. */
    static SecDedCode random(std::size_t k, util::Rng &rng);

    /**
     * Random code with an explicit parity-bit count @p p (>= the
     * minimum for k); used to hit an exact codeword length, e.g. to
     * match an inner code's dataword size in a two-level stack.
     */
    static SecDedCode randomWithParity(std::size_t k, std::size_t p,
                                       util::Rng &rng);

    /** Wrap an existing P matrix; fatal if not a valid SEC-DED form. */
    explicit SecDedCode(LinearCode code);

    const LinearCode &code() const { return code_; }
    std::size_t k() const { return code_.k(); }
    std::size_t n() const { return code_.n(); }

    gf2::BitVec encode(const gf2::BitVec &dataword) const
    {
        return code_.encode(dataword);
    }

    /** Decode with SEC-DED semantics (see file comment). */
    SecDedResult decode(const gf2::BitVec &received) const;

    /** True iff all columns are odd weight and distinct (distance 4). */
    static bool isValidSecDed(const LinearCode &code);

    /** Smallest parity-bit count for a SEC-DED code with k data bits. */
    static std::size_t parityBitsFor(std::size_t k);

  private:
    LinearCode code_;
};

} // namespace beer::ecc

#endif // BEER_ECC_SECDED_HH
