#include "ecc/two_level.hh"

#include "ecc/decoder.hh"
#include "util/logging.hh"

namespace beer::ecc
{

using gf2::BitVec;

TwoLevelStack::TwoLevelStack(LinearCode inner_code, SecDedCode outer_code)
    : inner(std::move(inner_code)), outer(std::move(outer_code))
{
    if (inner.k() != outer.n())
        util::fatal("TwoLevelStack: inner dataword length (%zu) must "
                    "equal outer codeword length (%zu)",
                    inner.k(), outer.n());
}

StackOutcome
TwoLevelStack::runWord(const BitVec &data, const BitVec &raw_errors) const
{
    BEER_ASSERT(data.size() == outer.k());
    BEER_ASSERT(raw_errors.size() == inner.n());

    // Encode through both levels, inject raw errors, decode back up.
    const BitVec outer_cw = outer.encode(data);
    const BitVec inner_cw = inner.encode(outer_cw);
    const BitVec received = inner_cw ^ raw_errors;
    const DecodeResult inner_out = decode(inner, received);
    const SecDedResult outer_out = outer.decode(inner_out.dataword);

    const bool data_ok = outer_out.dataword == data;
    switch (outer_out.outcome) {
      case SecDedOutcome::Clean:
        return data_ok ? StackOutcome::Correct
                       : StackOutcome::SilentDataCorruption;
      case SecDedOutcome::Corrected:
        return data_ok ? StackOutcome::CorrectAfterOuterFix
                       : StackOutcome::SilentDataCorruption;
      case SecDedOutcome::Detected:
        return StackOutcome::DetectedUnsafeData;
    }
    return StackOutcome::SilentDataCorruption; // unreachable
}

namespace
{

void
accumulate(HazardReport &report, StackOutcome outcome)
{
    ++report.patterns;
    switch (outcome) {
      case StackOutcome::Correct:
        ++report.correct;
        break;
      case StackOutcome::CorrectAfterOuterFix:
        ++report.correctedByOuter;
        break;
      case StackOutcome::DetectedUnsafeData:
        ++report.detected;
        break;
      case StackOutcome::SilentDataCorruption:
        ++report.silentCorruption;
        break;
    }
}

} // anonymous namespace

HazardReport
enumerateDoubleErrorOutcomes(const TwoLevelStack &stack,
                             const BitVec &data)
{
    HazardReport report;
    const std::size_t n = stack.inner.n();
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
            BitVec errors(n);
            errors.set(a, true);
            errors.set(b, true);
            accumulate(report, stack.runWord(data, errors));
        }
    }
    return report;
}

HazardReport
enumerateDoubleErrorOutcomesOuterOnly(const SecDedCode &outer,
                                      const BitVec &data)
{
    HazardReport report;
    const BitVec codeword = outer.encode(data);
    const std::size_t n = outer.n();
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
            BitVec received = codeword;
            received.flip(a);
            received.flip(b);
            const SecDedResult out = outer.decode(received);
            ++report.patterns;
            if (out.outcome == SecDedOutcome::Detected)
                ++report.detected;
            else if (out.dataword == data)
                ++report.correct; // cannot happen for distance-4 codes
            else
                ++report.silentCorruption;
        }
    }
    return report;
}

SecDedCode
coDesignOuterCode(const LinearCode &inner, std::size_t candidates,
                  util::Rng &rng, HazardReport *best_report)
{
    BEER_ASSERT(candidates >= 1);
    // Outer codeword length must equal the inner dataword length: pick
    // the largest data size that fits, padding parity if necessary.
    const std::size_t n_out = inner.k();
    std::size_t k_out = n_out > 4 ? n_out - 4 : 1;
    while (k_out + SecDedCode::parityBitsFor(k_out) > n_out)
        --k_out;
    BEER_ASSERT(k_out >= 1);
    const std::size_t p_out = n_out - k_out;
    BEER_ASSERT(SecDedCode::parityBitsFor(k_out) <= p_out);

    const BitVec data(k_out); // all-zero data; outcomes are
                              // data-independent for linear codes
    SecDedCode best = SecDedCode::randomWithParity(k_out, p_out, rng);
    HazardReport best_hazards;
    bool have_best = false;

    for (std::size_t i = 0; i < candidates; ++i) {
        SecDedCode candidate =
            SecDedCode::randomWithParity(k_out, p_out, rng);
        if (candidate.n() != n_out)
            util::fatal("coDesignOuterCode: size mismatch (%zu != %zu)",
                        candidate.n(), n_out);
        const TwoLevelStack stack(inner, candidate);
        const HazardReport hazards =
            enumerateDoubleErrorOutcomes(stack, data);
        if (!have_best ||
            hazards.silentCorruption < best_hazards.silentCorruption) {
            best = std::move(candidate);
            best_hazards = hazards;
            have_best = true;
        }
    }
    if (best_report)
        *best_report = best_hazards;
    return best;
}

} // namespace beer::ecc
