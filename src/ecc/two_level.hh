/**
 * @file
 * Two-level ECC stack: on-die SEC (inner) + rank-level SEC-DED
 * (outer), modeling the system organization of the paper's
 * Section 7.2.1 use case.
 *
 * The memory controller encodes data with the outer SEC-DED code; the
 * outer codeword is what the system writes to the chip, so it becomes
 * the on-die (inner) SEC code's dataword. Raw DRAM errors strike the
 * inner codeword; the inner decoder may miscorrect, handing the outer
 * decoder error patterns that raw DRAM alone could never produce —
 * the interference effect reported by Son et al. and cited by the
 * paper as a reason third parties need the on-die ECC function.
 *
 * Knowing the inner function (via BEER), a designer can enumerate
 * exactly which raw error patterns become outer-level hazards and
 * choose an outer code that minimizes them — the co-design procedure
 * benchmarked in bench/ablation_two_level_ecc.cc.
 */

#ifndef BEER_ECC_TWO_LEVEL_HH
#define BEER_ECC_TWO_LEVEL_HH

#include <cstddef>
#include <cstdint>

#include "ecc/linear_code.hh"
#include "ecc/secded.hh"
#include "util/rng.hh"

namespace beer::ecc
{

/** Final, system-visible outcome of one two-level decode. */
enum class StackOutcome
{
    /** Data correct, no alarm. */
    Correct,
    /** Data correct after outer correction. */
    CorrectAfterOuterFix,
    /** Outer ECC flagged an uncorrectable error (safe: no bad data). */
    DetectedUnsafeData,
    /** Data wrong and no alarm raised — the dangerous case. */
    SilentDataCorruption,
};

/** An inner (on-die SEC) + outer (rank SEC-DED) pair. */
struct TwoLevelStack
{
    /** On-die ECC; its dataword length must equal outer.n(). */
    LinearCode inner;
    SecDedCode outer;

    TwoLevelStack(LinearCode inner_code, SecDedCode outer_code);

    /** Controller data bits per stack word. */
    std::size_t dataBits() const { return outer.k(); }
    /** Physical cells per stack word. */
    std::size_t cellBits() const { return inner.n(); }

    /**
     * Push @p data through encode -> raw errors -> inner decode ->
     * outer decode and classify the result.
     *
     * @param raw_errors error pattern over the inner codeword (n_in
     *                   bits)
     */
    StackOutcome runWord(const gf2::BitVec &data,
                         const gf2::BitVec &raw_errors) const;
};

/** Outcome histogram over an enumeration of raw error patterns. */
struct HazardReport
{
    std::uint64_t patterns = 0;
    std::uint64_t correct = 0;
    std::uint64_t correctedByOuter = 0;
    std::uint64_t detected = 0;
    std::uint64_t silentCorruption = 0;

    double
    silentCorruptionRate() const
    {
        return patterns ? (double)silentCorruption / (double)patterns
                        : 0.0;
    }
};

/**
 * Enumerate every raw double-bit error pattern in the inner codeword
 * (the dominant uncorrectable-error case for SEC inner codes) and
 * classify the system-level outcome. Without an inner code, a double
 * error is always detected by SEC-DED; the inner decoder's
 * miscorrections are what make silent corruption possible.
 *
 * @param data controller data used for every trial
 */
HazardReport enumerateDoubleErrorOutcomes(const TwoLevelStack &stack,
                                          const gf2::BitVec &data);

/** The same enumeration for the outer code alone (no inner ECC). */
HazardReport enumerateDoubleErrorOutcomesOuterOnly(
    const SecDedCode &outer, const gf2::BitVec &data);

/**
 * BEER-enabled co-design: sample @p candidates random outer codes and
 * return the one with the fewest silent-corruption double-error
 * patterns against @p inner (requires knowing the inner function —
 * which is exactly what BEER provides).
 */
SecDedCode coDesignOuterCode(const LinearCode &inner,
                             std::size_t candidates, util::Rng &rng,
                             HazardReport *best_report = nullptr);

} // namespace beer::ecc

#endif // BEER_ECC_TWO_LEVEL_HH
