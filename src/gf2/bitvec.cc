#include "gf2/bitvec.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace beer::gf2
{

using util::lowMask64;
using util::wordsForBits;

BitVec::BitVec(std::size_t size)
    : size_(size), words_(wordsForBits(size), 0)
{
}

BitVec::BitVec(std::initializer_list<int> bits)
    : BitVec(bits.size())
{
    std::size_t i = 0;
    for (int b : bits)
        set(i++, b != 0);
}

BitVec
BitVec::fromString(const std::string &s)
{
    BitVec out(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        BEER_ASSERT(s[i] == '0' || s[i] == '1');
        out.set(i, s[i] == '1');
    }
    return out;
}

BitVec
BitVec::unit(std::size_t size, std::size_t i)
{
    BitVec out(size);
    out.set(i, true);
    return out;
}

BitVec
BitVec::ones(std::size_t size)
{
    BitVec out(size);
    for (auto &w : out.words_)
        w = ~0ULL;
    out.trimTail();
    return out;
}

void
BitVec::checkIndex(std::size_t i) const
{
    BEER_ASSERT(i < size_);
}

void
BitVec::checkSameSize(const BitVec &other) const
{
    BEER_ASSERT(size_ == other.size_);
}

void
BitVec::trimTail()
{
    const unsigned tail = size_ % 64;
    if (tail && !words_.empty())
        words_.back() &= lowMask64(tail);
}

bool
BitVec::get(std::size_t i) const
{
    checkIndex(i);
    return (words_[i / 64] >> (i % 64)) & 1;
}

void
BitVec::set(std::size_t i, bool value)
{
    checkIndex(i);
    const std::uint64_t mask = 1ULL << (i % 64);
    if (value)
        words_[i / 64] |= mask;
    else
        words_[i / 64] &= ~mask;
}

void
BitVec::flip(std::size_t i)
{
    checkIndex(i);
    words_[i / 64] ^= 1ULL << (i % 64);
}

void
BitVec::clear()
{
    for (auto &w : words_)
        w = 0;
}

bool
BitVec::isZero() const
{
    for (auto w : words_)
        if (w)
            return false;
    return true;
}

std::size_t
BitVec::popcount() const
{
    std::size_t total = 0;
    for (auto w : words_)
        total += (std::size_t)util::popcount64(w);
    return total;
}

std::size_t
BitVec::firstSet() const
{
    for (std::size_t wi = 0; wi < words_.size(); ++wi)
        if (words_[wi])
            return wi * 64 + (std::size_t)util::ctz64(words_[wi]);
    return size_;
}

std::vector<std::size_t>
BitVec::support() const
{
    std::vector<std::size_t> out;
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
        std::uint64_t w = words_[wi];
        while (w) {
            out.push_back(wi * 64 + (std::size_t)util::ctz64(w));
            w &= w - 1;
        }
    }
    return out;
}

BitVec &
BitVec::operator^=(const BitVec &other)
{
    checkSameSize(other);
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] ^= other.words_[i];
    return *this;
}

BitVec
BitVec::operator^(const BitVec &other) const
{
    BitVec out = *this;
    out ^= other;
    return out;
}

BitVec &
BitVec::operator&=(const BitVec &other)
{
    checkSameSize(other);
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] &= other.words_[i];
    return *this;
}

BitVec
BitVec::operator&(const BitVec &other) const
{
    BitVec out = *this;
    out &= other;
    return out;
}

BitVec &
BitVec::operator|=(const BitVec &other)
{
    checkSameSize(other);
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] |= other.words_[i];
    return *this;
}

BitVec
BitVec::operator|(const BitVec &other) const
{
    BitVec out = *this;
    out |= other;
    return out;
}

bool
BitVec::dot(const BitVec &other) const
{
    checkSameSize(other);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < words_.size(); ++i)
        acc ^= words_[i] & other.words_[i];
    return util::parity64(acc);
}

bool
BitVec::isSubsetOf(const BitVec &other) const
{
    checkSameSize(other);
    for (std::size_t i = 0; i < words_.size(); ++i)
        if (words_[i] & ~other.words_[i])
            return false;
    return true;
}

BitVec
BitVec::concat(const BitVec &other) const
{
    BitVec out(size_ + other.size_);
    for (std::size_t i = 0; i < size_; ++i)
        out.set(i, get(i));
    for (std::size_t i = 0; i < other.size_; ++i)
        out.set(size_ + i, other.get(i));
    return out;
}

BitVec
BitVec::slice(std::size_t start, std::size_t len) const
{
    BEER_ASSERT(start + len <= size_);
    BitVec out(len);
    for (std::size_t i = 0; i < len; ++i)
        out.set(i, get(start + i));
    return out;
}

bool
BitVec::operator==(const BitVec &other) const
{
    return size_ == other.size_ && words_ == other.words_;
}

std::strong_ordering
BitVec::operator<=>(const BitVec &other) const
{
    // Bit 0 is most significant: compare bit-reversed words.
    const std::size_t n = std::min(size_, other.size_);
    for (std::size_t i = 0; i < n; ++i) {
        const int a = get(i);
        const int b = other.get(i);
        if (a != b)
            return a <=> b;
    }
    return size_ <=> other.size_;
}

std::string
BitVec::toString() const
{
    std::string out(size_, '0');
    for (std::size_t i = 0; i < size_; ++i)
        if (get(i))
            out[i] = '1';
    return out;
}

std::size_t
BitVec::hash() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL ^ size_;
    for (auto w : words_) {
        h ^= w;
        h *= 0x100000001b3ULL;
        h ^= h >> 29;
    }
    return (std::size_t)h;
}

} // namespace beer::gf2
