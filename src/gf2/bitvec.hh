/**
 * @file
 * Packed dynamic bit vector over GF(2).
 *
 * BitVec is the element type for codewords, syndromes, error patterns,
 * and matrix rows throughout the library. Arithmetic is word-parallel.
 */

#ifndef BEER_GF2_BITVEC_HH
#define BEER_GF2_BITVEC_HH

#include <compare>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace beer::gf2
{

/** A fixed-size vector over GF(2), packed 64 bits per word. */
class BitVec
{
  public:
    /** Empty vector of length zero. */
    BitVec() = default;

    /** Zero vector of @p size bits. */
    explicit BitVec(std::size_t size);

    /** Construct from 0/1 initializer list, e.g. BitVec({1,0,1}). */
    BitVec(std::initializer_list<int> bits);

    /** Parse from a string of '0'/'1' characters, index 0 first. */
    static BitVec fromString(const std::string &s);

    /** Unit vector e_i of length @p size. */
    static BitVec unit(std::size_t size, std::size_t i);

    /** Vector with all bits set. */
    static BitVec ones(std::size_t size);

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    bool get(std::size_t i) const;
    void set(std::size_t i, bool value);
    void flip(std::size_t i);

    /** Set all bits to zero. */
    void clear();

    /** True iff every bit is zero. */
    bool isZero() const;

    /** Number of set bits. */
    std::size_t popcount() const;

    /** Index of the lowest set bit, or size() if none. */
    std::size_t firstSet() const;

    /** Indices of all set bits, ascending. */
    std::vector<std::size_t> support() const;

    /** XOR-accumulate @p other into this vector (sizes must match). */
    BitVec &operator^=(const BitVec &other);
    BitVec operator^(const BitVec &other) const;

    /** AND-accumulate (set intersection of supports). */
    BitVec &operator&=(const BitVec &other);
    BitVec operator&(const BitVec &other) const;

    /** OR-accumulate (set union of supports). */
    BitVec &operator|=(const BitVec &other);
    BitVec operator|(const BitVec &other) const;

    /** Inner product over GF(2): parity of the AND of both vectors. */
    bool dot(const BitVec &other) const;

    /** True iff support(this) is a subset of support(other). */
    bool isSubsetOf(const BitVec &other) const;

    /** Concatenate two vectors: [this | other]. */
    BitVec concat(const BitVec &other) const;

    /** Sub-vector of @p len bits starting at @p start. */
    BitVec slice(std::size_t start, std::size_t len) const;

    bool operator==(const BitVec &other) const;

    /**
     * Lexicographic order with bit 0 most significant, so that sorting
     * yields a canonical order independent of vector length padding.
     */
    std::strong_ordering operator<=>(const BitVec &other) const;

    /** Render as a '0'/'1' string, index 0 first. */
    std::string toString() const;

    /** FNV-1a style hash for use in unordered containers. */
    std::size_t hash() const;

    /** Raw word access for performance-critical loops. */
    const std::uint64_t *words() const { return words_.data(); }
    std::uint64_t *words() { return words_.data(); }
    std::size_t numWords() const { return words_.size(); }

  private:
    void checkIndex(std::size_t i) const;
    void checkSameSize(const BitVec &other) const;
    /** Clear any set bits beyond size_ in the last word. */
    void trimTail();

    std::size_t size_ = 0;
    std::vector<std::uint64_t> words_;
};

/** Hash functor for unordered containers keyed by BitVec. */
struct BitVecHash
{
    std::size_t operator()(const BitVec &v) const { return v.hash(); }
};

} // namespace beer::gf2

#endif // BEER_GF2_BITVEC_HH
