#include "gf2/matrix.hh"

#include <cstdint>
#include <unordered_set>

#include "util/logging.hh"

namespace beer::gf2
{

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows, BitVec(cols))
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<int>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_);
    for (const auto &r : rows) {
        BEER_ASSERT(r.size() == cols_);
        data_.emplace_back(r);
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix out(n, n);
    for (std::size_t i = 0; i < n; ++i)
        out.set(i, i, true);
    return out;
}

Matrix
Matrix::random(std::size_t rows, std::size_t cols, util::Rng &rng)
{
    Matrix out(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        std::uint64_t word = 0;
        for (std::size_t c = 0; c < cols; ++c) {
            if (c % 64 == 0)
                word = rng.next();
            out.data_[r].set(c, (word >> (c % 64)) & 1);
        }
    }
    return out;
}

Matrix
Matrix::hconcat(const Matrix &a, const Matrix &b)
{
    BEER_ASSERT(a.rows() == b.rows());
    Matrix out(a.rows(), a.cols() + b.cols());
    for (std::size_t r = 0; r < a.rows(); ++r)
        out.data_[r] = a.data_[r].concat(b.data_[r]);
    return out;
}

Matrix
Matrix::vconcat(const Matrix &a, const Matrix &b)
{
    BEER_ASSERT(a.cols() == b.cols());
    Matrix out(a.rows() + b.rows(), a.cols());
    for (std::size_t r = 0; r < a.rows(); ++r)
        out.data_[r] = a.data_[r];
    for (std::size_t r = 0; r < b.rows(); ++r)
        out.data_[a.rows() + r] = b.data_[r];
    return out;
}

bool
Matrix::get(std::size_t r, std::size_t c) const
{
    BEER_ASSERT(r < rows_);
    return data_[r].get(c);
}

void
Matrix::set(std::size_t r, std::size_t c, bool value)
{
    BEER_ASSERT(r < rows_);
    data_[r].set(c, value);
}

const BitVec &
Matrix::row(std::size_t r) const
{
    BEER_ASSERT(r < rows_);
    return data_[r];
}

BitVec &
Matrix::row(std::size_t r)
{
    BEER_ASSERT(r < rows_);
    return data_[r];
}

BitVec
Matrix::col(std::size_t c) const
{
    BEER_ASSERT(c < cols_);
    BitVec out(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        out.set(r, data_[r].get(c));
    return out;
}

void
Matrix::setCol(std::size_t c, const BitVec &v)
{
    BEER_ASSERT(c < cols_ && v.size() == rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        data_[r].set(c, v.get(r));
}

BitVec
Matrix::mulVec(const BitVec &v) const
{
    BEER_ASSERT(v.size() == cols_);
    BitVec out(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        out.set(r, data_[r].dot(v));
    return out;
}

BitVec
Matrix::mulVecLeft(const BitVec &v) const
{
    BEER_ASSERT(v.size() == rows_);
    BitVec out(cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        if (v.get(r))
            out ^= data_[r];
    return out;
}

Matrix
Matrix::mul(const Matrix &other) const
{
    BEER_ASSERT(cols_ == other.rows());
    Matrix out(rows_, other.cols());
    for (std::size_t r = 0; r < rows_; ++r)
        out.data_[r] = other.mulVecLeft(data_[r]);
    return out;
}

Matrix
Matrix::transpose() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            if (data_[r].get(c))
                out.set(c, r, true);
    return out;
}

Matrix
Matrix::colRange(std::size_t first, std::size_t count) const
{
    BEER_ASSERT(first + count <= cols_);
    Matrix out(rows_, count);
    for (std::size_t r = 0; r < rows_; ++r)
        out.data_[r] = data_[r].slice(first, count);
    return out;
}

std::size_t
Matrix::rank() const
{
    const Matrix red = rref();
    std::size_t nonzero = 0;
    for (std::size_t r = 0; r < rows_; ++r)
        if (!red.data_[r].isZero())
            ++nonzero;
    return nonzero;
}

std::string
Matrix::toString() const
{
    std::string out;
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            out += data_[r].get(c) ? '1' : '0';
            if (c + 1 < cols_)
                out += ' ';
        }
        out += '\n';
    }
    return out;
}

Matrix
Matrix::rref() const
{
    Matrix m = *this;
    std::size_t pivot_row = 0;
    for (std::size_t c = 0; c < cols_ && pivot_row < rows_; ++c) {
        std::size_t sel = pivot_row;
        while (sel < rows_ && !m.data_[sel].get(c))
            ++sel;
        if (sel == rows_)
            continue;
        std::swap(m.data_[pivot_row], m.data_[sel]);
        for (std::size_t r = 0; r < rows_; ++r)
            if (r != pivot_row && m.data_[r].get(c))
                m.data_[r] ^= m.data_[pivot_row];
        ++pivot_row;
    }
    return m;
}

std::optional<BitVec>
Matrix::solve(const BitVec &b) const
{
    BEER_ASSERT(b.size() == rows_);
    // Augment [M | b] and reduce.
    Matrix aug(rows_, cols_ + 1);
    for (std::size_t r = 0; r < rows_; ++r) {
        aug.data_[r] = data_[r].concat(BitVec(1));
        aug.data_[r].set(cols_, b.get(r));
    }
    const Matrix red = aug.rref();

    BitVec x(cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        const std::size_t lead = red.data_[r].firstSet();
        if (lead == red.cols_)
            continue; // all-zero row
        if (lead == cols_)
            return std::nullopt; // 0 = 1: inconsistent
        x.set(lead, red.data_[r].get(cols_));
    }
    return x;
}

std::vector<BitVec>
Matrix::nullBasis() const
{
    const Matrix red = rref();
    std::vector<std::size_t> pivot_of_col(cols_, SIZE_MAX);
    std::vector<bool> is_pivot(cols_, false);
    for (std::size_t r = 0; r < rows_; ++r) {
        const std::size_t lead = red.data_[r].firstSet();
        if (lead < cols_) {
            is_pivot[lead] = true;
            pivot_of_col[lead] = r;
        }
    }

    std::vector<BitVec> basis;
    for (std::size_t free_col = 0; free_col < cols_; ++free_col) {
        if (is_pivot[free_col])
            continue;
        BitVec v(cols_);
        v.set(free_col, true);
        for (std::size_t c = 0; c < cols_; ++c) {
            if (!is_pivot[c])
                continue;
            const std::size_t r = pivot_of_col[c];
            if (red.data_[r].get(free_col))
                v.set(c, true);
        }
        basis.push_back(v);
    }
    return basis;
}

std::optional<Matrix>
Matrix::inverse() const
{
    BEER_ASSERT(rows_ == cols_);
    Matrix aug = hconcat(*this, identity(rows_));
    const Matrix red = aug.rref();
    // The left half must be the identity.
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            if (red.get(r, c) != (r == c))
                return std::nullopt;
    return red.colRange(cols_, cols_);
}

bool
Matrix::hasDuplicateColumns() const
{
    std::unordered_set<BitVec, BitVecHash> seen;
    for (std::size_t c = 0; c < cols_; ++c)
        if (!seen.insert(col(c)).second)
            return true;
    return false;
}

bool
Matrix::hasZeroColumn() const
{
    for (std::size_t c = 0; c < cols_; ++c)
        if (col(c).isZero())
            return true;
    return false;
}

bool
Matrix::operator==(const Matrix &other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
}

} // namespace beer::gf2
