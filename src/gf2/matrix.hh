/**
 * @file
 * Dense matrix over GF(2) with the operations the ECC and BEER layers
 * need: multiplication, rank, row reduction, linear solves, and standard
 * form manipulation of parity-check matrices.
 */

#ifndef BEER_GF2_MATRIX_HH
#define BEER_GF2_MATRIX_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "gf2/bitvec.hh"
#include "util/rng.hh"

namespace beer::gf2
{

/** Row-major dense GF(2) matrix built from packed BitVec rows. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero matrix of @p rows x @p cols. */
    Matrix(std::size_t rows, std::size_t cols);

    /**
     * Construct from 0/1 initializer rows, e.g.
     * Matrix({{1,0},{0,1}}).
     */
    Matrix(std::initializer_list<std::initializer_list<int>> rows);

    /** Identity matrix of size @p n. */
    static Matrix identity(std::size_t n);

    /** Uniform-random matrix. */
    static Matrix random(std::size_t rows, std::size_t cols,
                         util::Rng &rng);

    /** Horizontal concatenation [a | b]; row counts must match. */
    static Matrix hconcat(const Matrix &a, const Matrix &b);

    /** Vertical concatenation [a ; b]; column counts must match. */
    static Matrix vconcat(const Matrix &a, const Matrix &b);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    bool get(std::size_t r, std::size_t c) const;
    void set(std::size_t r, std::size_t c, bool value);

    const BitVec &row(std::size_t r) const;
    BitVec &row(std::size_t r);
    /** Column @p c as a BitVec of length rows(). */
    BitVec col(std::size_t c) const;
    void setCol(std::size_t c, const BitVec &v);

    /** Matrix-vector product over GF(2); v.size() must equal cols(). */
    BitVec mulVec(const BitVec &v) const;

    /** Vector-matrix product v^T * M; v.size() must equal rows(). */
    BitVec mulVecLeft(const BitVec &v) const;

    /** Matrix product over GF(2). */
    Matrix mul(const Matrix &other) const;

    Matrix transpose() const;

    /** Submatrix of columns [first, first+count). */
    Matrix colRange(std::size_t first, std::size_t count) const;

    /** Rank via Gaussian elimination on a copy. */
    std::size_t rank() const;

    /** Reduced row-echelon form (returns a new matrix). */
    Matrix rref() const;

    /**
     * Solve M x = b for one solution.
     * @return std::nullopt if the system is inconsistent.
     */
    std::optional<BitVec> solve(const BitVec &b) const;

    /** Basis of the null space {x : M x = 0}. */
    std::vector<BitVec> nullBasis() const;

    /**
     * Inverse of a square full-rank matrix.
     * @return std::nullopt if singular.
     */
    std::optional<Matrix> inverse() const;

    /** True iff any two columns are equal. */
    bool hasDuplicateColumns() const;

    /** True iff some column is all-zero. */
    bool hasZeroColumn() const;

    bool operator==(const Matrix &other) const;

    /** Multi-line "0 1 0 / 1 0 1" rendering for debugging and docs. */
    std::string toString() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<BitVec> data_;
};

} // namespace beer::gf2

#endif // BEER_GF2_MATRIX_HH
