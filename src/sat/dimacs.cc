#include "sat/dimacs.hh"

#include <sstream>
#include <string>

#include "sat/solver.hh"
#include "util/logging.hh"

namespace beer::sat
{

Cnf
parseDimacs(std::istream &in)
{
    Cnf cnf;
    std::string line;
    std::size_t expected_clauses = 0;
    bool header_seen = false;
    std::vector<Lit> current;

    while (std::getline(in, line)) {
        if (line.empty() || line[0] == 'c')
            continue;
        if (line[0] == 'p') {
            std::istringstream ss(line);
            std::string p, fmt;
            ss >> p >> fmt >> cnf.numVars >> expected_clauses;
            if (fmt != "cnf")
                util::fatal("DIMACS: unsupported format '%s'",
                            fmt.c_str());
            header_seen = true;
            continue;
        }
        if (!header_seen)
            util::fatal("DIMACS: clause before 'p cnf' header");
        std::istringstream ss(line);
        long v;
        while (ss >> v) {
            if (v == 0) {
                cnf.clauses.push_back(current);
                current.clear();
            } else {
                const auto var = (Var)(std::labs(v) - 1);
                if ((std::size_t)var >= cnf.numVars)
                    util::fatal("DIMACS: variable %ld out of range", v);
                current.push_back(mkLit(var, v < 0));
            }
        }
    }
    if (!current.empty())
        cnf.clauses.push_back(current);
    if (expected_clauses && cnf.clauses.size() != expected_clauses)
        util::warn("DIMACS: header promised %zu clauses, found %zu",
                   expected_clauses, cnf.clauses.size());
    return cnf;
}

void
printDimacs(const Cnf &cnf, std::ostream &out)
{
    out << "p cnf " << cnf.numVars << ' ' << cnf.clauses.size() << '\n';
    for (const auto &clause : cnf.clauses) {
        for (Lit l : clause)
            out << (l.sign() ? -(long)(l.var() + 1) : (long)(l.var() + 1))
                << ' ';
        out << "0\n";
    }
}

void
loadCnf(const Cnf &cnf, Solver &solver)
{
    const auto base = (Var)solver.numVars();
    for (std::size_t i = 0; i < cnf.numVars; ++i)
        solver.newVar();
    for (const auto &clause : cnf.clauses) {
        std::vector<Lit> shifted;
        shifted.reserve(clause.size());
        for (Lit l : clause)
            shifted.push_back(mkLit(l.var() + base, l.sign()));
        solver.addClause(std::move(shifted));
    }
}

Cnf
extractCnf(const Solver &solver)
{
    Cnf cnf;
    cnf.numVars = solver.numVars();
    cnf.clauses = solver.problemClauses();
    return cnf;
}

} // namespace beer::sat
