/**
 * @file
 * DIMACS CNF parsing/printing. Used by the SAT unit tests to feed
 * reference formulas to the solver and to dump BEER instances for
 * inspection by external tools.
 */

#ifndef BEER_SAT_DIMACS_HH
#define BEER_SAT_DIMACS_HH

#include <istream>
#include <ostream>
#include <vector>

#include "sat/types.hh"

namespace beer::sat
{

class Solver;

/** A CNF formula as a plain clause list. */
struct Cnf
{
    std::size_t numVars = 0;
    std::vector<std::vector<Lit>> clauses;
};

/**
 * Parse DIMACS CNF from @p in.
 *
 * Fatal on malformed input (this is a test/debug path, not a user
 * input path).
 */
Cnf parseDimacs(std::istream &in);

/** Print @p cnf in DIMACS format. */
void printDimacs(const Cnf &cnf, std::ostream &out);

/** Load a CNF into a fresh region of @p solver, creating variables. */
void loadCnf(const Cnf &cnf, Solver &solver);

/**
 * Snapshot @p solver's problem clauses (root units included, learned
 * clauses excluded) as a plain CNF, e.g. to cross-check a BEER
 * instance against an external solver.
 */
Cnf extractCnf(const Solver &solver);

} // namespace beer::sat

#endif // BEER_SAT_DIMACS_HH
