#include "sat/encoder.hh"

#include "util/logging.hh"

namespace beer::sat
{

Encoder::Encoder(Solver &solver)
    : solver_(solver)
{
    trueLit_ = mkLit(solver_.newVar());
    emit(trueLit_);  // permanent by construction
}

Lit
Encoder::fresh()
{
    ++auxVars_;
    return mkLit(solver_.newVar());
}

void
Encoder::emit(std::vector<Lit> lits)
{
    if (group_ == kGroupNone)
        solver_.addClause(std::move(lits));
    else
        solver_.addClause(std::move(lits), group_);
}

void
Encoder::emit(Lit a)
{
    emit(std::vector<Lit>{a});
}

void
Encoder::emit(Lit a, Lit b)
{
    emit(std::vector<Lit>{a, b});
}

void
Encoder::emit(Lit a, Lit b, Lit c)
{
    emit(std::vector<Lit>{a, b, c});
}

void
Encoder::emit(Lit a, Lit b, Lit c, Lit d)
{
    emit(std::vector<Lit>{a, b, c, d});
}

std::uint64_t
Encoder::pairKey(Lit a, Lit b)
{
    return ((std::uint64_t)(std::uint32_t)a.x << 32) |
           (std::uint32_t)b.x;
}

Lit
Encoder::mkAnd(Lit a, Lit b)
{
    if (a == constTrue())
        return b;
    if (b == constTrue())
        return a;
    if (a == constFalse() || b == constFalse())
        return constFalse();
    if (a == b)
        return a;
    if (a == ~b)
        return constFalse();
    // Structural hashing: AND is commutative, so order the inputs.
    if (b < a)
        std::swap(a, b);
    const std::uint64_t key = pairKey(a, b);
    const auto cached = andCache_.find(key);
    if (cached != andCache_.end()) {
        ++cacheHits_;
        return cached->second;
    }
    const Lit y = fresh();
    emit(~y, a);
    emit(~y, b);
    emit(~a, ~b, y);
    // Gates defined inside a retractable group must not be cached: the
    // defining clauses vanish with the group, and a later reuse of the
    // output literal would reference an unconstrained variable.
    if (group_ == kGroupNone)
        andCache_.emplace(key, y);
    return y;
}

Lit
Encoder::mkAnd(const std::vector<Lit> &lits)
{
    if (lits.empty())
        return constTrue();
    if (lits.size() == 1)
        return lits[0];
    // One n-ary gate: y -> each lit; (all lits) -> y.
    const Lit y = fresh();
    std::vector<Lit> big;
    big.reserve(lits.size() + 1);
    for (Lit l : lits) {
        if (l == constFalse()) {
            emit(~y);
            return y;
        }
        emit(~y, l);
        big.push_back(~l);
    }
    big.push_back(y);
    emit(std::move(big));
    return y;
}

Lit
Encoder::mkOr(Lit a, Lit b)
{
    return ~mkAnd(~a, ~b);
}

Lit
Encoder::mkOr(const std::vector<Lit> &lits)
{
    if (lits.empty())
        return constFalse();
    std::vector<Lit> inverted;
    inverted.reserve(lits.size());
    for (Lit l : lits)
        inverted.push_back(~l);
    return ~mkAnd(inverted);
}

Lit
Encoder::mkXor(Lit a, Lit b)
{
    if (a == constFalse())
        return b;
    if (b == constFalse())
        return a;
    if (a == constTrue())
        return ~b;
    if (b == constTrue())
        return ~a;
    if (a == b)
        return constFalse();
    if (a == ~b)
        return constTrue();
    // Structural hashing: XOR is commutative and odd in each input
    // (x ^ ~y == ~(x ^ y)), so canonicalize to positive ordered inputs
    // and flip the cached output by the stripped sign parity.
    const bool flip = a.sign() ^ b.sign();
    if (a.sign())
        a = ~a;
    if (b.sign())
        b = ~b;
    if (b < a)
        std::swap(a, b);
    const std::uint64_t key = pairKey(a, b);
    const auto cached = xorCache_.find(key);
    if (cached != xorCache_.end()) {
        ++cacheHits_;
        return flip ? ~cached->second : cached->second;
    }
    const Lit y = fresh();
    emit(~y, a, b);
    emit(~y, ~a, ~b);
    emit(y, ~a, b);
    emit(y, a, ~b);
    if (group_ == kGroupNone)
        xorCache_.emplace(key, y);
    return flip ? ~y : y;
}

Lit
Encoder::mkXor(const std::vector<Lit> &lits)
{
    Lit acc = constFalse();
    for (Lit l : lits)
        acc = mkXor(acc, l);
    return acc;
}

Lit
Encoder::mkEq(Lit a, Lit b)
{
    return ~mkXor(a, b);
}

Lit
Encoder::mkIte(Lit cond, Lit t, Lit f)
{
    if (cond == constTrue())
        return t;
    if (cond == constFalse())
        return f;
    if (t == f)
        return t;
    const Lit y = fresh();
    emit(~cond, ~t, y);
    emit(~cond, t, ~y);
    emit(cond, ~f, y);
    emit(cond, f, ~y);
    return y;
}

void
Encoder::require(const std::vector<Lit> &lits)
{
    emit(lits);
}

void
Encoder::require(Lit a)
{
    emit(a);
}

void
Encoder::requireImplies(Lit a, Lit b)
{
    emit(~a, b);
}

void
Encoder::requireEqual(Lit a, Lit b)
{
    emit(~a, b);
    emit(a, ~b);
}

void
Encoder::requireXor(std::vector<Lit> lits, bool rhs)
{
    const Lit y = mkXor(lits);
    require(rhs ? y : ~y);
}

void
Encoder::requireAtMostOne(const std::vector<Lit> &lits)
{
    for (std::size_t i = 0; i < lits.size(); ++i)
        for (std::size_t j = i + 1; j < lits.size(); ++j)
            emit(~lits[i], ~lits[j]);
}

void
Encoder::requireExactlyOne(const std::vector<Lit> &lits)
{
    BEER_ASSERT(!lits.empty());
    require(lits);
    requireAtMostOne(lits);
}

void
Encoder::requireLexLeq(const std::vector<Lit> &a,
                       const std::vector<Lit> &b)
{
    BEER_ASSERT(a.size() == b.size());
    // e_i: prefix a[0..i] equals b[0..i]. Enforce for every i:
    //   e_{i-1} -> !(a_i & !b_i)
    // with one-directional definitions sufficient to keep e true while
    // the prefixes are in fact equal.
    Lit prefix_eq = constTrue();
    for (std::size_t i = 0; i < a.size(); ++i) {
        // prefix_eq -> (a_i -> b_i)
        emit(~prefix_eq, ~a[i], b[i]);
        if (i + 1 == a.size())
            break;
        const Lit next = fresh();
        // (prefix_eq & a_i & b_i) -> next ; (prefix_eq & !a_i & !b_i) -> next
        emit(~prefix_eq, ~a[i], ~b[i], next);
        emit(~prefix_eq, a[i], b[i], next);
        prefix_eq = next;
    }
}

} // namespace beer::sat
