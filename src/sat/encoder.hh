/**
 * @file
 * Tseitin circuit-to-CNF encoder layered over the CDCL solver.
 *
 * The BEER constraint system (support-inclusion predicates, XOR columns,
 * lexicographic symmetry breaking) is naturally expressed as a Boolean
 * circuit; this class introduces auxiliary variables gate by gate and
 * emits the equisatisfiable clauses into a Solver.
 *
 * Binary AND/XOR gates are structurally hashed: re-encoding an
 * identical subterm (same inputs up to commutation, and for XOR up to
 * input/output negation) returns the existing output literal instead
 * of emitting a duplicate gate. A long-lived encoder shared across
 * incremental solve rounds (beer::IncrementalSolver) therefore pays
 * for each distinct subcircuit once.
 *
 * Clause-group routing: setGroup() redirects every emitted clause —
 * gate definitions and top-level constraints alike — into a solver
 * clause group, making whole encoded subformulas retractable. While a
 * group is active, freshly built gates are NOT inserted into the
 * structural-hash cache: their defining clauses are only enforced
 * while the group is live, so caching them would let a later round
 * reuse an output literal whose definition has been retracted. Cache
 * lookups remain safe in grouped mode because only permanently
 * defined (ungrouped) gates ever enter the cache.
 */

#ifndef BEER_SAT_ENCODER_HH
#define BEER_SAT_ENCODER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sat/solver.hh"
#include "sat/types.hh"

namespace beer::sat
{

/** Gate-level CNF builder; all gates return a literal for the output. */
class Encoder
{
  public:
    explicit Encoder(Solver &solver);

    Solver &solver() { return solver_; }

    /** Fresh free variable as a positive literal. */
    Lit fresh();

    /** Constant literals (backed by a single forced variable). */
    Lit constTrue() const { return trueLit_; }
    Lit constFalse() const { return ~trueLit_; }

    // ---- gates (return the output literal) -----------------------------
    /** y <-> (a AND b). */
    Lit mkAnd(Lit a, Lit b);
    /** y <-> AND(lits); returns constTrue() for an empty list. */
    Lit mkAnd(const std::vector<Lit> &lits);
    /** y <-> (a OR b). */
    Lit mkOr(Lit a, Lit b);
    /** y <-> OR(lits); returns constFalse() for an empty list. */
    Lit mkOr(const std::vector<Lit> &lits);
    /** y <-> (a XOR b). */
    Lit mkXor(Lit a, Lit b);
    /** y <-> XOR(lits); returns constFalse() for an empty list. */
    Lit mkXor(const std::vector<Lit> &lits);
    /** y <-> (a == b). */
    Lit mkEq(Lit a, Lit b);
    /** y <-> (cond ? t : f). */
    Lit mkIte(Lit cond, Lit t, Lit f);

    // ---- top-level constraints -----------------------------------------
    /** Assert a clause. */
    void require(const std::vector<Lit> &lits);
    void require(Lit a);
    /** Assert a -> b. */
    void requireImplies(Lit a, Lit b);
    /** Assert a == b. */
    void requireEqual(Lit a, Lit b);
    /** Assert XOR(lits) == rhs (GF(2) equation). */
    void requireXor(std::vector<Lit> lits, bool rhs);
    /** Assert at most one of @p lits is true (pairwise encoding). */
    void requireAtMostOne(const std::vector<Lit> &lits);
    /** Assert exactly one of @p lits is true. */
    void requireExactlyOne(const std::vector<Lit> &lits);
    /**
     * Assert vector a <=_lex b (element 0 most significant), used for
     * row-permutation symmetry breaking in the BEER formulation.
     */
    void requireLexLeq(const std::vector<Lit> &a,
                       const std::vector<Lit> &b);

    /**
     * Route subsequently emitted clauses into @p group
     * (kGroupNone restores permanent, ungrouped emission).
     */
    void setGroup(GroupId group) { group_ = group; }

    /** Group currently receiving emitted clauses (kGroupNone if none). */
    GroupId group() const { return group_; }

    /** Number of auxiliary variables introduced so far. */
    std::size_t numAuxVars() const { return auxVars_; }

    /** Gates answered from the structural-hash cache instead of built. */
    std::size_t numGateCacheHits() const { return cacheHits_; }

  private:
    static std::uint64_t pairKey(Lit a, Lit b);

    /** Emit a clause, honoring the active clause group. */
    void emit(std::vector<Lit> lits);
    void emit(Lit a);
    void emit(Lit a, Lit b);
    void emit(Lit a, Lit b, Lit c);
    void emit(Lit a, Lit b, Lit c, Lit d);

    Solver &solver_;
    Lit trueLit_;
    GroupId group_ = kGroupNone;
    std::size_t auxVars_ = 0;
    /** Structural hash: canonical input pair -> gate output literal. */
    std::unordered_map<std::uint64_t, Lit> andCache_;
    std::unordered_map<std::uint64_t, Lit> xorCache_;
    std::size_t cacheHits_ = 0;
};

} // namespace beer::sat

#endif // BEER_SAT_ENCODER_HH
