#include "sat/solver.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.hh"

namespace beer::sat
{

namespace
{

// Arena layout per clause: [header][size][activity][lit0..litN-1].
constexpr std::uint32_t kHeaderWords = 3;
constexpr std::uint32_t kLearnedBit = 1;
constexpr std::uint32_t kDeletedBit = 2;

} // anonymous namespace

void
SolverStats::accumulate(const SolverStats &other)
{
    decisions += other.decisions;
    propagations += other.propagations;
    conflicts += other.conflicts;
    restarts += other.restarts;
    learnedClauses += other.learnedClauses;
    deletedClauses += other.deletedClauses;
    addedClauses += other.addedClauses;
    releasedClauses += other.releasedClauses;
    garbageCollections += other.garbageCollections;
    arenaBytes = std::max(arenaBytes, other.arenaBytes);
}

SolverStats
SolverStats::deltaSince(const SolverStats &before) const
{
    SolverStats out;
    out.decisions = decisions - before.decisions;
    out.propagations = propagations - before.propagations;
    out.conflicts = conflicts - before.conflicts;
    out.restarts = restarts - before.restarts;
    out.learnedClauses = learnedClauses - before.learnedClauses;
    out.deletedClauses = deletedClauses - before.deletedClauses;
    out.addedClauses = addedClauses - before.addedClauses;
    out.releasedClauses = releasedClauses - before.releasedClauses;
    out.garbageCollections =
        garbageCollections - before.garbageCollections;
    out.arenaBytes = arenaBytes;
    return out;
}

Solver::Solver() = default;

Var
Solver::newVar()
{
    const Var v = numVars_++;
    watches_.emplace_back();
    watches_.emplace_back();
    assigns_.push_back(LBool::Undef);
    polarity_.push_back(0);
    levels_.push_back(0);
    reasons_.push_back(kCRefUndef);
    activity_.push_back(0.0);
    heapIndex_.push_back(-1);
    seen_.push_back(0);
    insertVarOrder(v);
    return v;
}

Lit &
Solver::clauseLit(CRef c, std::uint32_t i)
{
    return *reinterpret_cast<Lit *>(&arena_[c + kHeaderWords + i]);
}

Lit
Solver::clauseLit(CRef c, std::uint32_t i) const
{
    Lit l;
    l.x = (std::int32_t)arena_[c + kHeaderWords + i];
    return l;
}

float &
Solver::clauseActivity(CRef c)
{
    return *reinterpret_cast<float *>(&arena_[c + 2]);
}

CRef
Solver::allocClause(const std::vector<Lit> &lits, bool learned)
{
    const CRef ref = (CRef)arena_.size();
    arena_.push_back(learned ? kLearnedBit : 0);
    arena_.push_back((std::uint32_t)lits.size());
    arena_.push_back(0); // activity
    for (Lit l : lits)
        arena_.push_back((std::uint32_t)l.x);
    stats_.arenaBytes = arena_.size() * sizeof(std::uint32_t);
    return ref;
}

bool
Solver::addClause(std::vector<Lit> lits)
{
    BEER_ASSERT(decisionLevel() == 0 || propagateHead_ == trail_.size());
    backtrack(0);

    if (unsat_)
        return false;

    // Normalize: sort, drop duplicates, detect tautologies, and strip
    // literals already false at the root level.
    std::sort(lits.begin(), lits.end());
    std::vector<Lit> out;
    Lit prev = Lit::undef();
    for (Lit l : lits) {
        BEER_ASSERT(l.var() >= 0 && l.var() < numVars_);
        if (value(l) == LBool::True || l == ~prev)
            return true; // satisfied at root / tautology
        if (value(l) == LBool::False || l == prev)
            continue;
        out.push_back(l);
        prev = l;
    }

    if (out.empty()) {
        unsat_ = true;
        return false;
    }
    if (out.size() == 1) {
        ++stats_.addedClauses;
        enqueue(out[0], kCRefUndef);
        if (propagate() != kCRefUndef) {
            unsat_ = true;
            return false;
        }
        return true;
    }

    const CRef c = allocClause(out, false);
    clauses_.push_back(c);
    ++stats_.addedClauses;
    watches_[(~out[0]).index()].push_back({c, out[1]});
    watches_[(~out[1]).index()].push_back({c, out[0]});
    return true;
}

bool
Solver::addClause(Lit a)
{
    return addClause(std::vector<Lit>{a});
}

bool
Solver::addClause(Lit a, Lit b)
{
    return addClause(std::vector<Lit>{a, b});
}

bool
Solver::addClause(Lit a, Lit b, Lit c)
{
    return addClause(std::vector<Lit>{a, b, c});
}

bool
Solver::addClause(Lit a, Lit b, Lit c, Lit d)
{
    return addClause(std::vector<Lit>{a, b, c, d});
}

GroupId
Solver::newGroup()
{
    const GroupId id = (GroupId)groups_.size();
    groups_.push_back({mkLit(newVar()), false});
    return id;
}

bool
Solver::addClause(std::vector<Lit> lits, GroupId group)
{
    BEER_ASSERT(group < groups_.size());
    BEER_ASSERT(!groups_[group].retired);
    // Guard with the negated activation literal: the clause binds only
    // while solve() assumes the activation literal true.
    lits.push_back(~groups_[group].activation);
    return addClause(std::move(lits));
}

bool
Solver::groupLive(GroupId group) const
{
    BEER_ASSERT(group < groups_.size());
    return !groups_[group].retired;
}

void
Solver::retireGroup(GroupId group)
{
    BEER_ASSERT(group < groups_.size());
    if (groups_[group].retired)
        return;
    groups_[group].retired = true;
    // Forcing the activation literal false at the root permanently
    // satisfies every clause guarded by it, including learned clauses
    // that were derived under the group's assumption.
    addClause(~groups_[group].activation);
}

void
Solver::suspendGroup(GroupId group)
{
    BEER_ASSERT(group < groups_.size());
    BEER_ASSERT(!groups_[group].retired);
    groups_[group].suspended = true;
}

void
Solver::resumeGroup(GroupId group)
{
    BEER_ASSERT(group < groups_.size());
    BEER_ASSERT(!groups_[group].retired);
    groups_[group].suspended = false;
}

bool
Solver::groupSuspended(GroupId group) const
{
    BEER_ASSERT(group < groups_.size());
    return !groups_[group].retired && groups_[group].suspended;
}

void
Solver::releaseGroup(GroupId group)
{
    retireGroup(group);
    if (unsat_)
        return;
    removeRootSatisfied();
}

void
Solver::markDeleted(CRef c)
{
    arena_[c] |= kDeletedBit;
    wastedWords_ += kHeaderWords + clauseSize(c);
}

void
Solver::removeRootSatisfied()
{
    // retireGroup() usually lands here at level 0 via its root unit,
    // but an already-retired group skips that path (e.g. releaseGroup
    // after retireGroup, or called twice) with a model still on the
    // trail.
    backtrack(0);
    auto root_satisfied = [this](CRef c) {
        const std::uint32_t size = clauseSize(c);
        for (std::uint32_t i = 0; i < size; ++i)
            if (value(clauseLit(c, i)) == LBool::True)
                return true;
        return false;
    };

    auto sweep = [&](std::vector<CRef> &list, std::uint64_t &counter) {
        std::size_t keep = 0;
        for (CRef c : list) {
            if (root_satisfied(c)) {
                markDeleted(c);
                ++counter;
            } else {
                list[keep++] = c;
            }
        }
        list.resize(keep);
    };
    sweep(clauses_, stats_.releasedClauses);
    sweep(learned_, stats_.deletedClauses);

    // A dropped clause may still be the recorded reason of a root
    // literal; root reasons are never dereferenced, but keep the
    // invariant that reasons point at live clauses.
    for (Lit l : trail_) {
        CRef &r = reasons_[(std::size_t)l.var()];
        if (r != kCRefUndef && (arena_[r] & kDeletedBit))
            r = kCRefUndef;
    }

    if (!maybeGarbageCollect())
        rebuildWatches();
}

bool
Solver::maybeGarbageCollect()
{
    if (arena_.size() < 1024 || wastedWords_ * 4 < arena_.size())
        return false;
    garbageCollect();
    return true;
}

void
Solver::garbageCollect()
{
    std::vector<std::uint32_t> fresh;
    fresh.reserve(arena_.size() - (std::size_t)wastedWords_);

    // Relocate live clauses in ascending arena order so the old->new
    // mapping stays sorted for the reason remap below.
    std::vector<CRef *> slots;
    slots.reserve(clauses_.size() + learned_.size());
    for (CRef &c : clauses_)
        slots.push_back(&c);
    for (CRef &c : learned_)
        slots.push_back(&c);
    std::sort(slots.begin(), slots.end(),
              [](const CRef *a, const CRef *b) { return *a < *b; });

    std::vector<std::pair<CRef, CRef>> remap;
    remap.reserve(slots.size());
    for (CRef *slot : slots) {
        const CRef old = *slot;
        const CRef moved = (CRef)fresh.size();
        const std::uint32_t words = kHeaderWords + clauseSize(old);
        fresh.insert(fresh.end(), arena_.begin() + old,
                     arena_.begin() + old + words);
        remap.emplace_back(old, moved);
        *slot = moved;
    }

    for (Lit l : trail_) {
        CRef &r = reasons_[(std::size_t)l.var()];
        if (r == kCRefUndef)
            continue;
        const auto it = std::lower_bound(
            remap.begin(), remap.end(), std::make_pair(r, (CRef)0));
        BEER_ASSERT(it != remap.end() && it->first == r);
        r = it->second;
    }

    arena_.swap(fresh);
    wastedWords_ = 0;
    ++stats_.garbageCollections;
    stats_.arenaBytes = arena_.size() * sizeof(std::uint32_t);
    rebuildWatches();
}

std::vector<std::vector<Lit>>
Solver::problemClauses() const
{
    std::vector<std::vector<Lit>> out;
    const std::size_t root_end =
        trailLims_.empty() ? trail_.size() : trailLims_[0];
    for (std::size_t i = 0; i < root_end; ++i)
        out.push_back({trail_[i]});
    for (CRef c : clauses_) {
        std::vector<Lit> clause(clauseSize(c));
        for (std::uint32_t i = 0; i < clauseSize(c); ++i)
            clause[i] = clauseLit(c, i);
        out.push_back(std::move(clause));
    }
    return out;
}

LBool
Solver::value(Lit l) const
{
    const LBool v = assigns_[(std::size_t)l.var()];
    if (v == LBool::Undef)
        return LBool::Undef;
    return l.sign() ? !v : v;
}

void
Solver::enqueue(Lit l, CRef reason)
{
    BEER_ASSERT(value(l) == LBool::Undef);
    const auto v = (std::size_t)l.var();
    assigns_[v] = lboolFromBool(!l.sign());
    levels_[v] = decisionLevel();
    reasons_[v] = reason;
    trail_.push_back(l);
}

CRef
Solver::propagate()
{
    while (propagateHead_ < trail_.size()) {
        const Lit p = trail_[propagateHead_++];
        ++stats_.propagations;
        auto &ws = watches_[p.index()];
        std::size_t keep = 0;
        std::size_t i = 0;
        while (i < ws.size()) {
            const Watcher w = ws[i];
            if (value(w.blocker) == LBool::True) {
                ws[keep++] = ws[i++];
                continue;
            }

            const CRef c = ws[i].clause;
            const Lit false_lit = ~p;
            if (clauseLit(c, 0) == false_lit) {
                clauseLit(c, 0) = clauseLit(c, 1);
                clauseLit(c, 1) = false_lit;
            }
            ++i;

            const Lit first = clauseLit(c, 0);
            if (first != w.blocker && value(first) == LBool::True) {
                ws[keep++] = {c, first};
                continue;
            }

            // Search for a non-false literal to watch instead.
            const std::uint32_t size = clauseSize(c);
            bool found = false;
            for (std::uint32_t k = 2; k < size; ++k) {
                const Lit cand = clauseLit(c, k);
                if (value(cand) != LBool::False) {
                    clauseLit(c, 1) = cand;
                    clauseLit(c, k) = false_lit;
                    watches_[(~cand).index()].push_back({c, first});
                    found = true;
                    break;
                }
            }
            if (found)
                continue;

            // Clause is unit or conflicting under the current trail.
            ws[keep++] = {c, first};
            if (value(first) == LBool::False) {
                // Conflict: salvage the remaining watchers and bail out.
                while (i < ws.size())
                    ws[keep++] = ws[i++];
                ws.resize(keep);
                propagateHead_ = trail_.size();
                return c;
            }
            enqueue(first, c);
        }
        ws.resize(keep);
    }
    return kCRefUndef;
}

void
Solver::backtrack(int target_level)
{
    if (decisionLevel() <= target_level)
        return;
    const std::size_t lim = trailLims_[(std::size_t)target_level];
    for (std::size_t i = trail_.size(); i-- > lim;) {
        const auto v = (std::size_t)trail_[i].var();
        polarity_[v] = assigns_[v] == LBool::True ? 1 : 0;
        assigns_[v] = LBool::Undef;
        reasons_[v] = kCRefUndef;
        if (!heapContains((Var)v))
            insertVarOrder((Var)v);
    }
    trail_.resize(lim);
    trailLims_.resize((std::size_t)target_level);
    propagateHead_ = trail_.size();
}

void
Solver::analyze(CRef conflict, std::vector<Lit> &out_learned,
                int &out_btlevel)
{
    out_learned.clear();
    out_learned.push_back(Lit::undef()); // slot for the asserting literal

    int path_count = 0;
    Lit p = Lit::undef();
    std::size_t index = trail_.size();

    CRef c = conflict;
    do {
        BEER_ASSERT(c != kCRefUndef);
        if (clauseLearned(c))
            bumpClause(c);
        const std::uint32_t size = clauseSize(c);
        for (std::uint32_t k = p.isUndef() ? 0 : 1; k < size; ++k) {
            const Lit q = clauseLit(c, k);
            const auto v = (std::size_t)q.var();
            if (seen_[v] || level(q.var()) == 0)
                continue;
            seen_[v] = 1;
            bumpVar(q.var());
            if (level(q.var()) >= decisionLevel())
                ++path_count;
            else
                out_learned.push_back(q);
        }

        // Walk the trail back to the next marked literal.
        while (!seen_[(std::size_t)trail_[index - 1].var()])
            --index;
        --index;
        p = trail_[index];
        c = reasons_[(std::size_t)p.var()];
        seen_[(std::size_t)p.var()] = 0;
        --path_count;
    } while (path_count > 0);
    out_learned[0] = ~p;

    // Recursive clause minimization (MiniSat's "deep" mode).
    analyzeToClear_.assign(out_learned.begin(), out_learned.end());
    std::uint32_t abstract_levels = 0;
    for (std::size_t i = 1; i < out_learned.size(); ++i)
        abstract_levels |=
            1u << (level(out_learned[i].var()) & 31);

    std::size_t keep = 1;
    for (std::size_t i = 1; i < out_learned.size(); ++i) {
        const Lit l = out_learned[i];
        if (reasons_[(std::size_t)l.var()] == kCRefUndef ||
            !litRedundant(l, abstract_levels)) {
            out_learned[keep++] = l;
        }
    }
    out_learned.resize(keep);

    for (Lit l : analyzeToClear_)
        seen_[(std::size_t)l.var()] = 0;
    analyzeToClear_.clear();

    // Compute the backtrack level: highest level below the current one.
    out_btlevel = 0;
    if (out_learned.size() > 1) {
        std::size_t max_i = 1;
        for (std::size_t i = 2; i < out_learned.size(); ++i)
            if (level(out_learned[i].var()) >
                level(out_learned[max_i].var()))
                max_i = i;
        std::swap(out_learned[1], out_learned[max_i]);
        out_btlevel = level(out_learned[1].var());
    }
}

bool
Solver::litRedundant(Lit l, std::uint32_t abstract_levels)
{
    analyzeStack_.clear();
    analyzeStack_.push_back(l);
    const std::size_t top = analyzeToClear_.size();

    while (!analyzeStack_.empty()) {
        const Lit cur = analyzeStack_.back();
        analyzeStack_.pop_back();
        const CRef c = reasons_[(std::size_t)cur.var()];
        BEER_ASSERT(c != kCRefUndef);

        const std::uint32_t size = clauseSize(c);
        for (std::uint32_t k = 1; k < size; ++k) {
            const Lit q = clauseLit(c, k);
            const auto v = (std::size_t)q.var();
            if (seen_[v] || level(q.var()) == 0)
                continue;
            if (reasons_[v] == kCRefUndef ||
                !((1u << (level(q.var()) & 31)) & abstract_levels)) {
                // Not removable: undo marks made during this check.
                for (std::size_t i = top; i < analyzeToClear_.size(); ++i)
                    seen_[(std::size_t)analyzeToClear_[i].var()] = 0;
                analyzeToClear_.resize(top);
                return false;
            }
            seen_[v] = 1;
            analyzeStack_.push_back(q);
            analyzeToClear_.push_back(q);
        }
    }
    return true;
}

void
Solver::bumpVar(Var v)
{
    activity_[(std::size_t)v] += varInc_;
    if (activity_[(std::size_t)v] > 1e100) {
        for (auto &a : activity_)
            a *= 1e-100;
        varInc_ *= 1e-100;
    }
    const auto idx = heapIndex_[(std::size_t)v];
    if (idx >= 0)
        heapUp((std::size_t)idx);
}

void
Solver::decayVarActivity()
{
    varInc_ /= 0.95;
}

void
Solver::bumpClause(CRef c)
{
    float &act = clauseActivity(c);
    act += claInc_;
    if (act > 1e20f) {
        for (CRef lc : learned_)
            clauseActivity(lc) *= 1e-20f;
        claInc_ *= 1e-20f;
    }
}

void
Solver::insertVarOrder(Var v)
{
    if (heapContains(v))
        return;
    heapIndex_[(std::size_t)v] = (std::int32_t)heap_.size();
    heap_.push_back(v);
    heapUp(heap_.size() - 1);
}

void
Solver::heapUp(std::size_t i)
{
    const Var v = heap_[i];
    const double act = activity_[(std::size_t)v];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (activity_[(std::size_t)heap_[parent]] >= act)
            break;
        heap_[i] = heap_[parent];
        heapIndex_[(std::size_t)heap_[i]] = (std::int32_t)i;
        i = parent;
    }
    heap_[i] = v;
    heapIndex_[(std::size_t)v] = (std::int32_t)i;
}

void
Solver::heapDown(std::size_t i)
{
    const Var v = heap_[i];
    const double act = activity_[(std::size_t)v];
    while (true) {
        const std::size_t left = 2 * i + 1;
        if (left >= heap_.size())
            break;
        std::size_t best = left;
        const std::size_t right = left + 1;
        if (right < heap_.size() &&
            activity_[(std::size_t)heap_[right]] >
                activity_[(std::size_t)heap_[left]])
            best = right;
        if (activity_[(std::size_t)heap_[best]] <= act)
            break;
        heap_[i] = heap_[best];
        heapIndex_[(std::size_t)heap_[i]] = (std::int32_t)i;
        i = best;
    }
    heap_[i] = v;
    heapIndex_[(std::size_t)v] = (std::int32_t)i;
}

std::uint32_t
Solver::nextRandom()
{
    rngState_ ^= rngState_ << 13;
    rngState_ ^= rngState_ >> 7;
    rngState_ ^= rngState_ << 17;
    return (std::uint32_t)(rngState_ >> 32);
}

Var
Solver::pickBranchVar()
{
    // Occasional random decisions diversify restarts.
    if (nextRandom() % 64 == 0 && !heap_.empty()) {
        const Var v = heap_[nextRandom() % heap_.size()];
        if (value(v) == LBool::Undef)
            return v;
    }
    while (!heap_.empty()) {
        const Var v = heap_[0];
        // Pop the root.
        heap_[0] = heap_.back();
        heapIndex_[(std::size_t)heap_[0]] = 0;
        heap_.pop_back();
        heapIndex_[(std::size_t)v] = -1;
        if (!heap_.empty() && heap_[0] != v)
            heapDown(0);
        if (value(v) == LBool::Undef)
            return v;
    }
    return -1;
}

void
Solver::reduceDb()
{
    // Drop the less active half of the learned clauses, keeping clauses
    // that are currently reasons for trail literals.
    std::sort(learned_.begin(), learned_.end(), [this](CRef a, CRef b) {
        return clauseActivity(a) < clauseActivity(b);
    });

    auto locked = [this](CRef c) {
        const Lit first = clauseLit(c, 0);
        return value(first) == LBool::True &&
               reasons_[(std::size_t)first.var()] == c;
    };

    std::vector<CRef> kept;
    kept.reserve(learned_.size());
    const std::size_t drop_target = learned_.size() / 2;
    std::size_t dropped = 0;
    for (std::size_t i = 0; i < learned_.size(); ++i) {
        const CRef c = learned_[i];
        if (dropped < drop_target && !locked(c) && clauseSize(c) > 2) {
            markDeleted(c);
            ++dropped;
            ++stats_.deletedClauses;
        } else {
            kept.push_back(c);
        }
    }
    learned_.swap(kept);
    if (!maybeGarbageCollect())
        rebuildWatches();
}

void
Solver::rebuildWatches()
{
    for (auto &ws : watches_)
        ws.clear();
    auto attach = [this](CRef c) {
        const Lit l0 = clauseLit(c, 0);
        const Lit l1 = clauseLit(c, 1);
        watches_[(~l0).index()].push_back({c, l1});
        watches_[(~l1).index()].push_back({c, l0});
    };
    for (CRef c : clauses_)
        attach(c);
    for (CRef c : learned_)
        attach(c);
}

std::uint64_t
Solver::luby(std::uint64_t i)
{
    // Sequence 1 1 2 1 1 2 4 ... ; i is 1-based.
    std::uint64_t k = 1;
    while ((1ULL << (k + 1)) - 1 <= i)
        ++k;
    while (i != (1ULL << k) - 1) {
        i -= (1ULL << k) - 1;
        k = 1;
        while ((1ULL << (k + 1)) - 1 <= i)
            ++k;
    }
    return 1ULL << (k - 1);
}

SolveResult
Solver::solve(const std::vector<Lit> &assumptions)
{
    if (unsat_)
        return SolveResult::Unsat;
    // Live groups are enforced by assuming their activation literals;
    // they come first so group-conditional learned clauses assert at
    // the lowest decision levels.
    // Suspended groups get the *negated* activation assumed so their
    // clauses are definitively void for this call (rather than leaving
    // the guard free for the search to set either way).
    assumptions_.clear();
    for (const Group &g : groups_)
        if (!g.retired)
            assumptions_.push_back(g.suspended ? ~g.activation
                                               : g.activation);
    assumptions_.insert(assumptions_.end(), assumptions.begin(),
                        assumptions.end());
    backtrack(0);
    if (propagate() != kCRefUndef) {
        unsat_ = true;
        return SolveResult::Unsat;
    }
    const SolveResult out = search();
    // Keep the model readable after returning; callers must not add
    // clauses before reading it (addClause backtracks to level 0).
    return out;
}

SolveResult
Solver::search()
{
    std::uint64_t restart_count = 0;
    std::uint64_t conflicts_until_restart = 100 * luby(++restart_count);
    std::uint64_t conflicts_since_restart = 0;
    std::vector<Lit> learned_clause;

    while (true) {
        const CRef conflict = propagate();
        if (conflict != kCRefUndef) {
            ++stats_.conflicts;
            ++conflicts_since_restart;
            if (conflictLimit_ && stats_.conflicts >= conflictLimit_)
                return SolveResult::Unknown;
            if (decisionLevel() == 0) {
                unsat_ = true;
                return SolveResult::Unsat;
            }

            int btlevel = 0;
            analyze(conflict, learned_clause, btlevel);
            backtrack(btlevel);

            if (learned_clause.size() == 1) {
                enqueue(learned_clause[0], kCRefUndef);
            } else {
                const CRef c = allocClause(learned_clause, true);
                learned_.push_back(c);
                ++stats_.learnedClauses;
                watches_[(~learned_clause[0]).index()].push_back(
                    {c, learned_clause[1]});
                watches_[(~learned_clause[1]).index()].push_back(
                    {c, learned_clause[0]});
                bumpClause(c);
                enqueue(learned_clause[0], c);
            }
            decayVarActivity();
            claInc_ *= 1.0f / 0.999f;
            continue;
        }

        if (conflicts_since_restart >= conflicts_until_restart) {
            ++stats_.restarts;
            conflicts_since_restart = 0;
            conflicts_until_restart = 100 * luby(++restart_count);
            backtrack(0);
            continue;
        }

        if (learned_.size() >= maxLearned_) {
            reduceDb();
            maxLearned_ = maxLearned_ + maxLearned_ / 2;
        }

        // Re-apply assumptions, then branch.
        Lit next = Lit::undef();
        while ((std::size_t)decisionLevel() < assumptions_.size()) {
            const Lit a = assumptions_[(std::size_t)decisionLevel()];
            if (value(a) == LBool::True) {
                trailLims_.push_back(trail_.size()); // dummy level
            } else if (value(a) == LBool::False) {
                return SolveResult::Unsat;
            } else {
                next = a;
                break;
            }
        }

        if (next.isUndef()) {
            const Var v = pickBranchVar();
            if (v < 0)
                return SolveResult::Sat; // all variables assigned
            next = mkLit(v, polarity_[(std::size_t)v] == 0);
            ++stats_.decisions;
        }

        trailLims_.push_back(trail_.size());
        enqueue(next, kCRefUndef);
    }
}

bool
Solver::modelValue(Var v) const
{
    BEER_ASSERT(v >= 0 && v < numVars_);
    const LBool val = assigns_[(std::size_t)v];
    BEER_ASSERT(val != LBool::Undef);
    return val == LBool::True;
}

} // namespace beer::sat
