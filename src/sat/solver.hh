/**
 * @file
 * A from-scratch CDCL SAT solver.
 *
 * The BEER paper formulates ECC-function recovery as a satisfiability
 * problem and solves it with Z3. This solver is our self-contained
 * equivalent: conflict-driven clause learning with two-literal watches,
 * EVSIDS branching, phase saving, Luby restarts, first-UIP learning with
 * recursive clause minimization, and activity-based learned-clause
 * deletion. It supports incremental use: clauses may be added between
 * solve() calls, solve() accepts assumptions, and learned clauses and
 * variable activity survive across calls, so a long-lived solver warm-
 * starts every re-solve (beer::IncrementalSolver relies on this).
 *
 * Retractable clause groups: a clause added under a GroupId is guarded
 * by that group's activation literal and is enforced only while the
 * group is live (solve() assumes the activation literal of every live
 * group). retireGroup() permanently deactivates a group — its clauses,
 * and any learned clauses derived from them, become inert;
 * releaseGroup() additionally drops the dead clauses from the watch
 * lists and reclaims arena memory once enough of it is garbage. The
 * model-enumeration loop in beer::IncrementalSolver keeps its per-round
 * blocking clauses in such a group so they can be retracted when new
 * measurement evidence arrives.
 */

#ifndef BEER_SAT_SOLVER_HH
#define BEER_SAT_SOLVER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sat/types.hh"

namespace beer::sat
{

/** Counters exposed for the Figure-6 performance bench. */
struct SolverStats
{
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learnedClauses = 0;
    std::uint64_t deletedClauses = 0;
    /** Problem clauses stored (units included; tautologies excluded). */
    std::uint64_t addedClauses = 0;
    /** Clauses dropped by releaseGroup() root simplification. */
    std::uint64_t releasedClauses = 0;
    /** Arena compactions triggered by accumulated garbage. */
    std::uint64_t garbageCollections = 0;
    /** Approximate heap footprint of the clause arena, in bytes. */
    std::uint64_t arenaBytes = 0;

    /** Add @p other's counters into this (arenaBytes takes the max). */
    void accumulate(const SolverStats &other);
    /** Counter deltas since @p before (arenaBytes stays absolute). */
    SolverStats deltaSince(const SolverStats &before) const;
};

/** Handle for a retractable clause group; see the file comment. */
using GroupId = std::uint32_t;
constexpr GroupId kGroupNone = UINT32_MAX;

/** CDCL SAT solver; see file comment. */
class Solver
{
  public:
    Solver();

    /** Create a fresh variable and return it. */
    Var newVar();

    std::size_t numVars() const { return (std::size_t)numVars_; }

    /**
     * Add a clause (disjunction of literals).
     *
     * May be called before or between solve() calls. Returns false if
     * the clause makes the formula trivially unsatisfiable (e.g. the
     * empty clause, or a unit contradicting a prior unit).
     */
    bool addClause(std::vector<Lit> lits);

    /** Convenience overloads. */
    bool addClause(Lit a);
    bool addClause(Lit a, Lit b);
    bool addClause(Lit a, Lit b, Lit c);
    bool addClause(Lit a, Lit b, Lit c, Lit d);

    // ---- retractable clause groups ------------------------------------
    /** Create a live group (allocates its activation variable). */
    GroupId newGroup();

    /**
     * Add a clause enforced only while @p group is live. Returns false
     * only if the formula was already unsatisfiable.
     */
    bool addClause(std::vector<Lit> lits, GroupId group);

    /**
     * Permanently deactivate @p group: its clauses (and learned
     * clauses derived from them) become inert. Idempotent.
     */
    void retireGroup(GroupId group);

    /**
     * retireGroup() plus reclamation: dead clauses leave the watch
     * lists immediately and the arena is compacted once enough of it
     * is garbage.
     */
    void releaseGroup(GroupId group);

    /** True iff @p group has not been retired. */
    bool groupLive(GroupId group) const;

    /**
     * Temporarily disable @p group: until resumeGroup(), solve()
     * assumes the activation literal *false*, so the group's clauses
     * are void for those calls. Unlike retireGroup() this is fully
     * reversible — no root unit is added. Used by the UNSAT-core
     * probe in beer::IncrementalSolver to test which measurement
     * rounds a contradiction depends on.
     */
    void suspendGroup(GroupId group);

    /** Re-enable a group disabled by suspendGroup(). Idempotent. */
    void resumeGroup(GroupId group);

    /** True iff @p group is currently suspended (and not retired). */
    bool groupSuspended(GroupId group) const;

    /**
     * Snapshot of the problem clauses (root-level units included,
     * learned clauses excluded). Group clauses appear with their guard
     * literal. Used for DIMACS export.
     */
    std::vector<std::vector<Lit>> problemClauses() const;

    /**
     * Solve under optional assumptions.
     *
     * @param assumptions literals forced true for this call only
     * @return Sat, Unsat, or Unknown if conflictLimit was hit
     */
    SolveResult solve(const std::vector<Lit> &assumptions = {});

    /** Model value of @p v after a Sat result. */
    bool modelValue(Var v) const;

    /** True iff the clause set is known unsatisfiable. */
    bool isUnsat() const { return unsat_; }

    const SolverStats &stats() const { return stats_; }

    /** 0 disables the limit (default). */
    void setConflictLimit(std::uint64_t limit) { conflictLimit_ = limit; }

    /** Random seed for branching tie-breaking / polarity noise. */
    void setRandomSeed(std::uint64_t seed) { rngState_ = seed | 1; }

  private:
    // ---- clause arena -------------------------------------------------
    /**
     * Clauses live in one flat uint32 arena:
     * [header | size | lit0 .. litN-1] where header bit0 = learned flag
     * and the upper bits hold the activity bucket for learned clauses.
     */
    struct ClauseRef
    {
        CRef ref;
    };

    std::uint32_t &clauseSize(CRef c) { return arena_[c + 1]; }
    std::uint32_t clauseSize(CRef c) const { return arena_[c + 1]; }
    Lit &clauseLit(CRef c, std::uint32_t i);
    Lit clauseLit(CRef c, std::uint32_t i) const;
    bool clauseLearned(CRef c) const { return arena_[c] & 1; }
    float &clauseActivity(CRef c);

    CRef allocClause(const std::vector<Lit> &lits, bool learned);

    // ---- assignment / trail -------------------------------------------
    LBool value(Lit l) const;
    LBool value(Var v) const { return assigns_[(std::size_t)v]; }
    int level(Var v) const { return levels_[(std::size_t)v]; }
    int decisionLevel() const { return (int)trailLims_.size(); }

    void enqueue(Lit l, CRef reason);
    CRef propagate();
    void backtrack(int target_level);

    // ---- conflict analysis --------------------------------------------
    void analyze(CRef conflict, std::vector<Lit> &out_learned,
                 int &out_btlevel);
    bool litRedundant(Lit l, std::uint32_t abstract_levels);

    // ---- branching -----------------------------------------------------
    void bumpVar(Var v);
    void decayVarActivity();
    void bumpClause(CRef c);
    Var pickBranchVar();
    void insertVarOrder(Var v);

    // heap helpers (binary max-heap on activity)
    void heapUp(std::size_t i);
    void heapDown(std::size_t i);
    bool heapContains(Var v) const
    {
        return heapIndex_[(std::size_t)v] >= 0;
    }

    // ---- learned clause management --------------------------------------
    void reduceDb();
    void rebuildWatches();

    // ---- clause-arena garbage collection --------------------------------
    void markDeleted(CRef c);
    /** Drop clauses satisfied at the root level (level-0 trail). */
    void removeRootSatisfied();
    /** Compact the arena when a quarter of it is garbage. */
    bool maybeGarbageCollect();
    void garbageCollect();

    // ---- search ---------------------------------------------------------
    SolveResult search();
    static std::uint64_t luby(std::uint64_t i);
    std::uint32_t nextRandom();

    // ---- state ----------------------------------------------------------
    Var numVars_ = 0;
    bool unsat_ = false;

    std::vector<std::uint32_t> arena_;
    std::vector<CRef> clauses_;        // problem clauses
    std::vector<CRef> learned_;        // learned clauses

    struct Watcher
    {
        CRef clause;
        Lit blocker;
    };
    std::vector<std::vector<Watcher>> watches_; // indexed by Lit::index()

    std::vector<LBool> assigns_;
    std::vector<std::uint8_t> polarity_; // saved phases (1 = last false)
    std::vector<int> levels_;
    std::vector<CRef> reasons_;
    std::vector<Lit> trail_;
    std::vector<std::size_t> trailLims_;
    std::size_t propagateHead_ = 0;

    std::vector<double> activity_;
    double varInc_ = 1.0;
    std::vector<Var> heap_;
    std::vector<std::int32_t> heapIndex_;

    float claInc_ = 1.0f;

    struct Group
    {
        Lit activation;
        bool retired = false;
        bool suspended = false;
    };
    std::vector<Group> groups_;
    std::uint64_t wastedWords_ = 0;

    std::vector<Lit> assumptions_;

    // temporaries for analyze()
    std::vector<std::uint8_t> seen_;
    std::vector<Lit> analyzeToClear_;
    std::vector<Lit> analyzeStack_;

    std::uint64_t conflictLimit_ = 0;
    std::uint64_t rngState_ = 0x123456789abcdefULL;
    std::size_t maxLearned_ = 4096;

    SolverStats stats_;
};

} // namespace beer::sat

#endif // BEER_SAT_SOLVER_HH
