/**
 * @file
 * Core SAT types: variables, literals, and clause references.
 *
 * A variable is a non-negative integer. A literal packs a variable and
 * its sign into one int: lit = 2*var + (negated ? 1 : 0), the MiniSat
 * convention.
 */

#ifndef BEER_SAT_TYPES_HH
#define BEER_SAT_TYPES_HH

#include <cstdint>
#include <vector>

namespace beer::sat
{

using Var = std::int32_t;

/** Packed literal; see file comment for the encoding. */
struct Lit
{
    std::int32_t x = -2; // undefined by default

    Lit() = default;
    constexpr Lit(Var var, bool negated)
        : x(2 * var + (negated ? 1 : 0))
    {
    }

    constexpr Var var() const { return x >> 1; }
    constexpr bool sign() const { return x & 1; }
    constexpr Lit operator~() const
    {
        Lit out;
        out.x = x ^ 1;
        return out;
    }

    constexpr bool operator==(const Lit &other) const = default;
    constexpr bool operator<(const Lit &other) const
    {
        return x < other.x;
    }

    /** Index usable for watch lists and lookup tables. */
    constexpr std::size_t index() const { return (std::size_t)x; }

    static constexpr Lit undef() { return Lit(); }
    constexpr bool isUndef() const { return x < 0; }
};

/** Positive literal of @p v. */
constexpr Lit
mkLit(Var v, bool negated = false)
{
    return Lit(v, negated);
}

/** Ternary logic value used for assignments. */
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

inline LBool
lboolFromBool(bool b)
{
    return b ? LBool::True : LBool::False;
}

/** Negation that keeps Undef fixed. */
inline LBool
operator!(LBool v)
{
    switch (v) {
      case LBool::False:
        return LBool::True;
      case LBool::True:
        return LBool::False;
      default:
        return LBool::Undef;
    }
}

/** Reference to a clause in the solver's arena. */
using CRef = std::uint32_t;
constexpr CRef kCRefUndef = UINT32_MAX;

/** Result of a solve() call. */
enum class SolveResult { Sat, Unsat, Unknown };

} // namespace beer::sat

#endif // BEER_SAT_TYPES_HH
