#include "sim/batch.hh"

#include "util/logging.hh"

namespace beer::sim
{

void
BitslicedBatch::setWord(unsigned lane, const gf2::BitVec &word)
{
    BEER_ASSERT(word.size() == lanes_.size() && lane < kLanes);
    const std::uint64_t bit = (std::uint64_t)1 << lane;
    for (std::size_t pos = 0; pos < lanes_.size(); ++pos) {
        if (word.get(pos))
            lanes_[pos] |= bit;
        else
            lanes_[pos] &= ~bit;
    }
}

gf2::BitVec
BitslicedBatch::extractWord(unsigned lane) const
{
    BEER_ASSERT(lane < kLanes);
    gf2::BitVec word(lanes_.size());
    for (std::size_t pos = 0; pos < lanes_.size(); ++pos)
        if ((lanes_[pos] >> lane) & 1)
            word.set(pos, true);
    return word;
}

} // namespace beer::sim
