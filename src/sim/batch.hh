/**
 * @file
 * Bitsliced batch of 64 simulated words.
 *
 * A BitslicedBatch stores up to 64 equal-length words transposed: lane
 * word i is a 64-bit mask whose bit L is bit position i of simulated
 * word L. In this layout one uint64 operation processes one bit
 * position of all 64 words at once, which is what makes the bitsliced
 * decode kernel (ecc/bitsliced.hh) roughly two orders of magnitude
 * cheaper per word than the scalar BitVec-based decoder.
 *
 * The Monte-Carlo driver uses batches to hold raw-error words (the XOR
 * of received and stored codewords), which is all a linear decoder
 * needs: the syndrome and the correction depend on the received word
 * only through that difference.
 */

#ifndef BEER_SIM_BATCH_HH
#define BEER_SIM_BATCH_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "gf2/bitvec.hh"

namespace beer::sim
{

/** Up to 64 equal-length bit words stored transposed; see file docs. */
class BitslicedBatch
{
  public:
    /** Number of words (lanes) a batch holds. */
    static constexpr std::size_t kLanes = 64;

    /** Batch of all-zero words of @p bits bit positions each. */
    explicit BitslicedBatch(std::size_t bits) : lanes_(bits, 0) {}

    /** Bit positions per word. */
    std::size_t bits() const { return lanes_.size(); }

    /** Reset every word to all-zero. */
    void clear() { std::fill(lanes_.begin(), lanes_.end(), 0); }

    /** Set bit @p pos of word @p lane. */
    void setBit(std::size_t pos, unsigned lane)
    {
        lanes_[pos] |= (std::uint64_t)1 << lane;
    }

    /** Bit @p pos of word @p lane. */
    bool get(std::size_t pos, unsigned lane) const
    {
        return (lanes_[pos] >> lane) & 1;
    }

    /** Lane mask for bit position @p pos (bit L = word L's bit). */
    std::uint64_t lane(std::size_t pos) const { return lanes_[pos]; }

    /** Raw lane array, bits() entries. */
    const std::uint64_t *lanes() const { return lanes_.data(); }

    /** Transpose @p word (of size bits()) into lane @p lane. */
    void setWord(unsigned lane, const gf2::BitVec &word);

    /** Transpose lane @p lane back out into a BitVec of size bits(). */
    gf2::BitVec extractWord(unsigned lane) const;

  private:
    std::vector<std::uint64_t> lanes_;
};

} // namespace beer::sim

#endif // BEER_SIM_BATCH_HH
