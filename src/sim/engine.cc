#include "sim/engine.hh"

namespace beer::sim
{

using util::simd::Backend;

namespace
{

const EngineKernel &
kernelForWidth(Backend backend)
{
    switch (backend) {
      case Backend::U64x2:
        if (util::simd::cpuHasNeon())
            if (const EngineKernel *native = engineU64x2Neon())
                return *native;
        return engineU64x2Generic();
      case Backend::U64x4:
        if (util::simd::cpuHasAvx2())
            if (const EngineKernel *native = engineU64x4Avx2())
                return *native;
        return engineU64x4Generic();
      case Backend::U64x8:
        if (util::simd::cpuHasAvx512f())
            if (const EngineKernel *native = engineU64x8Avx512())
                return *native;
        return engineU64x8Generic();
      case Backend::U64x1:
      case Backend::Auto:
        break;
    }
    return engineU64x1Generic();
}

/** Widest kernel that runs natively on this host and build. */
const EngineKernel &
widestNativeKernel()
{
    if (util::simd::cpuHasAvx512f())
        if (const EngineKernel *native = engineU64x8Avx512())
            return *native;
    if (util::simd::cpuHasAvx2())
        if (const EngineKernel *native = engineU64x4Avx2())
            return *native;
    if (util::simd::cpuHasNeon())
        if (const EngineKernel *native = engineU64x2Neon())
            return *native;
    return engineU64x1Generic();
}

} // anonymous namespace

const EngineKernel &
engineKernel(Backend backend)
{
    const Backend requested = util::simd::requestedBackend(backend);
    if (requested == Backend::Auto)
        return widestNativeKernel();
    return kernelForWidth(requested);
}

const EngineKernel &
engineKernelForLanes(Backend backend, std::size_t count)
{
    const EngineKernel &cap = engineKernel(backend);
    if (count <= 64 && cap.words > 1)
        return engineU64x1Generic();
    // Prefer u64x2 for tiny batches only where it runs natively
    // (aarch64); x86 hosts keep their native u64x4 kernel instead of
    // a portable two-word loop.
    if (count <= 128 && cap.words > 2) {
        const EngineKernel &narrow = kernelForWidth(Backend::U64x2);
        if (narrow.native)
            return narrow;
    }
    if (count <= 256 && cap.words > 4)
        return kernelForWidth(Backend::U64x4);
    return cap;
}

} // namespace beer::sim
