/**
 * @file
 * Runtime dispatch over the width-generic simulation kernels.
 *
 * Every SIMD backend (util/simd.hh) is served by one EngineKernel: a
 * table of function pointers into kernels instantiated for that
 * backend's vector word. The portable instantiations live in
 * engine_generic.cc (compiled with baseline flags, runnable
 * anywhere); the intrinsic instantiations live in engine_avx2.cc /
 * engine_avx512.cc, the only translation units built with -mavx2 /
 * -mavx512f, and are handed out only when CPUID confirms the host
 * executes them. Forcing a width on a host without the matching ISA
 * therefore selects the portable fallback of the same width — same
 * statistics, bit for bit, just slower — which is what makes
 * cross-backend equivalence testable on any machine.
 */

#ifndef BEER_SIM_ENGINE_HH
#define BEER_SIM_ENGINE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ecc/bitsliced.hh"
#include "ecc/bitsliced_kernel.hh"
#include "sim/word_sim.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace beer::sim
{

/** Function table of one backend's kernel instantiations. */
struct EngineKernel
{
    /** Display name, e.g. "u64x4-avx2" or "u64x4-generic". */
    const char *name;
    /** 64-bit words per lane group (the V::kWords of the kernels). */
    std::size_t words;
    /** Simulated words per lane group: 64 * words. */
    std::size_t lanes;
    /** The backend this kernel serves. */
    util::simd::Backend backend;
    /** True when backed by native vector instructions. */
    bool native;

    /**
     * One deterministic Monte-Carlo shard (the width-generic
     * counterpart of PR 3's simulateBitslicedShard): skip-sample
     * error cells over the (word, vulnerable-position) grid and
     * decode erroneous words `lanes` at a time.
     */
    WordSimStats (*simulateShard)(const ecc::BitslicedDecoder &decoder,
                                  const std::vector<std::size_t> &vulnerable,
                                  double p, std::uint64_t num_words,
                                  util::Rng &rng);

    /**
     * Decode one lane group: @p error_lanes is n x words uint64s
     * (position-major); @p out must be prepare()d for (n, words).
     */
    void (*decodeBatch)(const ecc::BitslicedDecoder &decoder,
                        const std::uint64_t *error_lanes,
                        ecc::WideDecodeLanes &out);

    /**
     * Decode one lane group whose rows are @p row_stride uint64s
     * apart (row_stride >= words): row pos lives at error_lanes +
     * pos * row_stride. This is how the engine reads lane windows
     * straight out of a transposed chip plane store — no per-batch
     * gather copy. decodeBatch is the row_stride == words case.
     */
    void (*decodeStrided)(const ecc::BitslicedDecoder &decoder,
                          const std::uint64_t *error_lanes,
                          std::size_t row_stride,
                          ecc::WideDecodeLanes &out);
};

/**
 * Kernel for @p backend after full resolution: an explicit width maps
 * to its native kernel when the CPU and build support it, else to the
 * portable kernel of the same width; Auto consults BEER_SIMD, then
 * picks the widest native kernel (u64x1 when none is).
 */
const EngineKernel &engineKernel(util::simd::Backend backend);

/**
 * Kernel for decoding batches of @p count words: the narrowest width
 * covering count, capped at what @p backend resolves to — callers
 * with small batches (e.g. BEEP's reads-per-pattern groups) should
 * not pay for 512 lanes of kernel work to decode eight words.
 */
const EngineKernel &engineKernelForLanes(util::simd::Backend backend,
                                         std::size_t count);

/** @name Per-TU kernel factories (internal to the dispatch layer)
 * The intrinsic factories return nullptr when their translation unit
 * was compiled without the target ISA (non-x86 build, old compiler).
 * @{ */
const EngineKernel &engineU64x1Generic();
const EngineKernel &engineU64x2Generic();
const EngineKernel &engineU64x4Generic();
const EngineKernel &engineU64x8Generic();
const EngineKernel *engineU64x2Neon();
const EngineKernel *engineU64x4Avx2();
const EngineKernel *engineU64x8Avx512();
/** @} */

} // namespace beer::sim

#endif // BEER_SIM_ENGINE_HH
