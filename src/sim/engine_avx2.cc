/**
 * @file
 * AVX2 instantiation of the u64x4 kernels.
 *
 * This is one of only two translation units compiled with a vector
 * target flag (-mavx2; see the scoped set_source_files_properties in
 * CMakeLists.txt — no global -march, binaries stay portable). The
 * dispatch layer hands this kernel out only after CPUID confirms AVX2
 * (util::simd::cpuHasAvx2), so the ymm code can never reach a host
 * that would fault on it. Built without AVX2 support (non-x86, old
 * compiler), the factory degrades to nullptr and dispatch falls back
 * to the portable u64x4 kernel.
 */

#include "sim/engine.hh"

#if defined(__AVX2__)
#include "sim/engine_impl.hh"
#include "util/simd_vec.hh"
#endif

namespace beer::sim
{

const EngineKernel *
engineU64x4Avx2()
{
#if defined(__AVX2__)
    using util::simd::Avx2Isa;
    using util::simd::Vec;
    static const EngineKernel kernel =
        detail::makeEngineKernel<Vec<4, Avx2Isa>>(
            "u64x4-avx2", util::simd::Backend::U64x4, /*native=*/true);
    return &kernel;
#else
    return nullptr;
#endif
}

} // namespace beer::sim
