/**
 * @file
 * AVX-512F instantiation of the u64x8 kernels.
 *
 * Compiled with -mavx512f scoped to this translation unit only (see
 * CMakeLists.txt); the kernels restrict themselves to Foundation
 * instructions (512-bit logic ops, loads/stores, test-mask), so the
 * runtime gate is a single CPUID avx512f check. Built without AVX-512
 * support, the factory degrades to nullptr and dispatch falls back to
 * the portable u64x8 kernel.
 */

#include "sim/engine.hh"

#if defined(__AVX512F__)
#include "sim/engine_impl.hh"
#include "util/simd_vec.hh"
#endif

namespace beer::sim
{

const EngineKernel *
engineU64x8Avx512()
{
#if defined(__AVX512F__)
    using util::simd::Avx512Isa;
    using util::simd::Vec;
    static const EngineKernel kernel =
        detail::makeEngineKernel<Vec<8, Avx512Isa>>(
            "u64x8-avx512", util::simd::Backend::U64x8,
            /*native=*/true);
    return &kernel;
#else
    return nullptr;
#endif
}

} // namespace beer::sim
