/**
 * @file
 * Portable kernel instantiations, one per backend width.
 *
 * Compiled with the project's baseline flags only, so these run on
 * any host — they are what a forced u64x4/u64x8 backend falls back to
 * when the CPU (or the build) lacks AVX2/AVX-512, keeping every width
 * testable everywhere. The u64x1 kernel is also the Auto choice on
 * hosts with no native wide kernel.
 */

#include "sim/engine_impl.hh"
#include "util/simd_vec.hh"

namespace beer::sim
{

using util::simd::Backend;
using util::simd::Vec;

const EngineKernel &
engineU64x1Generic()
{
    static const EngineKernel kernel =
        detail::makeEngineKernel<Vec<1>>("u64x1", Backend::U64x1,
                                         /*native=*/true);
    return kernel;
}

const EngineKernel &
engineU64x2Generic()
{
    static const EngineKernel kernel = detail::makeEngineKernel<Vec<2>>(
        "u64x2-generic", Backend::U64x2, /*native=*/false);
    return kernel;
}

const EngineKernel &
engineU64x4Generic()
{
    static const EngineKernel kernel = detail::makeEngineKernel<Vec<4>>(
        "u64x4-generic", Backend::U64x4, /*native=*/false);
    return kernel;
}

const EngineKernel &
engineU64x8Generic()
{
    static const EngineKernel kernel = detail::makeEngineKernel<Vec<8>>(
        "u64x8-generic", Backend::U64x8, /*native=*/false);
    return kernel;
}

} // namespace beer::sim
