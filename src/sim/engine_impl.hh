/**
 * @file
 * Width-templated bodies of the simulation-engine kernels.
 *
 * Included by exactly one translation unit per backend
 * (engine_generic.cc, engine_avx2.cc, engine_avx512.cc); each
 * instantiates makeEngineKernel<V>() for its vector words, so every
 * instantiation's code is generated under that TU's target flags and
 * nothing compiled with -mavx* can leak into portable callers (the
 * template argument types differ per ISA tag, hence so do all mangled
 * symbols).
 */

#ifndef BEER_SIM_ENGINE_IMPL_HH
#define BEER_SIM_ENGINE_IMPL_HH

#include <cstdint>
#include <vector>

#include "ecc/bitsliced_kernel.hh"
#include "sim/engine.hh"
#include "sim/stats_reduce.hh"
#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace beer::sim::detail
{

/**
 * Bitsliced Monte-Carlo shard, V::kWords * 64 words per batch window:
 * skip-sample error cells over the (word, vulnerable position) grid —
 * each cell fails iid with probability p, exactly the scalar model —
 * and gather erroneous words into a transposed lane buffer for the
 * wide decode kernel. Error-free words never touch the kernel, and
 * the per-shard scratch (batch rows, decode lanes) is allocated once
 * and reused across every batch of the shard.
 */
template <typename V>
WordSimStats
simulateShardWide(const ecc::BitslicedDecoder &decoder,
                  const std::vector<std::size_t> &vulnerable, double p,
                  std::uint64_t num_words, util::Rng &rng)
{
    constexpr std::size_t W = V::kWords;
    constexpr std::size_t kLanes = 64 * W;
    const std::size_t n = decoder.n();
    const std::size_t k = decoder.k();

    WordSimStats stats;
    stats.preCorrectionErrors.assign(n, 0);
    stats.postCorrectionErrors.assign(k, 0);
    stats.outcomes.assign(6, 0);
    stats.wordsSimulated = num_words;

    const std::uint64_t v = vulnerable.size();
    BEER_ASSERT(v > 0 && num_words <= UINT64_MAX / v);
    const std::uint64_t total_cells = num_words * v;
    // Flush-time popcount reductions; resolved once per shard
    // (BEER_POPCNT, then CPUID), identical sums on every kernel.
    const StatsReduceKernel &reduce = statsReduceKernel();
    // Alias-table geometric: one raw Rng draw per error cell. Built
    // once per shard; identical draw sequence for every backend.
    const util::GeometricSampler gap(p);

    // Transposed raw-error lanes, n rows x W words; only vulnerable
    // rows are ever set, so flushes count and clear just those.
    std::vector<std::uint64_t> batch(n * W, 0);
    ecc::WideDecodeLanes lanes;
    lanes.prepare(n, W);

    // Post-correction errors at data bit b need popcount(error ^
    // correction); both masks are zero except at vulnerable data bits
    // (raw errors) and the decoder's touched rows (corrections), so
    // flushes visit only those instead of all k rows.
    std::vector<std::size_t> data_vulnerable;
    std::vector<std::uint8_t> is_data_vulnerable(k, 0);
    for (const std::size_t pos : vulnerable)
        if (pos < k) {
            data_vulnerable.push_back(pos);
            is_data_vulnerable[pos] = 1;
        }

    // batch_limit == 0 doubles as "no open window": word indices are
    // always >= 0, so the first error cell rebases without a flush
    // and the steady-state fill path costs one predictable branch.
    std::uint64_t batch_base = 0;
    std::uint64_t batch_limit = 0;

    auto flush = [&]() {
        ecc::decodeWide<V>(decoder, batch.data(), lanes);
        stats.wordsWithRawErrors += reduce.rowPopcount(lanes.anyRaw, W);
        // NoError is accounted arithmetically at the end; the other
        // five outcome masks are all subsets of anyRaw.
        for (std::size_t o = 1; o < 6; ++o)
            stats.outcomes[o] += reduce.rowPopcount(lanes.outcome[o], W);
        for (const std::size_t pos : vulnerable)
            stats.preCorrectionErrors[pos] +=
                reduce.rowPopcount(&batch[pos * W], W);
        for (const std::size_t bit : data_vulnerable)
            stats.postCorrectionErrors[bit] += reduce.xorRowPopcount(
                &batch[bit * W], &lanes.correction[bit * W], W);
        for (const std::uint32_t pos : lanes.touched) {
            if (pos >= k || is_data_vulnerable[pos])
                continue; // parity row, or already counted above
            stats.postCorrectionErrors[pos] +=
                reduce.rowPopcount(&lanes.correction[pos * W], W);
        }
        for (const std::size_t pos : vulnerable) {
            std::uint64_t *row = &batch[pos * W];
            for (std::size_t j = 0; j < W; ++j)
                row[j] = 0;
        }
    };

    // The flat cell index fits 32 bits for every sane shard size
    // (wordsPerShard defaults to 2^16), which unlocks the reciprocal
    // divide; fall back to hardware division on oversized shards.
    const bool small = total_cells <= UINT32_MAX;
    const util::FastDiv32 divv(
        (std::uint32_t)(small ? v : 1));

    auto visit = [&](std::uint64_t word, std::size_t pos) {
        if (word >= batch_limit) {
            if (batch_limit)
                flush();
            // Anchor the window at the first erroneous word, so
            // sparse error rates still fill batches densely.
            batch_base = word;
            batch_limit = word + kLanes;
        }
        const std::size_t lane = (std::size_t)(word - batch_base);
        batch[pos * W + lane / 64] |= (std::uint64_t)1 << (lane & 63);
    };

    if (small) {
        gap.forEach(rng, total_cells, [&](std::uint64_t cell) {
            const std::uint32_t word = divv.div((std::uint32_t)cell);
            const std::uint32_t idx =
                (std::uint32_t)cell - word * (std::uint32_t)v;
            visit(word, vulnerable[idx]);
        });
    } else {
        gap.forEach(rng, total_cells, [&](std::uint64_t cell) {
            visit(cell / v, vulnerable[(std::size_t)(cell % v)]);
        });
    }
    if (batch_limit)
        flush();
    stats.outcomes[(std::size_t)ecc::DecodeOutcome::NoError] =
        num_words - stats.wordsWithRawErrors;
    return stats;
}

/** EngineKernel over V's instantiations; name/backend supplied by the TU. */
template <typename V>
EngineKernel
makeEngineKernel(const char *name, util::simd::Backend backend,
                 bool native)
{
    EngineKernel kernel;
    kernel.name = name;
    kernel.words = V::kWords;
    kernel.lanes = 64 * V::kWords;
    kernel.backend = backend;
    kernel.native = native;
    kernel.simulateShard = &simulateShardWide<V>;
    kernel.decodeBatch = &ecc::decodeWide<V>;
    kernel.decodeStrided = &ecc::decodeWideStrided<V>;
    return kernel;
}

} // namespace beer::sim::detail

#endif // BEER_SIM_ENGINE_IMPL_HH
