/**
 * @file
 * NEON instantiation of the u64x2 kernels.
 *
 * Advanced SIMD is baseline on aarch64, so unlike the AVX translation
 * units this one needs no special target flags there — the guard is
 * the architecture itself (__ARM_NEON, plus the runtime
 * util::simd::cpuHasNeon check in dispatch, which is constant-true on
 * aarch64 and constant-false elsewhere). On non-ARM builds the
 * factory degrades to nullptr and dispatch falls back to the portable
 * u64x2 kernel, keeping the width testable on every host.
 */

#include "sim/engine.hh"

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#include "sim/engine_impl.hh"
#include "util/simd_vec.hh"
#endif

namespace beer::sim
{

const EngineKernel *
engineU64x2Neon()
{
#if defined(__ARM_NEON) || defined(__ARM_NEON__)
    using util::simd::NeonIsa;
    using util::simd::Vec;
    static const EngineKernel kernel =
        detail::makeEngineKernel<Vec<2, NeonIsa>>(
            "u64x2-neon", util::simd::Backend::U64x2, /*native=*/true);
    return &kernel;
#else
    return nullptr;
#endif
}

} // namespace beer::sim
