/**
 * @file
 * VPOPCNTDQ instantiation of the stats-reduction kernel.
 *
 * The only translation unit compiled with -mavx512vpopcntdq (scoped in
 * CMakeLists.txt, like the engine's -mavx2/-mavx512f TUs). Dispatch
 * hands it out only after CPUID confirms the avx512vpopcntdq bit
 * (util::simd::cpuHasAvx512Vpopcntdq) — its own feature flag, distinct
 * from AVX-512F. Built without compiler support, the factory degrades
 * to nullptr and dispatch keeps the portable kernel.
 */

#include "sim/stats_reduce.hh"

#if defined(__AVX512VPOPCNTDQ__) && defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace beer::sim
{

#if defined(__AVX512VPOPCNTDQ__) && defined(__AVX512F__)

namespace
{

/** Horizontal add via an explicit store (no _mm512_reduce_add_epi64:
 * its shuffle idiom trips GCC's maybe-uninitialized analysis). */
std::uint64_t
horizontalAdd(__m512i acc)
{
    std::uint64_t lanes[8];
    _mm512_storeu_si512((void *)lanes, acc);
    std::uint64_t sum = 0;
    for (const std::uint64_t lane : lanes)
        sum += lane;
    return sum;
}

std::uint64_t
rowPopcountVpopcnt(const std::uint64_t *row, std::size_t words)
{
    __m512i acc = _mm512_setzero_si512();
    std::size_t j = 0;
    for (; j + 8 <= words; j += 8) {
        const __m512i v = _mm512_loadu_si512((const void *)(row + j));
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
    }
    std::uint64_t sum = horizontalAdd(acc);
    for (; j < words; ++j)
        sum += (std::uint64_t)__builtin_popcountll(row[j]);
    return sum;
}

std::uint64_t
xorRowPopcountVpopcnt(const std::uint64_t *a, const std::uint64_t *b,
                      std::size_t words)
{
    __m512i acc = _mm512_setzero_si512();
    std::size_t j = 0;
    for (; j + 8 <= words; j += 8) {
        const __m512i va = _mm512_loadu_si512((const void *)(a + j));
        const __m512i vb = _mm512_loadu_si512((const void *)(b + j));
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(_mm512_xor_si512(va, vb)));
    }
    std::uint64_t sum = horizontalAdd(acc);
    for (; j < words; ++j)
        sum += (std::uint64_t)__builtin_popcountll(a[j] ^ b[j]);
    return sum;
}

} // anonymous namespace

const StatsReduceKernel *
statsReduceVpopcntdq()
{
    static const StatsReduceKernel kernel = {
        "vpopcntdq", /*native=*/true, &rowPopcountVpopcnt,
        &xorRowPopcountVpopcnt};
    return &kernel;
}

#else

const StatsReduceKernel *
statsReduceVpopcntdq()
{
    return nullptr;
}

#endif // __AVX512VPOPCNTDQ__ && __AVX512F__

} // namespace beer::sim
