#include "sim/stats_reduce.hh"

#include <cstdlib>
#include <string>

#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace beer::sim
{

namespace
{

std::uint64_t
rowPopcountPortable(const std::uint64_t *row, std::size_t words)
{
    std::uint64_t sum = 0;
    for (std::size_t j = 0; j < words; ++j)
        sum += (std::uint64_t)util::popcount64(row[j]);
    return sum;
}

std::uint64_t
xorRowPopcountPortable(const std::uint64_t *a, const std::uint64_t *b,
                       std::size_t words)
{
    std::uint64_t sum = 0;
    for (std::size_t j = 0; j < words; ++j)
        sum += (std::uint64_t)util::popcount64(a[j] ^ b[j]);
    return sum;
}

} // anonymous namespace

const StatsReduceKernel &
statsReducePortable()
{
    static const StatsReduceKernel kernel = {
        "portable", /*native=*/false, &rowPopcountPortable,
        &xorRowPopcountPortable};
    return kernel;
}

const StatsReduceKernel &
statsReduceKernel()
{
    // Re-read the environment every call (resolution happens once per
    // shard or read batch, never per row) so tests can force kernels
    // with setenv() without process restarts.
    const char *value = std::getenv("BEER_POPCNT");
    const std::string requested = value ? value : "auto";
    if (requested == "portable")
        return statsReducePortable();
    if (requested != "auto" && requested != "vpopcntdq")
        util::fatal("BEER_POPCNT='%s' is not a popcount kernel "
                    "(expected auto, portable, or vpopcntdq)",
                    requested.c_str());
    // "vpopcntdq" on a host or build without the instruction falls
    // back to portable — identical counts, so forcing is always legal.
    if (util::simd::cpuHasAvx512Vpopcntdq())
        if (const StatsReduceKernel *native = statsReduceVpopcntdq())
            return *native;
    return statsReducePortable();
}

} // namespace beer::sim
