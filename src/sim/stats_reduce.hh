/**
 * @file
 * Runtime-dispatched popcount reduction for flush-time statistics.
 *
 * Every flush of the simulation engine (and every wide chip read)
 * reduces transposed lane rows to counts: popcount sums over a row of
 * uint64 lane words, plain or XOR-combined with a correction row. On
 * AVX-512 hosts with VPOPCNTDQ these reductions run one vector
 * popcount per 8 lane words; everywhere else a portable scalar loop
 * does the same arithmetic. Both produce identical sums — popcount is
 * exact — so kernel choice is purely a speed knob, mirroring the
 * engine's SIMD backend contract.
 *
 * Selection: the BEER_POPCNT environment variable ("auto", "portable",
 * "vpopcntdq") wins, then CPUID. Forcing "vpopcntdq" on a host
 * without the instruction falls back to the portable kernel (same
 * counts, just slower), so CI can pin the kernel on any runner. The
 * intrinsic implementation lives in its own translation unit
 * (sim/stats_avx512.cc, the only TU built with -mavx512vpopcntdq),
 * exactly like the engine's per-ISA kernels.
 */

#ifndef BEER_SIM_STATS_REDUCE_HH
#define BEER_SIM_STATS_REDUCE_HH

#include <cstddef>
#include <cstdint>

namespace beer::sim
{

/** Function table of one popcount-reduction implementation. */
struct StatsReduceKernel
{
    /** Display name: "portable" or "vpopcntdq". */
    const char *name;
    /** True when backed by native vector popcount instructions. */
    bool native;

    /** Sum of popcount(row[j]) for j in [0, words). */
    std::uint64_t (*rowPopcount)(const std::uint64_t *row,
                                 std::size_t words);

    /** Sum of popcount(a[j] ^ b[j]) for j in [0, words). */
    std::uint64_t (*xorRowPopcount)(const std::uint64_t *a,
                                    const std::uint64_t *b,
                                    std::size_t words);
};

/**
 * Kernel after full resolution: BEER_POPCNT override first (re-read
 * per call so tests can flip it with setenv; fatal on junk values),
 * then the VPOPCNTDQ kernel when CPUID and the build provide it, else
 * the portable kernel.
 */
const StatsReduceKernel &statsReduceKernel();

/** The portable scalar kernel (always available; reference counts). */
const StatsReduceKernel &statsReducePortable();

/**
 * The VPOPCNTDQ kernel, or nullptr when this build lacks it (non-x86
 * host, old compiler). Callers must still check CPUID before use; the
 * dispatch in statsReduceKernel() does both.
 */
const StatsReduceKernel *statsReduceVpopcntdq();

} // namespace beer::sim

#endif // BEER_SIM_STATS_REDUCE_HH
