#include "sim/word_sim.hh"

#include <cmath>

#include "util/logging.hh"

namespace beer::sim
{

using gf2::BitVec;

void
WordSimStats::merge(const WordSimStats &other)
{
    auto merge_vec = [](std::vector<std::uint64_t> &dst,
                        const std::vector<std::uint64_t> &src) {
        if (dst.size() < src.size())
            dst.resize(src.size(), 0);
        for (std::size_t i = 0; i < src.size(); ++i)
            dst[i] += src[i];
    };
    merge_vec(preCorrectionErrors, other.preCorrectionErrors);
    merge_vec(postCorrectionErrors, other.postCorrectionErrors);
    merge_vec(outcomes, other.outcomes);
    wordsSimulated += other.wordsSimulated;
    wordsWithRawErrors += other.wordsWithRawErrors;
}

namespace
{

constexpr std::size_t kNumOutcomes = 6;

/**
 * Sample an error count m >= 1 from Binomial(n, p) conditioned on at
 * least one error, by sequential inversion of the conditional CDF.
 */
std::uint64_t
conditionalBinomial(std::uint64_t n, double p, util::Rng &rng)
{
    const double q = 1.0 - p;
    const double pmf0 = std::pow(q, (double)n);
    const double norm = 1.0 - pmf0;
    BEER_ASSERT(norm > 0.0);
    double pmf = pmf0;
    double cdf = 0.0;
    const double u = rng.uniform() * norm;
    std::uint64_t m = 0;
    const double ratio = p / q;
    while (m < n) {
        ++m;
        pmf *= ratio * (double)(n - m + 1) / (double)m;
        cdf += pmf;
        if (u < cdf)
            break;
    }
    return m;
}

/** Flip @p count distinct positions drawn from @p positions. */
void
flipRandomSubset(BitVec &word, const std::vector<std::size_t> &positions,
                 std::uint64_t count, util::Rng &rng,
                 std::vector<std::size_t> &scratch)
{
    // Floyd's algorithm for sampling `count` distinct indices.
    scratch.clear();
    const std::size_t total = positions.size();
    for (std::size_t j = total - count; j < total; ++j) {
        std::size_t t = (std::size_t)rng.below(j + 1);
        bool seen = false;
        for (std::size_t s : scratch) {
            if (s == t) {
                seen = true;
                break;
            }
        }
        scratch.push_back(seen ? j : t);
    }
    for (std::size_t idx : scratch)
        word.flip(positions[idx]);
}

WordSimStats
simulateCore(const ecc::LinearCode &code, const BitVec &codeword,
             const std::vector<std::size_t> &vulnerable, double per_bit_p,
             std::uint64_t num_words, util::Rng &rng)
{
    WordSimStats stats;
    stats.preCorrectionErrors.assign(code.n(), 0);
    stats.postCorrectionErrors.assign(code.k(), 0);
    stats.outcomes.assign(kNumOutcomes, 0);
    stats.wordsSimulated = num_words;

    if (vulnerable.empty() || per_bit_p <= 0.0) {
        stats.outcomes[(std::size_t)ecc::DecodeOutcome::NoError] +=
            num_words;
        return stats;
    }

    const BitVec original_data = code.extractData(codeword);
    // Probability that a word has at least one raw error.
    const double p_any =
        1.0 - std::pow(1.0 - per_bit_p, (double)vulnerable.size());

    std::vector<std::size_t> scratch;
    BitVec received(code.n());
    std::uint64_t w = 0;
    while (true) {
        // Geometric skip to the next word containing raw errors.
        const std::uint64_t gap = rng.geometric(p_any);
        if (num_words - w <= gap) {
            stats.outcomes[(std::size_t)ecc::DecodeOutcome::NoError] +=
                num_words - w;
            break;
        }
        w += gap;
        stats.outcomes[(std::size_t)ecc::DecodeOutcome::NoError] += gap;
        ++stats.wordsWithRawErrors;
        ++w;

        const std::uint64_t m =
            conditionalBinomial(vulnerable.size(), per_bit_p, rng);
        received = codeword;
        flipRandomSubset(received, vulnerable, m, rng, scratch);

        for (std::size_t pos : vulnerable)
            if (received.get(pos) != codeword.get(pos))
                ++stats.preCorrectionErrors[pos];

        const ecc::DecodeResult result = ecc::decode(code, received);
        const ecc::DecodeOutcome outcome =
            ecc::classify(code, codeword, received, result);
        ++stats.outcomes[(std::size_t)outcome];

        for (std::size_t bit = 0; bit < code.k(); ++bit)
            if (result.dataword.get(bit) != original_data.get(bit))
                ++stats.postCorrectionErrors[bit];
    }
    return stats;
}

} // anonymous namespace

WordSimStats
simulateUniformErrors(const ecc::LinearCode &code, const BitVec &dataword,
                      double rber, std::uint64_t num_words,
                      util::Rng &rng)
{
    const BitVec codeword = code.encode(dataword);
    std::vector<std::size_t> all_positions(code.n());
    for (std::size_t i = 0; i < code.n(); ++i)
        all_positions[i] = i;
    return simulateCore(code, codeword, all_positions, rber, num_words,
                        rng);
}

WordSimStats
simulateRetentionErrors(const ecc::LinearCode &code, const BitVec &codeword,
                        const BitVec &charged_mask, double ber,
                        std::uint64_t num_words, util::Rng &rng)
{
    BEER_ASSERT(codeword.size() == code.n());
    BEER_ASSERT(charged_mask.size() == code.n());
    return simulateCore(code, codeword, charged_mask.support(), ber,
                        num_words, rng);
}

gf2::BitVec
chargedMask(const BitVec &codeword, dram::CellType cell_type)
{
    BitVec mask(codeword.size());
    for (std::size_t i = 0; i < codeword.size(); ++i) {
        if (dram::chargeOf(codeword.get(i), cell_type) ==
            dram::ChargeState::Charged) {
            mask.set(i, true);
        }
    }
    return mask;
}

} // namespace beer::sim
