#include "sim/word_sim.hh"

#include <algorithm>
#include <cmath>
#include <optional>

#include "ecc/bitsliced.hh"
#include "sim/engine.hh"
#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace beer::sim
{

using gf2::BitVec;

void
WordSimStats::merge(const WordSimStats &other)
{
    auto merge_vec = [](std::vector<std::uint64_t> &dst,
                        const std::vector<std::uint64_t> &src) {
        if (dst.size() < src.size())
            dst.resize(src.size(), 0);
        for (std::size_t i = 0; i < src.size(); ++i)
            dst[i] += src[i];
    };
    merge_vec(preCorrectionErrors, other.preCorrectionErrors);
    merge_vec(postCorrectionErrors, other.postCorrectionErrors);
    merge_vec(outcomes, other.outcomes);
    wordsSimulated += other.wordsSimulated;
    wordsWithRawErrors += other.wordsWithRawErrors;
}

namespace
{

constexpr std::size_t kNumOutcomes = 6;

WordSimStats
emptyStats(std::size_t n, std::size_t k, std::uint64_t num_words)
{
    WordSimStats stats;
    stats.preCorrectionErrors.assign(n, 0);
    stats.postCorrectionErrors.assign(k, 0);
    stats.outcomes.assign(kNumOutcomes, 0);
    stats.wordsSimulated = num_words;
    return stats;
}

/**
 * Sample an error count m >= 1 from Binomial(n, p) conditioned on at
 * least one error, by sequential inversion of the conditional CDF.
 */
std::uint64_t
conditionalBinomial(std::uint64_t n, double p, util::Rng &rng)
{
    const double q = 1.0 - p;
    const double pmf0 = std::pow(q, (double)n);
    const double norm = 1.0 - pmf0;
    BEER_ASSERT(norm > 0.0);
    double pmf = pmf0;
    double cdf = 0.0;
    const double u = rng.uniform() * norm;
    std::uint64_t m = 0;
    const double ratio = p / q;
    while (m < n) {
        ++m;
        pmf *= ratio * (double)(n - m + 1) / (double)m;
        cdf += pmf;
        if (u < cdf)
            break;
    }
    return m;
}

/**
 * Flip @p count distinct positions drawn from @p positions, using
 * Floyd's algorithm. @p seen is a flat membership mask over position
 * indices (>= positions.size() entries, all false on entry and reset
 * on exit), so each draw is O(1) instead of a linear scan over the
 * already-chosen set.
 */
void
flipRandomSubset(BitVec &word, const std::vector<std::size_t> &positions,
                 std::uint64_t count, util::Rng &rng,
                 std::vector<std::uint8_t> &seen,
                 std::vector<std::size_t> &chosen)
{
    chosen.clear();
    const std::size_t total = positions.size();
    for (std::size_t j = total - count; j < total; ++j) {
        const std::size_t t = (std::size_t)rng.below(j + 1);
        // Floyd: j itself is never chosen before iteration j, so the
        // fallback pick is always fresh.
        const std::size_t pick = seen[t] ? j : t;
        seen[pick] = 1;
        chosen.push_back(pick);
    }
    for (const std::size_t idx : chosen) {
        word.flip(positions[idx]);
        seen[idx] = 0;
    }
}

/** Scalar reference path: decode one erroneous word at a time. */
WordSimStats
simulateScalarShard(const ecc::LinearCode &code, const BitVec &codeword,
                    const std::vector<std::size_t> &vulnerable,
                    double per_bit_p, std::uint64_t num_words,
                    util::Rng &rng)
{
    WordSimStats stats =
        emptyStats(code.n(), code.k(), num_words);

    const BitVec original_data = code.extractData(codeword);
    // Probability that a word has at least one raw error.
    const double p_any =
        1.0 - std::pow(1.0 - per_bit_p, (double)vulnerable.size());

    std::vector<std::uint8_t> seen(vulnerable.size(), 0);
    std::vector<std::size_t> chosen;
    BitVec received(code.n());
    std::uint64_t w = 0;
    while (true) {
        // Geometric skip to the next word containing raw errors.
        const std::uint64_t gap = rng.geometric(p_any);
        if (num_words - w <= gap) {
            stats.outcomes[(std::size_t)ecc::DecodeOutcome::NoError] +=
                num_words - w;
            break;
        }
        w += gap;
        stats.outcomes[(std::size_t)ecc::DecodeOutcome::NoError] += gap;
        ++stats.wordsWithRawErrors;
        ++w;

        const std::uint64_t m =
            conditionalBinomial(vulnerable.size(), per_bit_p, rng);
        received = codeword;
        flipRandomSubset(received, vulnerable, m, rng, seen, chosen);

        for (std::size_t pos : vulnerable)
            if (received.get(pos) != codeword.get(pos))
                ++stats.preCorrectionErrors[pos];

        const ecc::DecodeResult result = ecc::decode(code, received);
        const ecc::DecodeOutcome outcome =
            ecc::classify(code, codeword, received, result);
        ++stats.outcomes[(std::size_t)outcome];

        for (std::size_t bit = 0; bit < code.k(); ++bit)
            if (result.dataword.get(bit) != original_data.get(bit))
                ++stats.postCorrectionErrors[bit];
    }
    return stats;
}

/**
 * Deterministic sharded driver: fork one Rng stream per fixed-size
 * shard (in shard order), run shards on the pool, and merge stats in
 * shard order. The thread count affects scheduling only, and the
 * SIMD backend (which sizes the in-shard lane groups) only changes
 * how erroneous words are grouped for decoding — never what any word
 * decodes to — so stats are bit-identical across thread counts AND
 * backends.
 */
WordSimStats
simulateSharded(const ecc::LinearCode &code, const BitVec &codeword,
                const std::vector<std::size_t> &vulnerable,
                double per_bit_p, std::uint64_t num_words,
                util::Rng &rng, const SimConfig &config)
{
    if (vulnerable.empty() || per_bit_p <= 0.0 || num_words == 0) {
        WordSimStats stats =
            emptyStats(code.n(), code.k(), num_words);
        stats.outcomes[(std::size_t)ecc::DecodeOutcome::NoError] =
            num_words;
        return stats;
    }
    const double p = std::min(per_bit_p, 1.0);

    const std::uint64_t shard_words =
        std::max<std::uint64_t>(1, config.wordsPerShard);
    const std::size_t num_shards =
        (std::size_t)((num_words + shard_words - 1) / shard_words);

    std::vector<util::Rng> shard_rngs;
    shard_rngs.reserve(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s)
        shard_rngs.push_back(rng.fork());

    // Built once and shared read-only by every worker; the kernel
    // table is resolved once per call (config, then BEER_SIMD, then
    // CPUID), never per shard.
    std::optional<ecc::BitslicedDecoder> decoder;
    const EngineKernel *kernel = nullptr;
    if (config.bitsliced) {
        decoder.emplace(code);
        kernel = &engineKernel(config.simdBackend);
    }

    std::vector<WordSimStats> shard_stats(num_shards);
    auto run_shard = [&](std::size_t s) {
        const std::uint64_t begin = (std::uint64_t)s * shard_words;
        const std::uint64_t count =
            std::min<std::uint64_t>(shard_words, num_words - begin);
        shard_stats[s] =
            config.bitsliced
                ? kernel->simulateShard(*decoder, vulnerable, p, count,
                                        shard_rngs[s])
                : simulateScalarShard(code, codeword, vulnerable, p,
                                      count, shard_rngs[s]);
    };

    if (config.pool && num_shards > 1) {
        config.pool->parallelFor(num_shards, run_shard);
    } else if (config.threads == 1 || num_shards == 1) {
        for (std::size_t s = 0; s < num_shards; ++s)
            run_shard(s);
    } else {
        util::ThreadPool pool(config.threads);
        pool.parallelFor(num_shards, run_shard);
    }

    WordSimStats total = std::move(shard_stats[0]);
    for (std::size_t s = 1; s < num_shards; ++s)
        total.merge(shard_stats[s]);
    return total;
}

} // anonymous namespace

WordSimStats
simulateUniformErrors(const ecc::LinearCode &code, const BitVec &dataword,
                      double rber, std::uint64_t num_words,
                      util::Rng &rng, const SimConfig &config)
{
    const BitVec codeword = code.encode(dataword);
    std::vector<std::size_t> all_positions(code.n());
    for (std::size_t i = 0; i < code.n(); ++i)
        all_positions[i] = i;
    return simulateSharded(code, codeword, all_positions, rber,
                           num_words, rng, config);
}

WordSimStats
simulateRetentionErrors(const ecc::LinearCode &code, const BitVec &codeword,
                        const BitVec &charged_mask, double ber,
                        std::uint64_t num_words, util::Rng &rng,
                        const SimConfig &config)
{
    BEER_ASSERT(codeword.size() == code.n());
    BEER_ASSERT(charged_mask.size() == code.n());
    return simulateSharded(code, codeword, charged_mask.support(), ber,
                           num_words, rng, config);
}

gf2::BitVec
chargedMask(const BitVec &codeword, dram::CellType cell_type)
{
    BitVec mask(codeword.size());
    for (std::size_t i = 0; i < codeword.size(); ++i) {
        if (dram::chargeOf(codeword.get(i), cell_type) ==
            dram::ChargeState::Charged) {
            mask.set(i, true);
        }
    }
    return mask;
}

} // namespace beer::sim
