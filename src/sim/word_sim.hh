/**
 * @file
 * EINSim-style Monte-Carlo simulation of ECC words.
 *
 * Substitutes for the authors' EINSim simulator: inject pre-correction
 * errors into codewords, decode, and aggregate per-bit post-correction
 * statistics. Two error modes are provided:
 *
 *  - uniform-random errors across all codeword bits (Figure 1's model
 *    of generic raw bit errors at a given RBER);
 *  - data-retention errors restricted to CHARGED cells (the model BEER
 *    exploits; used for miscorrection-profile sampling).
 *
 * The engine is built for the paper's scale (1e9 words per data
 * point, Sections 5.1.3 and 6):
 *
 *  - skip-sampling: error cells are reached by geometric jumps, so
 *    error-free words and cells cost O(1);
 *  - bitsliced decoding: erroneous words are gathered into transposed
 *    lane groups of 64/256/512 words (SIMD backend, see util/simd.hh
 *    and sim/engine.hh) and decoded/classified lane-parallel
 *    (ecc/bitsliced_kernel.hh);
 *  - deterministic multithreaded sharding: the word count is split
 *    into fixed-size shards, each drawing from its own Rng::fork()ed
 *    stream keyed by shard index and merged in shard order, so results
 *    are bit-identical for every thread count.
 *
 * The scalar one-word-at-a-time path is retained behind
 * SimConfig::bitsliced = false for differential testing.
 */

#ifndef BEER_SIM_WORD_SIM_HH
#define BEER_SIM_WORD_SIM_HH

#include <cstdint>
#include <vector>

#include "dram/types.hh"
#include "ecc/decoder.hh"
#include "ecc/linear_code.hh"
#include "gf2/bitvec.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace beer::util
{
class ThreadPool;
} // namespace beer::util

namespace beer::sim
{

/** Per-bit and per-outcome aggregate of one simulation run. */
struct WordSimStats
{
    /** Raw (pre-correction) error count per codeword bit position. */
    std::vector<std::uint64_t> preCorrectionErrors;
    /** Post-correction error count per data bit position. */
    std::vector<std::uint64_t> postCorrectionErrors;
    /** Words simulated (including skipped error-free words). */
    std::uint64_t wordsSimulated = 0;
    /** Words that contained at least one raw error. */
    std::uint64_t wordsWithRawErrors = 0;
    /** Decode outcome histogram indexed by ecc::DecodeOutcome. */
    std::vector<std::uint64_t> outcomes;

    /** Merge another run's counters into this one. */
    void merge(const WordSimStats &other);

    bool operator==(const WordSimStats &other) const = default;
};

/** Engine and scheduling knobs for the Monte-Carlo driver. */
struct SimConfig
{
    /**
     * Decode erroneous words in bitsliced lane groups; false selects
     * the scalar reference path (same statistics, different Rng
     * stream consumption).
     */
    bool bitsliced = true;
    /**
     * SIMD width of the bitsliced kernels: Auto resolves via the
     * BEER_SIMD environment variable, then CPUID (widest native
     * kernel). Statistics are bit-identical for every backend — lane
     * grouping never changes what any single word decodes to — so
     * forcing a width only changes speed, and the portable fallback
     * makes every width runnable on every host.
     */
    util::simd::Backend simdBackend = util::simd::Backend::Auto;
    /**
     * Worker threads (including the caller); 0 means all hardware
     * threads. Results are bit-identical for every value: threads only
     * change which worker executes a shard, never the shard streams.
     * Ignored when @ref pool is set.
     */
    std::size_t threads = 1;
    /**
     * Optional non-owning pool to run shards on, so callers issuing
     * many simulate calls (e.g. one per test pattern) reuse one set of
     * workers instead of spawning threads per call. When null and
     * threads != 1, each call creates a transient pool.
     */
    util::ThreadPool *pool = nullptr;
    /**
     * Words per deterministic shard. Each shard consumes its own
     * forked Rng stream, so results depend on this granularity but
     * never on the thread count.
     */
    std::uint64_t wordsPerShard = 1ull << 16;
};

/**
 * Simulate @p num_words transmissions of @p dataword with iid raw
 * errors at rate @p rber in every codeword bit (Figure 1's workload).
 */
WordSimStats simulateUniformErrors(const ecc::LinearCode &code,
                                   const gf2::BitVec &dataword,
                                   double rber, std::uint64_t num_words,
                                   util::Rng &rng,
                                   const SimConfig &config = {});

/**
 * Simulate @p num_words retention tests of one stored codeword:
 * only the cells in @p charged_mask (positions whose cells are CHARGED)
 * may fail, each iid with probability @p ber, and a failure flips the
 * stored bit. This is the fast path used to measure miscorrection
 * profiles; it is equivalent to testing num_words identical ECC words
 * spread across a real chip (paper Section 5.1.3).
 *
 * @param codeword     the stored (error-free) codeword
 * @param charged_mask positions of CHARGED cells, length n
 */
WordSimStats simulateRetentionErrors(const ecc::LinearCode &code,
                                     const gf2::BitVec &codeword,
                                     const gf2::BitVec &charged_mask,
                                     double ber, std::uint64_t num_words,
                                     util::Rng &rng,
                                     const SimConfig &config = {});

/**
 * Positions whose cells are CHARGED when @p codeword is stored in
 * cells of uniform @p cell_type.
 */
gf2::BitVec chargedMask(const gf2::BitVec &codeword,
                        dram::CellType cell_type);

} // namespace beer::sim

#endif // BEER_SIM_WORD_SIM_HH
