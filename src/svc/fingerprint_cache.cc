#include "svc/fingerprint_cache.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace beer::svc
{

namespace
{

/** Canonical "<charged-csv> <bitmap>" rendering of one entry. */
std::string
canonicalLine(const PatternProfile &entry)
{
    std::string line;
    for (std::size_t bit : entry.pattern) {
        if (!line.empty())
            line += ',';
        line += std::to_string(bit);
    }
    line += ' ';
    line += entry.miscorrectable.toString();
    return line;
}

/**
 * Sorted canonical lines of a profile (pattern order independent).
 * With @p skip_suspect, rows flagged by quorum disagreement are left
 * out — the "surviving rounds" view a repaired chip is fingerprinted
 * on, so it can still match the entry its clean sibling cached.
 */
std::vector<std::string>
canonicalLines(const MiscorrectionProfile &profile,
               bool skip_suspect = false)
{
    std::vector<std::string> lines;
    lines.reserve(profile.patterns.size());
    for (const PatternProfile &entry : profile.patterns) {
        if (skip_suspect && entry.suspect)
            continue;
        lines.push_back(canonicalLine(entry));
    }
    std::sort(lines.begin(), lines.end());
    return lines;
}

/** Whether any row carries the quorum-disagreement suspect mark. */
bool
anySuspect(const MiscorrectionProfile &profile)
{
    for (const PatternProfile &entry : profile.patterns)
        if (entry.suspect)
            return true;
    return false;
}

std::uint64_t
fnv1a(std::uint64_t hash, const std::string &text)
{
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::uint64_t
hashCanonical(std::size_t k, std::size_t parity_bits,
              const std::vector<std::string> &lines)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    hash = fnv1a(hash, "k " + std::to_string(k) + " p " +
                           std::to_string(parity_bits));
    for (const std::string &line : lines)
        hash = fnv1a(hash, line + "\n");
    return hash;
}

} // anonymous namespace

FingerprintCache::FingerprintCache(FingerprintCacheConfig config)
    : config_(std::move(config))
{
}

std::uint64_t
FingerprintCache::fingerprint(const MiscorrectionProfile &profile,
                              std::size_t parity_bits)
{
    return hashCanonical(profile.k, parity_bits,
                         canonicalLines(profile));
}

FingerprintCache::Hit
FingerprintCache::lookupLocked(const MiscorrectionProfile &profile,
                               std::size_t parity_bits)
{
    Hit hit;
    const std::vector<std::string> lines = canonicalLines(profile);
    const std::uint64_t hash =
        hashCanonical(profile.k, parity_bits, lines);

    const auto it = byHash_.find(hash);
    if (it != byHash_.end() && it->second->k == profile.k &&
        it->second->parityBits == parity_bits &&
        it->second->lines == lines) {
        entries_.splice(entries_.begin(), entries_, it->second);
        hit.kind = Hit::Kind::Exact;
        hit.code = it->second->code;
        hit.overlap = 1.0;
        ++stats_.exactHits;
        return hit;
    }

    // Near match: best shared-line fraction over same-dimension
    // entries. The cache is LRU-bounded, so the scan is over a small,
    // hot working set.
    //
    // Repair-aware view: when the query carries suspect rows (quorum
    // disagreed during their measurement — the signature of a chip
    // that needed repair), the overlap is ALSO scored against only
    // the clean rows, with the clean-row count as denominator. A
    // repaired chip whose suspect rows retained noise residue then
    // still scores ~1.0 against its clean sibling's entry instead of
    // being dragged under the threshold by rows everyone agrees are
    // untrustworthy. Sound, because the shared subset fed to
    // warmStart() is still the query chip's own (clean) evidence.
    const bool suspects = anySuspect(profile);
    const std::vector<std::string> clean_lines =
        suspects ? canonicalLines(profile, /*skip_suspect=*/true)
                 : lines;
    const Entry *best = nullptr;
    double best_overlap = 0.0;
    bool best_repair_aware = false;
    std::vector<std::string> shared;
    std::vector<std::string> best_shared;
    for (const Entry &entry : entries_) {
        if (entry.k != profile.k || entry.parityBits != parity_bits)
            continue;
        shared.clear();
        std::set_intersection(lines.begin(), lines.end(),
                              entry.lines.begin(), entry.lines.end(),
                              std::back_inserter(shared));
        double overlap =
            (double)shared.size() /
            (double)std::max(lines.size(), entry.lines.size());
        bool repair_aware = false;
        if (suspects && !clean_lines.empty()) {
            shared.clear();
            std::set_intersection(clean_lines.begin(),
                                  clean_lines.end(),
                                  entry.lines.begin(),
                                  entry.lines.end(),
                                  std::back_inserter(shared));
            const double clean_overlap =
                (double)shared.size() / (double)clean_lines.size();
            if (clean_overlap > overlap) {
                overlap = clean_overlap;
                repair_aware = true;
            }
        }
        if (overlap > best_overlap) {
            best_overlap = overlap;
            best = &entry;
            best_repair_aware = repair_aware;
            if (!repair_aware) {
                // `shared` currently holds the clean intersection
                // when suspects exist; recompute the full one.
                shared.clear();
                std::set_intersection(lines.begin(), lines.end(),
                                      entry.lines.begin(),
                                      entry.lines.end(),
                                      std::back_inserter(shared));
            }
            best_shared = shared;
        }
    }

    if (best && best_overlap >= config_.nearMatchThreshold &&
        !best_shared.empty()) {
        hit.kind = Hit::Kind::Near;
        hit.overlap = best_overlap;
        hit.shared.k = profile.k;
        for (const PatternProfile &entry : profile.patterns) {
            if (best_repair_aware && entry.suspect)
                continue;
            if (std::binary_search(best_shared.begin(),
                                   best_shared.end(),
                                   canonicalLine(entry)))
                hit.shared.patterns.push_back(entry);
        }
        ++stats_.nearHits;
        if (best_repair_aware)
            ++stats_.repairAwareHits;
        return hit;
    }

    ++stats_.misses;
    return hit;
}

FingerprintCache::Hit
FingerprintCache::lookup(const MiscorrectionProfile &profile,
                         std::size_t parity_bits)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lookupLocked(profile, parity_bits);
}

std::vector<FingerprintCache::Hit>
FingerprintCache::lookupMany(const std::vector<LookupRequest> &requests)
{
    std::vector<Hit> hits;
    hits.reserve(requests.size());
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.batchedPasses;
    stats_.batchedRequests += requests.size();
    for (const LookupRequest &request : requests)
        hits.push_back(
            lookupLocked(*request.profile, request.parityBits));
    return hits;
}

void
FingerprintCache::insertLocked(Entry entry)
{
    const auto it = byHash_.find(entry.hash);
    if (it != byHash_.end()) {
        // Same fingerprint: refresh in place (idempotent re-insert).
        *it->second = std::move(entry);
        entries_.splice(entries_.begin(), entries_, it->second);
        return;
    }
    entries_.push_front(std::move(entry));
    byHash_.emplace(entries_.front().hash, entries_.begin());
    ++stats_.inserts;
    if (config_.capacity && entries_.size() > config_.capacity) {
        byHash_.erase(entries_.back().hash);
        entries_.pop_back();
        ++stats_.evictions;
    }
}

void
FingerprintCache::insert(const MiscorrectionProfile &profile,
                         std::size_t parity_bits,
                         const ecc::LinearCode &code)
{
    std::vector<std::string> lines = canonicalLines(profile);
    const std::uint64_t hash =
        hashCanonical(profile.k, parity_bits, lines);
    std::lock_guard<std::mutex> lock(mutex_);
    insertLocked(Entry{hash, profile.k, parity_bits, std::move(lines),
                       code});
}

std::size_t
FingerprintCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

FingerprintCacheStats
FingerprintCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    FingerprintCacheStats stats = stats_;
    stats.entries = entries_.size();
    return stats;
}

bool
FingerprintCache::flushToDisk() const
{
    if (config_.path.empty())
        return false;
    std::string content = "beer-fpcache 1\n";
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Oldest first, so replaying the file through insert() on load
        // reconstructs the same recency order.
        for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
            content += "entry " + std::to_string(it->k) + ' ' +
                       std::to_string(it->parityBits) + ' ' +
                       std::to_string(it->lines.size()) + '\n';
            for (const std::string &line : it->lines)
                content += line + '\n';
            const gf2::Matrix &p = it->code.pMatrix();
            for (std::size_t r = 0; r < p.rows(); ++r)
                content += "P " + p.row(r).toString() + '\n';
        }
    }
    // Atomic replace through the I/O seam: an injected fault (or a
    // crash) leaves either the previous complete snapshot or the new
    // one, never a truncated cache a later boot would reject.
    FileIo &io = config_.io ? *config_.io : FileIo::system();
    if (!writeFileAtomic(io, config_.path, content)) {
        util::warn("fingerprint cache: cannot write '%s'",
                   config_.path.c_str());
        return false;
    }
    return true;
}

bool
FingerprintCache::loadFromDisk()
{
    if (config_.path.empty())
        return false;
    FileIo &io = config_.io ? *config_.io : FileIo::system();
    std::string content;
    if (!readFileAll(io, config_.path, content))
        return false; // fresh start
    std::istringstream in(content);

    const auto corrupt = [&](const char *what) {
        util::warn("fingerprint cache '%s': %s; ignoring rest of file",
                   config_.path.c_str(), what);
        return false;
    };

    std::string header;
    std::getline(in, header);
    if (header != "beer-fpcache 1")
        return corrupt("unrecognized header");

    std::size_t loaded = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream ss(line);
        std::string tag;
        std::size_t k = 0;
        std::size_t parity = 0;
        std::size_t count = 0;
        if (!(ss >> tag >> k >> parity >> count) || tag != "entry" ||
            k == 0 || parity == 0)
            return corrupt("malformed entry header");

        // Reuse the profile parser for the per-pattern lines.
        std::string text = "k " + std::to_string(k) + "\n";
        for (std::size_t i = 0; i < count; ++i) {
            if (!std::getline(in, line))
                return corrupt("truncated entry");
            text += line + "\n";
        }
        std::istringstream profile_in(text);
        MiscorrectionProfile profile;
        if (!beer::tryParseProfile(profile_in, profile).ok)
            return corrupt("malformed profile lines");

        gf2::Matrix p(parity, k);
        for (std::size_t r = 0; r < parity; ++r) {
            if (!std::getline(in, line) || line.size() != k + 2 ||
                line[0] != 'P' || line[1] != ' ')
                return corrupt("malformed P row");
            for (std::size_t c = 0; c < k; ++c) {
                const char bit = line[2 + c];
                if (bit != '0' && bit != '1')
                    return corrupt("non-binary P row");
                p.set(r, c, bit == '1');
            }
        }

        std::vector<std::string> lines = canonicalLines(profile);
        const std::uint64_t hash = hashCanonical(k, parity, lines);
        std::lock_guard<std::mutex> lock(mutex_);
        insertLocked(Entry{hash, k, parity, std::move(lines),
                           ecc::LinearCode(p)});
        ++loaded;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    stats_.loadedEntries = loaded;
    return loaded > 0;
}

} // namespace beer::svc
