/**
 * @file
 * Fingerprint cache of solved ECC functions.
 *
 * The fleet-scale premise (paper Section 7): millions of modules share
 * a handful of vendor ECC functions, so across a population most
 * recovery jobs re-derive a function the service has already solved.
 * The cache keys canonicalized (sorted-pattern) miscorrection profiles
 * by (k, parity bits) under a 64-bit FNV-1a fingerprint:
 *
 *  - an EXACT hit (same canonical profile, byte-for-byte — the hash is
 *    verified against the stored canonical form, never trusted alone)
 *    returns the previously solved function with zero SAT work;
 *  - a NEAR match (same dimensions, per-pattern line overlap above a
 *    configurable threshold) returns the shared entry subset, which
 *    the solve path feeds to IncrementalSolver::warmStart() — sound
 *    because every shared line is evidence from the NEW chip, merely
 *    replayed in an order that lets learned clauses transfer;
 *  - entries are LRU-bounded, and can be persisted to a text file
 *    (loaded at service start, flushed at shutdown) so a restarted
 *    server keeps its accumulated population knowledge.
 *
 * Only provably-unique solves are inserted: a cached function is an
 * answer, not a candidate. All methods are thread-safe; recovery jobs
 * call lookup/insert concurrently from scheduler threads.
 */

#ifndef BEER_SVC_FINGERPRINT_CACHE_HH
#define BEER_SVC_FINGERPRINT_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "beer/profile.hh"
#include "ecc/linear_code.hh"
#include "svc/io.hh"

namespace beer::svc
{

/** Knobs for the fingerprint cache. */
struct FingerprintCacheConfig
{
    /** Maximum entries before LRU eviction (0 = unbounded). */
    std::size_t capacity = 256;
    /** Persistence file; empty disables load/flush. */
    std::string path;
    /**
     * Minimum shared-line fraction (shared / max(lines_a, lines_b))
     * for a near match. 1.0 effectively disables near matching.
     */
    double nearMatchThreshold = 0.5;
    /** I/O seam for load/flush; nullptr uses FileIo::system(). */
    FileIo *io = nullptr;
};

/** Counters the health endpoint reports. */
struct FingerprintCacheStats
{
    std::size_t entries = 0;
    std::uint64_t exactHits = 0;
    std::uint64_t nearHits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    /** Entries restored by the last loadFromDisk(). */
    std::size_t loadedEntries = 0;
    /** lookupMany() passes served (each is ONE lock acquisition). */
    std::uint64_t batchedPasses = 0;
    /** Individual lookups those passes carried; exceeding
     * batchedPasses proves requests actually combined. */
    std::uint64_t batchedRequests = 0;
    /**
     * Near hits won through the repair-aware view: the query carried
     * suspect (quorum-disagreed) rows and matching on its clean rows
     * alone beat the plain overlap — a repaired chip warm-starting
     * from its clean sibling's entry instead of cold-solving.
     */
    std::uint64_t repairAwareHits = 0;
};

/** LRU cache of profile fingerprint -> solved ECC function. */
class FingerprintCache
{
  public:
    explicit FingerprintCache(FingerprintCacheConfig config = {});

    /** Outcome of a lookup. */
    struct Hit
    {
        enum class Kind
        {
            Miss,
            Exact,
            Near,
        };
        Kind kind = Kind::Miss;
        /** The solved function (Exact only). */
        std::optional<ecc::LinearCode> code;
        /**
         * Entries of the queried profile also present (same pattern,
         * same bitmap) in the best near-match entry (Near only).
         */
        MiscorrectionProfile shared;
        /** Shared-line fraction of the best candidate (Near only). */
        double overlap = 0.0;
    };

    /**
     * Look @p profile up; an exact hit refreshes the entry's LRU
     * position. Hit/miss counters update as a side effect.
     */
    Hit lookup(const MiscorrectionProfile &profile,
               std::size_t parity_bits);

    /** One lookup of a lookupMany() batch. The profile pointer must
     * stay valid for the duration of the call. */
    struct LookupRequest
    {
        const MiscorrectionProfile *profile = nullptr;
        std::size_t parityBits = 0;
    };

    /**
     * Serve every request of @p requests under a SINGLE mutex
     * acquisition, in order (earlier requests refresh LRU positions
     * later ones observe). Results line up index-for-index with the
     * requests. Under concurrent job bursts this replaces N
     * lock/unlock round-trips — and N cache-line bounces of the LRU
     * list head — with one pass; batchedPasses/batchedRequests in
     * stats() prove how much combining actually happened.
     */
    std::vector<Hit> lookupMany(const std::vector<LookupRequest> &requests);

    /**
     * Insert (or refresh) the solved function for @p profile,
     * evicting the least-recently-used entry beyond capacity.
     */
    void insert(const MiscorrectionProfile &profile,
                std::size_t parity_bits, const ecc::LinearCode &code);

    std::size_t size() const;
    FingerprintCacheStats stats() const;

    /**
     * Restore entries from the configured path, preserving recency
     * order. Missing file or empty path is not an error (fresh
     * start); a corrupt file is warned about and ignored.
     *
     * @return true iff entries were restored
     */
    bool loadFromDisk();

    /** Write all entries to the configured path (LRU-oldest first). */
    bool flushToDisk() const;

    /** Canonical-form FNV-1a fingerprint (exposed for tests). */
    static std::uint64_t fingerprint(const MiscorrectionProfile &profile,
                                     std::size_t parity_bits);

  private:
    struct Entry
    {
        std::uint64_t hash = 0;
        std::size_t k = 0;
        std::size_t parityBits = 0;
        /** Canonical "<charged-csv> <bitmap>" lines, sorted. */
        std::vector<std::string> lines;
        ecc::LinearCode code;
    };

    Hit lookupLocked(const MiscorrectionProfile &profile,
                     std::size_t parity_bits);
    void insertLocked(Entry entry);

    FingerprintCacheConfig config_;
    mutable std::mutex mutex_;
    /** Most-recently-used first. */
    std::list<Entry> entries_;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator>
        byHash_;
    FingerprintCacheStats stats_;
};

} // namespace beer::svc

#endif // BEER_SVC_FINGERPRINT_CACHE_HH
