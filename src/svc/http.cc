#include "svc/http.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

#include "util/logging.hh"
#include "util/signal.hh"

namespace beer::svc
{

namespace
{

/** Cap on one request's total size (profiles are small text). */
constexpr std::size_t kMaxRequestBytes = 4u << 20;

const char *
reasonPhrase(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 202:
        return "Accepted";
    case 400:
        return "Bad Request";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    case 413:
        return "Payload Too Large";
    case 429:
        return "Too Many Requests";
    default:
        return "Internal Server Error";
    }
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if ((unsigned char)c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

const char *
stateName(JobState state)
{
    switch (state) {
    case JobState::Queued:
        return "queued";
    case JobState::Running:
        return "running";
    case JobState::Done:
        return "done";
    case JobState::Failed:
        return "failed";
    case JobState::Quarantined:
        return "quarantined";
    }
    return "unknown";
}

const char *
cacheName(CacheOutcome outcome)
{
    switch (outcome) {
    case CacheOutcome::None:
        return "none";
    case CacheOutcome::Exact:
        return "exact";
    case CacheOutcome::Near:
        return "near";
    }
    return "unknown";
}

std::string
jobJson(const JobStatus &job)
{
    std::ostringstream out;
    out << "{\"id\":" << job.id << ",\"state\":\""
        << stateName(job.state) << "\",\"k\":" << job.k
        << ",\"parity_bits\":" << job.parityBits
        << ",\"patterns\":" << job.patterns << ",\"succeeded\":"
        << (job.succeeded ? "true" : "false")
        << ",\"solutions\":" << job.solutions << ",\"complete\":"
        << (job.complete ? "true" : "false") << ",\"cache\":\""
        << cacheName(job.cache) << "\",\"seconds\":" << job.seconds
        << ",\"overlap_seconds\":" << job.overlapSeconds
        << ",\"error_code\":\"" << jobErrorCodeName(job.errorCode)
        << "\",\"attempts\":" << job.attempts;
    if (!job.codeString.empty())
        out << ",\"code\":\"" << jsonEscape(job.codeString) << "\"";
    if (!job.error.empty())
        out << ",\"error\":\"" << jsonEscape(job.error) << "\"";
    // diagnosisJson is already a JSON object; embed it raw.
    if (!job.diagnosisJson.empty())
        out << ",\"diagnosis\":" << job.diagnosisJson;
    out << "}";
    return out.str();
}

std::string
healthJson(const HealthReport &health)
{
    std::ostringstream out;
    out << "{\"ok\":" << (health.ok ? "true" : "false")
        << ",\"api_version\":" << health.apiVersion
        << ",\"uptime_seconds\":" << health.uptimeSeconds
        << ",\"pool\":{\"threads\":" << health.poolThreads
        << ",\"queued\":" << health.poolQueuedTasks
        << ",\"active\":" << health.poolActiveTasks
        << ",\"completed\":" << health.poolCompletedTasks
        << "},\"scheduler\":{\"submitted\":"
        << health.scheduler.submitted
        << ",\"rejected\":" << health.scheduler.rejected
        << ",\"completed\":" << health.scheduler.completed
        << ",\"failed\":" << health.scheduler.failed
        << ",\"queued\":" << health.scheduler.queued
        << ",\"running\":" << health.scheduler.running
        << ",\"peak_concurrent\":" << health.scheduler.peakConcurrent
        << ",\"queue_depth\":" << health.queueDepth
        << ",\"retries\":" << health.retries
        << ",\"quarantined\":" << health.quarantined
        << ",\"expired\":" << health.expiredJobs
        << ",\"journal_replays\":" << health.journalReplays
        << ",\"jobs\":{\"queued\":" << health.jobStates.queued
        << ",\"running\":" << health.jobStates.running
        << ",\"done\":" << health.jobStates.done
        << ",\"failed\":" << health.jobStates.failed
        << ",\"quarantined\":" << health.jobStates.quarantined
        << "}},\"cache\":{\"entries\":" << health.cache.entries
        << ",\"exact_hits\":" << health.cache.exactHits
        << ",\"near_hits\":" << health.cache.nearHits
        << ",\"misses\":" << health.cache.misses
        << ",\"inserts\":" << health.cache.inserts
        << ",\"evictions\":" << health.cache.evictions
        << ",\"loaded\":" << health.cache.loadedEntries
        << ",\"batched_passes\":" << health.cache.batchedPasses
        << ",\"batched_requests\":" << health.cache.batchedRequests
        << ",\"repair_aware_hits\":" << health.cache.repairAwareHits
        << "},\"journal\":{\"bytes\":" << health.journal.bytes
        << ",\"records\":" << health.journal.records
        << ",\"live_records\":" << health.journal.liveRecords
        << ",\"compactions\":" << health.journal.compactions
        << ",\"crc_skipped\":" << health.journal.crcSkipped
        << ",\"torn_tail\":" << health.journal.tornTail
        << ",\"append_failures\":" << health.journal.appendFailures
        << "},\"quorum\":{\"votes_spent\":" << health.quorumVotesSpent
        << ",\"escalations\":" << health.quorumEscalations
        << "},\"sat_solves\":" << health.satSolves
        << ",\"legacy_payloads\":" << health.legacyPayloads
        << ",\"trace_v1_jobs\":" << health.traceV1Jobs
        << ",\"trace_v2_jobs\":" << health.traceV2Jobs
        << ",\"batched_lookups\":" << health.batchedLookups << "}";
    return out.str();
}

HttpResponse
errorResponse(int status, const std::string &message)
{
    HttpResponse response;
    response.status = status;
    response.body = "{\"error\":\"" + jsonEscape(message) + "\"}";
    return response;
}

/** Parse "a=1&b=2" into a map; keys without '=' map to "1". */
std::map<std::string, std::string>
parseQuery(const std::string &query)
{
    std::map<std::string, std::string> params;
    std::size_t pos = 0;
    while (pos < query.size()) {
        std::size_t amp = query.find('&', pos);
        if (amp == std::string::npos)
            amp = query.size();
        std::string key = query.substr(pos, amp - pos);
        std::string value = "1";
        const std::size_t eq = key.find('=');
        if (eq != std::string::npos) {
            value = key.substr(eq + 1);
            key.resize(eq);
        }
        params[std::move(key)] = std::move(value);
        pos = amp + 1;
    }
    return params;
}

bool
parseSizeT(const std::string &text, std::size_t &out)
{
    if (text.empty())
        return false;
    std::size_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + (std::size_t)(c - '0');
    }
    out = value;
    return true;
}

} // anonymous namespace

HttpServer::HttpServer(RecoveryService &service, HttpConfig config)
    : service_(service), config_(std::move(config)),
      io_(config_.socketIo ? *config_.socketIo : SocketIo::system())
{
}

HttpServer::~HttpServer()
{
    if (listenFd_ >= 0)
        ::close(listenFd_);
    for (int fd : stopPipe_)
        if (fd >= 0)
            ::close(fd);
}

HttpResponse
HttpServer::handle(const std::string &method,
                   const std::string &target, const std::string &body)
{
    std::string path = target;
    std::string query;
    const std::size_t qmark = target.find('?');
    if (qmark != std::string::npos) {
        path = target.substr(0, qmark);
        query = target.substr(qmark + 1);
    }
    const auto params = parseQuery(query);

    if (path == "/health" || path == "/v1/stats") {
        if (method != "GET")
            return errorResponse(405, "use GET");
        HttpResponse response;
        response.body = healthJson(service_.health());
        return response;
    }

    if (path == "/v1/jobs") {
        if (method == "POST") {
            SubmitOptions options;
            auto it = params.find("parity");
            if (it != params.end() &&
                !parseSizeT(it->second, options.parityBits))
                return errorResponse(400, "bad parity parameter");
            it = params.find("no-cache");
            if (it != params.end() && it->second != "0")
                options.bypassCache = true;
            const SubmitOutcome outcome =
                service_.submitPayload(body, options);
            if (!outcome.accepted)
                return errorResponse(
                    outcome.reject == SubmitOutcome::Reject::Overloaded
                        ? 429
                        : 400,
                    outcome.error);
            HttpResponse response;
            response.status = 202;
            response.body =
                "{\"job_id\":" + std::to_string(outcome.id) + "}";
            return response;
        }
        if (method == "GET") {
            std::size_t offset = 0;
            std::size_t limit = 0;
            auto it = params.find("offset");
            if (it != params.end() &&
                !parseSizeT(it->second, offset))
                return errorResponse(400, "bad offset parameter");
            it = params.find("limit");
            if (it != params.end() && !parseSizeT(it->second, limit))
                return errorResponse(400, "bad limit parameter");
            const JobPage page = service_.listJobs(offset, limit);
            std::ostringstream out;
            out << "{\"total\":" << page.total
                << ",\"offset\":" << page.offset << ",\"jobs\":[";
            for (std::size_t i = 0; i < page.jobs.size(); ++i) {
                if (i)
                    out << ",";
                out << jobJson(page.jobs[i]);
            }
            out << "]}";
            HttpResponse response;
            response.body = out.str();
            return response;
        }
        return errorResponse(405, "use GET or POST");
    }

    const std::string jobs_prefix = "/v1/jobs/";
    if (path.rfind(jobs_prefix, 0) == 0) {
        if (method != "GET")
            return errorResponse(405, "use GET");
        std::size_t id = 0;
        if (!parseSizeT(path.substr(jobs_prefix.size()), id))
            return errorResponse(400, "bad job id");
        const std::optional<JobStatus> job = service_.job(id);
        if (!job)
            return errorResponse(404, "unknown job id");
        HttpResponse response;
        response.body = jobJson(*job);
        return response;
    }

    return errorResponse(404, "no such route");
}

bool
HttpServer::start()
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        util::warn("http: socket: %s", std::strerror(errno));
        return false;
    }
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) !=
        1) {
        util::warn("http: bad bind address '%s'",
                   config_.host.c_str());
        return false;
    }
    if (::bind(listenFd_, (const sockaddr *)&addr, sizeof(addr)) <
        0) {
        util::warn("http: bind %s:%u: %s", config_.host.c_str(),
                   (unsigned)config_.port, std::strerror(errno));
        return false;
    }
    if (::listen(listenFd_, 16) < 0) {
        util::warn("http: listen: %s", std::strerror(errno));
        return false;
    }

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listenFd_, (sockaddr *)&bound, &len) == 0)
        boundPort_ = ntohs(bound.sin_port);

    if (::pipe(stopPipe_) < 0) {
        util::warn("http: pipe: %s", std::strerror(errno));
        return false;
    }
    return true;
}

void
HttpServer::serve()
{
    while (!util::shutdownRequested()) {
        pollfd fds[3];
        fds[0] = {listenFd_, POLLIN, 0};
        fds[1] = {stopPipe_[0], POLLIN, 0};
        fds[2] = {util::shutdownWakeFd(), POLLIN, 0};
        const int n = ::poll(fds, 3, -1);
        if (n < 0) {
            if (errno == EINTR)
                continue; // signal; loop re-checks shutdown flag
            util::warn("http: poll: %s", std::strerror(errno));
            return;
        }
        if (fds[1].revents || fds[2].revents)
            return;
        if (!(fds[0].revents & POLLIN))
            continue;
        // An accept that fails (ECONNABORTED during an accept storm,
        // EINTR, fd exhaustion) must never take the server down: the
        // loop just polls again. This is the behavior the chaos
        // accept-storm test pins.
        const int fd = io_.accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        handleConnection(fd);
    }
}

void
HttpServer::stop()
{
    const char byte = 'x';
    if (stopPipe_[1] >= 0)
        (void)!::write(stopPipe_[1], &byte, 1);
}

void
HttpServer::handleConnection(int fd)
{
    std::string request;
    char buf[4096];
    std::size_t header_end = std::string::npos;
    // Read headers first; they tell us how much body to expect.
    while (header_end == std::string::npos &&
           request.size() < kMaxRequestBytes) {
        const ssize_t got = io_.recv(fd, buf, sizeof(buf), 0);
        if (got <= 0) {
            if (got < 0 && errno == EINTR)
                continue;
            io_.close(fd);
            return;
        }
        request.append(buf, (std::size_t)got);
        header_end = request.find("\r\n\r\n");
    }

    HttpResponse response;
    std::string method;
    if (header_end == std::string::npos) {
        response = errorResponse(413, "headers too large");
    } else {
        std::istringstream head(request.substr(0, header_end));
        std::string target;
        std::string version;
        head >> method >> target >> version;

        std::size_t content_length = 0;
        std::string line;
        std::getline(head, line); // consume rest of request line
        while (std::getline(head, line)) {
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            const std::size_t colon = line.find(':');
            if (colon == std::string::npos)
                continue;
            std::string name = line.substr(0, colon);
            for (char &c : name)
                c = (char)std::tolower((unsigned char)c);
            if (name == "content-length") {
                std::string value = line.substr(colon + 1);
                value.erase(0, value.find_first_not_of(" \t"));
                (void)parseSizeT(value, content_length);
            }
        }

        if (content_length > kMaxRequestBytes) {
            response = errorResponse(413, "body too large");
        } else {
            const std::size_t body_start = header_end + 4;
            while (request.size() < body_start + content_length) {
                const ssize_t got = io_.recv(fd, buf, sizeof(buf), 0);
                if (got <= 0) {
                    if (got < 0 && errno == EINTR)
                        continue;
                    break;
                }
                request.append(buf, (std::size_t)got);
            }
            if (request.size() < body_start + content_length) {
                response = errorResponse(400, "truncated body");
            } else {
                response = handle(
                    method, target,
                    request.substr(body_start, content_length));
            }
        }
    }

    std::ostringstream out;
    out << "HTTP/1.1 " << response.status << ' '
        << reasonPhrase(response.status)
        << "\r\nContent-Type: " << response.contentType
        << "\r\nContent-Length: " << response.body.size()
        << "\r\nConnection: close\r\n\r\n";
    if (method != "HEAD")
        out << response.body;
    const std::string bytes = out.str();
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        // Short sends loop; EINTR retries; a reset mid-response
        // abandons THIS client only (its job, if any, is already
        // accepted and journaled — the connection is not the work).
        const ssize_t put =
            io_.send(fd, bytes.data() + sent, bytes.size() - sent, 0);
        if (put <= 0) {
            if (put < 0 && errno == EINTR)
                continue;
            break;
        }
        sent += (std::size_t)put;
    }
    io_.close(fd);
}

} // namespace beer::svc
