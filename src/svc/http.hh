/**
 * @file
 * Minimal HTTP/1.1 adapter over svc::RecoveryService.
 *
 * The adapter is a thin serialization shim: every route maps onto
 * exactly one RecoveryService call and renders its result as JSON.
 * All routing lives in handle(), which takes (method, target, body)
 * and returns a response without touching any socket — tests drive
 * the full API surface in-process through it. The socket layer
 * (start/serve/stop) is a deliberately small single-threaded accept
 * loop: recovery work is already parallel inside the service, so the
 * transport only needs to shuttle small text payloads.
 *
 * Routes (API version kApiVersion):
 *
 *   GET  /health            -> 200 liveness + observability JSON
 *   GET  /v1/stats          -> alias of /health
 *   GET  /v1/jobs           -> 200 paginated listing (?offset=&limit=)
 *   GET  /v1/jobs/<id>      -> 200 job snapshot | 404 unknown id
 *   POST /v1/jobs           -> 202 {"job_id":N} | 400 bad payload
 *                              | 429 queue full
 *                              body: serialized profile text;
 *                              query: ?parity=N, ?no-cache=1
 *
 * serve() returns when stop() is called from another thread or a
 * process shutdown signal arrives (util::shutdownRequested()).
 */

#ifndef BEER_SVC_HTTP_HH
#define BEER_SVC_HTTP_HH

#include <cstdint>
#include <string>

#include "svc/io.hh"
#include "svc/service.hh"

namespace beer::svc
{

/** One rendered HTTP response. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
};

/** Socket knobs for HttpServer. */
struct HttpConfig
{
    /** Bind address; loopback by default (this is a lab tool). */
    std::string host = "127.0.0.1";
    /** 0 = ephemeral (read the bound port back via port()). */
    std::uint16_t port = 0;
    /**
     * Connection I/O seam (accept/recv/send/close); nullptr = raw
     * POSIX. Chaos tests inject accept storms, mid-response resets,
     * EINTR and short sends through this to prove the accept loop
     * and response writer survive infrastructure faults.
     */
    SocketIo *socketIo = nullptr;
};

/** HTTP front end for one RecoveryService; see file comment. */
class HttpServer
{
  public:
    /** @p service must outlive the server. */
    explicit HttpServer(RecoveryService &service, HttpConfig config = {});
    /** Closes the sockets (does not shut the service down). */
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /**
     * Route one request. Transport-free — this is the whole API
     * surface; the socket loop only parses bytes into these three
     * arguments.
     */
    HttpResponse handle(const std::string &method,
                        const std::string &target,
                        const std::string &body);

    /**
     * Bind and listen.
     *
     * @return false (with a warning) if the socket cannot be bound
     */
    bool start();

    /** Port actually bound (after start(); resolves port 0). */
    std::uint16_t port() const { return boundPort_; }

    /**
     * Accept-and-respond until stop() or a shutdown signal. Requires
     * a successful start().
     */
    void serve();

    /** Make serve() return; callable from any thread or handler. */
    void stop();

  private:
    void handleConnection(int fd);

    RecoveryService &service_;
    HttpConfig config_;
    SocketIo &io_;
    int listenFd_ = -1;
    int stopPipe_[2] = {-1, -1};
    std::uint16_t boundPort_ = 0;
};

} // namespace beer::svc

#endif // BEER_SVC_HTTP_HH
