#include "svc/io.hh"

#include <cerrno>
#include <fcntl.h>
#include <unistd.h>

namespace beer::svc
{

// ---- FileIo ----------------------------------------------------------

int
FileIo::open(const char *path, int flags, unsigned mode)
{
    return ::open(path, flags, (mode_t)mode);
}

ssize_t
FileIo::read(int fd, void *buf, std::size_t len)
{
    return ::read(fd, buf, len);
}

ssize_t
FileIo::write(int fd, const void *buf, std::size_t len)
{
    return ::write(fd, buf, len);
}

int
FileIo::fsync(int fd)
{
    return ::fsync(fd);
}

int
FileIo::close(int fd)
{
    return ::close(fd);
}

int
FileIo::rename(const char *from, const char *to)
{
    return ::rename(from, to);
}

int
FileIo::unlink(const char *path)
{
    return ::unlink(path);
}

FileIo &
FileIo::system()
{
    static FileIo instance;
    return instance;
}

// ---- SocketIo --------------------------------------------------------

int
SocketIo::accept(int fd, struct sockaddr *addr, socklen_t *addrlen)
{
    return ::accept(fd, addr, addrlen);
}

ssize_t
SocketIo::recv(int fd, void *buf, std::size_t len, int flags)
{
    return ::recv(fd, buf, len, flags);
}

ssize_t
SocketIo::send(int fd, const void *buf, std::size_t len, int flags)
{
    return ::send(fd, buf, len, flags);
}

int
SocketIo::close(int fd)
{
    return ::close(fd);
}

SocketIo &
SocketIo::system()
{
    static SocketIo instance;
    return instance;
}

// ---- helpers ---------------------------------------------------------

bool
writeFully(FileIo &io, int fd, const void *buf, std::size_t len)
{
    const char *at = (const char *)buf;
    while (len > 0) {
        const ssize_t n = io.write(fd, at, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        at += n;
        len -= (std::size_t)n;
    }
    return true;
}

bool
readFileAll(FileIo &io, const std::string &path, std::string &out)
{
    const int fd = io.open(path.c_str(), O_RDONLY, 0);
    if (fd < 0)
        return false;
    out.clear();
    char buf[1 << 16];
    while (true) {
        const ssize_t n = io.read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            io.close(fd);
            return false;
        }
        if (n == 0)
            break;
        out.append(buf, (std::size_t)n);
    }
    io.close(fd);
    return true;
}

bool
writeFileAtomic(FileIo &io, const std::string &path,
                const std::string &content)
{
    const std::string tmp = path + ".tmp";
    const int fd =
        io.open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    // Failure before the rename leaves the target untouched; remove
    // the partial temp so retries start clean.
    if (!writeFully(io, fd, content.data(), content.size()) ||
        io.fsync(fd) != 0) {
        io.close(fd);
        io.unlink(tmp.c_str());
        return false;
    }
    if (io.close(fd) != 0) {
        io.unlink(tmp.c_str());
        return false;
    }
    if (io.rename(tmp.c_str(), path.c_str()) != 0) {
        io.unlink(tmp.c_str());
        return false;
    }
    return true;
}

// ---- chaos -----------------------------------------------------------

namespace
{

/** splitmix64 step: one atomic fetch_add, then a stateless mix — a
 *  deterministic per-call stream that stays race-free when chaos
 *  wraps fds touched from several threads. */
double
splitmixUniform(std::atomic<std::uint64_t> &state)
{
    std::uint64_t z =
        state.fetch_add(0x9e3779b97f4a7c15ULL) + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return (double)(z >> 11) / (double)(1ULL << 53);
}

} // anonymous namespace

ChaosFileIo::ChaosFileIo(ChaosFileConfig config, FileIo &base)
    : config_(config), base_(base), rngState_(config.seed)
{
}

double
ChaosFileIo::draw()
{
    return splitmixUniform(rngState_);
}

int
ChaosFileIo::open(const char *path, int flags, unsigned mode)
{
    return base_.open(path, flags, mode);
}

ssize_t
ChaosFileIo::read(int fd, void *buf, std::size_t len)
{
    if (config_.eintrRate > 0.0 && draw() < config_.eintrRate) {
        ++eintrFaults_;
        errno = EINTR;
        return -1;
    }
    return base_.read(fd, buf, len);
}

ssize_t
ChaosFileIo::write(int fd, const void *buf, std::size_t len)
{
    if (config_.eintrRate > 0.0 && draw() < config_.eintrRate) {
        ++eintrFaults_;
        errno = EINTR;
        return -1;
    }
    const std::uint64_t n = ++writes_;
    if (config_.enospcWindow > 0 && n > config_.enospcAfterWrites &&
        n <= config_.enospcAfterWrites + config_.enospcWindow) {
        ++enospcFaults_;
        errno = ENOSPC;
        return -1;
    }
    if (config_.tornEveryWrites > 0 && len > 1 &&
        n % config_.tornEveryWrites == 0) {
        // A torn write LIES: half the bytes land but the caller is
        // told everything did, as a crash between page flushes would.
        ++tornWrites_;
        const ssize_t written = base_.write(fd, buf, len / 2);
        return written < 0 ? written : (ssize_t)len;
    }
    if (config_.shortWriteRate > 0.0 && len > 1 &&
        draw() < config_.shortWriteRate) {
        ++shortWrites_;
        return base_.write(fd, buf, len / 2);
    }
    return base_.write(fd, buf, len);
}

int
ChaosFileIo::fsync(int fd)
{
    return base_.fsync(fd);
}

int
ChaosFileIo::close(int fd)
{
    return base_.close(fd);
}

int
ChaosFileIo::rename(const char *from, const char *to)
{
    return base_.rename(from, to);
}

int
ChaosFileIo::unlink(const char *path)
{
    return base_.unlink(path);
}

ChaosSocketIo::ChaosSocketIo(ChaosSocketConfig config, SocketIo &base)
    : config_(config), base_(base), rngState_(config.seed)
{
}

double
ChaosSocketIo::draw()
{
    return splitmixUniform(rngState_);
}

int
ChaosSocketIo::accept(int fd, struct sockaddr *addr, socklen_t *addrlen)
{
    if (acceptFaults_.load() < config_.acceptFailures) {
        ++acceptFaults_;
        errno = ECONNABORTED;
        return -1;
    }
    return base_.accept(fd, addr, addrlen);
}

ssize_t
ChaosSocketIo::recv(int fd, void *buf, std::size_t len, int flags)
{
    if (config_.eintrRate > 0.0 && draw() < config_.eintrRate) {
        ++eintrFaults_;
        errno = EINTR;
        return -1;
    }
    return base_.recv(fd, buf, len, flags);
}

ssize_t
ChaosSocketIo::send(int fd, const void *buf, std::size_t len, int flags)
{
    if (config_.eintrRate > 0.0 && draw() < config_.eintrRate) {
        ++eintrFaults_;
        errno = EINTR;
        return -1;
    }
    const std::uint64_t n = ++sends_;
    if (config_.resetEverySends > 0 &&
        n % config_.resetEverySends == 0) {
        ++resets_;
        errno = ECONNRESET;
        return -1;
    }
    if (config_.shortSendRate > 0.0 && len > 1 &&
        draw() < config_.shortSendRate) {
        ++shortSends_;
        return base_.send(fd, buf, len / 2, flags);
    }
    return base_.send(fd, buf, len, flags);
}

int
ChaosSocketIo::close(int fd)
{
    return base_.close(fd);
}

} // namespace beer::svc
