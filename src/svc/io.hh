/**
 * @file
 * Fault-injectable I/O seams for the recovery service.
 *
 * Everything the service persists or transports — the job journal fd,
 * the fingerprint cache file, the HTTP accept/recv/send paths — goes
 * through two small virtual seams, FileIo and SocketIo, whose default
 * implementations are the raw POSIX calls. The chaos implementations
 * (ChaosFileIo / ChaosSocketIo) decorate a base seam with the failure
 * modes real infrastructure produces — short writes, EINTR, an ENOSPC
 * window, torn final records, mid-response connection resets, accept
 * storms — deterministically from a seed, so the differential chaos
 * tests (and the CI service-chaos smoke) can prove the service loses
 * and duplicates no jobs under injected faults, not just clean runs.
 *
 * The seams deliberately mirror POSIX: callers keep their errno-based
 * error handling, and the chaos layer injects faults by returning
 * exactly what the kernel would (-1 + errno, short counts), so code
 * paths hardened against the chaos layer are hardened against the
 * real thing.
 */

#ifndef BEER_SVC_IO_HH
#define BEER_SVC_IO_HH

#include <sys/socket.h>
#include <sys/types.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace beer::svc
{

/** File-descriptor I/O seam; the default methods are the raw POSIX
 *  calls (EINTR handling stays with the caller, as with the kernel). */
class FileIo
{
  public:
    virtual ~FileIo() = default;

    virtual int open(const char *path, int flags, unsigned mode);
    virtual ssize_t read(int fd, void *buf, std::size_t len);
    virtual ssize_t write(int fd, const void *buf, std::size_t len);
    virtual int fsync(int fd);
    virtual int close(int fd);
    virtual int rename(const char *from, const char *to);
    virtual int unlink(const char *path);

    /** Process-wide pass-through instance. */
    static FileIo &system();
};

/** Socket I/O seam for the HTTP adapter; defaults are raw POSIX. */
class SocketIo
{
  public:
    virtual ~SocketIo() = default;

    virtual int accept(int fd, struct sockaddr *addr,
                       socklen_t *addrlen);
    virtual ssize_t recv(int fd, void *buf, std::size_t len, int flags);
    virtual ssize_t send(int fd, const void *buf, std::size_t len,
                         int flags);
    virtual int close(int fd);

    /** Process-wide pass-through instance. */
    static SocketIo &system();
};

// ---- helpers over the seam -------------------------------------------

/**
 * Write all of @p len bytes, retrying EINTR and short writes through
 * @p io. Returns false (errno preserved) on any other error; partial
 * progress may have reached the fd — exactly the torn-record case the
 * journal's CRC framing exists to absorb.
 */
bool writeFully(FileIo &io, int fd, const void *buf, std::size_t len);

/**
 * Read the whole file at @p path into @p out through @p io, retrying
 * EINTR. False if the file cannot be opened or a read fails.
 */
bool readFileAll(FileIo &io, const std::string &path, std::string &out);

/**
 * Atomically replace @p path with @p content: write to "<path>.tmp",
 * fsync, rename over @p path. A crash or injected fault anywhere in
 * the sequence leaves either the old complete file or the new one,
 * never a truncated mix — the contract cache persistence and journal
 * compaction rely on.
 */
bool writeFileAtomic(FileIo &io, const std::string &path,
                     const std::string &content);

// ---- chaos implementations -------------------------------------------

/** Failure plan for ChaosFileIo. All injection is deterministic in
 *  (seed, call sequence), so tests replay identical fault schedules. */
struct ChaosFileConfig
{
    std::uint64_t seed = 1;
    /** Probability a write is truncated to roughly half its bytes
     *  (a short write; the caller's retry loop sees real progress). */
    double shortWriteRate = 0.0;
    /** Probability a read/write fails once with EINTR first. */
    double eintrRate = 0.0;
    /**
     * ENOSPC window: writes number [enospcAfterWrites,
     * enospcAfterWrites + enospcWindow) fail with ENOSPC (0 window
     * disables). Models a disk filling up and then being cleaned.
     */
    std::uint64_t enospcAfterWrites = 0;
    std::uint64_t enospcWindow = 0;
    /**
     * Every Nth write (1-based) is torn: only the first half of the
     * buffer reaches the fd and the call still reports full success,
     * as a crash mid-write would leave it (0 disables). Unlike a
     * short write the caller cannot see this happen — replay-time
     * CRC framing is the only defense, which is the point.
     */
    std::uint64_t tornEveryWrites = 0;
};

/** FileIo decorator injecting the ChaosFileConfig failure plan. */
class ChaosFileIo : public FileIo
{
  public:
    explicit ChaosFileIo(ChaosFileConfig config,
                         FileIo &base = FileIo::system());

    int open(const char *path, int flags, unsigned mode) override;
    ssize_t read(int fd, void *buf, std::size_t len) override;
    ssize_t write(int fd, const void *buf, std::size_t len) override;
    int fsync(int fd) override;
    int close(int fd) override;
    int rename(const char *from, const char *to) override;
    int unlink(const char *path) override;

    std::uint64_t writes() const { return writes_.load(); }
    std::uint64_t shortWrites() const { return shortWrites_.load(); }
    std::uint64_t tornWrites() const { return tornWrites_.load(); }
    std::uint64_t eintrFaults() const { return eintrFaults_.load(); }
    std::uint64_t enospcFaults() const { return enospcFaults_.load(); }

  private:
    /** Deterministic per-call uniform draw (thread-safe). */
    double draw();

    ChaosFileConfig config_;
    FileIo &base_;
    std::atomic<std::uint64_t> rngState_;
    std::atomic<std::uint64_t> writes_{0};
    std::atomic<std::uint64_t> shortWrites_{0};
    std::atomic<std::uint64_t> tornWrites_{0};
    std::atomic<std::uint64_t> eintrFaults_{0};
    std::atomic<std::uint64_t> enospcFaults_{0};
};

/** Failure plan for ChaosSocketIo. */
struct ChaosSocketConfig
{
    std::uint64_t seed = 1;
    /**
     * Accept storm: the first N accept() calls fail with ECONNABORTED
     * (a flood of connections dying in the backlog). The server's
     * accept loop must keep serving afterwards.
     */
    std::uint64_t acceptFailures = 0;
    /** Every Nth send (1-based) fails with ECONNRESET after half the
     *  bytes of the preceding sends went out — a client vanishing
     *  mid-response (0 disables). */
    std::uint64_t resetEverySends = 0;
    /** Probability a recv/send fails once with EINTR first. */
    double eintrRate = 0.0;
    /** Probability a send is short (half the bytes accepted). */
    double shortSendRate = 0.0;
};

/** SocketIo decorator injecting the ChaosSocketConfig failure plan. */
class ChaosSocketIo : public SocketIo
{
  public:
    explicit ChaosSocketIo(ChaosSocketConfig config,
                           SocketIo &base = SocketIo::system());

    int accept(int fd, struct sockaddr *addr,
               socklen_t *addrlen) override;
    ssize_t recv(int fd, void *buf, std::size_t len, int flags) override;
    ssize_t send(int fd, const void *buf, std::size_t len,
                 int flags) override;
    int close(int fd) override;

    std::uint64_t acceptFaults() const { return acceptFaults_.load(); }
    std::uint64_t resets() const { return resets_.load(); }
    std::uint64_t eintrFaults() const { return eintrFaults_.load(); }
    std::uint64_t shortSends() const { return shortSends_.load(); }

  private:
    double draw();

    ChaosSocketConfig config_;
    SocketIo &base_;
    std::atomic<std::uint64_t> rngState_;
    std::atomic<std::uint64_t> sends_{0};
    std::atomic<std::uint64_t> acceptFaults_{0};
    std::atomic<std::uint64_t> resets_{0};
    std::atomic<std::uint64_t> eintrFaults_{0};
    std::atomic<std::uint64_t> shortSends_{0};
};

} // namespace beer::svc

#endif // BEER_SVC_IO_HH
