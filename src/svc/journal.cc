#include "svc/journal.hh"

#include <fcntl.h>

#include <array>
#include <cctype>
#include <cstdio>
#include <set>
#include <sstream>

#include "util/logging.hh"

namespace beer::svc
{

namespace
{

/** Frame @p payload as `<8-hex-crc> <payload>\n`. */
std::string
frameRecord(const std::string &payload)
{
    char crc_hex[9];
    std::snprintf(crc_hex, sizeof crc_hex, "%08x",
                  crc32(payload.data(), payload.size()));
    return std::string(crc_hex) + " " + payload + "\n";
}

/**
 * Validate `<8-hex-crc> <payload>` starting at @p offset of @p line;
 * on success fills @p payload and returns true.
 */
bool
parseRecordAt(const std::string &line, std::size_t offset,
              std::string &payload)
{
    if (line.size() < offset + 9)
        return false;
    std::uint32_t declared = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        const char c = line[offset + i];
        if (!std::isxdigit((unsigned char)c))
            return false;
        declared = declared * 16 +
                   (std::uint32_t)(c <= '9' ? c - '0'
                                            : std::tolower(c) - 'a' +
                                                  10);
    }
    if (line[offset + 8] != ' ')
        return false;
    const char *body = line.data() + offset + 9;
    const std::size_t body_len = line.size() - offset - 9;
    if (crc32(body, body_len) != declared)
        return false;
    payload.assign(body, body_len);
    return true;
}

/**
 * Parse one journal line, scanning past leading garbage (the residue
 * of a torn record that a later append landed on) for an embedded
 * valid record. Returns true with @p payload on success;
 * @p had_garbage reports whether valid bytes were preceded by junk.
 */
bool
recoverRecord(const std::string &line, std::string &payload,
              bool &had_garbage)
{
    had_garbage = false;
    if (parseRecordAt(line, 0, payload))
        return true;
    for (std::size_t offset = 1; offset + 9 <= line.size(); ++offset) {
        if (parseRecordAt(line, offset, payload)) {
            had_garbage = true;
            return true;
        }
    }
    return false;
}

} // anonymous namespace

JobJournal::JobJournal(JournalConfig config)
    : config_(std::move(config)),
      io_(config_.io ? *config_.io : FileIo::system())
{
}

std::vector<ReplayedJob>
JobJournal::replay()
{
    std::vector<ReplayedJob> out;
    if (!enabled())
        return out;

    std::lock_guard<std::mutex> lock(mutex_);
    std::string content;
    if (!readFileAll(io_, config_.path, content))
        return out; // first boot over this path: nothing to replay

    struct Seen
    {
        std::map<JobId, std::string> pending;
        std::set<JobId> finished;
    } seen;

    std::size_t at = 0;
    while (at < content.size()) {
        std::size_t end = content.find('\n', at);
        const bool has_newline = end != std::string::npos;
        if (!has_newline)
            end = content.size();
        const std::string line = content.substr(at, end - at);
        at = end + 1;

        if (line.empty())
            continue;
        std::string payload;
        bool had_garbage = false;
        if (!recoverRecord(line, payload, had_garbage)) {
            // An unrecoverable final line is the crash signature: a
            // torn or truncated append. Anywhere else it is damage.
            if (at >= content.size())
                ++stats_.tornTail;
            else
                ++stats_.crcSkipped;
            continue;
        }
        if (had_garbage)
            ++stats_.crcSkipped;
        // (A valid final record missing only its newline is kept:
        // the CRC proves the payload itself is intact.)

        std::istringstream fields(payload);
        std::string verb;
        JobId id = 0;
        fields >> verb >> id;
        if (id == 0)
            continue;
        if (verb == "done" || verb == "failed") {
            seen.finished.insert(id);
        } else if (verb == "submit") {
            std::string rest;
            std::getline(fields, rest);
            if (!rest.empty() && rest.front() == ' ')
                rest.erase(0, 1);
            // emplace: a duplicated record replays exactly once.
            seen.pending.emplace(id, std::move(rest));
        }
    }

    live_.clear();
    for (auto &[id, payload] : seen.pending) {
        if (seen.finished.count(id))
            continue;
        out.push_back({id, payload});
        live_.emplace(id, std::move(payload));
    }

    // Restart compaction: begin the new epoch from a minimal journal
    // holding exactly the survivors.
    compactLocked();
    return out;
}

bool
JobJournal::appendLine(const std::string &payload)
{
    const std::string framed = frameRecord(payload);
    const int fd = io_.open(config_.path.c_str(),
                            O_WRONLY | O_APPEND | O_CREAT, 0644);
    if (fd < 0) {
        ++stats_.appendFailures;
        return false;
    }
    // Open-per-append: no buffered state to lose on a kill -9, and
    // the journal stays writable after transient filesystem errors.
    const bool ok = writeFully(io_, fd, framed.data(), framed.size());
    io_.close(fd);
    if (!ok) {
        ++stats_.appendFailures;
        return false;
    }
    stats_.bytes += framed.size();
    ++stats_.records;
    return true;
}

bool
JobJournal::appendSubmit(JobId id, const std::string &payload)
{
    if (!enabled())
        return true;
    std::lock_guard<std::mutex> lock(mutex_);
    if (!appendLine("submit " + std::to_string(id) + " " + payload)) {
        util::warn("svc: journal append failed for job %llu ('%s')",
                   (unsigned long long)id, config_.path.c_str());
        return false;
    }
    live_.emplace(id, payload);
    return true;
}

void
JobJournal::appendTerminal(JobId id, bool done)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = live_.find(id);
    if (it == live_.end())
        return; // never journaled (or already retired): nothing owed
    // Retire locally even if the append fails: replay would re-run a
    // finished job (at-least-once for terminals), but the next
    // compaction rewrites the file without it.
    live_.erase(it);
    ++retiredSinceCompact_;
    appendLine((done ? "done " : "failed ") + std::to_string(id));
    if (config_.maxBytes > 0 && stats_.bytes > config_.maxBytes &&
        retiredSinceCompact_ > 0)
        compactLocked();
}

void
JobJournal::compactLocked()
{
    std::string content;
    for (const auto &[id, payload] : live_)
        content +=
            frameRecord("submit " + std::to_string(id) + " " + payload);
    if (!writeFileAtomic(io_, config_.path, content)) {
        util::warn("svc: journal compaction failed ('%s')",
                   config_.path.c_str());
        return; // stale journal is safe: replay dedups and drops
    }
    stats_.bytes = content.size();
    stats_.records = live_.size();
    ++stats_.compactions;
    retiredSinceCompact_ = 0;
}

void
JobJournal::sync()
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    const int fd = io_.open(config_.path.c_str(), O_WRONLY, 0);
    if (fd < 0)
        return;
    io_.fsync(fd);
    io_.close(fd);
}

JournalStats
JobJournal::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JournalStats stats = stats_;
    stats.liveRecords = live_.size();
    return stats;
}

} // namespace beer::svc
