/**
 * @file
 * Bounded, checksummed job journal for the recovery service.
 *
 * The service journals one record per job transition so a crash (or a
 * kill -9) loses no accepted work: `submit <id> <payload>` when a job
 * is accepted, `done <id>` / `failed <id>` when it reaches a terminal
 * state. This class owns the on-disk framing and the replay semantics;
 * the service owns what the payload means.
 *
 * Framing: every record is one line, `<8-hex-crc32> <payload>\n`, the
 * CRC computed over the payload bytes. The CRC is the journal's only
 * defense against the write failures that lie: a torn append (half the
 * bytes hit the disk, the caller was told all did) is invisible at
 * write time and only detectable at replay. Replay therefore:
 *
 *  - drops a trailing record that fails its CRC or is truncated
 *    (counted as tornTail — the expected crash signature);
 *  - skips mid-file lines that fail their CRC (counted as crcSkipped
 *    — bit rot or a torn record that later appends ran into), after
 *    first scanning the line for an embedded valid record so a record
 *    appended *onto* a torn line is still recovered;
 *  - deduplicates submit records by id, so a doubled line replays a
 *    job exactly once.
 *
 * Size bound: the journal tracks which submit records are still live
 * (no terminal record yet). When the file exceeds maxBytes and at
 * least one record has retired since the last rewrite, it is compacted
 * — atomically rewritten to hold only the live submit records, in
 * original submission order. Replay also compacts, so a restart always
 * begins from a minimal journal. With this, 1k jobs of churn keep the
 * file within the bound while every unfinished job survives a crash.
 *
 * All file access goes through the svc::FileIo seam, so the chaos
 * tests can inject ENOSPC windows, short writes and torn records and
 * verify the no-lost-no-duplicated-jobs contract differentially.
 */

#ifndef BEER_SVC_JOURNAL_HH
#define BEER_SVC_JOURNAL_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "svc/io.hh"
#include "svc/scheduler.hh"
#include "util/checksum.hh"

namespace beer::svc
{

/** CRC-32 over @p len bytes of @p data (shared util::crc32). */
inline std::uint32_t
crc32(const void *data, std::size_t len)
{
    return util::crc32(data, len);
}

/** Knobs for JobJournal. */
struct JournalConfig
{
    /** Journal file path; empty disables the journal entirely. */
    std::string path;
    /**
     * Compact when the file grows past this many bytes and some
     * record has retired since the last rewrite (0 = never compact
     * online; replay-time compaction still runs).
     */
    std::size_t maxBytes = 256 * 1024;
    /** I/O seam; nullptr uses FileIo::system(). */
    FileIo *io = nullptr;
};

/** Observability counters for the journal (health endpoint). */
struct JournalStats
{
    /** Approximate current file size in bytes. */
    std::uint64_t bytes = 0;
    /** Records (lines) currently in the file. */
    std::uint64_t records = 0;
    /** Live submit records (journaled, no terminal record yet). */
    std::uint64_t liveRecords = 0;
    /** Atomic rewrites performed (replay-time and online). */
    std::uint64_t compactions = 0;
    /** Mid-file records dropped for CRC mismatch at replay. */
    std::uint64_t crcSkipped = 0;
    /** Truncated/torn trailing records dropped at replay. */
    std::uint64_t tornTail = 0;
    /** Appends that failed to reach the file (ENOSPC, ...). */
    std::uint64_t appendFailures = 0;
};

/** One unfinished job recovered by replay(). */
struct ReplayedJob
{
    JobId id = 0;
    /** The payload given to appendSubmit(), verbatim. */
    std::string payload;
};

/** Crash-safe bounded job journal; see file comment. */
class JobJournal
{
  public:
    explicit JobJournal(JournalConfig config);

    /** False when constructed with an empty path (all ops no-op). */
    bool enabled() const { return !config_.path.empty(); }

    /**
     * Read the journal, tolerating a torn tail and skipping corrupt
     * records, and return the submit records with no terminal record,
     * deduplicated by id, in submission (id) order. Seeds the live-
     * record tracking and compacts the file down to exactly those
     * survivors. Call once, before concurrent appends begin.
     */
    std::vector<ReplayedJob> replay();

    /**
     * Append `submit <id> <payload>` and mark the id live. Returns
     * false if the record could not be written (the caller should
     * reject the submission rather than accept un-journaled work).
     * @p payload must not contain newlines.
     */
    bool appendSubmit(JobId id, const std::string &payload);

    /**
     * Append `done <id>` or `failed <id>` and retire the id. A no-op
     * for ids that are not live — terminal records are only meaningful
     * for journaled submissions, and this keeps a double-reported
     * terminal from appending twice. May trigger online compaction.
     */
    void appendTerminal(JobId id, bool done);

    /**
     * fsync the journal file (graceful-drain durability). Appends are
     * open-per-call and rely on the OS to flush; a graceful shutdown
     * pins everything to disk exactly once through this.
     */
    void sync();

    JournalStats stats() const;

  private:
    /** Frame @p payload and append it; updates bytes/records. */
    bool appendLine(const std::string &payload);
    /** Rewrite the file to the live records only (caller holds lock). */
    void compactLocked();

    JournalConfig config_;
    FileIo &io_;
    mutable std::mutex mutex_;
    /** Live submit payloads keyed by id; ids are monotonic, so map
     *  order is submission order — the order compaction preserves. */
    std::map<JobId, std::string> live_;
    /** Retirements since the last rewrite; compaction is pointless
     *  (and would storm) while this is zero. */
    std::uint64_t retiredSinceCompact_ = 0;
    JournalStats stats_;
};

} // namespace beer::svc

#endif // BEER_SVC_JOURNAL_HH
