#include "svc/scheduler.hh"

#include <algorithm>
#include <thread>
#include <utility>

namespace beer::svc
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // anonymous namespace

SessionScheduler::SessionScheduler(util::ThreadPool &pool,
                                   SchedulerConfig config)
    : pool_(pool), config_(std::move(config))
{
}

SessionScheduler::~SessionScheduler()
{
    drain();
}

JobId
SessionScheduler::allocateId()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return nextId_++;
}

JobId
SessionScheduler::submit(std::function<void(JobId)> work,
                         JobPolicy policy, JobId force_id)
{
    JobId id;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (config_.maxQueuedJobs &&
            stats_.queued >= config_.maxQueuedJobs) {
            ++stats_.rejected;
            return 0;
        }
        if (force_id) {
            id = force_id;
            // Organic ids must never collide with replayed ones.
            nextId_ = std::max(nextId_, force_id + 1);
        } else {
            id = nextId_++;
        }
        Job job;
        job.policy = policy;
        job.submitted = std::chrono::steady_clock::now();
        jobs_[id] = job;
        ++stats_.submitted;
        ++stats_.queued;
    }
    // The pool runs tasks in FIFO submission order, so job start
    // order follows JobId order.
    pool_.submit([this, id, work = std::move(work)] {
        runJob(id, work);
    });
    return id;
}

void
SessionScheduler::finishJob(std::unique_lock<std::mutex> &lock,
                            Job &job, JobId id, JobState state)
{
    // Terminal bookkeeping runs in two steps around the onTerminal
    // hook: the state and outcome counters first (so wait()ers and
    // the hook observe the terminal state), then the queued/running
    // decrement that releases drain(). The hook therefore runs
    // lock-free but strictly before a drain()ing thread can destroy
    // this scheduler, and the final notify still happens under the
    // lock (a drain()er may destroy us the moment it observes the
    // updated counters).
    const bool was_running = job.state == JobState::Running;
    job.state = state;
    switch (state) {
    case JobState::Done:
        ++stats_.completed;
        break;
    case JobState::Quarantined:
        ++stats_.quarantined;
        break;
    default:
        ++stats_.failed;
        break;
    }
    lock.unlock();
    if (config_.onTerminal)
        config_.onTerminal(id, state);
    lock.lock();
    if (was_running)
        --stats_.running;
    else
        --stats_.queued;
    changed_.notify_all();
}

void
SessionScheduler::runJob(JobId id,
                         const std::function<void(JobId)> &work)
{
    JobPolicy policy;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        Job &job = jobs_[id];
        policy = job.policy;
        // Stale-start enforcement: a job the queue held past its
        // deadline fails unrun (clients stopped waiting long ago).
        if (policy.deadlineSeconds > 0.0 &&
            secondsSince(job.submitted) >= policy.deadlineSeconds) {
            ++stats_.expired;
            finishJob(lock, job, id, JobState::Failed);
            return;
        }
        job.state = JobState::Running;
        ++job.attempts;
        --stats_.queued;
        ++stats_.running;
        stats_.peakConcurrent =
            std::max(stats_.peakConcurrent, stats_.running);
    }
    bool ok = true;
    try {
        work(id);
    } catch (...) {
        ok = false;
    }

    double backoff = 0.0;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        Job &job = jobs_[id];
        const bool deadline_passed =
            policy.deadlineSeconds > 0.0 &&
            secondsSince(job.submitted) >= policy.deadlineSeconds;
        if (!ok && job.attempts <= policy.maxRetries &&
            !deadline_passed) {
            // Retry: back to the queue before leaving Running, so a
            // concurrent drain() never observes the job in neither
            // count.
            job.state = JobState::Queued;
            ++stats_.retries;
            ++stats_.queued;
            --stats_.running;
            changed_.notify_all();
            if (policy.backoffBaseSeconds > 0.0)
                backoff = policy.backoffBaseSeconds *
                          (double)(1ULL << (job.attempts - 1));
        } else if (ok) {
            finishJob(lock, job, id, JobState::Done);
            return;
        } else {
            // A job that burned a whole retry policy is quarantined:
            // terminal like Failed, but flagged for fleet tooling as
            // "this chip keeps failing".
            finishJob(lock, job, id,
                      policy.maxRetries > 0 ? JobState::Quarantined
                                            : JobState::Failed);
            return;
        }
    }
    // Exponential backoff between attempts, on the worker: retrying a
    // noisy chip back-to-back usually re-measures the same burst.
    if (backoff > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(backoff));
    pool_.submit([this, id, w = work] { runJob(id, w); });
}

bool
SessionScheduler::wait(JobId id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    changed_.wait(lock, [&] {
        const JobState state = jobs_.at(id).state;
        return state == JobState::Done ||
               state == JobState::Failed ||
               state == JobState::Quarantined;
    });
    return true;
}

void
SessionScheduler::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    changed_.wait(lock, [&] {
        return stats_.queued == 0 && stats_.running == 0;
    });
}

std::optional<JobState>
SessionScheduler::state(JobId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    return it->second.state;
}

std::size_t
SessionScheduler::attempts(JobId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return 0;
    return it->second.attempts;
}

SchedulerStats
SessionScheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

JobStateCounts
SessionScheduler::stateCounts() const
{
    JobStateCounts counts;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[id, job] : jobs_) {
        (void)id;
        switch (job.state) {
        case JobState::Queued:
            ++counts.queued;
            break;
        case JobState::Running:
            ++counts.running;
            break;
        case JobState::Done:
            ++counts.done;
            break;
        case JobState::Failed:
            ++counts.failed;
            break;
        case JobState::Quarantined:
            ++counts.quarantined;
            break;
        }
    }
    return counts;
}

} // namespace beer::svc
