#include "svc/scheduler.hh"

#include <algorithm>
#include <utility>

namespace beer::svc
{

SessionScheduler::SessionScheduler(util::ThreadPool &pool,
                                   SchedulerConfig config)
    : pool_(pool), config_(config)
{
}

SessionScheduler::~SessionScheduler()
{
    drain();
}

JobId
SessionScheduler::submit(std::function<void(JobId)> work)
{
    JobId id;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (config_.maxQueuedJobs &&
            stats_.queued >= config_.maxQueuedJobs) {
            ++stats_.rejected;
            return 0;
        }
        id = nextId_++;
        jobs_.emplace(id, JobState::Queued);
        ++stats_.submitted;
        ++stats_.queued;
    }
    // The pool runs tasks in FIFO submission order, so job start
    // order follows JobId order.
    pool_.submit([this, id, work = std::move(work)] {
        runJob(id, work);
    });
    return id;
}

void
SessionScheduler::runJob(JobId id,
                         const std::function<void(JobId)> &work)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobs_[id] = JobState::Running;
        --stats_.queued;
        ++stats_.running;
        stats_.peakConcurrent =
            std::max(stats_.peakConcurrent, stats_.running);
    }
    bool ok = true;
    try {
        work(id);
    } catch (...) {
        ok = false;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobs_[id] = ok ? JobState::Done : JobState::Failed;
        --stats_.running;
        ++(ok ? stats_.completed : stats_.failed);
        // Notify while still holding the lock: a drain()ing thread
        // may destroy this scheduler the moment it observes the
        // updated counters, so the notify must complete before the
        // waiter can re-acquire the mutex and return.
        changed_.notify_all();
    }
}

bool
SessionScheduler::wait(JobId id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    changed_.wait(lock, [&] {
        const JobState state = jobs_.at(id);
        return state == JobState::Done || state == JobState::Failed;
    });
    return true;
}

void
SessionScheduler::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    changed_.wait(lock, [&] {
        return stats_.queued == 0 && stats_.running == 0;
    });
}

std::optional<JobState>
SessionScheduler::state(JobId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    return it->second;
}

SchedulerStats
SessionScheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

JobStateCounts
SessionScheduler::stateCounts() const
{
    JobStateCounts counts;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[id, state] : jobs_) {
        (void)id;
        switch (state) {
        case JobState::Queued:
            ++counts.queued;
            break;
        case JobState::Running:
            ++counts.running;
            break;
        case JobState::Done:
            ++counts.done;
            break;
        case JobState::Failed:
            ++counts.failed;
            break;
        }
    }
    return counts;
}

} // namespace beer::svc
