/**
 * @file
 * Sharded recovery-job scheduler.
 *
 * Bridges the service's job-oriented API onto util::ThreadPool's task
 * queue: every submitted job becomes one pool task, so concurrent
 * recovery sessions shard across the pool's workers while the pool's
 * FIFO task order keeps job execution order deterministic (job i
 * starts no later than job i+1). The queue is bounded — submissions
 * beyond maxQueuedJobs are rejected with a zero JobId instead of
 * building unbounded backlog, the service layer's load-shedding
 * contract (HTTP 429).
 *
 * The scheduler tracks per-job state (Queued/Running/Done/Failed) and
 * aggregate counters, including the peak number of concurrently
 * running jobs — the observable the acceptance test uses to prove
 * multiple sessions really make progress simultaneously.
 */

#ifndef BEER_SVC_SCHEDULER_HH
#define BEER_SVC_SCHEDULER_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "util/thread_pool.hh"

namespace beer::svc
{

/** Monotonically increasing job identity; 0 is "no job" (rejected). */
using JobId = std::uint64_t;

/** Lifecycle of a scheduled job. */
enum class JobState
{
    Queued,
    Running,
    Done,
    Failed,
};

/** Knobs for the scheduler. */
struct SchedulerConfig
{
    /** Max jobs queued-but-not-running before submissions shed. */
    std::size_t maxQueuedJobs = 256;
};

/** Aggregate counters (instantaneous + cumulative). */
struct SchedulerStats
{
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    /** Jobs currently waiting for a worker. */
    std::uint64_t queued = 0;
    /** Jobs currently executing. */
    std::uint64_t running = 0;
    /** Peak of `running` over the scheduler's lifetime. */
    std::uint64_t peakConcurrent = 0;
};

/** Jobs per lifecycle state, counted over every job ever issued —
 * the health endpoint's load-shedding diagnostic (a full queue shows
 * up as `queued` pinned at maxQueuedJobs). */
struct JobStateCounts
{
    std::uint64_t queued = 0;
    std::uint64_t running = 0;
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
};

/** Job scheduler over a shared thread pool; see file comment. */
class SessionScheduler
{
  public:
    /** @p pool must outlive the scheduler. */
    explicit SessionScheduler(util::ThreadPool &pool,
                              SchedulerConfig config = {});
    /** Drains: blocks until every accepted job has finished. */
    ~SessionScheduler();

    SessionScheduler(const SessionScheduler &) = delete;
    SessionScheduler &operator=(const SessionScheduler &) = delete;

    /**
     * Schedule @p work. Returns the assigned JobId, or 0 if the
     * bounded queue is full. @p work receives its own JobId. A
     * throwing job is recorded Failed; the exception does not
     * propagate (the pool worker must survive).
     */
    JobId submit(std::function<void(JobId)> work);

    /**
     * Block until @p id reaches Done or Failed.
     *
     * @return false if @p id was never issued
     */
    bool wait(JobId id);

    /** Block until every accepted job has finished. */
    void drain();

    /** State of @p id; nullopt if never issued. */
    std::optional<JobState> state(JobId id) const;

    SchedulerStats stats() const;

    /** Per-state job census under one lock acquisition. */
    JobStateCounts stateCounts() const;

  private:
    void runJob(JobId id, const std::function<void(JobId)> &work);

    util::ThreadPool &pool_;
    SchedulerConfig config_;
    mutable std::mutex mutex_;
    std::condition_variable changed_;
    std::unordered_map<JobId, JobState> jobs_;
    JobId nextId_ = 1;
    SchedulerStats stats_;
};

} // namespace beer::svc

#endif // BEER_SVC_SCHEDULER_HH
