/**
 * @file
 * Sharded recovery-job scheduler.
 *
 * Bridges the service's job-oriented API onto util::ThreadPool's task
 * queue: every submitted job becomes one pool task, so concurrent
 * recovery sessions shard across the pool's workers while the pool's
 * FIFO task order keeps job execution order deterministic (job i
 * starts no later than job i+1). The queue is bounded — submissions
 * beyond maxQueuedJobs are rejected with a zero JobId instead of
 * building unbounded backlog, the service layer's load-shedding
 * contract (HTTP 429).
 *
 * The scheduler tracks per-job state (Queued/Running/Done/Failed/
 * Quarantined) and aggregate counters, including the peak number of
 * concurrently running jobs — the observable the acceptance test uses
 * to prove multiple sessions really make progress simultaneously.
 *
 * Jobs carry an optional resilience policy (JobPolicy): a throwing
 * attempt is retried automatically with exponential backoff up to
 * maxRetries, after which the job is *quarantined* — a terminal state
 * distinct from Failed that marks "this chip keeps failing, stop
 * feeding it work" for fleet tooling. A start deadline bounds how
 * stale a queued job may get: jobs picked up (or retried) past their
 * deadline fail without running. Journal replay after a crash re-
 * submits jobs under their original ids (the forced-id submit form),
 * so poll URLs and dedup keys survive a restart.
 */

#ifndef BEER_SVC_SCHEDULER_HH
#define BEER_SVC_SCHEDULER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "util/thread_pool.hh"

namespace beer::svc
{

/** Monotonically increasing job identity; 0 is "no job" (rejected). */
using JobId = std::uint64_t;

/** Lifecycle of a scheduled job. */
enum class JobState
{
    Queued,
    Running,
    Done,
    Failed,
    /** Terminal: failed every attempt of a retry policy. The fleet
     *  reads this as "stop submitting this chip until a human looks". */
    Quarantined,
};

/** Per-job resilience policy (all off by default). */
struct JobPolicy
{
    /** Automatic re-runs after a throwing attempt (0 = fail fast).
     *  A job that exhausts its retries is Quarantined, not Failed. */
    std::size_t maxRetries = 0;
    /** Sleep backoffBaseSeconds * 2^(attempt-1) before retry attempt
     *  N (0 disables). The sleep runs on the worker, trading one pool
     *  slot for not hammering a noisy chip back-to-back. */
    double backoffBaseSeconds = 0.0;
    /**
     * Seconds after submission by which the job must *start* (0 =
     * none). A job dequeued — or considered for retry — past this is
     * failed without running: the scheduler cannot preempt a running
     * body, so in-flight timeout enforcement belongs to the body
     * (e.g. SessionConfig::deadlineSeconds).
     */
    double deadlineSeconds = 0.0;
};

/** Knobs for the scheduler. */
struct SchedulerConfig
{
    /** Max jobs queued-but-not-running before submissions shed. */
    std::size_t maxQueuedJobs = 256;
    /**
     * Invoked (without scheduler locks held) whenever a job reaches a
     * terminal state — Done, Failed, or Quarantined, once per job.
     * Retried attempts are not terminal. The service layer journals
     * completions through this.
     */
    std::function<void(JobId, JobState)> onTerminal;
};

/** Aggregate counters (instantaneous + cumulative). */
struct SchedulerStats
{
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    /** Jobs currently waiting for a worker. */
    std::uint64_t queued = 0;
    /** Jobs currently executing. */
    std::uint64_t running = 0;
    /** Peak of `running` over the scheduler's lifetime. */
    std::uint64_t peakConcurrent = 0;
    /** Attempts re-queued by a retry policy. */
    std::uint64_t retries = 0;
    /** Jobs that exhausted their retries (terminal Quarantined). */
    std::uint64_t quarantined = 0;
    /** Jobs failed unrun because their start deadline had passed. */
    std::uint64_t expired = 0;
};

/** Jobs per lifecycle state, counted over every job ever issued —
 * the health endpoint's load-shedding diagnostic (a full queue shows
 * up as `queued` pinned at maxQueuedJobs). */
struct JobStateCounts
{
    std::uint64_t queued = 0;
    std::uint64_t running = 0;
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t quarantined = 0;
};

/** Job scheduler over a shared thread pool; see file comment. */
class SessionScheduler
{
  public:
    /** @p pool must outlive the scheduler. */
    explicit SessionScheduler(util::ThreadPool &pool,
                              SchedulerConfig config = {});
    /** Drains: blocks until every accepted job has finished. */
    ~SessionScheduler();

    SessionScheduler(const SessionScheduler &) = delete;
    SessionScheduler &operator=(const SessionScheduler &) = delete;

    /**
     * Schedule @p work under @p policy. Returns the assigned JobId,
     * or 0 if the bounded queue is full. @p work receives its own
     * JobId. A throwing job is retried per the policy, then recorded
     * Failed (no policy) or Quarantined (retries exhausted); the
     * exception never propagates (the pool worker must survive).
     *
     * @p force_id reuses a specific id (journal replay after a crash:
     * resumed jobs keep the ids clients are polling). Forced ids must
     * not collide with live ones; the id counter advances past them
     * so later organic submissions cannot collide either.
     */
    JobId submit(std::function<void(JobId)> work,
                 JobPolicy policy = {}, JobId force_id = 0);

    /**
     * Reserve the next JobId without scheduling anything; pass it to
     * submit() as @p force_id afterwards. This is the journal-before-
     * schedule ordering: the service journals `submit <id>` durably
     * BEFORE the scheduler can start the job, so a crash between the
     * two replays the job instead of losing it, and the id in the
     * journal is the id clients poll.
     */
    JobId allocateId();

    /**
     * Block until @p id reaches a terminal state (Done, Failed, or
     * Quarantined).
     *
     * @return false if @p id was never issued
     */
    bool wait(JobId id);

    /** Block until every accepted job has finished. */
    void drain();

    /** State of @p id; nullopt if never issued. */
    std::optional<JobState> state(JobId id) const;

    /** Attempts started for @p id so far (0 if unknown/not started). */
    std::size_t attempts(JobId id) const;

    SchedulerStats stats() const;

    /** Per-state job census under one lock acquisition. */
    JobStateCounts stateCounts() const;

  private:
    struct Job
    {
        JobState state = JobState::Queued;
        JobPolicy policy;
        std::size_t attempts = 0;
        std::chrono::steady_clock::time_point submitted;
    };

    void runJob(JobId id, const std::function<void(JobId)> &work);
    /** Terminal transition + notify; returns the hook to invoke. */
    void finishJob(std::unique_lock<std::mutex> &lock, Job &job,
                   JobId id, JobState state);

    util::ThreadPool &pool_;
    SchedulerConfig config_;
    mutable std::mutex mutex_;
    std::condition_variable changed_;
    std::unordered_map<JobId, Job> jobs_;
    JobId nextId_ = 1;
    SchedulerStats stats_;
};

} // namespace beer::svc

#endif // BEER_SVC_SCHEDULER_HH
