#include "svc/service.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "beer/measure.hh"
#include "dram/trace.hh"
#include "ecc/hamming.hh"
#include "util/logging.hh"

namespace beer::svc
{

namespace
{

/** Largest parity-bit count a submission may request; the LinearCode
 * syndrome table is sized 2^p, so this bounds per-job memory. */
constexpr std::size_t kMaxParityBits = 24;
/** Largest dataword length a submission may request. */
constexpr std::size_t kMaxDatawordBits = 512;

SubmitOutcome
rejected(SubmitOutcome::Reject why, std::string error)
{
    SubmitOutcome outcome;
    outcome.accepted = false;
    outcome.reject = why;
    outcome.error = std::move(error);
    return outcome;
}

} // anonymous namespace

/** Everything one job owns; stable address for its whole lifetime. */
struct RecoveryService::JobRecord
{
    SubmitOptions options;
    /** Empty when tracePath is set (derived inside the job). */
    MiscorrectionProfile profile;
    /** Non-empty for trace submissions. */
    std::string tracePath;
    /** Non-null for chip-endpoint session submissions. */
    dram::MemoryInterface *sessionMem = nullptr;
    SessionSubmitOptions sessionOptions;
    std::mutex mutex;
    JobStatus status;
};

RecoveryService::RecoveryService(ServiceConfig config)
    : config_(std::move(config)),
      start_(std::chrono::steady_clock::now())
{
    // ThreadPool counts the calling thread as an executor; async jobs
    // only run on workers, so size the pool for `threads` workers.
    pool_ = std::make_unique<util::ThreadPool>(
        config_.threads == 0 ? 0 : config_.threads + 1);
    cache_ = std::make_unique<FingerprintCache>(config_.cache);
    cache_->loadFromDisk();
    SchedulerConfig sched;
    sched.maxQueuedJobs = config_.maxQueuedJobs;
    scheduler_ = std::make_unique<SessionScheduler>(*pool_, sched);
}

RecoveryService::~RecoveryService()
{
    shutdown();
}

SubmitOutcome
RecoveryService::enqueue(MiscorrectionProfile profile,
                         const SubmitOptions &options)
{
    if (stopped_.load())
        return rejected(SubmitOutcome::Reject::Overloaded,
                        "service is shutting down");

    auto record = std::make_unique<JobRecord>();
    record->options = options;

    if (profile.k == 0 || profile.patterns.empty())
        return rejected(SubmitOutcome::Reject::BadPayload,
                        "profile has no patterns");
    if (profile.k > kMaxDatawordBits)
        return rejected(SubmitOutcome::Reject::BadPayload,
                        "dataword length exceeds service limit");
    const std::size_t parity =
        options.parityBits ? options.parityBits
                           : ecc::parityBitsForDataBits(profile.k);
    if (parity > kMaxParityBits)
        return rejected(SubmitOutcome::Reject::BadPayload,
                        "parity-bit count exceeds service limit");
    record->status.k = profile.k;
    record->status.parityBits = parity;
    record->status.patterns = profile.patterns.size();
    record->profile = std::move(profile);

    JobRecord *ptr = record.get();
    const JobId id = scheduler_->submit([this, ptr](JobId job_id) {
        {
            std::lock_guard<std::mutex> lock(ptr->mutex);
            ptr->status.id = job_id;
        }
        runJob(*ptr);
    });
    if (id == 0)
        return rejected(SubmitOutcome::Reject::Overloaded,
                        "job queue is full, retry later");

    {
        std::lock_guard<std::mutex> lock(ptr->mutex);
        ptr->status.id = id;
    }
    {
        std::lock_guard<std::mutex> lock(jobsMutex_);
        jobs_.emplace(id, std::move(record));
    }
    SubmitOutcome outcome;
    outcome.accepted = true;
    outcome.id = id;
    return outcome;
}

SubmitOutcome
RecoveryService::submitProfile(const MiscorrectionProfile &profile,
                               const SubmitOptions &options)
{
    return enqueue(profile, options);
}

SubmitOutcome
RecoveryService::submitPayload(const std::string &payload,
                               const SubmitOptions &options)
{
    std::istringstream in(payload);
    MiscorrectionProfile profile;
    const ProfileParseStatus status = tryParseProfile(in, profile);
    if (!status.ok)
        return rejected(SubmitOutcome::Reject::BadPayload,
                        status.error);
    if (status.version < kProfileFormatVersion) {
        if (config_.rejectLegacyPayloads)
            return rejected(
                SubmitOutcome::Reject::BadPayload,
                "legacy version-" + std::to_string(status.version) +
                    " payload rejected; re-serialize as version " +
                    std::to_string(kProfileFormatVersion));
        legacyPayloads_.fetch_add(1, std::memory_order_relaxed);
    }
    return enqueue(std::move(profile), options);
}

SubmitOutcome
RecoveryService::submitTraceFile(const std::string &path,
                                 const SubmitOptions &options)
{
    if (stopped_.load())
        return rejected(SubmitOutcome::Reject::Overloaded,
                        "service is shutting down");
    if (!std::ifstream(path))
        return rejected(SubmitOutcome::Reject::BadPayload,
                        "cannot open trace file '" + path + "'");

    auto record = std::make_unique<JobRecord>();
    record->options = options;
    record->tracePath = path;

    JobRecord *ptr = record.get();
    const JobId id = scheduler_->submit([this, ptr](JobId job_id) {
        {
            std::lock_guard<std::mutex> lock(ptr->mutex);
            ptr->status.id = job_id;
        }
        runJob(*ptr);
    });
    if (id == 0)
        return rejected(SubmitOutcome::Reject::Overloaded,
                        "job queue is full, retry later");
    {
        std::lock_guard<std::mutex> lock(ptr->mutex);
        ptr->status.id = id;
    }
    {
        std::lock_guard<std::mutex> lock(jobsMutex_);
        jobs_.emplace(id, std::move(record));
    }
    SubmitOutcome outcome;
    outcome.accepted = true;
    outcome.id = id;
    return outcome;
}

SubmitOutcome
RecoveryService::submitSession(dram::MemoryInterface &mem,
                               const SessionSubmitOptions &options)
{
    if (stopped_.load())
        return rejected(SubmitOutcome::Reject::Overloaded,
                        "service is shutting down");
    const std::size_t k = mem.datawordBits();
    if (k == 0 || k > kMaxDatawordBits)
        return rejected(SubmitOutcome::Reject::BadPayload,
                        "chip dataword length outside service limits");
    const std::size_t parity = ecc::parityBitsForDataBits(k);
    if (parity > kMaxParityBits)
        return rejected(SubmitOutcome::Reject::BadPayload,
                        "parity-bit count exceeds service limit");

    auto record = std::make_unique<JobRecord>();
    record->sessionMem = &mem;
    record->sessionOptions = options;
    record->status.k = k;
    record->status.parityBits = parity;

    JobRecord *ptr = record.get();
    const JobId id = scheduler_->submit([this, ptr](JobId job_id) {
        {
            std::lock_guard<std::mutex> lock(ptr->mutex);
            ptr->status.id = job_id;
        }
        runJob(*ptr);
    });
    if (id == 0)
        return rejected(SubmitOutcome::Reject::Overloaded,
                        "job queue is full, retry later");
    {
        std::lock_guard<std::mutex> lock(ptr->mutex);
        ptr->status.id = id;
    }
    {
        std::lock_guard<std::mutex> lock(jobsMutex_);
        jobs_.emplace(id, std::move(record));
    }
    SubmitOutcome outcome;
    outcome.accepted = true;
    outcome.id = id;
    return outcome;
}

FingerprintCache::Hit
RecoveryService::batchedLookup(const MiscorrectionProfile &profile,
                               std::size_t parity_bits)
{
    LookupWaiter waiter;
    waiter.profile = &profile;
    waiter.parityBits = parity_bits;

    std::unique_lock<std::mutex> lock(lookupMutex_);
    lookupQueue_.push_back(&waiter);
    if (lookupLeaderActive_) {
        // A leader is already serving the queue; it will carry this
        // request in its next lookupMany() pass.
        lookupServed_.wait(lock, [&] { return waiter.served; });
        return std::move(waiter.hit);
    }

    lookupLeaderActive_ = true;
    while (!lookupQueue_.empty()) {
        std::vector<LookupWaiter *> batch(lookupQueue_.begin(),
                                          lookupQueue_.end());
        lookupQueue_.clear();
        lock.unlock();

        std::vector<FingerprintCache::LookupRequest> requests;
        requests.reserve(batch.size());
        for (const LookupWaiter *w : batch)
            requests.push_back({w->profile, w->parityBits});
        std::vector<FingerprintCache::Hit> hits =
            cache_->lookupMany(requests);
        if (batch.size() > 1)
            batchedLookups_.fetch_add(batch.size(),
                                      std::memory_order_relaxed);

        lock.lock();
        for (std::size_t i = 0; i < batch.size(); ++i) {
            batch[i]->hit = std::move(hits[i]);
            batch[i]->served = true;
        }
        lookupServed_.notify_all();
        // Requests that arrived while the pass ran are in the queue
        // again; keep leading until it drains.
    }
    lookupLeaderActive_ = false;
    return std::move(waiter.hit);
}

void
RecoveryService::runSessionJob(JobRecord &record)
{
    SessionConfig config;
    config.measure = record.sessionOptions.measure;
    config.solver = config_.solver;
    config.escalateToTwoCharged =
        record.sessionOptions.escalateToTwoCharged;
    config.adaptiveEarlyExit = record.sessionOptions.adaptiveEarlyExit;
    config.wordsUnderTest = record.sessionOptions.wordsUnderTest;
    config.pipelined = record.sessionOptions.pipelined;
    // Solve tasks ride the service pool: while this job's worker
    // blocks on the chip, an idle worker picks the solve up — one job,
    // two busy cores. The claimable-task handoff keeps a saturated
    // pool safe (the join runs the solve inline instead of waiting).
    config.solverPool = pool_.get();

    Session session(*record.sessionMem, config);
    const RecoveryReport report = session.run();
    // One job, one answer-producing solve path (the session's rounds
    // share an incremental context), matching the counter's "jobs
    // answered by SAT" meaning.
    satSolves_.fetch_add(1, std::memory_order_relaxed);

    const std::size_t parity =
        ecc::parityBitsForDataBits(report.profile.k);
    if (report.succeeded())
        cache_->insert(report.profile, parity, report.recoveredCode());

    std::lock_guard<std::mutex> lock(record.mutex);
    record.status.patterns = report.profile.patterns.size();
    record.status.succeeded = report.succeeded();
    record.status.solutions = report.solve.solutions.size();
    record.status.complete = report.solve.complete;
    if (report.succeeded()) {
        record.status.code = report.recoveredCode();
        record.status.codeString = record.status.code->toString();
    }
    record.status.overlapSeconds = report.stats.overlapSeconds;
}

void
RecoveryService::runJob(JobRecord &record)
{
    const auto wall_start = std::chrono::steady_clock::now();
    JobId id;
    {
        std::lock_guard<std::mutex> lock(record.mutex);
        record.status.state = JobState::Running;
        id = record.status.id;
    }
    if (config_.onJobStart)
        config_.onJobStart(id);

    try {
        if (record.sessionMem) {
            runSessionJob(record);
            const double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
            std::lock_guard<std::mutex> lock(record.mutex);
            record.status.seconds = seconds;
            record.status.state = JobState::Done;
            return;
        }
        // Trace submissions re-measure their profile first.
        if (!record.tracePath.empty()) {
            dram::TraceReplayBackend trace(record.tracePath);
            const ProfileCounts counts = replayProfileTrace(trace);
            MiscorrectionProfile profile = counts.threshold(
                traceMeasureConfig(trace).thresholdProbability);
            const std::size_t parity =
                record.options.parityBits
                    ? record.options.parityBits
                    : ecc::parityBitsForDataBits(profile.k);
            std::lock_guard<std::mutex> lock(record.mutex);
            record.status.k = profile.k;
            record.status.parityBits = parity;
            record.status.patterns = profile.patterns.size();
            record.profile = std::move(profile);
        }

        const MiscorrectionProfile &profile = record.profile;
        const std::size_t parity = record.status.parityBits;

        FingerprintCache::Hit hit;
        if (!record.options.bypassCache)
            hit = batchedLookup(profile, parity);

        JobStatus result;
        if (hit.kind == FingerprintCache::Hit::Kind::Exact) {
            result.succeeded = true;
            result.solutions = 1;
            result.complete = true;
            result.code = hit.code;
            result.codeString = hit.code->toString();
            result.cache = CacheOutcome::Exact;
        } else {
            IncrementalSolver solver(profile.k, parity,
                                     config_.solver);
            if (hit.kind == FingerprintCache::Hit::Kind::Near) {
                solver.warmStart(hit.shared);
                result.cache = CacheOutcome::Near;
            }
            solver.addProfile(profile);
            const BeerSolveResult solve = solver.solve();
            satSolves_.fetch_add(1, std::memory_order_relaxed);
            result.succeeded = solve.unique();
            result.solutions = solve.solutions.size();
            result.complete = solve.complete;
            if (solve.unique()) {
                result.code = solve.solutions.front();
                result.codeString = result.code->toString();
                // Only answers enter the cache: a non-unique solve is
                // a request for more measurement, not a function.
                cache_->insert(profile, parity,
                               solve.solutions.front());
            }
        }

        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        std::lock_guard<std::mutex> lock(record.mutex);
        record.status.succeeded = result.succeeded;
        record.status.solutions = result.solutions;
        record.status.complete = result.complete;
        record.status.code = std::move(result.code);
        record.status.codeString = std::move(result.codeString);
        record.status.cache = result.cache;
        record.status.seconds = seconds;
        record.status.state = JobState::Done;
    } catch (const std::exception &e) {
        std::lock_guard<std::mutex> lock(record.mutex);
        record.status.error = e.what();
        record.status.state = JobState::Failed;
        throw; // let the scheduler count the failure
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(record.mutex);
            record.status.error = "unknown job failure";
            record.status.state = JobState::Failed;
        }
        throw;
    }
}

std::optional<JobStatus>
RecoveryService::job(JobId id) const
{
    std::lock_guard<std::mutex> jobs_lock(jobsMutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    std::lock_guard<std::mutex> lock(it->second->mutex);
    return it->second->status;
}

bool
RecoveryService::waitForJob(JobId id)
{
    return scheduler_->wait(id);
}

void
RecoveryService::drain()
{
    scheduler_->drain();
}

JobPage
RecoveryService::listJobs(std::size_t offset, std::size_t limit) const
{
    constexpr std::size_t kDefaultLimit = 50;
    constexpr std::size_t kMaxLimit = 1000;
    if (limit == 0)
        limit = kDefaultLimit;
    limit = std::min(limit, kMaxLimit);

    JobPage page;
    page.offset = offset;
    std::lock_guard<std::mutex> jobs_lock(jobsMutex_);
    page.total = jobs_.size();
    auto it = jobs_.begin();
    std::advance(it, std::min(offset, jobs_.size()));
    for (; it != jobs_.end() && page.jobs.size() < limit; ++it) {
        std::lock_guard<std::mutex> lock(it->second->mutex);
        page.jobs.push_back(it->second->status);
    }
    return page;
}

HealthReport
RecoveryService::health() const
{
    HealthReport report;
    report.ok = !stopped_.load();
    report.uptimeSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start_)
            .count();
    report.poolThreads = pool_->size() - 1;
    report.poolQueuedTasks = pool_->queuedTasks();
    report.poolActiveTasks = pool_->activeTasks();
    report.poolCompletedTasks = pool_->completedTasks();
    report.scheduler = scheduler_->stats();
    report.jobStates = scheduler_->stateCounts();
    report.queueDepth = report.scheduler.queued;
    report.cache = cache_->stats();
    report.satSolves = satSolves_.load(std::memory_order_relaxed);
    report.legacyPayloads =
        legacyPayloads_.load(std::memory_order_relaxed);
    report.batchedLookups =
        batchedLookups_.load(std::memory_order_relaxed);
    return report;
}

bool
RecoveryService::flushCache() const
{
    return cache_->flushToDisk();
}

void
RecoveryService::shutdown()
{
    if (stopped_.exchange(true))
        return;
    scheduler_->drain();
    if (!config_.cache.path.empty())
        cache_->flushToDisk();
}

} // namespace beer::svc
