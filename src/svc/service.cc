#include "svc/service.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "beer/measure.hh"
#include "dram/trace.hh"
#include "ecc/hamming.hh"
#include "util/logging.hh"

namespace beer::svc
{

namespace
{

/** Largest parity-bit count a submission may request; the LinearCode
 * syndrome table is sized 2^p, so this bounds per-job memory. */
constexpr std::size_t kMaxParityBits = 24;
/** Largest dataword length a submission may request. */
constexpr std::size_t kMaxDatawordBits = 512;

SubmitOutcome
rejected(SubmitOutcome::Reject why, std::string error)
{
    SubmitOutcome outcome;
    outcome.accepted = false;
    outcome.reject = why;
    outcome.error = std::move(error);
    return outcome;
}

/** One journal field may span the rest of its line; newlines and
 * backslashes inside it are escaped so records stay one-per-line. */
std::string
escapeJournalField(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

std::string
unescapeJournalField(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '\\' && i + 1 < text.size()) {
            ++i;
            out += text[i] == 'n' ? '\n' : text[i];
        } else {
            out += text[i];
        }
    }
    return out;
}

} // anonymous namespace

const char *
jobErrorCodeName(JobErrorCode code)
{
    switch (code) {
    case JobErrorCode::None:
        return "none";
    case JobErrorCode::BadInput:
        return "bad_input";
    case JobErrorCode::MeasurementFailed:
        return "measurement_failed";
    case JobErrorCode::Unsatisfiable:
        return "unsatisfiable";
    case JobErrorCode::Ambiguous:
        return "ambiguous";
    case JobErrorCode::Timeout:
        return "timeout";
    case JobErrorCode::Internal:
        return "internal";
    }
    return "unknown";
}

/** Everything one job owns; stable address for its whole lifetime. */
struct RecoveryService::JobRecord
{
    SubmitOptions options;
    /** Empty when tracePath is set (derived inside the job). */
    MiscorrectionProfile profile;
    /** Non-empty for trace submissions. */
    std::string tracePath;
    /** Non-null for chip-endpoint session submissions. */
    dram::MemoryInterface *sessionMem = nullptr;
    SessionSubmitOptions sessionOptions;
    std::mutex mutex;
    JobStatus status;
};

RecoveryService::RecoveryService(ServiceConfig config)
    : config_(std::move(config)),
      start_(std::chrono::steady_clock::now())
{
    // ThreadPool counts the calling thread as an executor; async jobs
    // only run on workers, so size the pool for `threads` workers.
    pool_ = std::make_unique<util::ThreadPool>(
        config_.threads == 0 ? 0 : config_.threads + 1);
    // The configured I/O seam covers every file the service persists:
    // the journal and the fingerprint-cache snapshot.
    if (!config_.cache.io)
        config_.cache.io = config_.fileIo;
    cache_ = std::make_unique<FingerprintCache>(config_.cache);
    cache_->loadFromDisk();
    JournalConfig journal;
    journal.path = config_.journalPath;
    journal.maxBytes = config_.journalMaxBytes;
    journal.io = config_.fileIo;
    journal_ = std::make_unique<JobJournal>(journal);
    SchedulerConfig sched;
    sched.maxQueuedJobs = config_.maxQueuedJobs;
    if (journal_->enabled())
        sched.onTerminal = [this](JobId id, JobState state) {
            journal_->appendTerminal(id, state == JobState::Done);
        };
    scheduler_ = std::make_unique<SessionScheduler>(*pool_, sched);
    replayJournal();
}

RecoveryService::~RecoveryService()
{
    shutdown();
}

SubmitOutcome
RecoveryService::scheduleRecord(std::unique_ptr<JobRecord> record,
                                JobId force_id, bool journal)
{
    // Journal-before-schedule: the submit record must be durable
    // BEFORE the scheduler can start (or finish) the job, so a crash
    // at any point replays the job instead of losing it. The id is
    // allocated up front for the record; a journal append that fails
    // (ENOSPC and friends) rejects the submission — the service never
    // accepts work it could not make durable.
    std::string submit_line;
    if (journal && journal_->enabled() && !record->sessionMem) {
        submit_line = !record->tracePath.empty()
                          ? "trace " + std::to_string(
                                record->options.parityBits) +
                                " " +
                                std::to_string(
                                    record->options.bypassCache) +
                                " " +
                                escapeJournalField(record->tracePath)
                          : "profile " + std::to_string(
                                record->options.parityBits) +
                                " " +
                                std::to_string(
                                    record->options.bypassCache) +
                                " " +
                                escapeJournalField(
                                    serializeProfile(record->profile));
    }

    JobId reserved = force_id;
    bool journaled = false;
    if (!submit_line.empty()) {
        if (reserved == 0)
            reserved = scheduler_->allocateId();
        if (!journal_->appendSubmit(reserved, submit_line))
            return rejected(SubmitOutcome::Reject::Overloaded,
                            "cannot journal submission (disk "
                            "failure?), retry later");
        journaled = true;
    }

    JobRecord *ptr = record.get();
    const JobId id = scheduler_->submit(
        [this, ptr](JobId job_id) {
            {
                std::lock_guard<std::mutex> lock(ptr->mutex);
                ptr->status.id = job_id;
            }
            runJob(*ptr);
        },
        config_.jobPolicy, reserved);
    if (id == 0) {
        // The submit record is already durable; retire it so replay
        // does not resurrect a job the client was told is rejected.
        if (journaled)
            journal_->appendTerminal(reserved, /*done=*/false);
        return rejected(SubmitOutcome::Reject::Overloaded,
                        "job queue is full, retry later");
    }
    {
        std::lock_guard<std::mutex> lock(ptr->mutex);
        ptr->status.id = id;
    }
    {
        std::lock_guard<std::mutex> lock(jobsMutex_);
        jobs_.emplace(id, std::move(record));
    }
    SubmitOutcome outcome;
    outcome.accepted = true;
    outcome.id = id;
    return outcome;
}

SubmitOutcome
RecoveryService::enqueue(MiscorrectionProfile profile,
                         const SubmitOptions &options, JobId force_id,
                         bool journal)
{
    if (stopped_.load())
        return rejected(SubmitOutcome::Reject::Overloaded,
                        "service is shutting down");

    auto record = std::make_unique<JobRecord>();
    record->options = options;

    if (profile.k == 0 || profile.patterns.empty())
        return rejected(SubmitOutcome::Reject::BadPayload,
                        "profile has no patterns");
    if (profile.k > kMaxDatawordBits)
        return rejected(SubmitOutcome::Reject::BadPayload,
                        "dataword length exceeds service limit");
    const std::size_t parity =
        options.parityBits ? options.parityBits
                           : ecc::parityBitsForDataBits(profile.k);
    if (parity > kMaxParityBits)
        return rejected(SubmitOutcome::Reject::BadPayload,
                        "parity-bit count exceeds service limit");
    record->status.k = profile.k;
    record->status.parityBits = parity;
    record->status.patterns = profile.patterns.size();
    record->profile = std::move(profile);

    return scheduleRecord(std::move(record), force_id, journal);
}

SubmitOutcome
RecoveryService::submitProfile(const MiscorrectionProfile &profile,
                               const SubmitOptions &options)
{
    return enqueue(profile, options);
}

SubmitOutcome
RecoveryService::submitPayload(const std::string &payload,
                               const SubmitOptions &options)
{
    std::istringstream in(payload);
    MiscorrectionProfile profile;
    const ProfileParseStatus status = tryParseProfile(in, profile);
    if (!status.ok)
        return rejected(SubmitOutcome::Reject::BadPayload,
                        status.error);
    if (status.version < kProfileFormatVersion) {
        if (config_.rejectLegacyPayloads)
            return rejected(
                SubmitOutcome::Reject::BadPayload,
                "legacy version-" + std::to_string(status.version) +
                    " payload rejected; re-serialize as version " +
                    std::to_string(kProfileFormatVersion));
        legacyPayloads_.fetch_add(1, std::memory_order_relaxed);
    }
    return enqueue(std::move(profile), options);
}

SubmitOutcome
RecoveryService::submitTraceFile(const std::string &path,
                                 const SubmitOptions &options)
{
    if (stopped_.load())
        return rejected(SubmitOutcome::Reject::Overloaded,
                        "service is shutting down");
    if (!std::ifstream(path))
        return rejected(SubmitOutcome::Reject::BadPayload,
                        "cannot open trace file '" + path + "'");
    // Sniff the trace format up front: unrecognized files are a
    // submission error, not a worker crash later, and the per-format
    // counters tell a fleet operator how far the v2 migration is.
    const auto format = dram::tryTraceFileFormat(path);
    if (!format)
        return rejected(SubmitOutcome::Reject::BadPayload,
                        "'" + path +
                            "' is neither a v1 nor a v2 trace");
    if (*format == dram::TraceFormat::V1)
        traceV1Jobs_.fetch_add(1, std::memory_order_relaxed);
    else
        traceV2Jobs_.fetch_add(1, std::memory_order_relaxed);

    auto record = std::make_unique<JobRecord>();
    record->options = options;
    record->tracePath = path;

    return scheduleRecord(std::move(record), 0, true);
}

SubmitOutcome
RecoveryService::submitSession(dram::MemoryInterface &mem,
                               const SessionSubmitOptions &options)
{
    if (stopped_.load())
        return rejected(SubmitOutcome::Reject::Overloaded,
                        "service is shutting down");
    const std::size_t k = mem.datawordBits();
    if (k == 0 || k > kMaxDatawordBits)
        return rejected(SubmitOutcome::Reject::BadPayload,
                        "chip dataword length outside service limits");
    const std::size_t parity = ecc::parityBitsForDataBits(k);
    if (parity > kMaxParityBits)
        return rejected(SubmitOutcome::Reject::BadPayload,
                        "parity-bit count exceeds service limit");

    auto record = std::make_unique<JobRecord>();
    record->sessionMem = &mem;
    record->sessionOptions = options;
    record->status.k = k;
    record->status.parityBits = parity;

    return scheduleRecord(std::move(record), 0, true);
}

void
RecoveryService::replayJournal()
{
    // The journal already tolerated a torn tail, skipped corrupt
    // records, deduplicated by id, and dropped finished jobs; what
    // comes back is exactly the unfinished submissions, in original
    // submission order. A record the service itself cannot use (an
    // unreadable profile, a trace file that is gone) is retired with
    // a terminal record so it does not replay forever.
    for (const ReplayedJob &job : journal_->replay()) {
        std::istringstream fields(job.payload);
        std::string kind;
        std::size_t parity_bits = 0;
        int bypass = 0;
        fields >> kind >> parity_bits >> bypass;
        if (!fields) {
            journal_->appendTerminal(job.id, /*done=*/false);
            continue;
        }
        std::string payload;
        std::getline(fields, payload);
        if (!payload.empty() && payload.front() == ' ')
            payload.erase(0, 1);

        SubmitOptions options;
        options.parityBits = parity_bits;
        options.bypassCache = bypass != 0;
        SubmitOutcome outcome;
        if (kind == "profile") {
            std::istringstream text(unescapeJournalField(payload));
            MiscorrectionProfile profile;
            if (!tryParseProfile(text, profile).ok) {
                util::warn("svc: journal job %llu: unreadable "
                              "profile record, dropped",
                              (unsigned long long)job.id);
                journal_->appendTerminal(job.id, /*done=*/false);
                continue;
            }
            outcome = enqueue(std::move(profile), options, job.id,
                              /*journal=*/false);
        } else if (kind == "trace") {
            const std::string path = unescapeJournalField(payload);
            if (!std::ifstream(path)) {
                util::warn("svc: journal job %llu: trace file "
                              "'%s' is gone, dropped",
                              (unsigned long long)job.id, path.c_str());
                journal_->appendTerminal(job.id, /*done=*/false);
                continue;
            }
            auto record = std::make_unique<JobRecord>();
            record->options = options;
            record->tracePath = path;
            outcome = scheduleRecord(std::move(record), job.id,
                                     /*journal=*/false);
        } else {
            journal_->appendTerminal(job.id, /*done=*/false);
            continue;
        }
        if (outcome.accepted)
            journalReplays_.fetch_add(1, std::memory_order_relaxed);
        else
            util::warn("svc: journal job %llu: replay rejected "
                          "(%s)",
                          (unsigned long long)job.id,
                          outcome.error.c_str());
    }
}

FingerprintCache::Hit
RecoveryService::batchedLookup(const MiscorrectionProfile &profile,
                               std::size_t parity_bits)
{
    LookupWaiter waiter;
    waiter.profile = &profile;
    waiter.parityBits = parity_bits;

    std::unique_lock<std::mutex> lock(lookupMutex_);
    lookupQueue_.push_back(&waiter);
    if (lookupLeaderActive_) {
        // A leader is already serving the queue; it will carry this
        // request in its next lookupMany() pass.
        lookupServed_.wait(lock, [&] { return waiter.served; });
        return std::move(waiter.hit);
    }

    lookupLeaderActive_ = true;
    while (!lookupQueue_.empty()) {
        std::vector<LookupWaiter *> batch(lookupQueue_.begin(),
                                          lookupQueue_.end());
        lookupQueue_.clear();
        lock.unlock();

        std::vector<FingerprintCache::LookupRequest> requests;
        requests.reserve(batch.size());
        for (const LookupWaiter *w : batch)
            requests.push_back({w->profile, w->parityBits});
        std::vector<FingerprintCache::Hit> hits =
            cache_->lookupMany(requests);
        if (batch.size() > 1)
            batchedLookups_.fetch_add(batch.size(),
                                      std::memory_order_relaxed);

        lock.lock();
        for (std::size_t i = 0; i < batch.size(); ++i) {
            batch[i]->hit = std::move(hits[i]);
            batch[i]->served = true;
        }
        lookupServed_.notify_all();
        // Requests that arrived while the pass ran are in the queue
        // again; keep leading until it drains.
    }
    lookupLeaderActive_ = false;
    return std::move(waiter.hit);
}

void
RecoveryService::runSessionJob(JobRecord &record)
{
    SessionConfig config;
    config.measure = record.sessionOptions.measure;
    config.solver = config_.solver;
    config.escalateToTwoCharged =
        record.sessionOptions.escalateToTwoCharged;
    config.adaptiveEarlyExit = record.sessionOptions.adaptiveEarlyExit;
    config.wordsUnderTest = record.sessionOptions.wordsUnderTest;
    config.pipelined = record.sessionOptions.pipelined;
    config.repair = record.sessionOptions.repair;
    config.deadlineSeconds = record.sessionOptions.deadlineSeconds;
    config.measurementBudget = record.sessionOptions.measurementBudget;
    // Solve tasks ride the service pool: while this job's worker
    // blocks on the chip, an idle worker picks the solve up — one job,
    // two busy cores. The claimable-task handoff keeps a saturated
    // pool safe (the join runs the solve inline instead of waiting).
    config.solverPool = pool_.get();

    Session session(*record.sessionMem, config);
    const RecoveryReport report = session.run();
    // One job, one answer-producing solve path (the session's rounds
    // share an incremental context), matching the counter's "jobs
    // answered by SAT" meaning.
    satSolves_.fetch_add(1, std::memory_order_relaxed);
    quorumVotesSpent_.fetch_add(report.stats.quorumVotesSpent,
                                std::memory_order_relaxed);
    quorumEscalations_.fetch_add(report.stats.quorumEscalations,
                                 std::memory_order_relaxed);

    const std::size_t parity =
        ecc::parityBitsForDataBits(report.profile.k);
    if (report.succeeded())
        cache_->insert(report.profile, parity, report.recoveredCode());

    // Graceful degradation is a *completed* job with a diagnosis: the
    // state stays Done, the taxonomy code says why the answer is not
    // a unique function.
    JobErrorCode code = JobErrorCode::None;
    switch (report.diagnosis.outcome) {
    case SessionOutcome::Unique:
        break;
    case SessionOutcome::Ambiguous:
        code = JobErrorCode::Ambiguous;
        break;
    case SessionOutcome::Unsatisfiable:
        code = JobErrorCode::Unsatisfiable;
        break;
    case SessionOutcome::DeadlineExceeded:
    case SessionOutcome::BudgetExhausted:
        code = JobErrorCode::Timeout;
        break;
    }

    std::lock_guard<std::mutex> lock(record.mutex);
    record.status.patterns = report.profile.patterns.size();
    record.status.succeeded = report.succeeded();
    record.status.solutions = report.solve.solutions.size();
    record.status.complete = report.solve.complete;
    if (report.succeeded()) {
        record.status.code = report.recoveredCode();
        record.status.codeString = record.status.code->toString();
    }
    record.status.overlapSeconds = report.stats.overlapSeconds;
    record.status.errorCode = code;
    record.status.diagnosisJson = report.diagnosis.toJson();
}

void
RecoveryService::runJob(JobRecord &record)
{
    const auto wall_start = std::chrono::steady_clock::now();
    JobId id;
    {
        std::lock_guard<std::mutex> lock(record.mutex);
        // A retried attempt starts clean: the previous attempt's
        // failure is history, not state.
        record.status.state = JobState::Running;
        record.status.error.clear();
        record.status.errorCode = JobErrorCode::None;
        id = record.status.id;
    }

    try {
        // Inside the try so a throwing test hook is classified and
        // retried like any other job-body failure.
        if (config_.onJobStart)
            config_.onJobStart(id);
        if (record.sessionMem) {
            try {
                runSessionJob(record);
            } catch (...) {
                std::lock_guard<std::mutex> lock(record.mutex);
                record.status.errorCode =
                    JobErrorCode::MeasurementFailed;
                throw;
            }
            const double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
            std::lock_guard<std::mutex> lock(record.mutex);
            record.status.seconds = seconds;
            record.status.state = JobState::Done;
            return;
        }
        // Trace submissions re-measure their profile first. A throw
        // here means the recorded trace itself was unusable.
        if (!record.tracePath.empty()) {
            try {
                dram::TraceReplayBackend trace(record.tracePath);
                const ProfileCounts counts = replayProfileTrace(trace);
                MiscorrectionProfile profile = counts.threshold(
                    traceMeasureConfig(trace).thresholdProbability);
                const std::size_t parity =
                    record.options.parityBits
                        ? record.options.parityBits
                        : ecc::parityBitsForDataBits(profile.k);
                std::lock_guard<std::mutex> lock(record.mutex);
                record.status.k = profile.k;
                record.status.parityBits = parity;
                record.status.patterns = profile.patterns.size();
                record.profile = std::move(profile);
            } catch (...) {
                std::lock_guard<std::mutex> lock(record.mutex);
                record.status.errorCode = JobErrorCode::BadInput;
                throw;
            }
        }

        const MiscorrectionProfile &profile = record.profile;
        const std::size_t parity = record.status.parityBits;

        FingerprintCache::Hit hit;
        if (!record.options.bypassCache)
            hit = batchedLookup(profile, parity);

        JobStatus result;
        if (hit.kind == FingerprintCache::Hit::Kind::Exact) {
            result.succeeded = true;
            result.solutions = 1;
            result.complete = true;
            result.code = hit.code;
            result.codeString = hit.code->toString();
            result.cache = CacheOutcome::Exact;
        } else {
            IncrementalSolver solver(profile.k, parity,
                                     config_.solver);
            if (hit.kind == FingerprintCache::Hit::Kind::Near) {
                solver.warmStart(hit.shared);
                result.cache = CacheOutcome::Near;
            }
            solver.addProfile(profile);
            const BeerSolveResult solve = solver.solve();
            satSolves_.fetch_add(1, std::memory_order_relaxed);
            result.succeeded = solve.unique();
            result.solutions = solve.solutions.size();
            result.complete = solve.complete;
            if (solve.unique()) {
                result.code = solve.solutions.front();
                result.codeString = result.code->toString();
                // Only answers enter the cache: a non-unique solve is
                // a request for more measurement, not a function.
                cache_->insert(profile, parity,
                               solve.solutions.front());
            }
        }

        // Taxonomy for completed-but-answerless solves, mirroring the
        // session diagnosis mapping.
        if (!result.succeeded)
            result.errorCode = (result.complete &&
                                result.solutions == 0)
                                   ? JobErrorCode::Unsatisfiable
                                   : JobErrorCode::Ambiguous;

        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        std::lock_guard<std::mutex> lock(record.mutex);
        record.status.succeeded = result.succeeded;
        record.status.solutions = result.solutions;
        record.status.complete = result.complete;
        record.status.code = std::move(result.code);
        record.status.codeString = std::move(result.codeString);
        record.status.cache = result.cache;
        record.status.seconds = seconds;
        record.status.errorCode = result.errorCode;
        record.status.state = JobState::Done;
    } catch (const std::exception &e) {
        std::lock_guard<std::mutex> lock(record.mutex);
        record.status.error = e.what();
        if (record.status.errorCode == JobErrorCode::None)
            record.status.errorCode = JobErrorCode::Internal;
        record.status.state = JobState::Failed;
        throw; // let the scheduler count (and maybe retry) the failure
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(record.mutex);
            record.status.error = "unknown job failure";
            if (record.status.errorCode == JobErrorCode::None)
                record.status.errorCode = JobErrorCode::Internal;
            record.status.state = JobState::Failed;
        }
        throw;
    }
}

std::optional<JobStatus>
RecoveryService::job(JobId id) const
{
    std::lock_guard<std::mutex> jobs_lock(jobsMutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    JobStatus status;
    {
        std::lock_guard<std::mutex> lock(it->second->mutex);
        status = it->second->status;
    }
    // The scheduler owns the lifecycle — it alone knows about retry
    // re-queues and quarantine — so its state and attempt count
    // overlay the record's last-written snapshot.
    if (const auto state = scheduler_->state(id))
        status.state = *state;
    status.attempts = scheduler_->attempts(id);
    return status;
}

bool
RecoveryService::waitForJob(JobId id)
{
    return scheduler_->wait(id);
}

void
RecoveryService::drain()
{
    scheduler_->drain();
}

JobPage
RecoveryService::listJobs(std::size_t offset, std::size_t limit) const
{
    constexpr std::size_t kDefaultLimit = 50;
    constexpr std::size_t kMaxLimit = 1000;
    if (limit == 0)
        limit = kDefaultLimit;
    limit = std::min(limit, kMaxLimit);

    JobPage page;
    page.offset = offset;
    std::lock_guard<std::mutex> jobs_lock(jobsMutex_);
    page.total = jobs_.size();
    auto it = jobs_.begin();
    std::advance(it, std::min(offset, jobs_.size()));
    for (; it != jobs_.end() && page.jobs.size() < limit; ++it) {
        JobStatus status;
        {
            std::lock_guard<std::mutex> lock(it->second->mutex);
            status = it->second->status;
        }
        if (const auto state = scheduler_->state(it->first))
            status.state = *state;
        status.attempts = scheduler_->attempts(it->first);
        page.jobs.push_back(std::move(status));
    }
    return page;
}

HealthReport
RecoveryService::health() const
{
    HealthReport report;
    report.ok = !stopped_.load();
    report.uptimeSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start_)
            .count();
    report.poolThreads = pool_->size() - 1;
    report.poolQueuedTasks = pool_->queuedTasks();
    report.poolActiveTasks = pool_->activeTasks();
    report.poolCompletedTasks = pool_->completedTasks();
    report.scheduler = scheduler_->stats();
    report.jobStates = scheduler_->stateCounts();
    report.queueDepth = report.scheduler.queued;
    report.cache = cache_->stats();
    report.satSolves = satSolves_.load(std::memory_order_relaxed);
    report.legacyPayloads =
        legacyPayloads_.load(std::memory_order_relaxed);
    report.traceV1Jobs = traceV1Jobs_.load(std::memory_order_relaxed);
    report.traceV2Jobs = traceV2Jobs_.load(std::memory_order_relaxed);
    report.batchedLookups =
        batchedLookups_.load(std::memory_order_relaxed);
    report.retries = report.scheduler.retries;
    report.quarantined = report.scheduler.quarantined;
    report.expiredJobs = report.scheduler.expired;
    report.journalReplays =
        journalReplays_.load(std::memory_order_relaxed);
    report.journal = journal_->stats();
    report.quorumVotesSpent =
        quorumVotesSpent_.load(std::memory_order_relaxed);
    report.quorumEscalations =
        quorumEscalations_.load(std::memory_order_relaxed);
    return report;
}

bool
RecoveryService::flushCache() const
{
    return cache_->flushToDisk();
}

void
RecoveryService::shutdown()
{
    // The exchange makes the whole drain-fsync-flush sequence run
    // exactly once, however many of shutdown()/the destructor/a
    // signal handler race here: later callers see `true` and return
    // before touching the journal or the cache.
    if (stopped_.exchange(true))
        return;
    scheduler_->drain();
    // Graceful drain is the one moment durability is pinned: appends
    // are open-per-call (the OS flushes them eventually; a kill -9
    // loses at most what replay re-derives), but a *clean* shutdown
    // fsyncs so the journal survives even power loss right after.
    journal_->sync();
    if (!config_.cache.path.empty())
        cache_->flushToDisk();
}

} // namespace beer::svc
