/**
 * @file
 * Transport-agnostic ECC recovery service core.
 *
 * svc::RecoveryService turns the batch BEER pipeline into a
 * long-running, fleet-facing system: clients submit miscorrection
 * profiles (as in-process objects, versioned text payloads, or
 * recorded measurement traces), each submission becomes a scheduled
 * job on the shared thread pool, and results are polled by job id.
 * The API surface is versioned (kApiVersion) and deliberately
 * transport-free — tests drive it fully in-process, and the HTTP/1.1
 * adapter (svc/http.hh) is a thin serialization shim over exactly
 * these calls:
 *
 *   submit*   -> job id (or a load-shed/parse rejection)
 *   job(id)   -> poll one job
 *   listJobs  -> paginated, deterministic (id-ordered) job listing
 *   health    -> liveness + pool/scheduler/cache observability
 *
 * Every job consults the fingerprint cache first: an exact hit
 * returns the previously solved function with zero SAT solver
 * invocations (satSolves in HealthReport is the proof the acceptance
 * test asserts on), a near match warm-starts the incremental solver
 * with the shared profile subset, and unique solves are inserted for
 * the next member of the fleet. shutdown() drains the scheduler and
 * flushes the cache to disk; the destructor does the same.
 */

#ifndef BEER_SVC_SERVICE_HH
#define BEER_SVC_SERVICE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "beer/profile.hh"
#include "beer/session.hh"
#include "beer/solver.hh"
#include "svc/fingerprint_cache.hh"
#include "svc/io.hh"
#include "svc/journal.hh"
#include "svc/scheduler.hh"
#include "util/thread_pool.hh"

#include <condition_variable>
#include <deque>

namespace beer::svc
{

/** Version of the request/response surface (the /v1 in URLs). */
inline constexpr int kApiVersion = 1;

/** Per-submission options. */
struct SubmitOptions
{
    /** Parity-bit count (0 = minimum SEC count for the profile's k). */
    std::size_t parityBits = 0;
    /** Skip the cache lookup (the solve still populates it). */
    bool bypassCache = false;
};

/** Options for a chip-endpoint session submission. */
struct SessionSubmitOptions
{
    /** Measurement plan the session drives against the chip
     *  (including quorum reads, MeasureConfig::quorum). */
    MeasureConfig measure = MeasureConfig::paperDefault();
    /** UNSAT-core repair of noise-poisoned rounds. */
    SessionRepairConfig repair;
    /** Per-session wall-clock deadline, seconds (0 = none). */
    double deadlineSeconds = 0.0;
    /** Per-session experiment budget (0 = none). */
    std::uint64_t measurementBudget = 0;
    /**
     * Overlap the session's SAT solves with its measurement rounds on
     * the service pool (beer::Session pipelined mode). The job then
     * occupies one scheduler slot for measurement while its solve
     * tasks soak up an otherwise-idle worker; results are identical
     * to a serial session.
     */
    bool pipelined = true;
    /** Session knobs beyond the solver/measure plan. */
    bool escalateToTwoCharged = true;
    bool adaptiveEarlyExit = true;
    /** Words to program and observe (empty = every word). */
    std::vector<std::size_t> wordsUnderTest;
};

/** Outcome of a submit call. */
struct SubmitOutcome
{
    bool accepted = false;
    /** Valid when accepted. */
    JobId id = 0;
    /** Machine-readable rejection class. */
    enum class Reject
    {
        None,
        /** Payload failed to parse or declared an unusable version. */
        BadPayload,
        /** Bounded queue full — retry later (HTTP 429). */
        Overloaded,
    };
    Reject reject = Reject::None;
    /** Human-readable rejection detail. */
    std::string error;
};

/** How a job's answer was obtained. */
enum class CacheOutcome
{
    /** Full SAT solve, no cache involvement. */
    None,
    /** Returned from the cache with zero solver invocations. */
    Exact,
    /** SAT solve warm-started from a near-match shared subset. */
    Near,
};

/**
 * Structured failure/degradation taxonomy for jobs. Orthogonal to
 * JobState: a Done session job can still carry Unsatisfiable or
 * Timeout when it completed by degrading gracefully instead of
 * recovering a unique function, and a Failed job says *why* without
 * string matching.
 */
enum class JobErrorCode
{
    None,
    /** The submission's own data was unusable (bad trace, bad k). */
    BadInput,
    /** The chip/backend measurement path threw. */
    MeasurementFailed,
    /** No ECC function is consistent with the evidence (corruption
     *  that quorum + repair could not mask). */
    Unsatisfiable,
    /** Multiple candidate functions remain (need more evidence). */
    Ambiguous,
    /** A deadline or measurement budget expired first. */
    Timeout,
    /** Anything else that threw out of the job body. */
    Internal,
};

/** Stable lower_snake name for JSON/logs (e.g. "bad_input"). */
const char *jobErrorCodeName(JobErrorCode code);

/** Poll-able snapshot of one job. */
struct JobStatus
{
    JobId id = 0;
    JobState state = JobState::Queued;
    std::size_t k = 0;
    std::size_t parityBits = 0;
    std::size_t patterns = 0;
    /** Results below are valid once state == Done. */
    bool succeeded = false;
    std::size_t solutions = 0;
    /** True iff the enumeration ran to completion. */
    bool complete = false;
    /** Recovered H = [P | I] rendering (unique solves only). */
    std::string codeString;
    /** The recovered function (unique solves only). */
    std::optional<ecc::LinearCode> code;
    CacheOutcome cache = CacheOutcome::None;
    /** Wall-clock seconds inside the job body. */
    double seconds = 0.0;
    /**
     * Solver seconds hidden behind concurrent measurement
     * (SessionStats::overlapSeconds). Nonzero only for pipelined
     * session jobs (submitSession); profile/payload/trace jobs carry
     * no measurement to overlap with.
     */
    double overlapSeconds = 0.0;
    /** Set when state == Failed. */
    std::string error;
    /** Structured failure/degradation class; see JobErrorCode. */
    JobErrorCode errorCode = JobErrorCode::None;
    /** Attempts started (> 1 only under a retry policy). */
    std::size_t attempts = 0;
    /** SessionDiagnosis::toJson() for session jobs, else empty. */
    std::string diagnosisJson;
};

/** One page of the job listing. */
struct JobPage
{
    std::vector<JobStatus> jobs;
    std::size_t total = 0;
    std::size_t offset = 0;
};

/** Liveness + observability snapshot. */
struct HealthReport
{
    bool ok = true;
    int apiVersion = kApiVersion;
    double uptimeSeconds = 0.0;
    std::size_t poolThreads = 0;
    std::uint64_t poolQueuedTasks = 0;
    std::uint64_t poolActiveTasks = 0;
    std::uint64_t poolCompletedTasks = 0;
    SchedulerStats scheduler;
    /** Per-state census of every job issued: Queued pinned at
     * maxQueuedJobs plus rejected submissions rising = load shedding
     * in progress; Failed rising = job bodies are throwing. */
    JobStateCounts jobStates;
    /** Jobs waiting for a worker right now (scheduler queue depth). */
    std::uint64_t queueDepth = 0;
    FingerprintCacheStats cache;
    /** Jobs answered by a SAT solve (cache hits excluded). */
    std::uint64_t satSolves = 0;
    /** Version-1 (legacy) payloads accepted and migrated. */
    std::uint64_t legacyPayloads = 0;
    /** Trace jobs accepted per on-disk format (v2-migration gauge). */
    std::uint64_t traceV1Jobs = 0;
    std::uint64_t traceV2Jobs = 0;
    /** Cache lookups that rode a combined (single-lock) batch pass
     * with at least one other concurrent lookup. */
    std::uint64_t batchedLookups = 0;
    /** Job attempts re-queued by the retry policy. */
    std::uint64_t retries = 0;
    /** Jobs quarantined after exhausting their retries. */
    std::uint64_t quarantined = 0;
    /** Jobs failed unrun because their start deadline passed. */
    std::uint64_t expiredJobs = 0;
    /** Unfinished journaled jobs re-submitted at startup. */
    std::uint64_t journalReplays = 0;
    /** Journal size/compaction/corruption counters. */
    JournalStats journal;
    /** Quorum reads spent by session jobs (adaptive or fixed). */
    std::uint64_t quorumVotesSpent = 0;
    /** Quorum escalations to the full vote tier by session jobs. */
    std::uint64_t quorumEscalations = 0;
};

/** Construction knobs for the service. */
struct ServiceConfig
{
    /** Scheduler worker threads (0 = hardware concurrency). */
    std::size_t threads = 0;
    /** Bounded job queue; submissions beyond it are load-shed. */
    std::size_t maxQueuedJobs = 256;
    FingerprintCacheConfig cache;
    /** Solver knobs applied to every job. */
    BeerSolverConfig solver{.maxSolutions = 16};
    /**
     * Reject version-1 (version-less) payloads instead of migrating
     * them, for deployments that demand explicit versioning.
     */
    bool rejectLegacyPayloads = false;
    /** Resilience policy applied to every job (retries/backoff/start
     *  deadline); see JobPolicy. */
    JobPolicy jobPolicy;
    /**
     * Append-only job journal path (empty = no journal). Every
     * profile/payload/trace submission appends a `submit` record
     * (flushed before the submit call returns) and every terminal
     * job a `done`/`failed` record, so a service constructed over the
     * same path after a crash re-submits the unfinished jobs under
     * their original ids (HealthReport::journalReplays) — queued work
     * survives restarts without duplicate side effects. Session
     * (chip-endpoint) jobs are not journaled: a live chip pointer
     * cannot be re-created from disk.
     */
    std::string journalPath;
    /**
     * Journal size bound: compact (atomically rewrite keeping only
     * unfinished submit records) when the file exceeds this (0 =
     * never compact online; see JournalConfig::maxBytes).
     */
    std::size_t journalMaxBytes = 256 * 1024;
    /**
     * I/O seam for the journal and the fingerprint-cache file
     * (nullptr = raw POSIX). The chaos tests inject ENOSPC windows,
     * short writes and torn records through this to prove the
     * exactly-once job contract differentially.
     */
    FileIo *fileIo = nullptr;
    /** Test/observability hook: runs on the worker as a job starts. */
    std::function<void(JobId)> onJobStart;
};

/** Long-running recovery service; see file comment. */
class RecoveryService
{
  public:
    /** Loads the fingerprint cache if a path is configured. */
    explicit RecoveryService(ServiceConfig config = {});
    /** Calls shutdown(). */
    ~RecoveryService();

    RecoveryService(const RecoveryService &) = delete;
    RecoveryService &operator=(const RecoveryService &) = delete;

    /** Submit an in-process profile. */
    SubmitOutcome submitProfile(const MiscorrectionProfile &profile,
                                const SubmitOptions &options = {});

    /**
     * Submit a serialized profile payload (the beer_solve text
     * format). Future format versions are rejected as BadPayload;
     * legacy version-1 payloads are migrated (counted in
     * HealthReport::legacyPayloads) unless configured to reject.
     */
    SubmitOutcome submitPayload(const std::string &payload,
                                const SubmitOptions &options = {});

    /**
     * Submit a recorded measurement trace (dram/trace.hh format): the
     * profile is re-measured from the recorded reads with the
     * threshold stored in the trace, then solved like any other
     * submission.
     */
    SubmitOutcome submitTraceFile(const std::string &path,
                                  const SubmitOptions &options = {});

    /**
     * Submit a chip *endpoint*: the service runs the full adaptive
     * measure -> solve recovery session against @p mem as one job,
     * pipelined by default so the job keeps a measurement slot and a
     * solver core busy simultaneously (ROADMAP fleet phase 2). The
     * caller keeps ownership of @p mem and must keep it alive and
     * untouched until the job finishes; the job's worker thread is
     * the only thread driving it. A unique recovery populates the
     * fingerprint cache exactly like a profile submission.
     */
    SubmitOutcome submitSession(dram::MemoryInterface &mem,
                                const SessionSubmitOptions &options = {});

    /** Snapshot of one job; nullopt if the id was never issued. */
    std::optional<JobStatus> job(JobId id) const;

    /**
     * Block until @p id finishes.
     *
     * @return false if the id was never issued
     */
    bool waitForJob(JobId id);

    /** Block until every accepted job has finished. */
    void drain();

    /** Jobs in ascending-id order, windowed by @p offset/@p limit. */
    JobPage listJobs(std::size_t offset, std::size_t limit) const;

    HealthReport health() const;

    /** Persist the fingerprint cache now (no-op without a path). */
    bool flushCache() const;

    /**
     * Stop accepting work, drain in-flight jobs, flush the cache.
     * Idempotent; later submissions are load-shed as Overloaded.
     */
    void shutdown();

  private:
    struct JobRecord;

    SubmitOutcome enqueue(MiscorrectionProfile profile,
                          const SubmitOptions &options,
                          JobId force_id = 0, bool journal = true);
    /** Register + schedule a prepared record (shared submit tail).
     *  @p force_id reuses a journaled id; @p journal appends the
     *  submit record (off when replaying — the line already exists). */
    SubmitOutcome scheduleRecord(std::unique_ptr<JobRecord> record,
                                 JobId force_id, bool journal);
    void runJob(JobRecord &record);
    void runSessionJob(JobRecord &record);

    /** Re-submit unfinished jobs recorded in the journal. */
    void replayJournal();

    /**
     * Cache lookup via the combining batcher: concurrent callers
     * queue their requests and one leader serves the whole queue with
     * a single FingerprintCache::lookupMany() pass (one lock
     * acquisition for N lookups) while the rest wait for their slot's
     * answer. Requests that shared a pass with another are counted in
     * HealthReport::batchedLookups.
     */
    FingerprintCache::Hit batchedLookup(
        const MiscorrectionProfile &profile, std::size_t parity_bits);

    ServiceConfig config_;
    std::unique_ptr<util::ThreadPool> pool_;
    std::unique_ptr<FingerprintCache> cache_;
    std::unique_ptr<SessionScheduler> scheduler_;
    mutable std::mutex jobsMutex_;
    /** Ordered by id, the pagination contract. */
    std::map<JobId, std::unique_ptr<JobRecord>> jobs_;

    /** One waiting lookup in the combining batcher. */
    struct LookupWaiter
    {
        const MiscorrectionProfile *profile = nullptr;
        std::size_t parityBits = 0;
        FingerprintCache::Hit hit;
        bool served = false;
    };
    std::mutex lookupMutex_;
    std::condition_variable lookupServed_;
    std::deque<LookupWaiter *> lookupQueue_;
    bool lookupLeaderActive_ = false;

    std::atomic<std::uint64_t> satSolves_{0};
    std::atomic<std::uint64_t> legacyPayloads_{0};
    std::atomic<std::uint64_t> traceV1Jobs_{0};
    std::atomic<std::uint64_t> traceV2Jobs_{0};
    std::atomic<std::uint64_t> batchedLookups_{0};
    std::atomic<std::uint64_t> journalReplays_{0};
    std::atomic<std::uint64_t> quorumVotesSpent_{0};
    std::atomic<std::uint64_t> quorumEscalations_{0};
    std::atomic<bool> stopped_{false};
    std::unique_ptr<JobJournal> journal_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace beer::svc

#endif // BEER_SVC_SERVICE_HH
