/**
 * @file
 * Small bit-manipulation helpers shared by the GF(2) and ECC layers.
 */

#ifndef BEER_UTIL_BITOPS_HH
#define BEER_UTIL_BITOPS_HH

#include <bit>
#include <cstdint>

namespace beer::util
{

/** Number of set bits in a 64-bit word. */
inline int
popcount64(std::uint64_t x)
{
    return std::popcount(x);
}

/** Parity (XOR-reduction) of a 64-bit word; 1 iff an odd number of bits. */
inline int
parity64(std::uint64_t x)
{
    return std::popcount(x) & 1;
}

/** Index of the lowest set bit; undefined for x == 0. */
inline int
ctz64(std::uint64_t x)
{
    return std::countr_zero(x);
}

/** Round @p bits up to the number of 64-bit words needed to hold them. */
inline std::size_t
wordsForBits(std::size_t bits)
{
    return (bits + 63) / 64;
}

/** Mask with the low @p n bits set (n in [0, 64]). */
inline std::uint64_t
lowMask64(unsigned n)
{
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

/**
 * Exact unsigned division by a fixed 32-bit divisor via Lemire's
 * reciprocal method: one 64x64->128 multiply instead of a ~25-cycle
 * udiv. The simulation engine's skip-sampling loop divides every
 * sampled error cell's flat index by the vulnerable-position count,
 * which made the hardware divider a measurable fraction of the decode
 * hot path. Quotients are exact for every n < 2^32.
 */
class FastDiv32
{
  public:
    explicit FastDiv32(std::uint32_t d) : d_(d)
    {
        // d == 1 would overflow the reciprocal (2^64); handled by a
        // predictable branch in div().
        magic_ = d > 1 ? ~(std::uint64_t)0 / d + 1 : 0;
    }

    std::uint32_t div(std::uint32_t n) const
    {
#if defined(__SIZEOF_INT128__)
        if (d_ == 1)
            return n;
        return (std::uint32_t)(((unsigned __int128)magic_ * n) >> 64);
#else
        return n / d_;
#endif
    }

    std::uint32_t divisor() const { return d_; }

  private:
    std::uint64_t magic_;
    std::uint32_t d_;
};

} // namespace beer::util

#endif // BEER_UTIL_BITOPS_HH
