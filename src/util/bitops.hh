/**
 * @file
 * Small bit-manipulation helpers shared by the GF(2) and ECC layers.
 */

#ifndef BEER_UTIL_BITOPS_HH
#define BEER_UTIL_BITOPS_HH

#include <bit>
#include <cstdint>

namespace beer::util
{

/** Number of set bits in a 64-bit word. */
inline int
popcount64(std::uint64_t x)
{
    return std::popcount(x);
}

/** Parity (XOR-reduction) of a 64-bit word; 1 iff an odd number of bits. */
inline int
parity64(std::uint64_t x)
{
    return std::popcount(x) & 1;
}

/** Index of the lowest set bit; undefined for x == 0. */
inline int
ctz64(std::uint64_t x)
{
    return std::countr_zero(x);
}

/** Round @p bits up to the number of 64-bit words needed to hold them. */
inline std::size_t
wordsForBits(std::size_t bits)
{
    return (bits + 63) / 64;
}

/** Mask with the low @p n bits set (n in [0, 64]). */
inline std::uint64_t
lowMask64(unsigned n)
{
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

} // namespace beer::util

#endif // BEER_UTIL_BITOPS_HH
