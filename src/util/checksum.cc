#include "util/checksum.hh"

#include <array>

namespace beer::util
{

std::uint32_t
crc32(const void *data, std::size_t len)
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xFFFFFFFFu;
    const auto *at = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ at[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

} // namespace beer::util
