/**
 * @file
 * Checksums shared by the on-disk formats (service job journal, trace
 * format v2 frames). One implementation so every "did these bytes
 * survive the disk?" check in the codebase means the same thing.
 */

#ifndef BEER_UTIL_CHECKSUM_HH
#define BEER_UTIL_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

namespace beer::util
{

/** CRC-32 (IEEE 802.3, reflected) over @p len bytes of @p data. */
std::uint32_t crc32(const void *data, std::size_t len);

} // namespace beer::util

#endif // BEER_UTIL_CHECKSUM_HH
