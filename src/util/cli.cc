#include "util/cli.hh"

#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace beer::util
{

Cli::Cli(std::string description)
    : description_(std::move(description))
{
}

void
Cli::addOption(const std::string &name, const std::string &def,
               const std::string &help)
{
    BEER_ASSERT(!options_.count(name));
    options_[name] = Option{def, help, false};
    order_.push_back(name);
}

void
Cli::addFlag(const std::string &name, const std::string &help)
{
    BEER_ASSERT(!options_.count(name));
    options_[name] = Option{"0", help, true};
    order_.push_back(name);
}

void
Cli::parse(int argc, char **argv)
{
    programName_ = argc > 0 ? argv[0] : "prog";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp();
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected positional argument '%s'", arg.c_str());
        arg = arg.substr(2);

        std::string name = arg;
        std::string value;
        bool has_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            has_value = true;
        }

        auto it = options_.find(name);
        if (it == options_.end())
            fatal("unknown option '--%s' (try --help)", name.c_str());

        if (it->second.isFlag) {
            if (has_value)
                fatal("flag '--%s' does not take a value", name.c_str());
            it->second.value = "1";
        } else {
            if (!has_value) {
                if (i + 1 >= argc)
                    fatal("option '--%s' requires a value", name.c_str());
                value = argv[++i];
            }
            it->second.value = value;
        }
    }
}

const Cli::Option &
Cli::find(const std::string &name) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        panic("option '--%s' was never registered", name.c_str());
    return it->second;
}

std::string
Cli::getString(const std::string &name) const
{
    return find(name).value;
}

std::int64_t
Cli::getInt(const std::string &name) const
{
    const std::string &v = find(name).value;
    char *end = nullptr;
    const long long out = std::strtoll(v.c_str(), &end, 0);
    if (!end || *end != '\0')
        fatal("option '--%s' expects an integer, got '%s'", name.c_str(),
              v.c_str());
    return out;
}

double
Cli::getDouble(const std::string &name) const
{
    const std::string &v = find(name).value;
    char *end = nullptr;
    const double out = std::strtod(v.c_str(), &end);
    if (!end || *end != '\0')
        fatal("option '--%s' expects a number, got '%s'", name.c_str(),
              v.c_str());
    return out;
}

bool
Cli::getBool(const std::string &name) const
{
    return find(name).value == "1";
}

void
Cli::printHelp() const
{
    std::printf("%s\n\nusage: %s [options]\n\noptions:\n",
                description_.c_str(), programName_.c_str());
    for (const auto &name : order_) {
        const Option &opt = options_.at(name);
        if (opt.isFlag) {
            std::printf("  --%-24s %s\n", name.c_str(), opt.help.c_str());
        } else {
            std::string lhs = name + " <value>";
            std::printf("  --%-24s %s (default: %s)\n", lhs.c_str(),
                        opt.help.c_str(), opt.value.c_str());
        }
    }
}

} // namespace beer::util
