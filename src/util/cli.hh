/**
 * @file
 * Minimal command-line option parser for the bench/example binaries.
 *
 * Supports "--name value", "--name=value", and boolean flags "--name".
 * Unknown options are fatal so that typos in experiment sweeps cannot
 * silently run the wrong configuration.
 */

#ifndef BEER_UTIL_CLI_HH
#define BEER_UTIL_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace beer::util
{

/** Declarative command-line parser; see bench/ binaries for usage. */
class Cli
{
  public:
    /** @param description one-line program description for --help. */
    explicit Cli(std::string description);

    /** Register an option with a default value and help text. */
    void addOption(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Register a boolean flag (defaults to false). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv. Prints help and exits on --help; fatal on unknown
     * options or missing values.
     */
    void parse(int argc, char **argv);

    /** Accessors; fatal if @p name was never registered. */
    std::string getString(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getBool(const std::string &name) const;

  private:
    struct Option
    {
        std::string value;
        std::string help;
        bool isFlag = false;
    };

    const Option &find(const std::string &name) const;
    void printHelp() const;

    std::string description_;
    std::string programName_;
    std::map<std::string, Option> options_;
    std::vector<std::string> order_;
};

} // namespace beer::util

#endif // BEER_UTIL_CLI_HH
