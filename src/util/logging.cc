#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace beer::util
{

int logVerbosity = 1;

namespace
{

void
vreport(const char *tag, FILE *stream, const char *fmt, va_list args)
{
    std::fprintf(stream, "%s: ", tag);
    std::vfprintf(stream, fmt, args);
    std::fprintf(stream, "\n");
}

} // anonymous namespace

void
inform(const char *fmt, ...)
{
    if (logVerbosity < 1)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", stdout, fmt, args);
    va_end(args);
}

void
debug(const char *fmt, ...)
{
    if (logVerbosity < 2)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("debug", stdout, fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", stderr, fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", stderr, fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", stderr, fmt, args);
    va_end(args);
    std::abort();
}

} // namespace beer::util
