/**
 * @file
 * gem5-style status/error reporting: inform/warn for status, fatal for
 * user-correctable errors (exit(1)), panic for internal invariant
 * violations (abort()).
 */

#ifndef BEER_UTIL_LOGGING_HH
#define BEER_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace beer::util
{

/** Verbosity knob: 0 = quiet, 1 = inform (default), 2 = debug. */
extern int logVerbosity;

/** Print an informational message (printf-style) when verbosity >= 1. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug message when verbosity >= 2. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning; never stops execution. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report a user-caused error (bad arguments, bad configuration) and
 * exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation (a bug in this library) and
 * abort().
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Like assert() but always compiled in; calls panic() on failure. */
#define BEER_ASSERT(cond, ...)                                           \
    do {                                                                 \
        if (!(cond))                                                     \
            ::beer::util::panic("assertion '%s' failed at %s:%d",        \
                                #cond, __FILE__, __LINE__);              \
    } while (0)

} // namespace beer::util

#endif // BEER_UTIL_LOGGING_HH
