#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace beer::util
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    // All-zero state is invalid for xoshiro; splitmix64 cannot produce
    // four zero outputs in a row, but keep the guard for clarity.
    if (!(s_[0] | s_[1] | s_[2] | s_[3]))
        s_[0] = 1;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    BEER_ASSERT(bound > 0);
    // Lemire's nearly-divisionless bounded sampling.
    __uint128_t m = (__uint128_t)next() * bound;
    auto lo = (std::uint64_t)m;
    if (lo < bound) {
        std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            m = (__uint128_t)next() * bound;
            lo = (std::uint64_t)m;
        }
    }
    return (std::uint64_t)(m >> 64);
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::binomial(std::uint64_t n, double p)
{
    if (n == 0 || p <= 0.0)
        return 0;
    if (p >= 1.0)
        return n;
    if (p > 0.5)
        return n - binomial(n, 1.0 - p);

    const double mean = n * p;
    if (mean < 32.0) {
        // Inversion by sequential search over the CDF.
        const double q = 1.0 - p;
        const double ratio = p / q;
        double pmf = std::pow(q, (double)n);
        double cdf = pmf;
        const double u = uniform();
        std::uint64_t k = 0;
        while (u > cdf && k < n) {
            ++k;
            pmf *= ratio * (double)(n - k + 1) / (double)k;
            cdf += pmf;
        }
        return k;
    }

    // Normal approximation with continuity correction; clamp to [0, n].
    const double sd = std::sqrt(mean * (1.0 - p));
    double sample = std::round(mean + sd * normal());
    if (sample < 0.0)
        sample = 0.0;
    if (sample > (double)n)
        sample = (double)n;
    return (std::uint64_t)sample;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1 = uniform();
    // Avoid log(0).
    while (u1 <= 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(angle);
    hasCachedNormal_ = true;
    return radius * std::cos(angle);
}

std::uint64_t
Rng::geometric(double p)
{
    return GeometricSkip(p)(*this);
}

GeometricSkip::GeometricSkip(double p)
    : invLogQ_(1.0 / std::log1p(-p))
{
    BEER_ASSERT(p > 0.0 && p <= 1.0);
}

std::uint64_t
GeometricSkip::operator()(Rng &rng) const
{
    double u = rng.uniform();
    while (u <= 0.0)
        u = rng.uniform();
    // p == 1 makes invLogQ_ == -0.0 and the product +0.0: every trial
    // succeeds, as it should.
    const double g = std::log(u) * invLogQ_;
    return g >= 0x1p62 ? (std::uint64_t)1 << 62 : (std::uint64_t)g;
}

GeometricSampler::GeometricSampler(double p) : skip_(p)
{
    // Mean gap 1/p - 1 must sit well below kTail or nearly every draw
    // lands in the tail and loops; past the cutoff the log method is
    // already cheap per simulated cell because draws are rare.
    useAlias_ = p >= 0.02;
    if (!useAlias_)
        return;

    // pmf over {0 .. kTail-1} plus the tail sentinel at index kTail.
    const double q = 1.0 - p;
    double pmf[kSlots];
    double mass = 0.0;
    double term = p;
    for (std::size_t g = 0; g < kTail; ++g) {
        pmf[g] = term;
        mass += term;
        term *= q;
    }
    pmf[kTail] = mass < 1.0 ? 1.0 - mass : 0.0; // P(gap >= kTail) = q^kTail

    // Vose's alias method: every slot keeps itself with probability
    // scaled[i] (against a uniform) or defers to one alias outcome.
    double scaled[kSlots];
    std::uint16_t small[kSlots];
    std::uint16_t large[kSlots];
    std::size_t num_small = 0;
    std::size_t num_large = 0;
    for (std::size_t i = 0; i < kSlots; ++i) {
        scaled[i] = pmf[i] * (double)kSlots;
        if (scaled[i] < 1.0)
            small[num_small++] = (std::uint16_t)i;
        else
            large[num_large++] = (std::uint16_t)i;
    }
    // Keep-probability 1.0 maps to 2^56 exactly (representable: the
    // threshold compare is against a 56-bit value, always below it).
    const double fixed_one = 0x1.0p56;
    while (num_small > 0 && num_large > 0) {
        const std::uint16_t s = small[--num_small];
        const std::uint16_t l = large[--num_large];
        threshold_[s] = (std::uint64_t)(scaled[s] * fixed_one);
        alias_[s] = l;
        scaled[l] -= 1.0 - scaled[s];
        if (scaled[l] < 1.0)
            small[num_small++] = l;
        else
            large[num_large++] = l;
    }
    // Leftovers hold (numerically) exactly probability 1.
    while (num_large > 0) {
        const std::uint16_t l = large[--num_large];
        threshold_[l] = (std::uint64_t)fixed_one;
        alias_[l] = l;
    }
    while (num_small > 0) {
        const std::uint16_t s = small[--num_small];
        threshold_[s] = (std::uint64_t)fixed_one;
        alias_[s] = s;
    }
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(mu + sigma * normal());
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xa3c59ac2ed9b81d5ULL);
}

BernoulliMask::BernoulliMask(double p)
{
    if (p <= 0.0) {
        constant_ = 0;
        return;
    }
    if (p >= 1.0) {
        constant_ = ~(std::uint64_t)0;
        return;
    }
    // Peel p's binary fraction by doubling; terminates because a
    // double's fraction is finite (at most ~1075 digits for the
    // smallest denormals).
    double rest = p;
    while (rest > 0.0) {
        rest *= 2.0;
        if (rest >= 1.0) {
            digits_.push_back(1);
            rest -= 1.0;
        } else {
            digits_.push_back(0);
        }
    }
}

} // namespace beer::util
