#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace beer::util
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    // All-zero state is invalid for xoshiro; splitmix64 cannot produce
    // four zero outputs in a row, but keep the guard for clarity.
    if (!(s_[0] | s_[1] | s_[2] | s_[3]))
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    BEER_ASSERT(bound > 0);
    // Lemire's nearly-divisionless bounded sampling.
    __uint128_t m = (__uint128_t)next() * bound;
    auto lo = (std::uint64_t)m;
    if (lo < bound) {
        std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            m = (__uint128_t)next() * bound;
            lo = (std::uint64_t)m;
        }
    }
    return (std::uint64_t)(m >> 64);
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::binomial(std::uint64_t n, double p)
{
    if (n == 0 || p <= 0.0)
        return 0;
    if (p >= 1.0)
        return n;
    if (p > 0.5)
        return n - binomial(n, 1.0 - p);

    const double mean = n * p;
    if (mean < 32.0) {
        // Inversion by sequential search over the CDF.
        const double q = 1.0 - p;
        const double ratio = p / q;
        double pmf = std::pow(q, (double)n);
        double cdf = pmf;
        const double u = uniform();
        std::uint64_t k = 0;
        while (u > cdf && k < n) {
            ++k;
            pmf *= ratio * (double)(n - k + 1) / (double)k;
            cdf += pmf;
        }
        return k;
    }

    // Normal approximation with continuity correction; clamp to [0, n].
    const double sd = std::sqrt(mean * (1.0 - p));
    double sample = std::round(mean + sd * normal());
    if (sample < 0.0)
        sample = 0.0;
    if (sample > (double)n)
        sample = (double)n;
    return (std::uint64_t)sample;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1 = uniform();
    // Avoid log(0).
    while (u1 <= 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(angle);
    hasCachedNormal_ = true;
    return radius * std::cos(angle);
}

std::uint64_t
Rng::geometric(double p)
{
    return GeometricSkip(p)(*this);
}

GeometricSkip::GeometricSkip(double p)
    : invLogQ_(1.0 / std::log1p(-p))
{
    BEER_ASSERT(p > 0.0 && p <= 1.0);
}

std::uint64_t
GeometricSkip::operator()(Rng &rng) const
{
    double u = rng.uniform();
    while (u <= 0.0)
        u = rng.uniform();
    // p == 1 makes invLogQ_ == -0.0 and the product +0.0: every trial
    // succeeds, as it should.
    const double g = std::log(u) * invLogQ_;
    return g >= 0x1p62 ? (std::uint64_t)1 << 62 : (std::uint64_t)g;
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(mu + sigma * normal());
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xa3c59ac2ed9b81d5ULL);
}

} // namespace beer::util
